//! # tamp — Topology-Aware Massively Parallel computation
//!
//! An executable reproduction of *"Algorithms for a Topology-aware Massively
//! Parallel Computation Model"* (Hu, Koutris, Blanas — PODS 2021).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! - [`topology`] — the network model: symmetric trees with per-edge
//!   bandwidths, compute vs. router nodes, cuts, the directed graph `G†`,
//!   and topology builders (stars, rack trees, fat-trees, …).
//! - [`simulator`] — the topology-aware cost model as an executable,
//!   round-based engine: protocols send routed messages, and the engine
//!   charges exactly `cost(A) = Σ_rounds max_e |Y_i(e)| / w_e`.
//! - [`core`] — the paper's algorithms and lower bounds for set
//!   intersection, cartesian product and sorting, plus the
//!   topology-agnostic baselines they generalize.
//! - [`workloads`] — reproducible input and placement generators, including
//!   the adversarial instances used in the paper's lower-bound proofs.
//! - [`runtime`] — a threaded, message-passing BSP executor: one OS thread
//!   per compute node running a per-node program, cross-validated to move
//!   bit-identical traffic to the centralized simulator protocols.
//! - [`query`] — a distributed relational layer (filter / project / join /
//!   order-by / group-by) whose operators map onto the paper's primitives,
//!   with per-operator cost attribution.
//!
//! ## Quickstart
//!
//! ```
//! use tamp::topology::builders;
//! use tamp::simulator::{Placement, run_protocol};
//! use tamp::core::intersection::{TreeIntersect, intersection_lower_bound};
//! use tamp::workloads::{SetSpec, PlacementStrategy};
//!
//! // A 6-machine star where one machine has a slow uplink.
//! let star = builders::heterogeneous_star(&[10.0, 10.0, 10.0, 10.0, 10.0, 1.0]);
//!
//! // Two sets with a planted intersection, placed skewed to one rack.
//! let spec = SetSpec::new(4_000, 16_000).with_intersection(512);
//! let workload = spec.generate(7);
//! let placement = PlacementStrategy::Uniform.place(&star, &workload, 7);
//!
//! // Run the paper's one-round algorithm and compare to the lower bound.
//! let outcome = run_protocol(&star, &placement, &TreeIntersect::new(42)).unwrap();
//! let lb = intersection_lower_bound(&star, &placement.stats());
//! // One round, and cost within the Theorem 2 envelope of the Theorem 1
//! // bound (the bound is Ω(·) with proof constant ½).
//! assert_eq!(outcome.rounds, 1);
//! let ratio = outcome.cost.tuple_cost() / lb.value();
//! assert!(ratio > 0.4 && ratio < 64.0, "ratio {ratio}");
//! ```

pub use tamp_core as core;
pub use tamp_query as query;
pub use tamp_runtime as runtime;
pub use tamp_simulator as simulator;
pub use tamp_topology as topology;
pub use tamp_workloads as workloads;
