//! Cross-crate integration: every algorithm, on every topology of the zoo,
//! under every placement strategy, must be correct, respect its round
//! budget, and stay within a generous constant of its lower bound.

use tamp::core::cartesian::{
    cartesian_lower_bound, AllToOne, TreeCartesianProduct, UniformHyperCube,
};
use tamp::core::intersection::{intersection_lower_bound, TreeIntersect, UniformHashJoin};
use tamp::core::ratio::ratio;
use tamp::core::sorting::{sorting_lower_bound, TeraSort, WeightedTeraSort};
use tamp::simulator::{run_protocol, verify};
use tamp::topology::{builders, Tree};
use tamp::workloads::{PlacementStrategy, SetSpec, SortSpec};

fn zoo() -> Vec<(String, Tree)> {
    vec![
        ("star-6".into(), builders::star(6, 1.0)),
        (
            "het-star".into(),
            builders::heterogeneous_star(&[0.5, 1.0, 2.0, 4.0, 8.0]),
        ),
        (
            "racks".into(),
            builders::rack_tree(&[(3, 2.0, 1.0), (3, 4.0, 2.0)], 1.0),
        ),
        ("fat".into(), builders::fat_tree(2, 2, 1.0)),
        ("cat".into(), builders::caterpillar(3, 2, 1.0)),
        ("rand-a".into(), builders::random_tree(7, 4, 0.5, 8.0, 1)),
        ("rand-b".into(), builders::random_tree(9, 6, 0.25, 4.0, 2)),
    ]
}

fn strategies() -> Vec<(String, PlacementStrategy)> {
    vec![
        ("uniform".into(), PlacementStrategy::Uniform),
        ("zipf".into(), PlacementStrategy::Zipf { alpha: 1.3 }),
        ("single".into(), PlacementStrategy::SingleNode { k: 0 }),
        ("separated".into(), PlacementStrategy::Separated),
        ("inv-bw".into(), PlacementStrategy::InverseBandwidth),
    ]
}

#[test]
fn intersection_everywhere() {
    for (tname, tree) in zoo() {
        for (sname, strat) in strategies() {
            let w = SetSpec::new(300, 900).with_intersection(80).generate(5);
            let p = strat.place(&tree, &w, 5);
            let run = run_protocol(&tree, &p, &TreeIntersect::new(5))
                .unwrap_or_else(|e| panic!("{tname}/{sname}: {e}"));
            assert_eq!(run.rounds, 1, "{tname}/{sname}");
            verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s())
                .unwrap_or_else(|e| panic!("{tname}/{sname}: {e}"));
            assert_eq!(run.output.len(), 80, "{tname}/{sname}");
            // Sanity: within a very generous polylog factor of the bound.
            let lb = intersection_lower_bound(&tree, &p.stats());
            let r = ratio(run.cost.tuple_cost(), lb.value());
            assert!(r.is_finite() || lb.value() == 0.0, "{tname}/{sname}: {r}");
            if lb.value() > 0.0 {
                assert!(r < 200.0, "{tname}/{sname}: ratio {r}");
            }
        }
    }
}

#[test]
fn cartesian_everywhere() {
    for (tname, tree) in zoo() {
        for (sname, strat) in strategies() {
            let w = SetSpec::new(240, 240).generate(6);
            let p = strat.place(&tree, &w, 6);
            let run = run_protocol(&tree, &p, &TreeCartesianProduct::new())
                .unwrap_or_else(|e| panic!("{tname}/{sname}: {e}"));
            assert_eq!(run.rounds, 1, "{tname}/{sname}");
            verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s())
                .unwrap_or_else(|e| panic!("{tname}/{sname}: {e}"));
            let lb = cartesian_lower_bound(&tree, &p.stats());
            if lb.value() > 0.0 {
                let r = ratio(run.cost.tuple_cost(), lb.value());
                assert!(r < 64.0, "{tname}/{sname}: ratio {r}");
            }
        }
    }
}

#[test]
fn sorting_everywhere() {
    for (tname, tree) in zoo() {
        for (sname, strat) in strategies() {
            let w = SortSpec::new(2_000).with_duplicates(0.2).generate(7);
            let p = strat.place(&tree, &w, 7);
            let run = run_protocol(&tree, &p, &WeightedTeraSort::new(7))
                .unwrap_or_else(|e| panic!("{tname}/{sname}: {e}"));
            assert_eq!(run.rounds, 4, "{tname}/{sname}");
            verify::check_sorted_partition(&run.output, &run.final_state, &p.all_r())
                .unwrap_or_else(|e| panic!("{tname}/{sname}: {e}"));
        }
    }
}

#[test]
fn baselines_everywhere() {
    for (tname, tree) in zoo() {
        let w = SetSpec::new(200, 600).with_intersection(50).generate(8);
        let p = PlacementStrategy::Uniform.place(&tree, &w, 8);
        let join = run_protocol(&tree, &p, &UniformHashJoin::new(8)).unwrap();
        verify::check_intersection(&join.final_state, &p.all_r(), &p.all_s())
            .unwrap_or_else(|e| panic!("{tname}: {e}"));

        let w = SetSpec::new(150, 150).generate(9);
        let p = PlacementStrategy::Uniform.place(&tree, &w, 9);
        let hc = run_protocol(&tree, &p, &UniformHyperCube::new()).unwrap();
        verify::check_pair_coverage(&hc.final_state, &p.all_r(), &p.all_s())
            .unwrap_or_else(|e| panic!("{tname}: {e}"));
        let target = tree.compute_nodes()[0];
        let all = run_protocol(&tree, &p, &AllToOne::new(target)).unwrap();
        verify::check_pair_coverage(&all.final_state, &p.all_r(), &p.all_s())
            .unwrap_or_else(|e| panic!("{tname}: {e}"));

        let w = SortSpec::new(1_500).generate(10);
        let p = PlacementStrategy::Zipf { alpha: 1.0 }.place(&tree, &w, 10);
        let ts = run_protocol(&tree, &p, &TeraSort::new(10)).unwrap();
        verify::check_sorted_partition(&ts.output, &ts.final_state, &p.all_r())
            .unwrap_or_else(|e| panic!("{tname}: {e}"));
        let lb = sorting_lower_bound(&tree, &p.stats());
        assert!(lb.value() >= 0.0);
    }
}

#[test]
fn weighted_beats_baseline_on_hostile_topology() {
    // The paper's headline claim, end to end: with a slow link and data
    // placed away from it, the distribution-aware algorithms win big.
    let tree = builders::heterogeneous_star(&[8.0, 8.0, 8.0, 8.0, 8.0, 8.0, 8.0, 0.1]);
    let w = SetSpec::new(500, 4_000).with_intersection(100).generate(3);
    // Everything on the 7 healthy nodes.
    let mut p = tamp::simulator::Placement::empty(&tree);
    let vc = tree.compute_nodes();
    for (i, &x) in w.r.iter().enumerate() {
        p.push(vc[i % 7], tamp::simulator::Rel::R, x);
    }
    for (i, &x) in w.s.iter().enumerate() {
        p.push(vc[i % 7], tamp::simulator::Rel::S, x);
    }
    let smart = run_protocol(&tree, &p, &TreeIntersect::new(3)).unwrap();
    let naive = run_protocol(&tree, &p, &UniformHashJoin::new(3)).unwrap();
    assert!(
        naive.cost.tuple_cost() > 10.0 * smart.cost.tuple_cost(),
        "naive {} vs smart {}",
        naive.cost.tuple_cost(),
        smart.cost.tuple_cost()
    );
}

#[test]
fn costs_scale_linearly_with_input() {
    // Doubling the input should roughly double every algorithm's cost
    // (all three protocols are linear in N for fixed topology/placement).
    let tree = builders::rack_tree(&[(3, 2.0, 1.0), (3, 2.0, 1.0)], 1.0);
    let cost_at = |n: usize| {
        let w = SetSpec::new(n / 4, 3 * n / 4).generate(4);
        let p = PlacementStrategy::Uniform.place(&tree, &w, 4);
        run_protocol(&tree, &p, &TreeIntersect::new(4))
            .unwrap()
            .cost
            .tuple_cost()
    };
    let (c1, c2) = (cost_at(2_000), cost_at(8_000));
    let growth = c2 / c1;
    assert!(
        (2.0..8.0).contains(&growth),
        "4× input should grow cost ≈ 4×, got {growth}"
    );
}
