//! Integration tests for the orchestration layer: weighted-fair
//! admission under adversarial bursts, fault injection with bit-identical
//! replay recovery, a deterministically replayable scaling event log, and
//! the plan cache's width-invariance across elastic resizes.

use std::sync::Arc;

use tamp::query::orchestrator::{decide, Orchestrator, ScaleDecision, ScalingSpec};
use tamp::query::prelude::*;
use tamp::query::service::QueryService;
use tamp::query::QueryError;
use tamp::runtime::{ElasticPool, FaultPlan, PooledClusterBackend};
use tamp::topology::builders;

/// Serve while a chaos thread arms plans concurrently. Armed plans queue
/// FIFO in the injector, so a burst of arms can exhaust one query's
/// retry budget; the exhausting serve drains the queue, so retrying is
/// bounded and lands on a healthy crew.
fn serve_tolerating_exhaustion(
    orch: &Orchestrator,
    tenant: &str,
    plan: &LogicalPlan,
) -> tamp::query::ServedQuery {
    loop {
        match orch.serve_as(tenant, plan) {
            Ok(served) => return served,
            Err(QueryError::RecoveryExhausted { .. }) => continue,
            Err(e) => panic!("serve_as failed non-recoverably: {e}"),
        }
    }
}

fn orch_context() -> QueryContext {
    let tree = builders::star(6, 1.0);
    let mut ctx = QueryContext::new(tree.clone()).with_seed(41);
    let facts: Vec<Vec<u64>> = (0..180).map(|i| vec![i, i % 7, (i * 53) % 400]).collect();
    ctx.register(DistributedTable::round_robin(
        "facts",
        Schema::new(vec!["id", "g", "x"]).unwrap(),
        facts,
        &tree,
    ))
    .unwrap();
    ctx
}

fn workload() -> Vec<LogicalPlan> {
    vec![
        LogicalPlan::scan("facts").aggregate("g", AggFunc::Sum, "x"),
        LogicalPlan::scan("facts")
            .filter(col("x").lt(lit(200)))
            .aggregate("g", AggFunc::Count, "id"),
        LogicalPlan::scan("facts").order_by("x").limit(20),
    ]
}

#[test]
fn adversarial_burst_cannot_starve_polite_tenants() {
    const BURST_THREADS: usize = 6;
    const BURST_QUERIES: usize = 20;
    const POLITE_TENANTS: usize = 4;
    const POLITE_QUERIES: usize = 8;

    let mut builder = Orchestrator::builder(orch_context())
        .tenant(TenantSpec::new("burst", 1, 512))
        .capacity(2)
        .scaling(
            ScalingSpec::new(1, 4)
                .with_target_queue_depth(4)
                .with_cooldown(2),
        );
    for p in 0..POLITE_TENANTS {
        builder = builder.tenant(TenantSpec::new(format!("polite-{p}"), 4, 64));
    }
    let orch = Arc::new(builder.build().unwrap());

    let queries = workload();
    let serial: Vec<QueryResult> = queries
        .iter()
        .map(|q| orch_context().prepare(q).unwrap().run().unwrap())
        .collect();

    std::thread::scope(|scope| {
        // The adversary: six threads flooding the weight-1 tenant.
        for t in 0..BURST_THREADS {
            let (orch, queries, serial) = (&orch, &queries, &serial);
            scope.spawn(move || {
                for i in 0..BURST_QUERIES {
                    let k = (t + i) % queries.len();
                    let served = orch.serve_as("burst", &queries[k]).unwrap();
                    assert_eq!(served.result.rows(false), serial[k].rows(false));
                    assert_eq!(served.result.cost.edge_totals, serial[k].cost.edge_totals);
                }
            });
        }
        // The victims: four weight-4 tenants submitting politely.
        for p in 0..POLITE_TENANTS {
            let (orch, queries, serial) = (&orch, &queries, &serial);
            scope.spawn(move || {
                let tenant = format!("polite-{p}");
                for i in 0..POLITE_QUERIES {
                    let k = (p + i) % queries.len();
                    let served = orch.serve_as(&tenant, &queries[k]).unwrap();
                    assert_eq!(served.result.rows(false), serial[k].rows(false));
                    assert_eq!(served.result.cost.edge_totals, serial[k].cost.edge_totals);
                }
            });
        }
    });

    let stats = orch.stats();
    let total_weight: u64 = stats.iter().map(|t| u64::from(t.weight)).sum();
    for t in &stats {
        let want = if t.tenant == "burst" {
            (BURST_THREADS * BURST_QUERIES) as u64
        } else {
            POLITE_QUERIES as u64
        };
        assert_eq!(t.served, want, "tenant {} starved", t.tenant);
        assert_eq!(t.rejected, 0);
        if t.tenant != "burst" {
            // The structural no-starvation bound: a polite tenant with at
            // most one queued query waits through at most one DRR
            // rotation (~total weight) plus scheduling slack, no matter
            // how deep the burst queue is.
            assert!(
                t.max_waited_grants <= 2 * total_weight,
                "tenant {} waited {} grants (total weight {total_weight})",
                t.tenant,
                t.max_waited_grants
            );
        }
        assert!(t.queue_p50 <= t.queue_p99);
    }

    // The scaling log is deterministic: every recorded decision replays
    // from its recorded observation.
    let spec = orch.scaling_spec().unwrap();
    for e in orch.scaling_events() {
        assert_eq!(decide(spec, &e.observation), (e.decision, e.reason));
        match e.decision {
            ScaleDecision::Grow(w) | ScaleDecision::Shrink(w) => {
                assert!((spec.min..=spec.max).contains(&w));
            }
            ScaleDecision::Hold => panic!("hold decisions are not resize events"),
        }
    }
    assert!((spec.min..=spec.max).contains(&orch.pool_width()));
}

#[test]
fn injected_faults_mid_stream_recover_bit_identically() {
    let orch = Arc::new(
        Orchestrator::builder(orch_context())
            .tenant(TenantSpec::new("a", 2, 64))
            .tenant(TenantSpec::new("b", 1, 64))
            .capacity(2)
            .build()
            .unwrap(),
    );
    let queries = workload();
    let serial: Vec<QueryResult> = queries
        .iter()
        .map(|q| orch_context().prepare(q).unwrap().run().unwrap())
        .collect();
    let computes = orch.service().context().tree().compute_nodes().to_vec();

    std::thread::scope(|scope| {
        for (ti, tenant) in ["a", "b"].into_iter().enumerate() {
            let (orch, queries, serial) = (&orch, &queries, &serial);
            scope.spawn(move || {
                for i in 0..24 {
                    let k = (ti + i) % queries.len();
                    let served = serve_tolerating_exhaustion(orch, tenant, &queries[k]);
                    assert_eq!(
                        served.result.rows(false),
                        serial[k].rows(false),
                        "tenant {tenant} query {k}: rows diverged after fault"
                    );
                    assert_eq!(
                        served.result.cost.edge_totals, serial[k].cost.edge_totals,
                        "tenant {tenant} query {k}: ledgers diverged after fault"
                    );
                }
            });
        }
        // The chaos monkey: keep arming kill-worker plans while queries
        // stream. Plans queue FIFO in the injector — one consumed per
        // execution attempt — so a burst of arms can fell several
        // consecutive attempts of one run; the serving threads tolerate
        // retry exhaustion above.
        let (orch, computes) = (&orch, &computes);
        scope.spawn(move || {
            for round in 0..12 {
                let victim = computes[round % computes.len()];
                orch.inject_faults(FaultPlan::new().kill_worker(victim, round % 2))
                    .unwrap();
                std::thread::yield_now();
            }
        });
    });

    // Drain any plan still armed after the streams stopped, then verify
    // one guaranteed fault → recovery cycle end to end.
    let victim = computes[1];
    orch.inject_faults(FaultPlan::new().kill_worker(victim, 0))
        .unwrap();
    let served = serve_tolerating_exhaustion(&orch, "a", &queries[0]);
    assert_eq!(served.result.rows(false), serial[0].rows(false));
    assert_eq!(served.result.cost.edge_totals, serial[0].cost.edge_totals);

    let recoveries = orch.recovery_events();
    assert!(!recoveries.is_empty(), "at least the final fault fired");
    let fired = orch.fault_events();
    assert_eq!(
        fired.len(),
        recoveries.len(),
        "every fired fault triggered exactly one replay recovery"
    );
    let recovered_total: u64 = orch.stats().iter().map(|t| t.recovered).sum();
    assert!(recovered_total >= 1);
}

#[test]
fn plan_cache_is_width_invariant_across_elastic_resizes() {
    // Exchange schedules are functions of (plan, catalog, topology) —
    // never of crew width — so resizing the elastic pool must keep every
    // cached plan valid and every result bit-identical.
    let pool = Arc::new(ElasticPool::new(2));
    let backend = PooledClusterBackend::with_elastic_pool(Arc::clone(&pool));
    let service = QueryService::new(orch_context(), Arc::new(backend));
    let q = &workload()[0];

    let first = service.serve(q).unwrap();
    assert!(!first.stats.cache_hit);
    for width in [1, 3, 8, 2] {
        pool.resize(width);
        let served = service.serve(q).unwrap();
        assert!(
            served.stats.cache_hit,
            "resize to {width} must not invalidate the plan cache"
        );
        assert_eq!(served.result.rows(false), first.result.rows(false));
        assert_eq!(
            served.result.cost.edge_totals,
            first.result.cost.edge_totals
        );
    }
    assert_eq!(service.cache_stats().invalidations, 0);
}
