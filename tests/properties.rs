//! Property-based tests over random topologies, placements and inputs:
//! the paper's structural lemmas and the protocols' correctness must hold
//! for *every* instance, not just the handpicked ones.

use proptest::prelude::*;

use tamp::core::cartesian::{plan_tree_packing, TreeCartesianProduct, TreePlan};
use tamp::core::intersection::{balanced_partition, verify_balanced_partition, TreeIntersect};
use tamp::core::sorting::{proportional_split, WeightedTeraSort};
use tamp::simulator::{run_protocol, verify, Placement, Rel};
use tamp::topology::{builders, Dagger, Tree};

/// Strategy: a random tree described by (compute, routers, bw-seed).
fn arb_tree() -> impl Strategy<Value = Tree> {
    (2usize..10, 1usize..7, 0u64..1_000)
        .prop_map(|(c, r, seed)| builders::random_tree(c, r, 0.25, 16.0, seed))
}

/// Scatter `n_r` R values and `n_s` S values with seeded skew.
fn scatter(tree: &Tree, n_r: u64, n_s: u64, seed: u64) -> Placement {
    let mut p = Placement::empty(tree);
    let vc = tree.compute_nodes();
    let pick = |x: u64, salt: u64| {
        let h = tamp::core::hashing::mix64(x ^ seed.wrapping_mul(31) ^ salt);
        vc[(h % vc.len() as u64) as usize]
    };
    for x in 0..n_r {
        p.push(pick(x, 0xAAAA), Rel::R, x);
    }
    for x in 0..n_s {
        // Overlap roughly half of S with R's domain.
        let val = x + n_r / 2;
        p.push(pick(val, 0xBBBB), Rel::S, val);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dagger_is_in_tree(tree in arb_tree(), wseed in 0u64..9999) {
        let mut w = vec![0u64; tree.num_nodes()];
        for (i, &v) in tree.compute_nodes().iter().enumerate() {
            w[v.index()] = tamp::core::hashing::mix64(wseed + i as u64) % 100;
        }
        let d = Dagger::build(&tree, &w);
        // Lemma 4: unique root, every node reaches it.
        let root = d.root();
        let mut roots = 0;
        for v in tree.nodes() {
            if d.parent(v).is_none() {
                roots += 1;
            }
            let mut x = v;
            let mut hops = 0;
            while let Some(p) = d.parent(x) {
                x = p;
                hops += 1;
                prop_assert!(hops <= tree.num_nodes());
            }
            prop_assert_eq!(x, root);
        }
        prop_assert_eq!(roots, 1);
        // Covers: the root is a minimal cover; the leaf set is a cover.
        prop_assert!(d.is_minimal_cover(&[root]));
        prop_assert!(d.is_cover(&d.leaves()));
    }

    #[test]
    fn balanced_partition_satisfies_definition_1(
        tree in arb_tree(),
        wseed in 0u64..9999,
        frac in 1u64..=8,
    ) {
        let mut w = vec![0u64; tree.num_nodes()];
        let mut total = 0u64;
        for (i, &v) in tree.compute_nodes().iter().enumerate() {
            let x = tamp::core::hashing::mix64(wseed * 7 + i as u64) % 64;
            w[v.index()] = x;
            total += x;
        }
        // The caller guarantees small ≤ N/2 (|R| ≤ |S|).
        let small = total / 2 / frac;
        let part = balanced_partition(&tree, &w, small);
        prop_assert!(verify_balanced_partition(&tree, &w, small, &part).is_ok());
    }

    #[test]
    fn tree_intersect_correct_on_random_instances(
        tree in arb_tree(),
        n_r in 1u64..200,
        n_s in 1u64..400,
        seed in 0u64..999,
    ) {
        let p = scatter(&tree, n_r, n_s, seed);
        let run = run_protocol(&tree, &p, &TreeIntersect::new(seed))?;
        prop_assert!(run.rounds <= 1);
        prop_assert!(
            verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s()).is_ok()
        );
    }

    #[test]
    fn tree_cartesian_covers_on_random_instances(
        tree in arb_tree(),
        half in 1u64..120,
        seed in 0u64..999,
    ) {
        let p = scatter(&tree, half, half, seed);
        // scatter() gives |R| = |S| = half (S shifted but equal count).
        let run = run_protocol(&tree, &p, &TreeCartesianProduct::new())?;
        prop_assert!(run.rounds <= 1);
        prop_assert!(
            verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).is_ok()
        );
    }

    #[test]
    fn tree_packing_budgets_sum_to_one(tree in arb_tree(), wseed in 0u64..999) {
        let mut w = vec![0u64; tree.num_nodes()];
        let mut total = 0u64;
        for (i, &v) in tree.compute_nodes().iter().enumerate() {
            let x = 1 + tamp::core::hashing::mix64(wseed + i as u64) % 50;
            w[v.index()] = x;
            total += x;
        }
        match plan_tree_packing(&tree, &w, total) {
            TreePlan::AllToRoot(v) => prop_assert!(tree.is_compute(v)),
            TreePlan::Packed { squares, l, .. } => {
                // Lemma 8(4) at the root: Σ_{v∈V_C} l_v² = 1.
                let sum: f64 = tree
                    .compute_nodes()
                    .iter()
                    .map(|&v| l[v.index()] * l[v.index()])
                    .sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "Σl² = {}", sum);
                // Squares are disjoint and cover the grid.
                prop_assert!(tamp::core::cartesian::packing::check_covers_grid(
                    &squares, total / 2, total / 2
                ).is_ok());
            }
        }
    }

    #[test]
    fn wts_sorts_random_instances(
        tree in arb_tree(),
        n in 1usize..600,
        seed in 0u64..999,
    ) {
        let mut p = Placement::empty(&tree);
        let vc = tree.compute_nodes();
        for x in 0..n as u64 {
            let h = tamp::core::hashing::mix64(x ^ seed);
            p.push(vc[(h % vc.len() as u64) as usize], Rel::R, h % 97);
        }
        let run = run_protocol(&tree, &p, &WeightedTeraSort::new(seed))?;
        prop_assert!(run.rounds <= 4);
        prop_assert!(
            verify::check_sorted_partition(&run.output, &run.final_state, &p.all_r()).is_ok()
        );
    }

    #[test]
    fn proportional_split_prefix_error_below_one(
        weights in proptest::collection::vec(1u64..1000, 1..20),
        n in 0u64..10_000,
    ) {
        let split = proportional_split(&weights, n);
        let total: u64 = weights.iter().sum();
        let mut acc_s = 0u64;
        let mut acc_w = 0u64;
        for (s, &w) in split.iter().zip(&weights) {
            acc_s += s;
            acc_w += w;
            let exact = acc_w as f64 / total as f64 * n as f64;
            prop_assert!(acc_s as f64 >= exact - 1e-9);
            prop_assert!(acc_s as f64 <= exact + 1.0 + 1e-9);
        }
        prop_assert!(acc_s >= n);
    }

    #[test]
    fn path_endpoints_and_symmetry(tree in arb_tree(), a in 0usize..16, b in 0usize..16) {
        let n = tree.num_nodes();
        let (a, b) = (
            tamp::topology::NodeId::from_index(a % n),
            tamp::topology::NodeId::from_index(b % n),
        );
        let path = tree.path(a, b);
        if a == b {
            prop_assert!(path.is_empty());
        } else {
            let (first, _) = tree.dir_endpoints(path[0]);
            let (_, last) = tree.dir_endpoints(path[path.len() - 1]);
            prop_assert_eq!(first, a);
            prop_assert_eq!(last, b);
            // Consecutive hops chain.
            for w in path.windows(2) {
                let (_, x) = tree.dir_endpoints(w[0]);
                let (y, _) = tree.dir_endpoints(w[1]);
                prop_assert_eq!(x, y);
            }
            // The reverse path uses the same undirected edges.
            let back = tree.path(b, a);
            prop_assert_eq!(back.len(), path.len());
            let mut fwd_edges: Vec<_> = path.iter().map(|d| d.edge()).collect();
            let mut back_edges: Vec<_> = back.iter().map(|d| d.edge()).collect();
            fwd_edges.sort();
            back_edges.sort();
            prop_assert_eq!(fwd_edges, back_edges);
        }
    }

    #[test]
    fn cut_weights_are_consistent(tree in arb_tree(), wseed in 0u64..999) {
        let mut w = vec![0u64; tree.num_nodes()];
        for (i, &v) in tree.compute_nodes().iter().enumerate() {
            w[v.index()] = tamp::core::hashing::mix64(wseed + i as u64) % 1000;
        }
        let cw = tamp::topology::CutWeights::compute(&tree, &w);
        for e in tree.edges() {
            prop_assert_eq!(cw.side_u(e) + cw.side_v(e), cw.total());
            let (u, v) = tree.endpoints(e);
            prop_assert_eq!(cw.side_containing(&tree, e, u), cw.side_u(e));
            prop_assert_eq!(cw.side_containing(&tree, e, v), cw.side_v(e));
        }
    }
}
