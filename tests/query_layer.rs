//! End-to-end validation of the relational layer: the distributed
//! executor must agree with the single-node reference evaluator on
//! randomized tables, plans, topologies and join strategies — and the
//! optimizer must never change an answer.

use proptest::prelude::*;
use tamp::query::prelude::*;
use tamp::query::reference;
use tamp::topology::builders;

fn make_catalog(tree_pick: u8, fact_rows: u64, groups: u64, skew_percent: u8) -> Catalog {
    let tree = match tree_pick % 4 {
        0 => builders::star(4, 1.0),
        1 => builders::heterogeneous_star(&[0.5, 2.0, 4.0, 4.0, 8.0]),
        2 => builders::rack_tree(&[(3, 1.0, 2.0), (2, 2.0, 1.0)], 1.0),
        _ => builders::caterpillar(3, 2, 1.5),
    };
    let heavy = tree.compute_nodes()[0];
    let mut c = Catalog::new(tree);
    let rows: Vec<Vec<u64>> = (0..fact_rows)
        .map(|i| vec![i, i % groups.max(1), (i * 31) % 255])
        .collect();
    let schema = Schema::new(vec!["id", "g", "x"]).unwrap();
    let table = DistributedTable::skewed(
        "facts",
        schema,
        rows,
        c.tree(),
        heavy,
        f64::from(skew_percent % 101) / 100.0,
    );
    c.register(table).unwrap();
    let dims: Vec<Vec<u64>> = (0..groups.max(1)).map(|g| vec![g, g % 5]).collect();
    c.register(DistributedTable::round_robin(
        "dims",
        Schema::new(vec!["g", "tier"]).unwrap(),
        dims,
        c.tree(),
    ))
    .unwrap();
    c
}

fn plans(threshold: u64, limit: usize) -> Vec<LogicalPlan> {
    vec![
        LogicalPlan::scan("facts").filter(col("x").gt(lit(threshold))),
        LogicalPlan::scan("facts")
            .project(vec![("id", col("id")), ("double_x", col("x").mul(lit(2)))]),
        LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g"),
        LogicalPlan::scan("facts")
            .filter(col("x").gt(lit(threshold)))
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .aggregate("tier", AggFunc::Sum, "x"),
        LogicalPlan::scan("facts").order_by("x"),
        LogicalPlan::scan("facts").order_by("x").limit(limit),
        LogicalPlan::scan("facts").aggregate("g", AggFunc::Max, "x"),
        LogicalPlan::scan("dims").cross(LogicalPlan::scan("dims")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn distributed_matches_reference(
        tree_pick in 0u8..4,
        fact_rows in 1u64..120,
        groups in 1u64..10,
        skew in 0u8..101,
        threshold in 0u64..255,
        limit in 1usize..20,
        seed in 0u64..100,
        strat_pick in 0u8..4,
    ) {
        let c = make_catalog(tree_pick, fact_rows, groups, skew);
        let join = match strat_pick % 4 {
            0 => JoinStrategy::Auto,
            1 => JoinStrategy::Weighted,
            2 => JoinStrategy::Uniform,
            _ => JoinStrategy::BroadcastSmall,
        };
        let opts = ExecOptions {
            join,
            seed,
            ..ExecOptions::default()
        };
        for q in plans(threshold, limit) {
            let res = execute(&c, &q, opts).unwrap();
            let want = reference::evaluate(&q, &c).unwrap();
            let got = res.rows(reference::preserves_order(&q));
            prop_assert_eq!(got, want, "plan:\n{}", q);
        }
    }

    #[test]
    fn optimizer_preserves_semantics(
        tree_pick in 0u8..4,
        fact_rows in 1u64..100,
        groups in 1u64..8,
        threshold in 0u64..255,
        tier in 0u64..5,
    ) {
        let c = make_catalog(tree_pick, fact_rows, groups, 50);
        let q = LogicalPlan::scan("facts")
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .filter(col("x").gt(lit(threshold)).and(col("tier").eq(lit(tier))))
            .aggregate("tier", AggFunc::Count, "id");
        let opt = optimize(q.clone(), &c).unwrap();
        let a = execute(&c, &q, ExecOptions::default()).unwrap();
        let b = execute(&c, &opt, ExecOptions::default()).unwrap();
        prop_assert_eq!(a.rows(false), b.rows(false), "optimized:\n{}", opt);
    }
}

#[test]
fn query_costs_respect_primitive_bounds() {
    // A pure cross join's cost relates to the cartesian-product task; a
    // pure order-by to sorting. Sanity: each operator's metered cost is
    // positive once data actually moves, and attribution sums to total.
    let c = make_catalog(2, 200, 6, 70);
    let q = LogicalPlan::scan("facts")
        .join_on(LogicalPlan::scan("dims"), "g", "g")
        .order_by("x");
    let res = execute(&c, &q, ExecOptions::default()).unwrap();
    let total: f64 = res.operator_costs.iter().map(|c| c.actual).sum();
    assert!((total - res.cost.tuple_cost()).abs() < 1e-9);
    let order_by = res
        .operator_costs
        .iter()
        .find(|c| c.op.starts_with("OrderBy"))
        .unwrap();
    assert!(order_by.actual > 0.0);
    // The planner priced the sort's exchange too.
    assert!(order_by.estimated > 0.0);
}
