//! Planner correctness across execution paths.
//!
//! A prepared query's exchange schedule is derived once from the plan, so
//! the legacy `execute` shim, `QueryContext` on the simulator backend and
//! `QueryContext` on the pooled cluster backend must produce **identical
//! results and bit-identical metered costs** — same `edge_totals`, same
//! rounds, same rows — for random tables, topologies, plans and join
//! strategies.

use proptest::prelude::*;
use tamp::query::prelude::*;
use tamp::query::reference;
use tamp::runtime::{backend_from_spec, PooledClusterBackend};
use tamp::topology::builders;

fn make_context(tree_pick: u8, fact_rows: u64, groups: u64, skew_percent: u8) -> QueryContext {
    let tree = match tree_pick % 4 {
        0 => builders::star(4, 1.0),
        1 => builders::heterogeneous_star(&[0.5, 2.0, 4.0, 4.0, 8.0]),
        2 => builders::rack_tree(&[(3, 1.0, 2.0), (2, 2.0, 1.0)], 1.0),
        _ => builders::caterpillar(3, 2, 1.5),
    };
    let heavy = tree.compute_nodes()[0];
    let facts = DistributedTable::skewed(
        "facts",
        Schema::new(vec!["id", "g", "x"]).unwrap(),
        (0..fact_rows)
            .map(|i| vec![i, i % groups.max(1), (i * 31) % 255])
            .collect(),
        &tree,
        heavy,
        f64::from(skew_percent % 101) / 100.0,
    );
    let dims = DistributedTable::round_robin(
        "dims",
        Schema::new(vec!["g", "tier"]).unwrap(),
        (0..groups.max(1)).map(|g| vec![g, g % 5]).collect(),
        &tree,
    );
    let mut ctx = QueryContext::new(tree);
    ctx.register(facts).unwrap().register(dims).unwrap();
    ctx
}

fn plans(threshold: u64, limit: usize) -> Vec<LogicalPlan> {
    vec![
        LogicalPlan::scan("facts").filter(col("x").gt(lit(threshold))),
        LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g"),
        LogicalPlan::scan("facts")
            .filter(col("x").gt(lit(threshold)))
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .aggregate("tier", AggFunc::Sum, "x"),
        LogicalPlan::scan("facts").order_by("x").limit(limit),
        LogicalPlan::scan("facts")
            .project(vec![("g", col("g")), ("x", col("x"))])
            .distinct(),
        LogicalPlan::scan("dims").cross(LogicalPlan::scan("dims")),
        LogicalPlan::scan("facts")
            .aggregate("g", AggFunc::Max, "x")
            .order_by("g"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random plans produce identical rows and bit-identical ledgers on
    /// every execution path.
    #[test]
    fn execution_paths_agree_bit_identically(
        tree_pick in 0u8..4,
        fact_rows in 1u64..120,
        groups in 1u64..10,
        skew in 0u8..101,
        threshold in 0u64..255,
        limit in 1usize..20,
        seed in 0u64..100,
        strat_pick in 0u8..4,
    ) {
        let join = match strat_pick % 4 {
            0 => JoinStrategy::Auto,
            1 => JoinStrategy::Weighted,
            2 => JoinStrategy::Uniform,
            _ => JoinStrategy::BroadcastSmall,
        };
        let ctx = make_context(tree_pick, fact_rows, groups, skew)
            .with_seed(seed)
            .with_join_strategy(join);
        for q in plans(threshold, limit) {
            let ord = reference::preserves_order(&q);
            let want = reference::evaluate(&q, ctx.catalog()).unwrap();

            // Path 1: the legacy free-function shim.
            let legacy = execute(ctx.catalog(), &q, ctx.options()).unwrap();
            // Path 2: prepared query on the simulator backend.
            let prepared = ctx.prepare(&q).unwrap();
            let sim = prepared.run().unwrap();
            // Path 3: the same prepared query on the pooled cluster.
            let cluster = prepared.run_on(&PooledClusterBackend::default()).unwrap();

            prop_assert_eq!(&legacy.rows(ord), &want, "legacy vs reference, plan:\n{}", q);
            prop_assert_eq!(&sim.rows(ord), &want, "sim vs reference, plan:\n{}", q);
            prop_assert_eq!(&cluster.rows(ord), &want, "cluster vs reference, plan:\n{}", q);

            prop_assert_eq!(&legacy.cost.edge_totals, &sim.cost.edge_totals, "plan:\n{}", q);
            prop_assert_eq!(&sim.cost.edge_totals, &cluster.cost.edge_totals, "plan:\n{}", q);
            prop_assert_eq!(legacy.rounds, sim.rounds, "plan:\n{}", q);
            prop_assert_eq!(sim.rounds, cluster.rounds, "plan:\n{}", q);
            let eps = 1e-9;
            prop_assert!((legacy.cost.tuple_cost() - cluster.cost.tuple_cost()).abs() < eps);
        }
    }
}

/// The spec-based backend selection hook resolves engines that execute
/// prepared queries interchangeably.
#[test]
fn spec_selected_backends_agree() {
    let ctx = make_context(2, 90, 6, 60).with_seed(3);
    let q = LogicalPlan::scan("facts")
        .join_on(LogicalPlan::scan("dims"), "g", "g")
        .aggregate("tier", AggFunc::Count, "id");
    let prepared = ctx.prepare(&q).unwrap();
    let mut ledgers = Vec::new();
    for spec in ["simulator", "pooled-cluster", "cluster:2"] {
        let backend = backend_from_spec(spec).unwrap();
        let res = prepared.run_on(backend.as_ref()).unwrap();
        ledgers.push((spec, res.cost.edge_totals.clone(), res.rows(false)));
    }
    for pair in ledgers.windows(2) {
        assert_eq!(pair[0].1, pair[1].1, "{} vs {}", pair[0].0, pair[1].0);
        assert_eq!(pair[0].2, pair[1].2, "{} vs {}", pair[0].0, pair[1].0);
    }
}
