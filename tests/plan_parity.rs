//! Planner correctness across execution paths.
//!
//! A prepared query's exchange schedule is derived once from the plan, so
//! the legacy `execute` shim, `QueryContext` on the simulator backend and
//! `QueryContext` on the pooled cluster backend must produce **identical
//! results and bit-identical metered costs** — same `edge_totals`, same
//! rounds, same rows — for random tables, topologies, plans and join
//! strategies.

use proptest::prelude::*;
use tamp::query::prelude::*;
use tamp::query::reference;
use tamp::runtime::{backend_from_spec, PooledClusterBackend};
use tamp::topology::{builders, Tree};
use tamp::workloads::{GraphSpec, PlacementStrategy, VertexPartition};

fn make_context(tree_pick: u8, fact_rows: u64, groups: u64, skew_percent: u8) -> QueryContext {
    let tree = match tree_pick % 4 {
        0 => builders::star(4, 1.0),
        1 => builders::heterogeneous_star(&[0.5, 2.0, 4.0, 4.0, 8.0]),
        2 => builders::rack_tree(&[(3, 1.0, 2.0), (2, 2.0, 1.0)], 1.0),
        _ => builders::caterpillar(3, 2, 1.5),
    };
    let heavy = tree.compute_nodes()[0];
    let facts = DistributedTable::skewed(
        "facts",
        Schema::new(vec!["id", "g", "x"]).unwrap(),
        (0..fact_rows)
            .map(|i| vec![i, i % groups.max(1), (i * 31) % 255])
            .collect(),
        &tree,
        heavy,
        f64::from(skew_percent % 101) / 100.0,
    );
    let dims = DistributedTable::round_robin(
        "dims",
        Schema::new(vec!["g", "tier"]).unwrap(),
        (0..groups.max(1)).map(|g| vec![g, g % 5]).collect(),
        &tree,
    );
    let mut ctx = QueryContext::new(tree);
    ctx.register(facts).unwrap().register(dims).unwrap();
    ctx
}

fn plans(threshold: u64, limit: usize) -> Vec<LogicalPlan> {
    vec![
        LogicalPlan::scan("facts").filter(col("x").gt(lit(threshold))),
        LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g"),
        LogicalPlan::scan("facts")
            .filter(col("x").gt(lit(threshold)))
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .aggregate("tier", AggFunc::Sum, "x"),
        LogicalPlan::scan("facts").order_by("x").limit(limit),
        LogicalPlan::scan("facts")
            .project(vec![("g", col("g")), ("x", col("x"))])
            .distinct(),
        LogicalPlan::scan("dims").cross(LogicalPlan::scan("dims")),
        LogicalPlan::scan("facts")
            .aggregate("g", AggFunc::Max, "x")
            .order_by("g"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random plans produce identical rows and bit-identical ledgers on
    /// every execution path.
    #[test]
    fn execution_paths_agree_bit_identically(
        tree_pick in 0u8..4,
        fact_rows in 1u64..120,
        groups in 1u64..10,
        skew in 0u8..101,
        threshold in 0u64..255,
        limit in 1usize..20,
        seed in 0u64..100,
        strat_pick in 0u8..4,
    ) {
        let join = match strat_pick % 4 {
            0 => JoinStrategy::Auto,
            1 => JoinStrategy::Weighted,
            2 => JoinStrategy::Uniform,
            _ => JoinStrategy::BroadcastSmall,
        };
        let ctx = make_context(tree_pick, fact_rows, groups, skew)
            .with_seed(seed)
            .with_join_strategy(join);
        for q in plans(threshold, limit) {
            let ord = reference::preserves_order(&q);
            let want = reference::evaluate(&q, ctx.catalog()).unwrap();

            // Path 1: the legacy free-function shim.
            let legacy = execute(ctx.catalog(), &q, ctx.options()).unwrap();
            // Path 2: prepared query on the simulator backend.
            let prepared = ctx.prepare(&q).unwrap();
            let sim = prepared.run().unwrap();
            // Path 3: the same prepared query on the pooled cluster.
            let cluster = prepared.run_on(&PooledClusterBackend::default()).unwrap();

            prop_assert_eq!(&legacy.rows(ord), &want, "legacy vs reference, plan:\n{}", q);
            prop_assert_eq!(&sim.rows(ord), &want, "sim vs reference, plan:\n{}", q);
            prop_assert_eq!(&cluster.rows(ord), &want, "cluster vs reference, plan:\n{}", q);

            prop_assert_eq!(&legacy.cost.edge_totals, &sim.cost.edge_totals, "plan:\n{}", q);
            prop_assert_eq!(&sim.cost.edge_totals, &cluster.cost.edge_totals, "plan:\n{}", q);
            prop_assert_eq!(legacy.rounds, sim.rounds, "plan:\n{}", q);
            prop_assert_eq!(sim.rounds, cluster.rounds, "plan:\n{}", q);
            let eps = 1e-9;
            prop_assert!((legacy.cost.tuple_cost() - cluster.cost.tuple_cost()).abs() < eps);
        }
    }
}

/// Every registered strategy name per pluggable operator, with the query
/// exercising it.
fn strategy_matrix() -> Vec<(OperatorKind, &'static str, LogicalPlan)> {
    let join = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
    let cross = LogicalPlan::scan("dims").cross(LogicalPlan::scan("dims"));
    let sort = LogicalPlan::scan("facts").order_by("x");
    let agg = LogicalPlan::scan("facts").aggregate("g", AggFunc::Sum, "x");
    let mut out = Vec::new();
    for name in [
        "weighted-repartition",
        "tree-partition",
        "broadcast-small",
        "uniform-repartition",
    ] {
        out.push((OperatorKind::Join, name, join.clone()));
    }
    for name in ["whc-grid", "broadcast-small", "uniform-hypercube"] {
        out.push((OperatorKind::CrossJoin, name, cross.clone()));
    }
    for name in ["weighted-range-shuffle", "uniform-range-shuffle"] {
        out.push((OperatorKind::Sort, name, sort.clone()));
    }
    for name in [
        "weighted-repartition",
        "combining-tree",
        "uniform-repartition",
    ] {
        out.push((OperatorKind::Aggregate, name, agg.clone()));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every registered strategy — the paper algorithms included —
    /// produces correct rows and a bit-identical metered ledger on the
    /// simulator and the pooled cluster, over random trees and catalogs.
    #[test]
    fn strategy_executed_plans_are_backend_identical(
        tree_pick in 0u8..4,
        fact_rows in 1u64..100,
        groups in 1u64..10,
        skew in 0u8..101,
        seed in 0u64..50,
    ) {
        let base = make_context(tree_pick, fact_rows, groups, skew);
        for (op, name, q) in strategy_matrix() {
            let ctx = QueryContext::with_catalog(base.catalog().clone())
                .with_seed(seed)
                .with_strategy(op, name);
            let prepared = ctx.prepare(&q).unwrap();
            // The forced strategy is the one in the plan.
            let forced_in_plan = plan_uses(prepared.physical_plan(), name);
            prop_assert!(forced_in_plan, "{op} {name} not in plan:\n{}", prepared.physical_plan());

            let want = reference::evaluate(&q, ctx.catalog()).unwrap();
            let ord = reference::preserves_order(&q);
            let sim = prepared.run().unwrap();
            let cluster = prepared.run_on(&PooledClusterBackend::default()).unwrap();
            prop_assert_eq!(&sim.rows(ord), &want, "{} {} vs reference", op, name);
            prop_assert_eq!(&cluster.rows(ord), &want, "{} {} cluster vs reference", op, name);
            prop_assert_eq!(
                &sim.cost.edge_totals, &cluster.cost.edge_totals,
                "{} {} ledgers differ", op, name
            );
            prop_assert_eq!(sim.rounds, cluster.rounds);
        }
    }

    /// On decisive scenarios — a tiny build side, fully co-located
    /// inputs, skew parked behind fat links — the registry's cost-based
    /// winner meters no worse than any forced candidate.
    #[test]
    fn registry_winner_is_metered_optimal_on_decisive_scenarios(
        fact_rows in 200u64..500,
        dim_rows in 1u64..8,
        seed in 0u64..50,
    ) {
        // Family 1: tiny dimension table on a uniform star (join).
        let tree = builders::star(5, 1.0);
        let mut ctx = QueryContext::new(tree).with_seed(seed);
        ctx.register(DistributedTable::round_robin(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            (0..fact_rows).map(|i| vec![i, i % dim_rows, i * 3]).collect(),
            ctx.tree(),
        )).unwrap();
        ctx.register(DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "tier"]).unwrap(),
            (0..dim_rows).map(|g| vec![g, g % 3]).collect(),
            ctx.tree(),
        )).unwrap();
        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        assert_winner_optimal(&ctx, &q, OperatorKind::Join, &[
            "weighted-repartition", "tree-partition", "broadcast-small", "uniform-repartition",
        ])?;

        // Family 2: both sides co-located behind a thin link (join).
        let tree = builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0]);
        let heavy = tree.compute_nodes()[0];
        let mut ctx = QueryContext::new(tree).with_seed(seed);
        ctx.register(DistributedTable::single_node(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            (0..fact_rows).map(|i| vec![i, i % 5, i]).collect(),
            ctx.tree(),
            heavy,
        )).unwrap();
        ctx.register(DistributedTable::single_node(
            "dims",
            Schema::new(vec!["g", "tier"]).unwrap(),
            (0..40).map(|g| vec![g % 5, g]).collect(),
            ctx.tree(),
            heavy,
        )).unwrap();
        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        assert_winner_optimal(&ctx, &q, OperatorKind::Join, &[
            "weighted-repartition", "tree-partition", "broadcast-small", "uniform-repartition",
        ])?;

        // Family 3: one tiny cross-join side (broadcast is unbeatable).
        let q = LogicalPlan::scan("dims").cross(LogicalPlan::scan("dims"));
        assert_winner_optimal(&ctx, &q, OperatorKind::CrossJoin, &[
            "whc-grid", "broadcast-small", "uniform-hypercube",
        ])?;

        // Family 4: sort with data parked behind fat links — uniform
        // splitters must push ~N/k over the thin link.
        let tree = builders::heterogeneous_star(&[8.0, 8.0, 8.0, 8.0, 8.0, 8.0, 8.0, 0.25]);
        let heavy = tree.compute_nodes()[0];
        let mut ctx = QueryContext::new(tree).with_seed(seed);
        ctx.register(DistributedTable::skewed(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            (0..fact_rows).map(|i| vec![i, i % 9, (i * 37) % 4096]).collect(),
            ctx.tree(),
            heavy,
            0.6,
        )).unwrap();
        let q = LogicalPlan::scan("facts").order_by("x");
        assert_winner_optimal(&ctx, &q, OperatorKind::Sort, &[
            "weighted-range-shuffle", "uniform-range-shuffle",
        ])?;
    }
}

/// Whether any exchange in the plan uses strategy `name`.
fn plan_uses(plan: &PhysicalPlan, name: &str) -> bool {
    if plan.exchange().is_some_and(|x| x.name() == name) {
        return true;
    }
    plan.children().iter().any(|c| plan_uses(c, name))
}

/// The auto-picked strategy's metered cost is ≤ every forced candidate's
/// metered cost (same seed ⇒ same traffic per strategy).
fn assert_winner_optimal(
    ctx: &QueryContext,
    q: &LogicalPlan,
    op: OperatorKind,
    names: &[&'static str],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let auto = ctx.prepare(q).unwrap().run().unwrap().cost.tuple_cost();
    for &name in names {
        let forced = QueryContext::with_catalog(ctx.catalog().clone())
            .with_seed(ctx.options().seed)
            .with_strategy(op, name)
            .prepare(q)
            .unwrap()
            .run()
            .unwrap()
            .cost
            .tuple_cost();
        prop_assert!(
            auto <= forced + 1e-9,
            "auto {auto} beats forced {name} {forced}?"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The columnar batch engine is bit-identical to the tuple
    /// interpreter — same rows, same `edge_totals`, same round count —
    /// on both backends, for every registered strategy, at batch sizes
    /// from one row up to "whole table in one batch".
    #[test]
    fn batch_engine_is_bit_identical_to_tuple_engine(
        tree_pick in 0u8..4,
        fact_rows in 1u64..100,
        groups in 1u64..10,
        skew in 0u8..101,
        seed in 0u64..50,
    ) {
        let base = make_context(tree_pick, fact_rows, groups, skew);
        let sizes = [1, 3, ExecOptions::default().batch_size, usize::MAX];
        for (op, name, q) in strategy_matrix() {
            // The tuple interpreter at the default granularity is the
            // reference ledger for every batch size: chunking a fixed
            // multicast never changes the metered cost.
            let tuple_ctx = QueryContext::with_catalog(base.catalog().clone())
                .with_seed(seed)
                .with_strategy(op, name)
                .with_exec_mode(ExecMode::Tuple);
            let tuple = tuple_ctx.prepare(&q).unwrap().run().unwrap();
            let ord = reference::preserves_order(&q);
            for batch_size in sizes {
                let ctx = QueryContext::with_catalog(base.catalog().clone())
                    .with_seed(seed)
                    .with_strategy(op, name)
                    .with_exec_mode(ExecMode::Columnar)
                    .with_batch_size(batch_size);
                let prepared = ctx.prepare(&q).unwrap();
                let sim = prepared.run().unwrap();
                let cluster = prepared.run_on(&PooledClusterBackend::default()).unwrap();
                prop_assert_eq!(
                    &sim.rows(ord), &tuple.rows(ord),
                    "{} {} batch={} rows differ", op, name, batch_size
                );
                prop_assert_eq!(
                    &cluster.rows(ord), &tuple.rows(ord),
                    "{} {} batch={} cluster rows differ", op, name, batch_size
                );
                prop_assert_eq!(
                    &sim.cost.edge_totals, &tuple.cost.edge_totals,
                    "{} {} batch={} ledgers differ", op, name, batch_size
                );
                prop_assert_eq!(
                    &cluster.cost.edge_totals, &tuple.cost.edge_totals,
                    "{} {} batch={} cluster ledgers differ", op, name, batch_size
                );
                prop_assert_eq!(sim.rounds, tuple.rounds);
                prop_assert_eq!(cluster.rounds, tuple.rounds);
            }
        }
    }
}

fn parity_tree(tree_pick: u8) -> Tree {
    match tree_pick % 4 {
        0 => builders::star(4, 1.0),
        1 => builders::heterogeneous_star(&[0.5, 2.0, 4.0, 4.0, 8.0]),
        2 => builders::rack_tree(&[(3, 1.0, 2.0), (2, 2.0, 1.0)], 1.0),
        _ => builders::caterpillar(3, 2, 1.5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Iterative fixpoint jobs — PageRank (Jacobi), BFS and connected
    /// components (frontier/delta) — replay their prepared
    /// width-invariant schedule bit-identically on both backends: same
    /// `edge_totals`, same per-iteration metered costs, same converged
    /// values. The cluster adds exactly its one terminal barrier
    /// superstep.
    #[test]
    fn iterative_jobs_are_backend_identical(
        tree_pick in 0u8..4,
        graph_pick in 0u8..3,
        part_pick in 0u8..3,
        algo_pick in 0u8..3,
        seed in 0u64..100,
    ) {
        let tree = parity_tree(tree_pick);
        let spec = match graph_pick % 3 {
            0 => GraphSpec::uniform(40, 140),
            1 => GraphSpec::power_law(48, 200, 1.1),
            _ => GraphSpec::grid(6, 7),
        };
        let g = spec.generate(seed);
        let part = match part_pick % 3 {
            0 => VertexPartition::Hash,
            1 => VertexPartition::Blocked(PlacementStrategy::Uniform),
            _ => VertexPartition::Blocked(PlacementStrategy::ProportionalToBandwidth),
        };
        let owners = part.owners(&tree, &g, seed);
        let job = match algo_pick % 3 {
            0 => IterativeJob::pagerank(
                g.arcs().to_vec(), owners, 0.5, IterativeSpec::jacobi(30, 1e-3),
            ),
            1 => IterativeJob::bfs(
                g.arcs().to_vec(), owners, 0, IterativeSpec::frontier(64, 0.0),
            ),
            _ => IterativeJob::connected_components(
                g.arcs().to_vec(), owners, IterativeSpec::frontier(64, 0.0),
            ),
        };
        let prepared = job.prepare(&tree).unwrap();
        let sim = prepared.run(&tree).unwrap();
        let cluster = prepared.run_on(&tree, &PooledClusterBackend::default()).unwrap();

        prop_assert_eq!(&sim.cost.edge_totals, &cluster.cost.edge_totals);
        prop_assert_eq!(&sim.iterations, &cluster.iterations);
        prop_assert_eq!(&sim.values, &cluster.values);
        prop_assert_eq!(sim.rounds, cluster.rounds);
        prop_assert_eq!(cluster.supersteps, sim.supersteps + 1);
    }
}

/// The spec-based backend selection hook resolves engines that execute
/// prepared queries interchangeably.
#[test]
fn spec_selected_backends_agree() {
    let ctx = make_context(2, 90, 6, 60).with_seed(3);
    let q = LogicalPlan::scan("facts")
        .join_on(LogicalPlan::scan("dims"), "g", "g")
        .aggregate("tier", AggFunc::Count, "id");
    let prepared = ctx.prepare(&q).unwrap();
    let mut ledgers = Vec::new();
    for spec in ["simulator", "pooled-cluster", "cluster:2"] {
        let backend = backend_from_spec(spec).unwrap();
        let res = prepared.run_on(backend.as_ref()).unwrap();
        ledgers.push((spec, res.cost.edge_totals.clone(), res.rows(false)));
    }
    for pair in ledgers.windows(2) {
        assert_eq!(pair[0].1, pair[1].1, "{} vs {}", pair[0].0, pair[1].0);
        assert_eq!(pair[0].2, pair[1].2, "{} vs {}", pair[0].0, pair[1].0);
    }
}
