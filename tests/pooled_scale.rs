//! Scale tests for the pooled runtime: topologies with thousands of
//! compute nodes must execute on a bounded worker pool — at most the
//! machine's available parallelism worth of OS threads, never a thread
//! per node — and the engine-agnostic API must hold its cross-validation
//! guarantees at that scale.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use tamp::core::hashing::mix64;
use tamp::runtime::{
    jobs, run_cluster, ClusterOptions, ExecBackend, NodeCtx, NodeProgram, Outbox,
    PooledClusterBackend, SimulatorBackend, Step,
};
use tamp::simulator::{NodeState, Placement, Rel};
use tamp::topology::graph::builders as graph_builders;
use tamp::topology::{builders, NodeId, Tree};

/// Each node sends one value around a ring of compute nodes for two
/// rounds, recording which OS thread ran it.
fn ring_program(
    n_compute: usize,
    threads: Arc<Mutex<HashSet<std::thread::ThreadId>>>,
) -> impl Fn(NodeId) -> Box<dyn NodeProgram> {
    move |v: NodeId| {
        let threads = threads.clone();
        Box::new(
            move |ctx: &NodeCtx<'_>, _state: &mut NodeState, out: &mut Outbox| {
                threads.lock().unwrap().insert(std::thread::current().id());
                if ctx.round < 2 {
                    let computes = ctx.tree.compute_nodes();
                    let me = computes.iter().position(|&c| c == v).unwrap();
                    let next = computes[(me + 1) % n_compute];
                    out.send_to(next, Rel::R, vec![v.0 as u64]);
                    return Step::Continue;
                }
                Step::Halt
            },
        ) as Box<dyn NodeProgram>
    }
}

fn run_scale_check(tree: &Tree) {
    let n = tree.num_compute();
    assert!(
        n >= 2048,
        "topology must have ≥ 2048 compute nodes, got {n}"
    );
    let placement = Placement::empty(tree);
    let threads = Arc::new(Mutex::new(HashSet::new()));
    let options = ClusterOptions::default();
    let run = run_cluster(tree, &placement, ring_program(n, threads.clone()), options).unwrap();
    // Two communicating supersteps plus the silent termination step.
    assert_eq!(run.supersteps, 3);
    assert_eq!(run.cost.per_round.len(), 2);
    assert_eq!(
        run.cost.per_round[0].total_tuples,
        run.cost.per_round[1].total_tuples
    );
    // Every node received exactly its two ring messages.
    for &v in tree.compute_nodes() {
        assert_eq!(run.final_state[v.index()].r.len(), 2, "node {v}");
    }
    // The pool is bounded: at most `workers` distinct OS threads ran
    // programs, for 2048+ logical nodes.
    let used = threads.lock().unwrap().len();
    let budget = options.resolved_workers(n);
    assert!(
        used <= budget,
        "{used} program threads exceed the {budget}-worker pool"
    );
}

#[test]
fn random_tree_with_2048_computes_runs_on_a_bounded_pool() {
    let tree = builders::random_tree(2048, 256, 0.5, 8.0, 42);
    run_scale_check(&tree);
}

#[test]
fn torus_spanning_tree_with_2048_computes_runs_on_a_bounded_pool() {
    let torus = graph_builders::torus(32, 64, 1.0);
    let tree = torus.max_bandwidth_spanning_tree().unwrap();
    run_scale_check(&tree);
}

#[test]
fn cross_validation_holds_at_2048_nodes() {
    // The bit-identical-ledger guarantee is not a small-topology artifact:
    // the same paired job on the simulator and the pooled cluster agrees
    // at 2048 compute nodes too.
    let tree = builders::random_tree(2048, 256, 0.5, 8.0, 7);
    let mut p = Placement::empty(&tree);
    let vc = tree.compute_nodes();
    for x in 0..1500u64 {
        p.push(vc[(mix64(x) % vc.len() as u64) as usize], Rel::R, x);
        p.push(
            vc[(mix64(x ^ 0xC0FFEE) % vc.len() as u64) as usize],
            Rel::S,
            750 + x,
        );
    }
    let job = jobs::tree_intersect(11);
    let sim = SimulatorBackend.execute(&tree, &p, &job).unwrap();
    let rt = PooledClusterBackend::default()
        .execute(&tree, &p, &job)
        .unwrap();
    assert_eq!(rt.cost.edge_totals, sim.cost.edge_totals);
    assert_eq!(rt.rounds, sim.rounds);
    assert_eq!(rt.supersteps, rt.rounds + 1);
}
