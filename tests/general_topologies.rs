//! Integration tests for the §7 future-work substrate: tree algorithms on
//! general graphs via spanning-tree extraction, with per-cut lower bounds.

use proptest::prelude::*;
use tamp::core::general::{
    extract_tree, graph_cartesian_lower_bound, graph_intersection_lower_bound,
    graph_sorting_lower_bound, run_on_graph, TreeExtraction,
};
use tamp::core::hashing::mix64;
use tamp::core::intersection::TreeIntersect;
use tamp::core::sorting::{valid_order, WeightedTeraSort};
use tamp::simulator::{verify, NodeState, Placement};
use tamp::topology::graph::builders as gb;
use tamp::topology::Graph;

fn scatter(graph: &Graph, r: u64, s: u64, seed: u64) -> Placement {
    let vc = graph.compute_nodes();
    let mut frags = vec![NodeState::default(); graph.num_nodes()];
    for a in 0..r {
        frags[vc[(mix64(a ^ seed) % vc.len() as u64) as usize].index()]
            .r
            .push(a);
    }
    for a in 0..s {
        let val = r / 2 + a;
        frags[vc[(mix64(val ^ seed ^ 0xD) % vc.len() as u64) as usize].index()]
            .s
            .push(val);
    }
    Placement::from_fragments(frags)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn intersection_correct_on_random_graphs(
        n in 4usize..14,
        extra in 0usize..10,
        graph_seed in 0u64..500,
        data_seed in 0u64..500,
        r in 1u64..100,
        s in 1u64..250,
    ) {
        let graph = gb::random_connected(n, extra, 0.5, 4.0, graph_seed);
        let p = scatter(&graph, r, s, data_seed);
        for how in [TreeExtraction::MaxBandwidth, TreeExtraction::BfsFromFirstCompute] {
            let (run, tree) = run_on_graph(&graph, &p, &TreeIntersect::new(data_seed), how)
                .unwrap();
            verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s())
                .map_err(TestCaseError::fail)?;
            // The achieved cost can never undercut the per-cut bound.
            let lb = graph_intersection_lower_bound(&graph, &tree, &p.stats());
            prop_assert!(run.cost.tuple_cost() >= lb.value() - 1e-9);
        }
    }

    #[test]
    fn cut_bounds_are_mutually_consistent(
        n in 4usize..12,
        extra in 0usize..8,
        graph_seed in 0u64..500,
        data_seed in 0u64..500,
    ) {
        let graph = gb::random_connected(n, extra, 0.5, 4.0, graph_seed);
        let p = scatter(&graph, 60, 60, data_seed);
        let tree = extract_tree(&graph, TreeExtraction::MaxBandwidth).unwrap();
        let stats = p.stats();
        let si = graph_intersection_lower_bound(&graph, &tree, &stats).value();
        let cp = graph_cartesian_lower_bound(&graph, &tree, &stats).value();
        let sort = graph_sorting_lower_bound(&graph, &tree, &stats).value();
        // Intersection's numerator has extra min-terms, so its bound can
        // only be lower; sorting and cartesian share a numerator.
        prop_assert!(si <= cp + 1e-9);
        prop_assert_eq!(cp, sort);
    }
}

#[test]
fn sorting_runs_on_all_mesh_families() {
    for graph in [
        gb::grid(3, 4, 1.0),
        gb::torus(3, 3, 2.0),
        gb::hypercube(3, 1.0),
        gb::ring(8, 1.0),
        gb::complete(6, 1.0),
    ] {
        let vc = graph.compute_nodes().to_vec();
        let mut frags = vec![NodeState::default(); graph.num_nodes()];
        for x in 0..400u64 {
            frags[vc[(x % vc.len() as u64) as usize].index()]
                .r
                .push(mix64(x));
        }
        let p = Placement::from_fragments(frags);
        let (run, tree) = run_on_graph(
            &graph,
            &p,
            &WeightedTeraSort::new(3),
            TreeExtraction::MaxBandwidth,
        )
        .unwrap();
        let order = valid_order(&tree);
        verify::check_sorted_partition(&order, &run.final_state, &p.all_r()).unwrap();
    }
}

#[test]
fn mbst_never_loses_to_bfs_on_widest_bottleneck() {
    // The max-bandwidth tree preserves widest-path bottlenecks; the BFS
    // tree may not. Check the invariant on a batch of random graphs.
    for seed in 0..30u64 {
        let graph = gb::random_connected(10, 6, 0.5, 8.0, seed);
        let mbst = graph.max_bandwidth_spanning_tree().unwrap();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                let (a, b) = (tamp::topology::NodeId(a), tamp::topology::NodeId(b));
                let want: f64 = graph
                    .widest_path(a, b)
                    .iter()
                    .map(|&d| graph.bandwidth(d).get())
                    .fold(f64::INFINITY, f64::min);
                let got: f64 = mbst
                    .path(a, b)
                    .iter()
                    .map(|&d| mbst.bandwidth(d).get())
                    .fold(f64::INFINITY, f64::min);
                assert!((want - got).abs() < 1e-9, "seed {seed} pair ({a}, {b})");
            }
        }
    }
}
