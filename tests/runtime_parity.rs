//! Cross-validation of the pooled runtime against the cost simulator,
//! through the engine-agnostic `ExecBackend` API: for any random tree,
//! placement and seed, the distributed per-node programs must move
//! exactly the traffic the centralized protocols move — bit-identical
//! `Cost` ledgers, equal metered round counts, and (for the cluster)
//! exactly one extra silent superstep in which termination is detected.

use proptest::prelude::*;
use tamp::core::hashing::mix64;
use tamp::core::sorting::valid_order;
use tamp::runtime::{
    jobs, ClusterOptions, ExecBackend, ExecOutcome, PooledClusterBackend, SimulatorBackend,
};
use tamp::simulator::{verify, Placement, Rel};
use tamp::topology::{builders, Tree};

fn random_setup(topo_seed: u64, r: u64, s: u64, data_seed: u64) -> (Tree, Placement) {
    let tree = builders::random_tree(
        3 + (topo_seed % 6) as usize,
        1 + (topo_seed % 4) as usize,
        0.5,
        4.0,
        topo_seed,
    );
    let mut p = Placement::empty(&tree);
    let vc = tree.compute_nodes();
    for a in 0..r {
        p.push(
            vc[(mix64(a ^ data_seed) % vc.len() as u64) as usize],
            Rel::R,
            a,
        );
    }
    for a in 0..s {
        let val = r / 2 + a;
        p.push(
            vc[(mix64(val ^ data_seed ^ 0xAB) % vc.len() as u64) as usize],
            Rel::S,
            val,
        );
    }
    (tree, p)
}

/// Run `job` on the simulator and the pooled cluster and assert the
/// backend-independent invariants: bit-identical ledgers (full per-edge
/// totals *and* per-round costs), equal metered rounds, and the cluster's
/// supersteps being rounds + 1 (the silent termination step).
fn assert_parity(
    tree: &Tree,
    p: &Placement,
    job: &dyn tamp::runtime::ExecJob,
) -> Result<(ExecOutcome, ExecOutcome), TestCaseError> {
    let sim = SimulatorBackend
        .execute(tree, p, job)
        .map_err(TestCaseError::fail)?;
    let rt = PooledClusterBackend::default()
        .execute(tree, p, job)
        .map_err(TestCaseError::fail)?;
    prop_assert_eq!(&rt.cost.edge_totals, &sim.cost.edge_totals);
    prop_assert_eq!(rt.cost.tuple_cost(), sim.cost.tuple_cost());
    prop_assert_eq!(rt.rounds, sim.rounds, "metered rounds must agree");
    prop_assert_eq!(sim.supersteps, sim.rounds);
    prop_assert_eq!(
        rt.supersteps,
        rt.rounds + 1,
        "cluster detects termination in exactly one silent superstep"
    );
    for (i, (a, b)) in rt
        .cost
        .per_round
        .iter()
        .zip(sim.cost.per_round.iter())
        .enumerate()
    {
        prop_assert_eq!(a.tuple_cost, b.tuple_cost, "round {} cost", i);
        prop_assert_eq!(a.total_tuples, b.total_tuples, "round {} volume", i);
    }
    Ok((sim, rt))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn intersection_traffic_parity(
        topo_seed in 0u64..200,
        hash_seed in 0u64..1_000,
        r in 1u64..150,
        s in 1u64..400,
        data_seed in 0u64..1_000,
    ) {
        let (tree, p) = random_setup(topo_seed, r, s, data_seed);
        let (sim, rt) = assert_parity(&tree, &p, &jobs::tree_intersect(hash_seed))?;
        verify::check_intersection(&rt.final_state, &p.all_r(), &p.all_s())
            .map_err(TestCaseError::fail)?;
        // Both executions emit the same intersection.
        prop_assert_eq!(
            verify::emitted_intersection(&rt.final_state),
            verify::emitted_intersection(&sim.final_state)
        );
    }

    #[test]
    fn sorting_traffic_parity(
        topo_seed in 0u64..200,
        sample_seed in 0u64..1_000,
        n in 1u64..500,
        data_seed in 0u64..1_000,
    ) {
        let (tree, _) = random_setup(topo_seed, 0, 0, 0);
        let mut p = Placement::empty(&tree);
        let vc = tree.compute_nodes();
        for x in 0..n {
            p.push(
                vc[(mix64(x ^ data_seed) % vc.len() as u64) as usize],
                Rel::R,
                mix64(x.wrapping_mul(97) ^ data_seed),
            );
        }
        let (_, rt) = assert_parity(&tree, &p, &jobs::weighted_terasort(sample_seed))?;
        let order = valid_order(&tree);
        verify::check_sorted_partition(&order, &rt.final_state, &p.all_r())
            .map_err(TestCaseError::fail)?;
    }

    #[test]
    fn pool_width_never_changes_results(
        topo_seed in 0u64..100,
        hash_seed in 0u64..500,
        r in 1u64..120,
        s in 1u64..200,
    ) {
        // The same job on a 1-worker pool and a wide pool: supersteps,
        // ledgers and final states must be bit-identical — scheduling is
        // not allowed to leak into results.
        let (tree, p) = random_setup(topo_seed, r, s, topo_seed ^ 0x5A);
        let job = jobs::tree_intersect(hash_seed);
        let narrow = PooledClusterBackend::new(ClusterOptions::with_workers(1))
            .execute(&tree, &p, &job)
            .map_err(TestCaseError::fail)?;
        let wide = PooledClusterBackend::new(ClusterOptions::with_workers(8))
            .execute(&tree, &p, &job)
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(narrow.supersteps, wide.supersteps);
        prop_assert_eq!(&narrow.cost.edge_totals, &wide.cost.edge_totals);
        for v in tree.nodes() {
            prop_assert_eq!(
                &narrow.final_state[v.index()],
                &wide.final_state[v.index()]
            );
        }
    }
}

#[test]
fn parity_holds_on_every_standard_topology() {
    for (tree, seed) in [
        (builders::star(6, 1.0), 1u64),
        (builders::heterogeneous_star(&[0.5, 1.0, 2.0, 4.0]), 2),
        (builders::rack_tree(&[(3, 1.0, 2.0), (4, 2.0, 1.0)], 1.0), 3),
        (builders::fat_tree(2, 3, 1.0), 4),
        (builders::caterpillar(4, 2, 1.5), 5),
    ] {
        let mut p = Placement::empty(&tree);
        let vc = tree.compute_nodes();
        for a in 0..200u64 {
            p.push(vc[(mix64(a ^ seed) % vc.len() as u64) as usize], Rel::R, a);
            p.push(
                vc[(mix64(a ^ seed ^ 9) % vc.len() as u64) as usize],
                Rel::S,
                100 + a,
            );
        }
        let job = jobs::tree_intersect(seed);
        let sim = SimulatorBackend.execute(&tree, &p, &job).unwrap();
        let rt = PooledClusterBackend::default()
            .execute(&tree, &p, &job)
            .unwrap();
        assert_eq!(rt.cost.edge_totals, sim.cost.edge_totals, "seed {seed}");
        assert_eq!(rt.rounds, sim.rounds, "seed {seed}");
        assert_eq!(rt.supersteps, rt.rounds + 1, "seed {seed}");
    }
}
