//! Cross-validation of the threaded runtime against the cost simulator:
//! for any random tree, placement and seed, the distributed per-node
//! programs must move exactly the traffic the centralized protocols move.

use proptest::prelude::*;
use tamp::core::hashing::mix64;
use tamp::core::intersection::TreeIntersect;
use tamp::core::sorting::{valid_order, WeightedTeraSort};
use tamp::runtime::programs::{DistributedTreeIntersect, DistributedWts};
use tamp::runtime::{run_cluster, ClusterOptions};
use tamp::simulator::{run_protocol, verify, Placement, Rel};
use tamp::topology::{builders, Tree};

fn random_setup(topo_seed: u64, r: u64, s: u64, data_seed: u64) -> (Tree, Placement) {
    let tree = builders::random_tree(3 + (topo_seed % 6) as usize, 1 + (topo_seed % 4) as usize, 0.5, 4.0, topo_seed);
    let mut p = Placement::empty(&tree);
    let vc = tree.compute_nodes();
    for a in 0..r {
        p.push(vc[(mix64(a ^ data_seed) % vc.len() as u64) as usize], Rel::R, a);
    }
    for a in 0..s {
        let val = r / 2 + a;
        p.push(
            vc[(mix64(val ^ data_seed ^ 0xAB) % vc.len() as u64) as usize],
            Rel::S,
            val,
        );
    }
    (tree, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn intersection_traffic_parity(
        topo_seed in 0u64..200,
        hash_seed in 0u64..1_000,
        r in 1u64..150,
        s in 1u64..400,
        data_seed in 0u64..1_000,
    ) {
        let (tree, p) = random_setup(topo_seed, r, s, data_seed);
        let sim = run_protocol(&tree, &p, &TreeIntersect::new(hash_seed)).unwrap();
        let rt = run_cluster(
            &tree,
            &p,
            |_| Box::new(DistributedTreeIntersect::new(hash_seed)),
            ClusterOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(&rt.cost.edge_totals, &sim.cost.edge_totals);
        prop_assert_eq!(rt.cost.tuple_cost(), sim.cost.tuple_cost());
        verify::check_intersection(&rt.final_state, &p.all_r(), &p.all_s())
            .map_err(TestCaseError::fail)?;
        // Both executions emit the same intersection.
        prop_assert_eq!(
            verify::emitted_intersection(&rt.final_state),
            verify::emitted_intersection(&sim.final_state)
        );
    }

    #[test]
    fn sorting_traffic_parity(
        topo_seed in 0u64..200,
        sample_seed in 0u64..1_000,
        n in 1u64..500,
        data_seed in 0u64..1_000,
    ) {
        let (tree, _) = random_setup(topo_seed, 0, 0, 0);
        let mut p = Placement::empty(&tree);
        let vc = tree.compute_nodes();
        for x in 0..n {
            p.push(
                vc[(mix64(x ^ data_seed) % vc.len() as u64) as usize],
                Rel::R,
                mix64(x.wrapping_mul(97) ^ data_seed),
            );
        }
        let sim = run_protocol(&tree, &p, &WeightedTeraSort::new(sample_seed)).unwrap();
        let rt = run_cluster(
            &tree,
            &p,
            |_| Box::new(DistributedWts::new(sample_seed)),
            ClusterOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(&rt.cost.edge_totals, &sim.cost.edge_totals);
        let order = valid_order(&tree);
        verify::check_sorted_partition(&order, &rt.final_state, &p.all_r())
            .map_err(TestCaseError::fail)?;
    }
}

#[test]
fn parity_holds_on_every_standard_topology() {
    for (tree, seed) in [
        (builders::star(6, 1.0), 1u64),
        (builders::heterogeneous_star(&[0.5, 1.0, 2.0, 4.0]), 2),
        (builders::rack_tree(&[(3, 1.0, 2.0), (4, 2.0, 1.0)], 1.0), 3),
        (builders::fat_tree(2, 3, 1.0), 4),
        (builders::caterpillar(4, 2, 1.5), 5),
    ] {
        let mut p = Placement::empty(&tree);
        let vc = tree.compute_nodes();
        for a in 0..200u64 {
            p.push(vc[(mix64(a ^ seed) % vc.len() as u64) as usize], Rel::R, a);
            p.push(
                vc[(mix64(a ^ seed ^ 9) % vc.len() as u64) as usize],
                Rel::S,
                100 + a,
            );
        }
        let sim = run_protocol(&tree, &p, &TreeIntersect::new(seed)).unwrap();
        let rt = run_cluster(
            &tree,
            &p,
            |_| Box::new(DistributedTreeIntersect::new(seed)),
            ClusterOptions::default(),
        )
        .unwrap();
        assert_eq!(rt.cost.edge_totals, sim.cost.edge_totals, "seed {seed}");
    }
}
