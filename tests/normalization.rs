//! The two w.l.o.g. transformations of Section 2.1 preserve semantics:
//! algorithms run on the normalized tree produce the same answers, and
//! costs are preserved (hoisted links are free; contracted chains keep
//! their bottleneck).

use tamp::core::intersection::TreeIntersect;
use tamp::core::sorting::WeightedTeraSort;
use tamp::simulator::{run_protocol, verify, Placement};
use tamp::topology::normalize::{contract_degree2, hoist_compute_leaves};
use tamp::topology::{NodeId, Tree, TreeBuilder};

/// A tree with non-leaf compute nodes and degree-2 routers.
fn messy_tree() -> Tree {
    let mut b = TreeBuilder::new();
    let a = b.compute(); // leaf compute
    let m = b.compute(); // internal compute (degree 3)
    let r1 = b.router(); // degree-2 router
    let r2 = b.router(); // degree-2 router
    let c = b.compute();
    let d = b.compute();
    b.link(a, m, 4.0).unwrap();
    b.link(m, r1, 2.0).unwrap();
    b.link(r1, r2, 6.0).unwrap();
    b.link(r2, c, 3.0).unwrap();
    b.link(m, d, 8.0).unwrap();
    b.build().unwrap()
}

/// Transfer a placement through a normalization node map.
fn transfer(p: &Placement, map: &[Option<NodeId>], new_size: usize) -> Placement {
    let mut frags = vec![tamp::simulator::NodeState::default(); new_size];
    for (old, frag) in p.fragments().iter().enumerate() {
        if frag.is_empty() {
            continue;
        }
        let new = map[old].expect("compute nodes survive normalization");
        frags[new.index()] = frag.clone();
    }
    Placement::from_fragments(frags)
}

#[test]
fn hoisting_preserves_intersection_and_cost() {
    let tree = messy_tree();
    let mut p = Placement::empty(&tree);
    p.set_r(NodeId(0), (0..100).collect());
    p.set_s(NodeId(1), (50..350).collect());
    p.set_s(NodeId(4), (350..400).collect());
    p.set_r(NodeId(5), (380..420).collect());

    let norm = hoist_compute_leaves(&tree);
    assert!(norm.tree.compute_nodes_are_leaves());
    let p2 = transfer(&p, &norm.node_map, norm.tree.num_nodes());

    let run1 = run_protocol(&tree, &p, &TreeIntersect::new(9)).unwrap();
    let run2 = run_protocol(&norm.tree, &p2, &TreeIntersect::new(9)).unwrap();
    verify::check_intersection(&run1.final_state, &p.all_r(), &p.all_s()).unwrap();
    verify::check_intersection(&run2.final_state, &p2.all_r(), &p2.all_s()).unwrap();
    assert_eq!(run1.output, run2.output, "same intersection either way");
    // The hoisted link has infinite bandwidth, so the extra hop is free and
    // bottleneck structure is unchanged: costs agree exactly (the hash
    // seeds and weights are identical since node ids are preserved for
    // original nodes and weights move wholesale onto the hoisted leaves).
    let (c1, c2) = (run1.cost.tuple_cost(), run2.cost.tuple_cost());
    assert!(
        (c1 - c2).abs() <= 1e-9 * c1.max(1.0) || (c1 - c2).abs() < 64.0,
        "hoisting changed cost: {c1} vs {c2}"
    );
}

#[test]
fn contraction_preserves_cost_exactly() {
    let tree = messy_tree();
    let mut p = Placement::empty(&tree);
    p.set_r(NodeId(0), (0..80).collect());
    p.set_s(NodeId(4), (40..200).collect());
    p.set_s(NodeId(5), (200..280).collect());

    let norm = contract_degree2(&tree);
    assert!(norm.tree.num_nodes() < tree.num_nodes());
    let p2 = transfer(&p, &norm.node_map, norm.tree.num_nodes());

    let run1 = run_protocol(&tree, &p, &TreeIntersect::new(2)).unwrap();
    let run2 = run_protocol(&norm.tree, &p2, &TreeIntersect::new(2)).unwrap();
    assert_eq!(run1.output, run2.output);
    // Chains carry identical traffic on each link, so the bottleneck of
    // the chain is its min-bandwidth edge — exactly the contracted edge.
    assert!(
        (run1.cost.tuple_cost() - run2.cost.tuple_cost()).abs() < 1e-9,
        "contraction changed cost: {} vs {}",
        run1.cost.tuple_cost(),
        run2.cost.tuple_cost()
    );
}

#[test]
fn sorting_on_normalized_tree() {
    let tree = messy_tree();
    let mut p = Placement::empty(&tree);
    p.set_r(NodeId(0), (0..500).rev().collect());
    p.set_r(NodeId(1), (500..900).collect());
    p.set_r(NodeId(4), (200..600).collect());

    let norm = hoist_compute_leaves(&tree);
    let p2 = transfer(&p, &norm.node_map, norm.tree.num_nodes());
    let run = run_protocol(&norm.tree, &p2, &WeightedTeraSort::new(5)).unwrap();
    verify::check_sorted_partition(&run.output, &run.final_state, &p2.all_r()).unwrap();
}

#[test]
fn normalization_composes() {
    let tree = messy_tree();
    let hoisted = hoist_compute_leaves(&tree);
    let contracted = contract_degree2(&hoisted.tree);
    assert!(contracted.tree.compute_nodes_are_leaves());
    // No degree-2 routers remain.
    for v in contracted.tree.nodes() {
        assert!(
            contracted.tree.is_compute(v) || contracted.tree.degree(v) != 2,
            "router {v} still has degree 2"
        );
    }
    assert_eq!(contracted.tree.num_compute(), tree.num_compute());
}
