//! Concurrency stress test for the serving layer: many client threads
//! hammering one shared `QueryService` over one shared pooled cluster
//! backend must produce results **bit-identical** to fresh serial
//! `prepare().run()` execution — rows *and* metered `edge_totals` — and
//! the prepared-plan cache must hit after warmup and invalidate on
//! `register`.

use std::sync::Arc;

use tamp::query::prelude::*;
use tamp::query::service::QueryService;
use tamp::runtime::PooledClusterBackend;
use tamp::topology::builders;

const THREADS: usize = 8;
const QUERIES_PER_THREAD: usize = 64;

fn serving_context() -> QueryContext {
    let tree = builders::rack_tree(&[(3, 1.0, 2.0), (3, 2.0, 1.0)], 1.0);
    let mut ctx = QueryContext::new(tree.clone()).with_seed(23);
    let facts: Vec<Vec<u64>> = (0..240).map(|i| vec![i, i % 9, (i * 37) % 1000]).collect();
    ctx.register(DistributedTable::round_robin(
        "facts",
        Schema::new(vec!["id", "g", "x"]).unwrap(),
        facts,
        &tree,
    ))
    .unwrap();
    ctx.register(DistributedTable::round_robin(
        "dims",
        Schema::new(vec!["g", "tier"]).unwrap(),
        (0..9).map(|g| vec![g, g + 100]).collect(),
        &tree,
    ))
    .unwrap();
    ctx
}

/// The mixed workload: every strategy-pluggable operator is exercised.
fn workload() -> Vec<LogicalPlan> {
    vec![
        LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g"),
        LogicalPlan::scan("facts")
            .filter(col("x").lt(lit(600)))
            .aggregate("g", AggFunc::Sum, "x"),
        LogicalPlan::scan("facts").order_by("x"),
        LogicalPlan::scan("facts").order_by("x").limit(25),
        LogicalPlan::scan("facts")
            .project(vec![("g", col("g")), ("b", col("x").div(lit(100)))])
            .distinct(),
        LogicalPlan::scan("dims").cross(LogicalPlan::scan("dims")),
    ]
}

#[test]
fn eight_threads_of_mixed_queries_are_bit_identical_to_serial_execution() {
    let queries = workload();

    // Serial ground truth: a fresh session per query, prepare().run() on
    // the default engine (the plan replays identically on any backend).
    let serial: Vec<QueryResult> = queries
        .iter()
        .map(|q| serving_context().prepare(q).unwrap().run().unwrap())
        .collect();

    let backend = Arc::new(PooledClusterBackend::with_shared_pool(4));
    let service = QueryService::new(serving_context(), backend)
        .with_max_inflight(THREADS)
        .unwrap();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (service, queries, serial) = (&service, &queries, &serial);
            scope.spawn(move || {
                for i in 0..QUERIES_PER_THREAD {
                    let k = (t + i) % queries.len();
                    let served = service.serve(&queries[k]).unwrap();
                    let want = &serial[k];
                    // Bit-identical rows (order-insensitive canonical
                    // form) and bit-identical metered ledger.
                    assert_eq!(
                        served.result.rows(false),
                        want.rows(false),
                        "thread {t} query {k}: rows diverged"
                    );
                    assert_eq!(
                        served.result.cost.edge_totals, want.cost.edge_totals,
                        "thread {t} query {k}: ledgers diverged"
                    );
                    assert_eq!(served.result.rounds, want.rounds);
                }
            });
        }
    });

    let total = (THREADS * QUERIES_PER_THREAD) as u64;
    let cache = service.cache_stats();
    assert_eq!(cache.hits + cache.misses, total);
    // Warmup costs at most one miss per distinct plan per racing thread;
    // everything after that must hit. The bound below is loose (a full
    // thundering herd on every distinct plan) and still demands >98%
    // hits.
    let max_misses = (queries.len() * THREADS) as u64;
    assert!(
        cache.misses <= max_misses,
        "{} misses for {} distinct plans",
        cache.misses,
        queries.len()
    );
    assert!(cache.hits >= total - max_misses, "{cache:?}");
    assert_eq!(cache.invalidations, 0);

    let adm = service.admission_stats();
    assert_eq!(adm.admitted, total);
    assert!(adm.peak_inflight <= THREADS, "{adm:?}");
}

#[test]
fn register_mid_service_invalidates_and_replans_consistently() {
    let service = QueryService::with_default_backend(serving_context());
    let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");

    let before = service.serve(&q).unwrap();
    assert!(!before.stats.cache_hit);
    assert!(service.serve(&q).unwrap().stats.cache_hit);

    // Replace `dims` with a bigger table: the catalog version bumps, the
    // cache clears, and the next serve replans against the new data.
    let tree = service.context().tree().clone();
    let version = service
        .register(DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "tier"]).unwrap(),
            (0..9).map(|g| vec![g, g + 500]).collect(),
            &tree,
        ))
        .unwrap();
    assert_eq!(version, 1);
    let stats = service.cache_stats();
    assert_eq!(stats.entries, 0);
    assert_eq!(stats.invalidations, 1);

    let after = service.serve(&q).unwrap();
    assert!(!after.stats.cache_hit, "stale plan served after register");

    // The replanned result matches a fresh session over the same data.
    let mut fresh_ctx = serving_context();
    fresh_ctx
        .register(DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "tier"]).unwrap(),
            (0..9).map(|g| vec![g, g + 500]).collect(),
            &tree,
        ))
        .unwrap();
    let fresh = fresh_ctx.prepare(&q).unwrap().run().unwrap();
    assert_eq!(after.result.rows(false), fresh.rows(false));
    assert_eq!(after.result.cost.edge_totals, fresh.cost.edge_totals);
}

#[test]
fn concurrent_strategy_registration_keeps_inflight_queries_bit_identical() {
    use tamp::query::physical::strategy::*;
    use tamp::query::QueryError;

    // A join candidate that is always priced out: registering it bumps
    // the catalog version and clears the plan cache, but can never change
    // the winning plan — so every query, on whatever snapshot generation
    // it started, must stay bit-identical to the serial ground truth.
    #[derive(Debug)]
    struct NeverWinsJoin;

    impl PhysicalStrategy for NeverWinsJoin {
        fn name(&self) -> &'static str {
            "never-wins"
        }
        fn operator(&self) -> OperatorKind {
            OperatorKind::Join
        }
        fn estimate(&self, _a: &PlanArgs<'_>) -> CostEstimate {
            CostEstimate {
                tuple_cost: 1e18,
                rounds: 1,
            }
        }
        fn trace(&self, _a: &ExecArgs<'_>, _input: OpInput) -> Result<OpTrace, QueryError> {
            unreachable!("estimate guarantees this candidate never wins")
        }
    }

    const REGISTRATIONS: usize = 12;
    let queries = workload();
    let serial: Vec<QueryResult> = queries
        .iter()
        .map(|q| serving_context().prepare(q).unwrap().run().unwrap())
        .collect();

    let backend = Arc::new(PooledClusterBackend::with_shared_pool(4));
    let service = QueryService::new(serving_context(), backend)
        .with_max_inflight(THREADS)
        .unwrap();

    std::thread::scope(|scope| {
        // One registrar thread racing the serving threads: each
        // register_strategy copy-on-writes the session snapshot, so
        // queries already planning/executing keep their generation.
        scope.spawn(|| {
            for _ in 0..REGISTRATIONS {
                service.register_strategy(Arc::new(NeverWinsJoin)).unwrap();
                std::thread::yield_now();
            }
        });
        for t in 0..THREADS {
            let (service, queries, serial) = (&service, &queries, &serial);
            scope.spawn(move || {
                for i in 0..QUERIES_PER_THREAD / 2 {
                    let k = (t + i) % queries.len();
                    let served = service.serve(&queries[k]).unwrap();
                    let want = &serial[k];
                    assert_eq!(
                        served.result.rows(false),
                        want.rows(false),
                        "thread {t} query {k}: rows diverged during registration race"
                    );
                    assert_eq!(
                        served.result.cost.edge_totals, want.cost.edge_totals,
                        "thread {t} query {k}: ledgers diverged during registration race"
                    );
                }
            });
        }
    });

    assert_eq!(service.catalog_version(), REGISTRATIONS as u64);
    assert_eq!(service.cache_stats().invalidations, REGISTRATIONS as u64);
    // Post-race sanity: the strategy is a priced (and losing) candidate.
    let join = &queries[0];
    let explain = service.explain(join).unwrap();
    assert!(explain.contains("never-wins"), "{explain}");
    let after = service.serve(join).unwrap();
    assert_eq!(after.result.rows(false), serial[0].rows(false));
    assert_eq!(after.result.cost.edge_totals, serial[0].cost.edge_totals);
}

#[test]
fn custom_strategy_registration_invalidates_the_cache() {
    use tamp::query::physical::strategy::*;
    use tamp::query::QueryError;
    use tamp::simulator::Rel;

    // The module-docs example strategy: gather both sides onto one node.
    #[derive(Debug)]
    struct AllToOneJoin;

    impl PhysicalStrategy for AllToOneJoin {
        fn name(&self) -> &'static str {
            "all-to-one"
        }
        fn operator(&self) -> OperatorKind {
            OperatorKind::Join
        }
        fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
            let target = a.model.tree().compute_nodes()[0];
            let right = a.right.as_ref().expect("join has two inputs");
            let cost = a.model.gather_cost(&a.left.counts, a.left.width, target)
                + a.model.gather_cost(&right.counts, right.width, target);
            CostEstimate {
                tuple_cost: cost,
                rounds: 1,
            }
        }
        fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
            let OpInput::Join {
                left,
                right,
                left_key,
                right_key,
                left_width,
                right_width,
            } = input
            else {
                unreachable!("registered for Join");
            };
            let target = a.tree.compute_nodes()[0];
            let mut trace = TraceBuilder::default();
            let mut l_all = Vec::new();
            let mut r_all = Vec::new();
            trace.round(|round| {
                for &v in a.tree.compute_nodes() {
                    for (rel, frags, width, all) in [
                        (Rel::R, &left, left_width, &mut l_all),
                        (Rel::S, &right, right_width, &mut r_all),
                    ] {
                        let rows = &frags[v.index()];
                        all.extend(rows.iter().cloned());
                        if v != target && !rows.is_empty() {
                            round.send(v, &[target], rel, tamp::query::row::flatten(rows, width));
                        }
                    }
                }
            });
            let mut out = vec![Vec::new(); a.tree.num_nodes()];
            for l in &l_all {
                for r in r_all.iter().filter(|r| r[right_key] == l[left_key]) {
                    let mut j = l.clone();
                    j.extend_from_slice(r);
                    out[target.index()].push(j);
                }
            }
            Ok(OpTrace {
                rounds: trace.into_rounds(),
                output: out,
            })
        }
    }

    let service = QueryService::with_default_backend(serving_context());
    let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
    let want = service.serve(&q).unwrap().result.rows(false);
    assert!(service.serve(&q).unwrap().stats.cache_hit);

    let version = service.register_strategy(Arc::new(AllToOneJoin)).unwrap();
    assert_eq!(version, 1);
    assert_eq!(service.cache_stats().entries, 0);

    // Replanned with the extra candidate priced in; rows unchanged.
    let after = service.serve(&q).unwrap();
    assert!(!after.stats.cache_hit);
    assert_eq!(after.result.rows(false), want);
    assert!(service.explain(&q).unwrap().contains("all-to-one"));
}
