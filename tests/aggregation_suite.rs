//! Integration tests for the aggregation extension: the three all-to-one
//! protocols, the distributed group-by, the runtime group-by program, and
//! their lower bounds, under randomized inputs.

use proptest::prelude::*;
use tamp::core::aggregate::{
    aggregation_lower_bound, encode, groupby_lower_bound, reference_aggregate, Aggregator,
    CombiningTreeAggregate, FlatPartialAggregate, HashGroupBy, NaiveAggregate,
};
use tamp::core::hashing::mix64;
use tamp::runtime::programs::groupby::{collect_groupby_output, DistributedGroupBy};
use tamp::runtime::{run_cluster, ClusterOptions};
use tamp::simulator::{run_protocol, Placement, Rel};
use tamp::topology::builders;

fn grouped(tree: &tamp::topology::Tree, groups: u64, per_node: u64, seed: u64) -> Placement {
    let mut p = Placement::empty(tree);
    for (i, &v) in tree.compute_nodes().iter().enumerate() {
        for j in 0..per_node {
            let g = mix64(seed ^ ((i as u64) << 17) ^ j) % groups;
            let m = mix64(j ^ seed) % 1_000;
            p.push(v, Rel::R, encode(g, m));
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn all_protocols_compute_the_same_aggregate(
        topo_seed in 0u64..100,
        groups in 1u64..20,
        per_node in 0u64..60,
        seed in 0u64..1_000,
        agg_pick in 0u8..4,
    ) {
        let tree = builders::random_tree(
            3 + (topo_seed % 5) as usize,
            1 + (topo_seed % 3) as usize,
            0.5,
            4.0,
            topo_seed,
        );
        let p = grouped(&tree, groups, per_node, seed);
        let agg = [Aggregator::Count, Aggregator::Sum, Aggregator::Min, Aggregator::Max]
            [(agg_pick % 4) as usize];
        let target = tree.compute_nodes()[(seed % tree.num_compute() as u64) as usize];
        let want: Vec<(u64, u64)> =
            reference_aggregate(&p.all_r(), agg).into_iter().collect();

        let naive = run_protocol(&tree, &p, &NaiveAggregate::new(target, agg)).unwrap();
        let flat = run_protocol(&tree, &p, &FlatPartialAggregate::new(target, agg)).unwrap();
        let comb = run_protocol(&tree, &p, &CombiningTreeAggregate::new(target, agg)).unwrap();
        prop_assert_eq!(&naive.output, &want);
        prop_assert_eq!(&flat.output, &want);
        prop_assert_eq!(&comb.output, &want);

        // Every protocol respects the all-to-one lower bound.
        let lb = aggregation_lower_bound(&tree, &p, target).value();
        for cost in [
            naive.cost.tuple_cost(),
            flat.cost.tuple_cost(),
            comb.cost.tuple_cost(),
        ] {
            prop_assert!(cost >= lb - 1e-9, "cost {cost} under LB {lb}");
        }

        // Group-by agrees too, and respects its own bound.
        let gb = run_protocol(&tree, &p, &HashGroupBy::new(seed, agg)).unwrap();
        let got: Vec<(u64, u64)> = gb.output.iter().map(|&(g, m, _)| (g, m)).collect();
        prop_assert_eq!(&got, &want);
        prop_assert!(gb.cost.tuple_cost() >= groupby_lower_bound(&tree, &p).value() - 1e-9);
    }

    #[test]
    fn runtime_groupby_matches_simulator(
        groups in 1u64..12,
        per_node in 0u64..40,
        seed in 0u64..500,
    ) {
        let tree = builders::rack_tree(&[(3, 1.0, 2.0), (2, 2.0, 1.0)], 1.0);
        let p = grouped(&tree, groups, per_node, seed);
        let agg = Aggregator::Sum;
        let sim = run_protocol(&tree, &p, &HashGroupBy::new(seed, agg)).unwrap();
        let rt = run_cluster(
            &tree,
            &p,
            |_| Box::new(DistributedGroupBy::new(seed, agg)),
            ClusterOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(&rt.cost.edge_totals, &sim.cost.edge_totals);
        prop_assert_eq!(collect_groupby_output(&rt.final_state), sim.output);
    }
}
