//! Section 2.2: the classic MPC model is the special case of the
//! topology-aware model given by an asymmetric star with infinite uplinks
//! and unit downlinks — the cost of a round is the maximum data *received*
//! by any machine.

use tamp::core::cartesian::UniformHyperCube;
use tamp::core::intersection::UniformHashJoin;
use tamp::core::sorting::TeraSort;
use tamp::simulator::{run_protocol, verify, Placement, Protocol, Rel, Session, SimError};
use tamp::topology::{builders, NodeId};
use tamp::workloads::{PlacementStrategy, SetSpec, SortSpec};

/// Send `k` tuples from node 0 to node 1 — in MPC this must cost exactly
/// `k` (receive side), regardless of how much is sent elsewhere for free.
struct SendK(u64);

impl Protocol for SendK {
    type Output = ();
    fn name(&self) -> String {
        "send-k".into()
    }
    fn run(&self, s: &mut Session<'_>) -> Result<(), SimError> {
        let vals: Vec<u64> = (0..self.0).collect();
        s.round(|r| r.send(NodeId(0), &[NodeId(1)], Rel::R, &vals))
    }
}

#[test]
fn mpc_round_cost_is_max_received() {
    let t = builders::mpc_star(4);
    let p = Placement::empty(&t);
    let run = run_protocol(&t, &p, &SendK(123)).unwrap();
    assert_eq!(run.cost.tuple_cost(), 123.0);
}

#[test]
fn mpc_hash_join_balances_receive_load() {
    let p_nodes = 8usize;
    let t = builders::mpc_star(p_nodes);
    let n = 4_000usize;
    let w = SetSpec::new(n / 2, n / 2)
        .with_intersection(100)
        .generate(1);
    let pl = PlacementStrategy::Uniform.place(&t, &w, 1);
    let run = run_protocol(&t, &pl, &UniformHashJoin::new(1)).unwrap();
    verify::check_intersection(&run.final_state, &pl.all_r(), &pl.all_s()).unwrap();
    // Receive load ≈ N/p within 2× (hashing balance).
    let ideal = n as f64 / p_nodes as f64;
    let cost = run.cost.tuple_cost();
    assert!(
        cost < 2.0 * ideal && cost > 0.5 * ideal,
        "cost {cost} vs ideal {ideal}"
    );
}

#[test]
fn mpc_hypercube_receive_load_scales_with_sqrt_p() {
    let n = 4_096usize;
    let mut costs = Vec::new();
    for &p_nodes in &[4usize, 16] {
        let t = builders::mpc_star(p_nodes);
        let w = SetSpec::new(n / 2, n / 2).generate(2);
        let pl = PlacementStrategy::Uniform.place(&t, &w, 2);
        let run = run_protocol(&t, &pl, &UniformHyperCube::new()).unwrap();
        verify::check_pair_coverage(&run.final_state, &pl.all_r(), &pl.all_s()).unwrap();
        costs.push(run.cost.tuple_cost());
    }
    // Quadrupling p should halve the HyperCube receive load (N/√p).
    let shrink = costs[0] / costs[1];
    assert!(
        (1.4..2.9).contains(&shrink),
        "expected ≈2× shrink, got {shrink} ({costs:?})"
    );
}

#[test]
fn mpc_terasort_is_correct_and_receive_bounded() {
    let t = builders::mpc_star(8);
    let w = SortSpec::new(6_000).generate(3);
    let pl = PlacementStrategy::Uniform.place(&t, &w, 3);
    let run = run_protocol(&t, &pl, &TeraSort::new(3)).unwrap();
    verify::check_sorted_partition(&run.output, &run.final_state, &pl.all_r()).unwrap();
    // Receive-side cost: samples at the coordinator + ≈N/p redistribution,
    // comfortably below shipping everything to one machine.
    assert!(
        run.cost.tuple_cost() < 3_000.0,
        "cost {}",
        run.cost.tuple_cost()
    );
}

#[test]
fn weighted_protocols_reject_the_asymmetric_star() {
    // The paper's weighted algorithms are stated for symmetric trees; they
    // must fail loudly, not silently miscost, on the MPC star.
    let t = builders::mpc_star(4);
    let w = SetSpec::new(100, 100).generate(4);
    let pl = PlacementStrategy::Uniform.place(&t, &w, 4);
    assert!(run_protocol(&t, &pl, &tamp::core::intersection::TreeIntersect::new(0)).is_err());
    assert!(run_protocol(&t, &pl, &tamp::core::cartesian::TreeCartesianProduct::new()).is_err());
    assert!(run_protocol(&t, &pl, &tamp::core::sorting::WeightedTeraSort::new(0)).is_err());
}
