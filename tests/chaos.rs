//! The seeded chaos harness, end to end: randomized fault schedules
//! against the orchestrator's checkpointed recovery loop.
//!
//! Three properties, each over many seeds:
//!
//! 1. **Bit-identical recovery.** Whatever a seeded schedule throws at
//!    the crew — kills, detaches, degrades, stalls — every served answer
//!    (rows *and* metered `edge_totals`) equals the fault-free run's.
//! 2. **Bounded retry.** Total loss (every compute node killed, re-armed
//!    across retries) terminates with a typed `RecoveryExhausted` after
//!    exactly `RetryPolicy::max_attempts` executions — never a loop.
//! 3. **No leaked plans.** An armed plan whose query dies before the
//!    trigger superstep is dropped with the failed query, not left to
//!    fell the next unrelated tenant's query.

use proptest::prelude::*;
use tamp::query::orchestrator::chaos::{self, ChaosSpec};
use tamp::query::orchestrator::{Orchestrator, RetryPolicy};
use tamp::query::prelude::*;
use tamp::query::QueryError;
use tamp::runtime::FaultPlan;
use tamp::topology::builders;
use tamp::workloads::{GraphSpec, PlacementStrategy, VertexPartition};

fn chaos_context() -> QueryContext {
    let tree = builders::star(6, 1.0);
    let mut ctx = QueryContext::new(tree.clone()).with_seed(41);
    let facts: Vec<Vec<u64>> = (0..180).map(|i| vec![i, i % 7, (i * 53) % 400]).collect();
    ctx.register(DistributedTable::round_robin(
        "facts",
        Schema::new(vec!["id", "g", "x"]).unwrap(),
        facts,
        &tree,
    ))
    .unwrap();
    ctx
}

fn workload() -> Vec<LogicalPlan> {
    vec![
        LogicalPlan::scan("facts").aggregate("g", AggFunc::Sum, "x"),
        LogicalPlan::scan("facts")
            .filter(col("x").lt(lit(200)))
            .aggregate("g", AggFunc::Count, "id"),
        LogicalPlan::scan("facts").order_by("x").limit(20),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn seeded_chaos_schedules_recover_bit_identically(seed in 0u64..1024) {
        let orch = Orchestrator::builder(chaos_context())
            .tenant(TenantSpec::new("t", 1, 64))
            .checkpoints(2)
            .build()
            .unwrap();
        let queries = workload();
        let reference: Vec<QueryResult> = queries
            .iter()
            .map(|q| chaos_context().prepare(q).unwrap().run().unwrap())
            .collect();

        // 3 plans vs the default 5-attempt budget: even if every fault
        // lands on one query, it recovers on attempt 4.
        let spec = ChaosSpec::new(seed).with_plans(3).with_max_round(3);
        let tree = orch.service().context().tree().clone();
        for plan in chaos::schedule(&tree, &spec) {
            orch.inject_faults(plan).unwrap();
        }

        for i in 0..6 {
            let k = i % queries.len();
            let served = orch
                .serve_as("t", &queries[k])
                .map_err(|e| TestCaseError::fail(format!("seed {seed}: {e}")))?;
            prop_assert_eq!(
                served.result.rows(false),
                reference[k].rows(false),
                "seed {}: rows diverged under chaos",
                seed
            );
            prop_assert_eq!(
                &served.result.cost.edge_totals,
                &reference[k].cost.edge_totals,
                "seed {}: metered ledger diverged under chaos",
                seed
            );
        }
        // Every recovery that resumed from a checkpoint replayed only
        // the tail: replayed + skipped = that run's supersteps, with a
        // strictly positive skip.
        for rec in orch.recovery_events() {
            if let (Some(from), Some(replayed)) = (rec.resumed_from, rec.replayed_supersteps) {
                prop_assert!(from > 0);
                prop_assert_eq!(rec.skipped_supersteps, from);
                prop_assert!(replayed > 0);
            }
        }
    }

    #[test]
    fn total_loss_exhausts_after_exactly_max_attempts(
        seed in 0u64..64,
        max_attempts in 1u32..4,
    ) {
        let orch = Orchestrator::builder(chaos_context())
            .tenant(TenantSpec::new("t", 1, 64))
            .retry(RetryPolicy::new(max_attempts))
            .build()
            .unwrap();
        let tree = orch.service().context().tree().clone();
        let computes = tree.compute_nodes().to_vec();

        // Total loss, re-armed across every retry: each armed plan kills
        // *every* compute node at superstep 0, and there are more plans
        // than the retry budget.
        for _ in 0..(max_attempts + 2) {
            let mut plan = FaultPlan::new();
            for &v in &computes {
                plan = plan.kill_worker(v, (seed % 2) as usize);
            }
            orch.inject_faults(plan).unwrap();
        }

        let err = orch.serve_as("t", &workload()[0]).unwrap_err();
        match err {
            QueryError::RecoveryExhausted { attempts, .. } => {
                prop_assert_eq!(attempts, max_attempts, "seed {}", seed);
            }
            other => return Err(TestCaseError::fail(format!("expected exhaustion, got {other}"))),
        }
        prop_assert_eq!(orch.recovery_events().len(), max_attempts as usize);
        // Every kill in the fired plan is logged: one event per compute
        // node per attempt.
        let fired = orch.fault_events().len();
        prop_assert_eq!(fired, max_attempts as usize * computes.len());

        // Exhaustion drained the surplus plans: the next serve runs on a
        // healthy crew with nothing armed.
        let clean = orch.serve_as("t", &workload()[0]).unwrap();
        prop_assert_eq!(
            clean.result.rows(false),
            chaos_context().prepare(&workload()[0]).unwrap().run().unwrap().rows(false)
        );
        prop_assert_eq!(orch.fault_events().len(), fired);
    }
}

#[test]
fn killed_pagerank_resumes_from_the_last_iteration_checkpoint() {
    // An iterative job checkpointed at its iteration barriers
    // (`checkpoints(rounds_per_iteration)` ≡
    // `CheckpointSpec::at_iteration_barriers`): a worker killed
    // mid-fixpoint resumes from the last completed iteration, replays
    // strictly fewer supersteps than a from-scratch run, and still lands
    // on bit-identical final ranks and ledger.
    let c = chaos_context();
    let tree = c.tree().clone();
    let g = GraphSpec::power_law(80, 420, 1.0).generate(9);
    let owners = VertexPartition::Blocked(PlacementStrategy::Uniform).owners(&tree, &g, 9);
    let job = IterativeJob::pagerank(
        g.arcs().to_vec(),
        owners,
        0.5,
        IterativeSpec::jacobi(30, 1e-3),
    );

    // Fault-free reference, and the job's iteration geometry.
    let prepared = job.prepare(&tree).unwrap();
    let rpi = prepared.rounds_per_iteration();
    assert!(prepared.iterations() >= 3, "scenario needs a real fixpoint");
    let reference = prepared.run(&tree).unwrap();

    let orch = Orchestrator::builder(chaos_context())
        .tenant(TenantSpec::new("graphs", 1, 4).with_priority(Priority::Batch))
        .checkpoints(rpi)
        .build()
        .unwrap();
    // Kill mid-second-iteration: the first iteration barrier is already
    // snapshotted when the worker dies.
    let victim = tree.compute_nodes()[1];
    orch.inject_faults(FaultPlan::new().kill_worker(victim, rpi + 1))
        .unwrap();

    let served = orch.serve_iterative("graphs", &job).unwrap();
    assert_eq!(served.outcome.values, reference.values, "ranks diverged");
    assert_eq!(served.outcome.cost.edge_totals, reference.cost.edge_totals);
    assert_eq!(served.outcome.iterations, reference.iterations);

    // Exactly one recovery, resumed from an iteration barrier.
    let recs = orch.recovery_events();
    assert_eq!(recs.len(), 1);
    let from = recs[0].resumed_from.expect("resumed from a checkpoint");
    assert!(
        from > 0 && from.is_multiple_of(rpi),
        "resume superstep {from} is not an iteration barrier (rpi {rpi})"
    );
    assert_eq!(recs[0].skipped_supersteps, from);
    let replayed = recs[0].replayed_supersteps.expect("successful replay");
    assert!(
        replayed < served.outcome.supersteps,
        "replay must skip the checkpointed prefix ({replayed} vs {})",
        served.outcome.supersteps
    );
    let cp = orch.checkpoint_stats().unwrap();
    assert_eq!((cp.saved, cp.resumed, cp.retained), (1, 1, 0));
}

#[test]
fn armed_plan_is_dropped_when_its_query_dies_before_the_trigger() {
    // Regression: an armed plan whose query errors before the trigger
    // superstep fires must fall with that query, not survive to fell the
    // next unrelated one.
    let orch = Orchestrator::builder(chaos_context())
        .tenant(TenantSpec::new("t", 1, 64))
        .build()
        .unwrap();
    let victim = orch.service().context().tree().compute_nodes()[0];
    orch.inject_faults(FaultPlan::new().kill_worker(victim, 0))
        .unwrap();

    // The doomed query dies at preparation — the armed kill never fires.
    let doomed = LogicalPlan::scan("no_such_table").aggregate("g", AggFunc::Sum, "x");
    let err = orch.serve_as("t", &doomed).unwrap_err();
    assert!(
        !matches!(err, QueryError::FaultInjected { .. }),
        "the plan must not fire on a query that never executed: {err}"
    );

    // The unrelated query must see a healthy crew: no fault, no recovery.
    let served = orch.serve_as("t", &workload()[0]).unwrap();
    let reference = chaos_context()
        .prepare(&workload()[0])
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(served.result.rows(false), reference.rows(false));
    assert!(orch.fault_events().is_empty(), "leaked armed plan fired");
    assert!(orch.recovery_events().is_empty());
}
