//! Tier-1 gate: the workspace must be lint-clean.
//!
//! `tamp-lint` enforces the determinism and safety invariants the whole
//! reproduction rests on (no unordered hash iteration in
//! schedule-emitting code, no wall clocks or unseeded RNG in
//! result-affecting modules, justified `unsafe`, total-order float
//! comparisons). Any violation fails this test with the full
//! `file:line:rule` report; suppressions need a
//! `// lint: allow(<rule>) — <reason>` annotation and show up in the
//! allow inventory below the diagnostics.

use tamp_lint::{scan_workspace, workspace_root};

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let report = scan_workspace(&root).expect("scan workspace sources");
    assert!(
        report.files > 100,
        "suspiciously few files scanned ({}) — is the walk broken?",
        report.files
    );
    assert!(
        report.is_clean(),
        "tamp-lint found violations:\n{}",
        report.render_text()
    );
    // Every live suppression must carry a reason (A0 enforces this at
    // scan time; keep the invariant visible here too).
    for a in &report.allows {
        assert!(
            !a.reason.is_empty(),
            "allow at {}:{} has no reason",
            a.file,
            a.line
        );
    }
}
