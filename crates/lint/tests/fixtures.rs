//! Golden self-test: every fixture in `crates/lint/fixtures/` is
//! scanned under a virtual in-scope path and its diagnostics must match
//! the `.expected` sidecar exactly. This is the regression harness for
//! the lint itself — seeding any of these snippets into a real crate
//! must reproduce the same `line:rule` findings.

use std::path::PathBuf;

use tamp_lint::scan_source;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Fixtures are scanned as if they lived in a schedule-emission module,
/// which is inside the scope of every rule (D1, D2, D3, S1, F1).
fn virtual_path(stem: &str) -> String {
    format!("crates/query/src/physical/strategies/{stem}.rs")
}

fn parse_expected(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

#[test]
fn fixtures_match_goldens() {
    let dir = fixtures_dir();
    let mut stems: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir exists")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "rs").then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    stems.sort();
    assert!(
        stems.len() >= 7,
        "fixture corpus shrank: only {stems:?} left"
    );

    for stem in &stems {
        let src = std::fs::read_to_string(dir.join(format!("{stem}.rs"))).unwrap();
        let golden = std::fs::read_to_string(dir.join(format!("{stem}.expected")))
            .unwrap_or_else(|_| panic!("fixture {stem}.rs has no {stem}.expected sidecar"));
        let report = scan_source(&virtual_path(stem), &src);
        let got: Vec<String> = report
            .diagnostics
            .iter()
            .map(|d| format!("{}:{}", d.line, d.rule.id()))
            .collect();
        let want = parse_expected(&golden);
        assert_eq!(
            got,
            want,
            "fixture {stem}.rs diverged from golden.\nfull report:\n{}",
            report.render_text()
        );
        // Diagnostics must carry the scanned path, so `file:line:rule`
        // output points at the right place.
        for d in &report.diagnostics {
            assert_eq!(d.file, virtual_path(stem));
        }
    }
}

#[test]
fn suppression_allow_inventory_is_itemized() {
    let dir = fixtures_dir();
    let src = std::fs::read_to_string(dir.join("suppression.rs")).unwrap();
    let report = scan_source(&virtual_path("suppression"), &src);

    // Exactly one allow survives: the well-formed, actually-used one.
    assert_eq!(report.allows.len(), 1, "{}", report.render_text());
    let a = &report.allows[0];
    assert_eq!(a.rule.id(), "D1");
    assert!(
        a.reason.contains("commutative") && a.reason.contains("reach the answer"),
        "multi-line reason was not stitched together: {:?}",
        a.reason
    );
    // And the rendered report itemizes it.
    let text = report.render_text();
    assert!(text.contains("allow(D1)"), "{text}");
    assert!(text.contains("commutative"), "{text}");
}

#[test]
fn clean_out_of_scope_paths_stay_silent() {
    // The same bad snippets scanned under an out-of-scope path (compat
    // shims) produce no D/F findings; S1 still applies everywhere.
    let dir = fixtures_dir();
    for stem in ["d1_unordered_iteration", "d2_wall_clock", "d3_unseeded_rng"] {
        let src = std::fs::read_to_string(dir.join(format!("{stem}.rs"))).unwrap();
        let report = scan_source(&format!("crates/compat/rand/src/{stem}.rs"), &src);
        assert!(
            report.is_clean(),
            "{stem} fired outside its scope:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn json_rendering_counts_agree() {
    let dir = fixtures_dir();
    let src = std::fs::read_to_string(dir.join("d2_wall_clock.rs")).unwrap();
    let report = scan_source(&virtual_path("d2_wall_clock"), &src);
    let json = report.render_json();
    assert!(json.contains(&format!("\"violations\": {}", report.diagnostics.len())));
    assert!(
        json.contains("\"D2\": {\"violations\": 4, \"allows\": 0}"),
        "{json}"
    );
}
