//! Lexer coverage: edge-case unit tests plus a lex-then-rejoin
//! roundtrip property. The lexer is *total-cover* — every byte of the
//! source lands in exactly one token — so `rejoin()` must reproduce the
//! input byte-for-byte on any input, including pathological ones.

use proptest::prelude::*;
use tamp_lint::lexer::{Lexed, Tok, TokKind};

fn roundtrip(src: &str) -> Lexed<'_> {
    let lexed = Lexed::lex(src);
    assert_eq!(lexed.rejoin(), src, "rejoin diverged for {src:?}");
    // Total cover: contiguous, in-order spans from 0 to len.
    let toks: &[Tok] = lexed.toks();
    let mut cursor = 0usize;
    for t in toks {
        assert_eq!(
            t.start, cursor,
            "gap before token at {} in {src:?}",
            t.start
        );
        assert!(t.end >= t.start);
        cursor = t.end;
    }
    assert_eq!(cursor, src.len(), "tokens do not cover {src:?}");
    lexed
}

fn kinds(lexed: &Lexed<'_>) -> Vec<TokKind> {
    lexed
        .toks()
        .iter()
        .filter(|t| t.kind != TokKind::Whitespace)
        .map(|t| t.kind)
        .collect()
}

#[test]
fn nested_block_comments_are_one_token() {
    let src = "a /* outer /* inner */ still outer */ b";
    let lexed = roundtrip(src);
    assert_eq!(
        kinds(&lexed),
        vec![TokKind::Ident, TokKind::BlockComment, TokKind::Ident]
    );
}

#[test]
fn raw_strings_any_hash_depth() {
    for src in [
        r####"let x = r"plain raw";"####,
        r####"let x = r#"one "quoted" hash"#;"####,
        r####"let x = r##"r#"inner opener ignored"# still"##;"####,
        "let x = br#\"byte raw\"#;",
    ] {
        let lexed = roundtrip(src);
        assert!(
            lexed.toks().iter().any(|t| t.kind == TokKind::RawStrLit),
            "no raw string token in {src:?}"
        );
        // Nothing inside the raw string leaks out as an ident.
        assert!(
            !lexed
                .toks()
                .iter()
                .any(|t| t.kind == TokKind::Ident && lexed.text(t) == "inner"),
            "raw string body leaked into idents for {src:?}"
        );
    }
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str, c: char) -> &'static str { let y = 'q'; x }";
    let lexed = roundtrip(src);
    let lifetimes: Vec<&str> = lexed
        .toks()
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| lexed.text(t))
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    let chars: Vec<&str> = lexed
        .toks()
        .iter()
        .filter(|t| t.kind == TokKind::CharLit)
        .map(|t| lexed.text(t))
        .collect();
    assert_eq!(chars, vec!["'q'"]);
}

#[test]
fn escapes_and_quotes_in_literals() {
    for src in [
        r#"let s = "escaped \" quote and \\ backslash";"#,
        r#"let c = '\''; let d = '"'; let e = '\\';"#,
        r#"let b = b"bytes \" here";"#,
        "let s = \"multi\nline\nstring\"; let after = 1;",
    ] {
        roundtrip(src);
    }
}

#[test]
fn multiline_string_line_numbers_keep_counting() {
    let src = "let s = \"a\nb\nc\";\nlet t = 1;";
    let lexed = roundtrip(src);
    let t_tok = lexed
        .toks()
        .iter()
        .find(|t| t.kind == TokKind::Ident && lexed.text(t) == "t")
        .expect("ident t");
    // The string spans lines 1-3, so `let t` sits on line 4.
    assert_eq!(t_tok.line, 4);
    assert_eq!(lexed.line_text(4), "let t = 1;");
}

#[test]
fn doc_comments_and_attributes_lex_cleanly() {
    let src = "//! inner doc\n/// outer doc with \"quote\n#[doc = \"attr string\"]\nfn f() {}\n";
    let lexed = roundtrip(src);
    let comments = lexed
        .toks()
        .iter()
        .filter(|t| t.kind == TokKind::LineComment)
        .count();
    assert_eq!(comments, 2);
}

#[test]
fn raw_identifiers_and_numbers() {
    for src in [
        "let r#match = 5; let x = r#match + 1;",
        "let a = 1.5e-3; let b = 0xFF; let c = 1_000_000u64; let d = 1..2;",
        "let tricky = 1.f64_method_not_a_float;",
    ] {
        roundtrip(src);
    }
}

#[test]
fn unterminated_constructs_still_cover_source() {
    // Malformed input must not panic or drop bytes: the open construct
    // just runs to end-of-file.
    for src in [
        "let s = \"never closed",
        "let r = r#\"never closed",
        "/* never closed /* nested",
        "let c = '",
        "r#",
    ] {
        roundtrip(src);
    }
}

#[test]
fn every_workspace_file_roundtrips() {
    // The strongest corpus we have is the codebase itself.
    let root = tamp_lint::workspace_root();
    let files = tamp_lint::walk::rust_files(&root).expect("walk workspace");
    assert!(files.len() > 100, "workspace walk found too few files");
    for path in files {
        let src = std::fs::read_to_string(&path).expect("read source");
        let lexed = Lexed::lex(&src);
        assert_eq!(lexed.rejoin(), src, "rejoin diverged for {path:?}");
    }
}

/// Vocabulary of source fragments for the random-composition property.
/// Deliberately adversarial: quote-bearing comments, comment-bearing
/// strings, raw strings with hashes, lifetimes next to chars.
const FRAGMENTS: &[&str] = &[
    "fn f() {}",
    "let x = 1;",
    "// line comment with \" quote and /* opener\n",
    "/* block /* nested */ with \"quote\" */",
    "\"string with // comment and /* block */ inside\"",
    "r#\"raw with \" and # inside\"#",
    "r##\"deeper \"# raw\"##",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "'x'",
    "'\\''",
    "'a",
    "&'static str",
    "1.5e-3",
    "0xDEAD_BEEF",
    "#[derive(Debug)]",
    "#[doc = \"Instant::now()\"]",
    "r#match",
    "ident_with_underscores",
    "::<>{}[]()",
    ".partial_cmp(x).unwrap()",
    "\n\n    ",
    "\t",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_fragment_compositions_roundtrip(
        picks in proptest::collection::vec(0usize..23, 0..12),
        sep in 0usize..3,
    ) {
        let sep = [" ", "\n", ""][sep];
        let src: String = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(sep);
        let lexed = Lexed::lex(&src);
        prop_assert_eq!(lexed.rejoin(), src);
    }
}
