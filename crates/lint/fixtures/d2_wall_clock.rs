// Fixture: D2 — wall-clock, thread-identity, and env reads in a
// result-affecting module. Every one of these can change an answer
// between two replays of the same prepared schedule.

fn observe() -> u64 {
    let t = std::time::Instant::now();
    let _ = t.elapsed();
    let s = std::time::SystemTime::now();
    let _ = s;
    7
}

fn who_am_i() -> String {
    format!("{:?}", std::thread::current().id())
}

fn config_from_env() -> Option<String> {
    std::env::var("TAMP_SEED").ok()
}

fn deterministic_ok(steps: u64) -> u64 {
    // Logical time derived from the schedule itself is fine.
    steps * 2
}
