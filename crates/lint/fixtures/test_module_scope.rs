// Fixture: rules D1–F1 are muted inside `#[cfg(test)]` modules; S1 is
// not (an unjustified unsafe block in a test is still unjustified).
use std::collections::HashMap;

fn live(m: &HashMap<u32, u32>) -> u32 {
    let mut total = 0;
    for v in m.values() {
        total += v;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_free_sum() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        // Unordered iteration in a test asserting an order-free fold.
        let total: u32 = m.values().sum();
        assert_eq!(total, 2);
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }

    #[test]
    fn still_needs_safety() {
        let x = 5u64;
        let p = &x as *const u64;
        let y = unsafe { *p };
        assert_eq!(y, 5);
    }
}
