// Fixture: D1 — unordered hash iteration in a schedule-emission module.
use std::collections::{BTreeMap, HashMap, HashSet};

fn emit(sends: &HashMap<u32, Vec<u64>>) {
    for (dst, rows) in sends.iter() {
        send(*dst, rows.len());
    }
    for dst in sends.keys() {
        send(*dst, 0);
    }
}

fn emit_direct(pending: HashSet<u32>) {
    // The bare for-loop form (no explicit `.iter()`) must fire too.
    for dst in pending {
        send(dst, 0);
    }
}

fn sanctioned(sends: HashMap<u32, Vec<u64>>) -> Vec<(u32, usize)> {
    // Routing through a sorted collect in the same statement is the fix.
    let ordered: BTreeMap<u32, Vec<u64>> = sends.into_iter().collect();
    let turbofish = ordered
        .iter()
        .map(|(d, r)| (*d, r.len()))
        .collect::<Vec<_>>();
    turbofish
}

fn also_sanctioned(sends: HashMap<u32, u64>) -> usize {
    sends.into_iter().collect::<BTreeMap<_, _>>().len()
}

fn send(_dst: u32, _n: usize) {}
