// Fixture: D3 — unseeded randomness outside compat/test code.

fn jitter() -> u64 {
    let mut r = rand::thread_rng();
    r.next_u64()
}

fn fresh() -> StdRng {
    StdRng::from_entropy()
}

fn os_backed() -> StdRng {
    let src = OsRng;
    StdRng::from_rng(src)
}

fn seeded_ok(seed: u64) -> StdRng {
    // Explicit seeds keep every replay on the same stream.
    StdRng::seed_from_u64(seed)
}
