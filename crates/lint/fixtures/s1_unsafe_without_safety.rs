// Fixture: S1 — every `unsafe` block or impl carries a `// SAFETY:`
// rationale on the preceding comment block (or the same line).

fn deref_bad(p: *const u64) -> u64 {
    unsafe { *p }
}

struct Handle(*mut u8);

unsafe impl Send for Handle {}

fn deref_ok(p: *const u64) -> u64 {
    // SAFETY: callers hand us a pointer into the arena, which outlives
    // this call by construction.
    unsafe { *p }
}

struct Token(u64);

// SAFETY: Token is a plain integer id; no thread affinity.
unsafe impl Sync for Token {}

fn trailing_ok(p: *const u64) -> u64 {
    unsafe { *p } // SAFETY: p is checked non-null by the caller.
}
