//! Fixture: lexer edge cases — every marker below sits inside a string,
//! comment, or attribute, so nothing may fire. `Instant::now()`,
//! `HashMap::iter()`, and `thread_rng()` in doc comments are prose.

// A plain comment mentioning SystemTime::now() and std::env::var("X").

#[doc = "Attribute strings: Instant::now(), thread_rng(), unsafe { }"]
fn strings_and_comments() -> usize {
    let plain = "Instant::now() and sends.iter() inside a string";
    let escaped = "a \"quoted\" partial_cmp(x).unwrap() marker";
    let raw = r#"thread_rng() and "nested quotes" and OsRng"#;
    let deep = r##"raw with # inside: SystemTime::now() r#"not a start"#"##;
    let bytes = b"env::var bytes with from_entropy()";
    let byte_raw = br#"unsafe { *p } in a byte-raw string"#;
    /* block comment: StdRng::from_entropy()
       /* nested block: for (k, v) in sends.iter() {} */
       still inside the outer comment: Instant::now() */
    let ch = '"';
    let hash_char = '#';
    let lifetime: &'static str = "SystemTime in a plain string";
    let multi = "a string
        that spans lines and mentions thread::current().id()";
    plain.len()
        + escaped.len()
        + raw.len()
        + deep.len()
        + bytes.len()
        + byte_raw.len()
        + multi.len()
        + (ch as usize)
        + (hash_char as usize)
        + lifetime.len()
}
