// Fixture: F1 — `.partial_cmp(..).unwrap()` on float costs panics the
// first time a NaN sneaks into an estimate; use `total_cmp`.

fn pick_worst(costs: &mut [f64]) -> f64 {
    costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    costs[0]
}

fn pick_best(costs: &mut [f64]) -> f64 {
    costs.sort_by(|a, b| b.partial_cmp(a).expect("finite costs"));
    costs[0]
}

fn pick_total(costs: &mut [f64]) -> f64 {
    // The fix: a total order that sorts NaN instead of panicking.
    costs.sort_by(|a, b| a.total_cmp(b));
    costs[0]
}

fn defaulted(a: f64, b: f64) -> std::cmp::Ordering {
    // Explicitly handling the None case is fine.
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}
