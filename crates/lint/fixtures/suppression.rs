// Fixture: the suppression grammar — a live allow with a reason, a
// reasonless allow (A0), an unknown rule id (A0), and an allow that
// suppresses nothing (A1).
use std::collections::HashMap;

fn good_allow(m: &HashMap<u32, u32>) -> u32 {
    // lint: allow(D1) — fixture: the caller folds with a commutative
    // sum, so emission order cannot reach the answer.
    m.values().sum()
}

fn reasonless(m: &HashMap<u32, u32>) -> u32 {
    // lint: allow(D1)
    m.values().sum()
}

fn unknown_rule() -> u32 {
    // lint: allow(Q9) — no such rule.
    42
}

fn unused_allow() -> u64 {
    // lint: allow(D2) — nothing below reads a clock.
    let steps = 7;
    steps * 2
}
