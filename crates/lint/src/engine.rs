//! The scan driver: file discovery, suppression handling, and report
//! assembly.
//!
//! ## Suppression
//!
//! A violation is silenced by an explicit annotation on the preceding
//! line (or trailing on the same line):
//!
//! ```text
//! // lint: allow(D1) — the sort happens two statements later, inside
//! //                    this helper's contract
//! for (k, v) in map.iter() { … }
//! ```
//!
//! The reason is **mandatory** — an allow without one is itself a
//! violation ([`RuleId::A0`]), and an allow that suppresses nothing is
//! too ([`RuleId::A1`]) — so the suppression budget stays visible:
//! every live allow is itemized in the report with its file, rule, and
//! reason.

use std::collections::BTreeMap;
use std::path::Path;

use crate::lexer::Lexed;
use crate::rules::{self, FileCtx, Finding, RuleId};

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: RuleId,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// One live `// lint: allow(..)` suppression.
#[derive(Clone, Debug)]
pub struct AllowSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the allow comment.
    pub line: u32,
    /// The rule it suppresses.
    pub rule: RuleId,
    /// The stated reason (never empty; enforced by `A0`).
    pub reason: String,
}

/// The outcome of a scan: violations plus the allow inventory.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Violations, ordered by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Every live suppression, ordered by (file, line).
    pub allows: Vec<AllowSite>,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

impl Report {
    /// `true` when the scan found no violations.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Per-rule `(violations, allows)` counts, for the bench table and
    /// the JSON summary.
    pub fn rule_counts(&self) -> BTreeMap<RuleId, (usize, usize)> {
        let mut counts: BTreeMap<RuleId, (usize, usize)> = BTreeMap::new();
        for r in RuleId::ALL {
            counts.insert(r, (0, 0));
        }
        for d in &self.diagnostics {
            counts.entry(d.rule).or_default().0 += 1;
        }
        for a in &self.allows {
            counts.entry(a.rule).or_default().1 += 1;
        }
        counts
    }

    /// Render the human-readable report: diagnostics with fix hints,
    /// then the allow-site inventory, then a one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}:{} — {}\n    | {}\n    hint: {}\n",
                d.file,
                d.line,
                d.rule.id(),
                d.rule.summary(),
                d.excerpt,
                d.rule.hint()
            ));
        }
        if self.allows.is_empty() {
            out.push_str("allow sites: none\n");
        } else {
            out.push_str(&format!("allow sites ({}):\n", self.allows.len()));
            for a in &self.allows {
                out.push_str(&format!(
                    "  {}:{} allow({}) — {}\n",
                    a.file,
                    a.line,
                    a.rule.id(),
                    a.reason
                ));
            }
        }
        out.push_str(&format!(
            "tamp-lint: {} violation{}, {} allow site{}, {} file{} scanned\n",
            self.diagnostics.len(),
            plural(self.diagnostics.len()),
            self.allows.len(),
            plural(self.allows.len()),
            self.files,
            plural(self.files),
        ));
        out
    }

    /// Render a machine-readable JSON summary (dependency-free, like
    /// the bench baseline's emitter).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"violations\": {},\n  \"allow_sites\": {},\n  \"files\": {},\n",
            self.diagnostics.len(),
            self.allows.len(),
            self.files
        ));
        out.push_str("  \"rules\": {");
        let counts = self.rule_counts();
        let entries: Vec<String> = counts
            .iter()
            .map(|(r, (v, a))| format!("\"{}\": {{\"violations\": {v}, \"allows\": {a}}}", r.id()))
            .collect();
        out.push_str(&entries.join(", "));
        out.push_str("},\n  \"diagnostics\": [\n");
        let diags: Vec<String> = self
            .diagnostics
            .iter()
            .map(|d| {
                format!(
                    "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"excerpt\": \"{}\"}}",
                    json_escape(&d.file),
                    d.line,
                    d.rule.id(),
                    json_escape(&d.excerpt)
                )
            })
            .collect();
        out.push_str(&diags.join(",\n"));
        out.push_str("\n  ],\n  \"allows\": [\n");
        let allows: Vec<String> = self
            .allows
            .iter()
            .map(|a| {
                format!(
                    "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}",
                    json_escape(&a.file),
                    a.line,
                    a.rule.id(),
                    json_escape(&a.reason)
                )
            })
            .collect();
        out.push_str(&allows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed `// lint: allow(..)` comment, before matching.
struct ParsedAllow {
    line: u32,
    /// The line the allow applies to: its own line if it trails code,
    /// otherwise the next line bearing a significant token.
    target_line: u32,
    rule: Option<RuleId>,
    reason: String,
}

/// Scan one source file (already read) under its workspace-relative
/// path. Used directly by the fixture self-tests with virtual paths.
pub fn scan_source(rel_path: &str, src: &str) -> Report {
    let lexed = Lexed::lex(src);
    let ctx = FileCtx::new(rel_path, &lexed);
    let mut findings: Vec<Finding> = rules::check_file(&ctx)
        .into_iter()
        .filter(|v| !rules::finding_in_test_module(&ctx, v))
        .collect();

    let mut allows = parse_allows(&ctx);
    let mut used = vec![false; allows.len()];
    findings.retain(|v| {
        for (i, a) in allows.iter().enumerate() {
            if a.rule == Some(v.rule) && a.target_line == v.line {
                used[i] = true;
                return false;
            }
        }
        true
    });

    let mut report = Report {
        files: 1,
        ..Report::default()
    };
    for v in findings {
        report.diagnostics.push(Diagnostic {
            file: rel_path.to_string(),
            line: v.line,
            rule: v.rule,
            excerpt: lexed.line_text(v.line).trim().to_string(),
        });
    }
    for (i, a) in allows.drain(..).enumerate() {
        match a.rule {
            // Malformed: unknown rule id or missing reason.
            None => report.diagnostics.push(Diagnostic {
                file: rel_path.to_string(),
                line: a.line,
                rule: RuleId::A0,
                excerpt: lexed.line_text(a.line).trim().to_string(),
            }),
            Some(_) if a.reason.is_empty() => report.diagnostics.push(Diagnostic {
                file: rel_path.to_string(),
                line: a.line,
                rule: RuleId::A0,
                excerpt: lexed.line_text(a.line).trim().to_string(),
            }),
            Some(_) if !used[i] => report.diagnostics.push(Diagnostic {
                file: rel_path.to_string(),
                line: a.line,
                rule: RuleId::A1,
                excerpt: lexed.line_text(a.line).trim().to_string(),
            }),
            Some(rule) => report.allows.push(AllowSite {
                file: rel_path.to_string(),
                line: a.line,
                rule,
                reason: a.reason,
            }),
        }
    }
    report.diagnostics.sort_by_key(|d| (d.line, d.rule));
    report
}

/// Extract every `// lint: allow(<rule>) — <reason>` comment.
fn parse_allows(ctx: &FileCtx<'_>) -> Vec<ParsedAllow> {
    const MARKER: &str = "lint: allow(";
    let mut out = Vec::new();
    let toks = ctx.lexed.toks();
    for (i, t) in toks.iter().enumerate() {
        // Suppressions are plain `//` comments whose body *starts* with
        // the marker; doc comments (`///`, `//!`) can therefore talk
        // about the syntax without activating it.
        if t.kind != crate::lexer::TokKind::LineComment {
            continue;
        }
        let text = ctx.lexed.text(t);
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let body = text.trim_start_matches('/').trim_start();
        if !body.starts_with(MARKER) {
            continue;
        }
        let rest = &body[MARKER.len()..];
        let (rule_txt, after) = match rest.split_once(')') {
            Some((r, a)) => (r.trim(), a),
            None => (rest.trim(), ""),
        };
        let rule = RuleId::parse(rule_txt);
        let mut reason = after
            .trim_start()
            .trim_start_matches(['—', '-', '–', ':'])
            .trim()
            .to_string();
        // A reason may wrap onto continuation `//` comment lines.
        for next in &toks[i + 1..] {
            match next.kind {
                crate::lexer::TokKind::Whitespace => continue,
                crate::lexer::TokKind::LineComment => {
                    let nt = ctx.lexed.text(next);
                    let nb = nt.trim_start_matches('/').trim();
                    if nt.starts_with("///") || nt.starts_with("//!") || nb.starts_with(MARKER) {
                        break;
                    }
                    if !reason.is_empty() {
                        reason.push(' ');
                    }
                    reason.push_str(nb);
                }
                _ => break,
            }
        }
        out.push(ParsedAllow {
            line: t.line,
            target_line: allow_target_line(ctx, t.line),
            rule,
            reason,
        });
    }
    out
}

/// The line an allow on `line` applies to: `line` itself when it trails
/// code, else the next line bearing a significant token (other allow
/// comments and blank lines in between are skipped naturally).
fn allow_target_line(ctx: &FileCtx<'_>, line: u32) -> u32 {
    let mut next = u32::MAX;
    for k in 0..ctx.sig_len() {
        if let Some(t) = ctx.sig_tok(k) {
            if t.line == line {
                return line;
            }
            if t.line > line && t.line < next {
                next = t.line;
            }
        }
    }
    next
}

/// Scan every workspace `.rs` file under `root` (skipping `target/`,
/// hidden directories, and the lint's own `fixtures/` corpus).
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let files = crate::walk::rust_files(root)?;
    let mut merged = Report::default();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let r = scan_source(&rel, &src);
        merged.diagnostics.extend(r.diagnostics);
        merged.allows.extend(r.allows);
        merged.files += 1;
    }
    merged
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    merged
        .allows
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(merged)
}
