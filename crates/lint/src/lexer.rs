//! A hand-rolled, dependency-free Rust lexer.
//!
//! The lint engine needs exactly one guarantee from its front end: a
//! `HashMap` mentioned inside a string literal, a comment, or a
//! `#[doc = "…"]` attribute must never look like code. So the lexer
//! splits a source file into a *total* sequence of spans — every byte of
//! the input lands in exactly one token, and concatenating the token
//! texts reproduces the file verbatim (pinned by a proptest in
//! `tests/lexer_roundtrip.rs`). Classification is deliberately coarse
//! (keywords are just [`TokKind::Ident`]s; all punctuation is
//! single-char [`TokKind::Punct`]s); what matters is that the
//! *boundaries* of comments, strings (escaped, raw, byte), char
//! literals, and lifetimes are exact, because those are the places a
//! naive `grep` would produce false positives.
//!
//! Handled edge cases:
//!
//! - nested block comments (`/* a /* b */ c */` is one token),
//! - raw strings with any hash depth (`r#"…"#`, `br##"…"##`) and raw
//!   identifiers (`r#match`),
//! - escaped quotes and backslashes in string/char literals,
//! - lifetimes vs char literals (`'a` vs `'a'`, including `'static`),
//! - multi-line strings (line numbers stay correct across them).

/// Coarse token classification; see the module docs for the contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// A run of whitespace (including newlines).
    Whitespace,
    /// A `// …` comment, excluding the trailing newline. Doc comments
    /// (`///`, `//!`) are line comments too.
    LineComment,
    /// A `/* … */` comment, with nesting.
    BlockComment,
    /// An identifier or keyword (including raw identifiers, `r#match`).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A char or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// A (possibly byte) string literal with escapes (`"…"`, `b"…"`).
    StrLit,
    /// A raw (possibly byte) string literal (`r"…"`, `br##"…"##`).
    RawStrLit,
    /// A numeric literal, including suffixes and exponents.
    NumLit,
    /// A single punctuation character.
    Punct,
}

/// One token: a classified byte span of the source plus its 1-based
/// starting line.
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    /// What the span is.
    pub kind: TokKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Tok {
    /// `true` for tokens rules should skip (whitespace and comments).
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

/// A lexed source file: the source plus its total token cover.
pub struct Lexed<'a> {
    src: &'a str,
    toks: Vec<Tok>,
    /// Byte offset where each 1-based line starts (`line_starts[0]` is
    /// line 1).
    line_starts: Vec<usize>,
}

impl<'a> Lexed<'a> {
    /// Tokenize `src` (never fails: unterminated constructs extend to
    /// end of file).
    pub fn lex(src: &'a str) -> Lexed<'a> {
        let mut lx = Lexer {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            toks: Vec::new(),
        };
        lx.run();
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Lexed {
            src,
            toks: lx.toks,
            line_starts,
        }
    }

    /// The token cover, in source order.
    pub fn toks(&self) -> &[Tok] {
        &self.toks
    }

    /// The source slice of a token.
    pub fn text(&self, t: &Tok) -> &'a str {
        &self.src[t.start..t.end]
    }

    /// Concatenation of every token text — equals the source by
    /// construction (the roundtrip property).
    pub fn rejoin(&self) -> String {
        self.toks.iter().map(|t| self.text(t)).collect()
    }

    /// The full text of a 1-based line (without its newline), for
    /// diagnostics. Empty for out-of-range lines.
    pub fn line_text(&self, line: u32) -> &'a str {
        let idx = line.saturating_sub(1) as usize;
        let Some(&start) = self.line_starts.get(idx) else {
            return "";
        };
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|&next| next.saturating_sub(1))
            .unwrap_or(self.src.len());
        &self.src[start..end.max(start)]
    }
}

struct Lexer<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(o, _)| o)
            .unwrap_or(self.src.len())
    }

    /// Consume one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        self.toks.push(Tok {
            kind,
            start,
            end: self.offset(),
            line,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let start = self.offset();
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    while self.peek(0).is_some_and(char::is_whitespace) {
                        self.bump();
                    }
                    self.push(TokKind::Whitespace, start, line);
                }
                '/' if self.peek(1) == Some('/') => {
                    while self.peek(0).is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                    self.push(TokKind::LineComment, start, line);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(0), self.peek(1)) {
                            (Some('/'), Some('*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => break,
                        }
                    }
                    self.push(TokKind::BlockComment, start, line);
                }
                'r' | 'b' if self.raw_or_byte_start() => {}
                '\'' => self.lifetime_or_char(start, line),
                '"' => {
                    self.bump();
                    self.escaped_string_body();
                    self.push(TokKind::StrLit, start, line);
                }
                c if is_ident_start(c) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push(TokKind::Ident, start, line);
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokKind::NumLit, start, line);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, start, line);
                }
            }
        }
    }

    /// At `r`/`b`: lex a raw string, byte string, byte char, or raw
    /// identifier if one starts here; otherwise return `false` and let
    /// the ident path handle it.
    fn raw_or_byte_start(&mut self) -> bool {
        let start = self.offset();
        let line = self.line;
        let c0 = self.peek(0);
        // Prefix shapes: r"…", r#…#"…"#…#, r#ident, b"…", b'…', br…
        let (raw_at, byte) = match (c0, self.peek(1)) {
            (Some('r'), _) => (1usize, false),
            (Some('b'), Some('r')) => (2usize, true),
            (Some('b'), Some('"')) => {
                self.bump();
                self.bump();
                self.escaped_string_body();
                self.push(TokKind::StrLit, start, line);
                return true;
            }
            (Some('b'), Some('\'')) => {
                self.bump();
                self.bump();
                self.escaped_char_body();
                self.push(TokKind::CharLit, start, line);
                return true;
            }
            _ => return false,
        };
        // Count hashes after the (b)r prefix.
        let mut hashes = 0usize;
        while self.peek(raw_at + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(raw_at + hashes) {
            Some('"') => {
                for _ in 0..raw_at + hashes + 1 {
                    self.bump();
                }
                // Scan to `"` followed by `hashes` hashes.
                'scan: while let Some(c) = self.peek(0) {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if self.peek(1 + k) != Some('#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for _ in 0..hashes + 1 {
                                self.bump();
                            }
                            break 'scan;
                        }
                    }
                    self.bump();
                }
                self.push(TokKind::RawStrLit, start, line);
                true
            }
            Some(c) if !byte && hashes == 1 && is_ident_start(c) => {
                // Raw identifier `r#match`.
                self.bump();
                self.bump();
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.push(TokKind::Ident, start, line);
                true
            }
            _ => false,
        }
    }

    /// Past the opening quote of a `"`/`b"` string: consume through the
    /// closing quote, honoring backslash escapes.
    fn escaped_string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Past the opening quote of a `'`/`b'` char literal: consume
    /// through the closing quote, honoring backslash escapes.
    fn escaped_char_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    /// At `'`: a lifetime iff an identifier follows and is *not* closed
    /// by another quote (`'a,` is a lifetime; `'a'` is a char).
    fn lifetime_or_char(&mut self, start: usize, line: u32) {
        if self.peek(1).is_some_and(is_ident_start) {
            // Find the end of the identifier run.
            let mut k = 2;
            while self.peek(k).is_some_and(is_ident_continue) {
                k += 1;
            }
            if self.peek(k) != Some('\'') {
                self.bump(); // '
                for _ in 1..k {
                    self.bump();
                }
                self.push(TokKind::Lifetime, start, line);
                return;
            }
        }
        self.bump();
        self.escaped_char_body();
        self.push(TokKind::CharLit, start, line);
    }

    /// At a digit: consume one numeric literal (hex/suffixes/exponents
    /// included; `1..2` keeps the range dots out of the number).
    fn number(&mut self) {
        self.bump();
        loop {
            match self.peek(0) {
                Some(c) if is_ident_continue(c) => {
                    let exp = c == 'e' || c == 'E';
                    self.bump();
                    // `1e-3` / `2E+8`: the sign belongs to the literal.
                    if exp
                        && matches!(self.peek(0), Some('+') | Some('-'))
                        && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                    {
                        self.bump();
                    }
                }
                // A dot joins the literal only when a digit follows
                // (`1.5`), never for ranges (`1..5`) or methods
                // (`1.max(2)`).
                Some('.') if self.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                    self.bump();
                }
                _ => break,
            }
        }
    }
}
