//! # tamp-lint
//!
//! A dependency-free static-analysis pass enforcing the workspace's
//! determinism and safety invariants, CI-gated.
//!
//! The whole reproduction rests on one invariant: **prepared schedules
//! replay bit-identically** across backends, retries, checkpoints, and
//! chaos seeds. That invariant is easy to break silently — PR 8 shipped
//! a latent bug where exchange strategies emitted sends by iterating
//! grouping `HashMap`s, so two executions of the same pinned plan
//! produced differently-ordered schedules and a faulted run's parked
//! checkpoint could never match its own retry. The defect class is
//! structural (any unordered iteration, clock read, or unseeded RNG in
//! result-affecting code), so it is enforced structurally: this crate
//! tokenizes every `.rs` file in the workspace with a hand-rolled
//! [`lexer`] (comments, strings, and attributes are understood, so a
//! `HashMap` in a doc string never fires) and runs the [`rules`] over
//! the token stream.
//!
//! The rule table, scoping model, and how to add a rule live in the
//! [`rules`] module docs. Suppression syntax and the allow-budget
//! mechanics live in the [`engine`] module docs.
//!
//! Shipped three ways:
//!
//! - `cargo run -p tamp-lint` — the CLI (add `--json` for tooling);
//!   exits non-zero on any violation and always prints the allow-site
//!   inventory,
//! - `tests/lint.rs` at the workspace root — the tier-1 gate asserting
//!   zero violations,
//! - the `x-lint` experiment suite — violation/allow counts tracked in
//!   `BENCH_baseline.json` so the suppression budget's trajectory is
//!   visible over time.
//!
//! The lint itself is regression-tested against a fixture corpus of
//! known-bad snippets with golden diagnostics (`fixtures/`, exercised
//! by `tests/fixtures.rs`), and the lexer's span arithmetic is pinned
//! by a lex-then-rejoin roundtrip proptest (`tests/lexer_roundtrip.rs`).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod engine;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use engine::{scan_source, scan_workspace, AllowSite, Diagnostic, Report};
pub use rules::RuleId;

use std::path::PathBuf;

/// The workspace root this crate was built in — the default scan root
/// for the CLI, the tier-1 test, and the bench suite.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}
