//! Deterministic workspace file discovery (std-only).

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// Every `.rs` file under `root`, in sorted order (so reports and the
/// tier-1 test are byte-stable across filesystems). Skips build output
/// (`target/`), VCS internals, and the lint's own known-bad `fixtures/`
/// corpus.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
