//! The `tamp-lint` CLI.
//!
//! ```text
//! cargo run -p tamp-lint                 # human-readable report
//! cargo run -p tamp-lint -- --json      # machine-readable summary
//! cargo run -p tamp-lint -- --root=DIR  # scan another workspace root
//! ```
//!
//! Exit status: `0` when the workspace is clean, `1` on any violation,
//! `2` on usage errors. The allow-site inventory is always printed, so
//! the suppression budget stays visible in CI logs.

use std::path::PathBuf;

fn main() {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else if let Some(path) = arg.strip_prefix("--root=") {
            root = Some(PathBuf::from(path));
        } else {
            eprintln!("usage: tamp-lint [--json] [--root=DIR]");
            std::process::exit(2);
        }
    }
    let root = root.unwrap_or_else(tamp_lint::workspace_root);
    let report = match tamp_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tamp-lint: failed to scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    std::process::exit(i32::from(!report.is_clean()));
}
