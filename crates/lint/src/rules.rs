//! The rule set: each rule encodes one repo invariant and cites the
//! incident (or near-incident) that motivates it.
//!
//! | Rule | Invariant | Motivating bug |
//! |------|-----------|----------------|
//! | `D1` | No unordered `HashMap`/`HashSet` iteration in schedule-emission / trace-building modules | PR 8's drain-order fix: strategies emitted sends by iterating grouping `HashMap`s, so two executions of the same pinned plan hashed to different schedule tokens and a faulted run could never match its parked checkpoint |
//! | `D2` | No wall-clock, thread-identity, or environment reads in result-affecting modules | the straggler watchdog reads `Instant::now` legitimately — but the same call inside a strategy or the meter would make replays diverge; the allow-listed timing paths (`service.rs`, `admission.rs`, `orchestrator/`) are excluded by scope, everything else must stay ledger-driven |
//! | `D3` | No unseeded RNG construction outside `compat`/test code | every generator in the workspace is `seed_from_u64`-seeded; one `thread_rng()` in a workload generator would break `(spec, seed) → identical arcs+owners` determinism |
//! | `S1` | Every `unsafe` block / `unsafe impl` carries a `// SAFETY:` comment | `pool.rs`'s lifetime-laundered job dispatch is sound only because `run_with` joins the crew before returning — an argument that lives in its `SAFETY` comments and must never silently disappear |
//! | `F1` | No `.partial_cmp(..).unwrap()` / `.expect(..)` on floats outside tests | float cost comparators must use the `f64::total_cmp` total order: a NaN cost (e.g. an empty estimate) panics the comparator mid-plan instead of losing the tie-break deterministically |
//!
//! Two bookkeeping rules police the suppression mechanism itself:
//! `A0` fires on a `// lint: allow(..)` without a reason, and `A1`
//! fires on an allow that suppresses nothing (stale annotations are
//! debt, not documentation).
//!
//! ## Scoping model
//!
//! Rules apply by *module scope*, not globally — the point is to gate
//! the code whose output feeds checkpoint tokens and parity tests,
//! while leaving timing-stats and harness code free to read clocks:
//!
//! - `D1` scans the schedule-emission and trace-building modules
//!   ([`d1_in_scope`]); `drain_sorted` or a same-statement sorted
//!   collect (`sort*` / `BTreeMap` / `BTreeSet`) is the sanctioned
//!   route.
//! - `D2` scans the result-affecting crates (`tamp-core`,
//!   `tamp-simulator`, `tamp-topology`, `tamp-workloads`,
//!   `tamp-runtime`, and `tamp-query` minus the allow-listed
//!   timing-stats modules) — see [`d2_in_scope`].
//! - `D3` scans everything except `crates/compat/` and test code.
//! - `S1` scans everything.
//! - `F1` scans everything except `crates/compat/` and test code.
//!
//! Test code means `tests/` directories, `#[cfg(test)]` modules
//! (detected in the token stream), and the lint's own fixture corpus.
//!
//! ## Adding a rule
//!
//! 1. Add a variant to [`RuleId`] with its id, summary, and fix hint.
//! 2. Write a checker `fn check_xx(f: &FileCtx) -> Vec<Finding>` over
//!    the significant-token stream (use [`FileCtx::sig_text`]; trivia,
//!    strings, and attribute interiors are already filtered or
//!    flagged).
//! 3. Call it from [`check_file`] behind its scope predicate.
//! 4. Add a known-bad fixture + golden `.expected` under `fixtures/`
//!    so the rule itself is regression-tested.

use crate::lexer::{Lexed, Tok, TokKind};

/// Identifier of one lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Unordered hash-collection iteration in schedule-emitting code.
    D1,
    /// Wall-clock / thread-identity / env read in result-affecting code.
    D2,
    /// Unseeded RNG construction.
    D3,
    /// `unsafe` without a `// SAFETY:` rationale.
    S1,
    /// `.partial_cmp(..).unwrap()`-style float comparison.
    F1,
    /// Malformed suppression: `// lint: allow(..)` without a reason.
    A0,
    /// Stale suppression: an allow that suppresses nothing.
    A1,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 7] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::S1,
        RuleId::F1,
        RuleId::A0,
        RuleId::A1,
    ];

    /// The rule's short id, as printed in diagnostics and written in
    /// `// lint: allow(..)` suppressions.
    pub fn id(&self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::S1 => "S1",
            RuleId::F1 => "F1",
            RuleId::A0 => "A0",
            RuleId::A1 => "A1",
        }
    }

    /// Parse a rule id as written in an allow suppression.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.id() == s)
    }

    /// One-line summary of the invariant.
    pub fn summary(&self) -> &'static str {
        match self {
            RuleId::D1 => "unordered HashMap/HashSet iteration in schedule-emitting code",
            RuleId::D2 => "wall-clock/thread-identity/env read in result-affecting code",
            RuleId::D3 => "unseeded RNG construction",
            RuleId::S1 => "unsafe without a SAFETY rationale",
            RuleId::F1 => "partial_cmp().unwrap() on floats",
            RuleId::A0 => "lint allow without a reason",
            RuleId::A1 => "lint allow that suppresses nothing",
        }
    }

    /// One-line fix hint, printed under each diagnostic.
    pub fn hint(&self) -> &'static str {
        match self {
            RuleId::D1 => {
                "route through drain_sorted(..) or a sorted collect (BTreeMap / sort before use): \
                 RandomState order differs per map, so emitted schedules would not replay"
            }
            RuleId::D2 => {
                "derive the value from metered ledgers or plumb it in as data; clocks, thread ids \
                 and env vars differ across replays (timing stats belong in service/admission/\
                 orchestrator, which are allow-listed by scope)"
            }
            RuleId::D3 => "seed it: StdRng::seed_from_u64(seed); unseeded RNGs break replay",
            RuleId::S1 => "add `// SAFETY: <why the invariant holds>` on the line(s) above",
            RuleId::F1 => {
                "use the total order: f64::total_cmp (optionally .then_with(..) tie-breaks) \
                 instead of partial_cmp().unwrap()/expect() — a NaN panics mid-plan"
            }
            RuleId::A0 => "write `// lint: allow(<rule>) — <reason>`; the reason is mandatory",
            RuleId::A1 => "remove the stale allow (or fix its rule id): it suppresses nothing",
        }
    }
}

/// One rule violation inside a single file (pre-suppression).
#[derive(Clone, Debug)]
pub struct Finding {
    /// 1-based line of the offending token.
    pub line: u32,
    /// Which rule fired.
    pub rule: RuleId,
}

/// A lexed file plus the derived context every checker needs.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-normalized.
    pub rel_path: &'a str,
    /// The token cover.
    pub lexed: &'a Lexed<'a>,
    /// Indices (into `lexed.toks()`) of significant tokens — everything
    /// except whitespace and comments.
    pub sig: Vec<usize>,
    /// `in_attr[k]` is `true` when significant token `k` sits inside a
    /// `#[…]` / `#![…]` attribute (so `#[doc = "HashMap"]` never fires).
    pub in_attr: Vec<bool>,
    /// Inclusive line ranges covered by `#[cfg(test)] mod … { … }`.
    pub test_ranges: Vec<(u32, u32)>,
}

impl<'a> FileCtx<'a> {
    /// Build the context for one lexed file.
    pub fn new(rel_path: &'a str, lexed: &'a Lexed<'a>) -> FileCtx<'a> {
        let toks = lexed.toks();
        let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_trivia()).collect();
        let mut ctx = FileCtx {
            rel_path,
            lexed,
            sig,
            in_attr: Vec::new(),
            test_ranges: Vec::new(),
        };
        ctx.in_attr = ctx.mark_attributes();
        ctx.test_ranges = ctx.find_test_ranges();
        ctx
    }

    /// The significant token at index `k`, if any.
    pub fn sig_tok(&self, k: usize) -> Option<&Tok> {
        self.sig.get(k).map(|&i| &self.lexed.toks()[i])
    }

    /// The text of significant token `k` (empty past the end).
    pub fn sig_text(&self, k: usize) -> &'a str {
        match self.sig.get(k) {
            Some(&i) => self.lexed.text(&self.lexed.toks()[i]),
            None => "",
        }
    }

    /// Number of significant tokens.
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    /// `true` when line `l` is inside a `#[cfg(test)]` module.
    pub fn in_test_lines(&self, l: u32) -> bool {
        self.test_ranges.iter().any(|&(a, b)| l >= a && l <= b)
    }

    fn mark_attributes(&self) -> Vec<bool> {
        let mut flags = vec![false; self.sig.len()];
        let mut k = 0;
        while k < self.sig.len() {
            let opens_attr = self.sig_text(k) == "#"
                && (self.sig_text(k + 1) == "["
                    || (self.sig_text(k + 1) == "!" && self.sig_text(k + 2) == "["));
            if opens_attr {
                let open = if self.sig_text(k + 1) == "[" {
                    k + 1
                } else {
                    k + 2
                };
                let mut depth = 0usize;
                let mut j = open;
                while j < self.sig.len() {
                    match self.sig_text(j) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                for f in flags.iter_mut().take(j.min(self.sig.len() - 1) + 1).skip(k) {
                    *f = true;
                }
                k = j + 1;
            } else {
                k += 1;
            }
        }
        flags
    }

    /// Line ranges of `#[cfg(test)] mod name { … }` bodies.
    fn find_test_ranges(&self) -> Vec<(u32, u32)> {
        let mut ranges = Vec::new();
        let n = self.sig.len();
        for k in 0..n {
            // `# [ cfg ( test`
            if !(self.sig_text(k) == "#"
                && self.sig_text(k + 1) == "["
                && self.sig_text(k + 2) == "cfg"
                && self.sig_text(k + 3) == "("
                && self.sig_text(k + 4) == "test")
            {
                continue;
            }
            // Find the attribute's closing `]`.
            let mut depth = 0usize;
            let mut j = k + 1;
            while j < n {
                match self.sig_text(j) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // Skip further attributes / visibility up to `mod` (bounded
            // so a stray cfg(test) on an fn does not scan the file).
            let mut m = j + 1;
            let mut hops = 0;
            while m < n && hops < 24 {
                match self.sig_text(m) {
                    "mod" => break,
                    "#" | "[" | "]" | "pub" | "(" | ")" | "crate" => {
                        m += 1;
                        hops += 1;
                    }
                    _ => break,
                }
            }
            if self.sig_text(m) != "mod" {
                continue;
            }
            // `mod name {` … match braces to the end of the module.
            let Some(open) = (m..n.min(m + 4)).find(|&q| self.sig_text(q) == "{") else {
                continue;
            };
            let mut bdepth = 0usize;
            let mut q = open;
            while q < n {
                match self.sig_text(q) {
                    "{" => bdepth += 1,
                    "}" => {
                        bdepth -= 1;
                        if bdepth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                q += 1;
            }
            let start = self.sig_tok(open).map(|t| t.line).unwrap_or(1);
            let end = self
                .sig_tok(q.min(n.saturating_sub(1)))
                .map(|t| t.line)
                .unwrap_or(u32::MAX);
            ranges.push((start, end));
        }
        ranges
    }
}

// ---------------------------------------------------------------------
// Scoping predicates (paths are workspace-relative, `/`-normalized).
// ---------------------------------------------------------------------

/// Test code by *path*: integration test dirs and the fixture corpus.
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.contains("/fixtures/")
}

/// The offline crates-io stand-ins.
pub fn is_compat_path(path: &str) -> bool {
    path.starts_with("crates/compat/")
}

/// Schedule-emission and trace-building modules: the code whose output
/// order feeds checkpoint tokens and cross-backend parity.
pub fn d1_in_scope(path: &str) -> bool {
    const SCOPE: [&str; 7] = [
        "crates/query/src/physical/",
        "crates/query/src/exec/",
        "crates/query/src/iterative.rs",
        "crates/query/src/batch.rs",
        "crates/runtime/src/jobs.rs",
        "crates/runtime/src/checkpoint.rs",
        "crates/simulator/src/trace.rs",
    ];
    SCOPE.iter().any(|s| path.starts_with(s))
}

/// Result-affecting crates/modules; the timing-stats paths
/// (`service.rs`, `admission.rs`, `orchestrator/`) are allow-listed by
/// exclusion, per the scoping model in the module docs.
pub fn d2_in_scope(path: &str) -> bool {
    const ALLOW_LISTED: [&str; 3] = [
        "crates/query/src/service.rs",
        "crates/query/src/admission.rs",
        "crates/query/src/orchestrator/",
    ];
    const SCOPE: [&str; 6] = [
        "crates/core/src/",
        "crates/simulator/src/",
        "crates/topology/src/",
        "crates/workloads/src/",
        "crates/runtime/src/",
        "crates/query/src/",
    ];
    SCOPE.iter().any(|s| path.starts_with(s)) && !ALLOW_LISTED.iter().any(|s| path.starts_with(s))
}

/// Everywhere except the compat stand-ins (which wrap "real" RNG API)
/// and test code.
pub fn d3_in_scope(path: &str) -> bool {
    !is_compat_path(path) && !is_test_path(path)
}

/// Everywhere except compat and test code.
pub fn f1_in_scope(path: &str) -> bool {
    !is_compat_path(path) && !is_test_path(path)
}

// ---------------------------------------------------------------------
// Checkers.
// ---------------------------------------------------------------------

/// Run every applicable rule over one file. Suppressions are handled by
/// the engine, not here.
pub fn check_file(f: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    if d1_in_scope(f.rel_path) && !is_test_path(f.rel_path) {
        out.extend(check_d1(f));
    }
    if d2_in_scope(f.rel_path) && !is_test_path(f.rel_path) {
        out.extend(check_d2(f));
    }
    if d3_in_scope(f.rel_path) {
        out.extend(check_d3(f));
    }
    out.extend(check_s1(f));
    if f1_in_scope(f.rel_path) {
        out.extend(check_f1(f));
    }
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// Should this finding be skipped as test-module code? (`S1` is exempt:
/// unsafe in tests still needs a rationale.)
pub fn finding_in_test_module(f: &FileCtx<'_>, finding: &Finding) -> bool {
    finding.rule != RuleId::S1 && f.in_test_lines(finding.line)
}

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];
const SORTED_ROUTES: [&str; 9] = [
    "drain_sorted",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
];

/// D1 — unordered hash iteration in schedule-emitting modules.
///
/// Two detectors over identifiers whose declaration mentions a hash
/// collection (`let m: HashMap<..> = ..`, `m = HashMap::new()`, params
/// and fields `m: &mut HashMap<..>`):
///
/// - `m.iter() / keys / values / drain / into_iter / …`, unless the
///   *same statement* routes through a sorted collect,
/// - `for x in m { .. }` (including `&m` / `&mut m`).
pub fn check_d1(f: &FileCtx<'_>) -> Vec<Finding> {
    let marked = hash_typed_idents(f);
    if marked.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let n = f.sig_len();
    for k in 0..n {
        if f.in_attr.get(k).copied().unwrap_or(false) {
            continue;
        }
        let t = f.sig_text(k);
        // Method-call form.
        if marked.iter().any(|m| m == t)
            && f.sig_text(k + 1) == "."
            && ITER_METHODS.contains(&f.sig_text(k + 2))
            && f.sig_text(k + 3) == "("
            && !statement_routes_sorted(f, k)
        {
            out.push(Finding {
                line: f.sig_tok(k).map(|t| t.line).unwrap_or(1),
                rule: RuleId::D1,
            });
        }
        // `for pat in [&[mut]] m {` form (the method form above already
        // catches `for x in m.keys()`).
        if t == "for" {
            if let Some((expr_start, expr_end)) = for_loop_expr(f, k) {
                let mut e = expr_start;
                while e < expr_end && (f.sig_text(e) == "&" || f.sig_text(e) == "mut") {
                    e += 1;
                }
                if e + 1 == expr_end && marked.iter().any(|m| m == f.sig_text(e)) {
                    out.push(Finding {
                        line: f.sig_tok(e).map(|t| t.line).unwrap_or(1),
                        rule: RuleId::D1,
                    });
                }
            }
        }
    }
    out
}

/// Identifiers whose declaration (let binding, param, or field) mentions
/// `HashMap`/`HashSet`. A per-file over-approximation: shadowing and
/// cross-file types are out of reach for a lexer-level pass, which is
/// exactly why `// lint: allow(D1)` exists for the false positives.
fn hash_typed_idents(f: &FileCtx<'_>) -> Vec<String> {
    let mut marked: Vec<String> = Vec::new();
    let n = f.sig_len();
    for k in 0..n {
        if f.in_attr.get(k).copied().unwrap_or(false) {
            continue;
        }
        // `let [mut] name … HashMap … ;`
        if f.sig_text(k) == "let" {
            let mut m = k + 1;
            if f.sig_text(m) == "mut" {
                m += 1;
            }
            let name = f.sig_text(m);
            if !is_plain_ident(f, m) || name == "self" {
                continue;
            }
            let mut depth = 0i32;
            for j in m + 1..n.min(m + 200) {
                match f.sig_text(j) {
                    "(" | "{" | "[" => depth += 1,
                    ")" | "}" | "]" => depth -= 1,
                    ";" if depth <= 0 => break,
                    t if HASH_TYPES.contains(&t) => {
                        push_unique(&mut marked, name);
                        break;
                    }
                    _ => {}
                }
            }
        }
        // `name : [&] [mut] … HashMap` (params, fields).
        if f.sig_text(k + 1) == ":" && is_plain_ident(f, k) && f.sig_text(k) != "self" {
            let mut angle = 0i32;
            for j in k + 2..n.min(k + 64) {
                match f.sig_text(j) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "," | ")" | ";" | "{" | "=" | "|" if angle <= 0 => break,
                    t if HASH_TYPES.contains(&t) => {
                        push_unique(&mut marked, f.sig_text(k));
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
    marked
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}

/// Is significant token `k` an identifier (not a keyword-ish structural
/// token we never want to mark)?
fn is_plain_ident(f: &FileCtx<'_>, k: usize) -> bool {
    f.sig_tok(k).is_some_and(|t| t.kind == TokKind::Ident)
        && !matches!(
            f.sig_text(k),
            "let" | "mut" | "pub" | "fn" | "if" | "else" | "match" | "return" | "ref"
        )
}

/// Does the statement containing significant token `k` route through a
/// sanctioned sorted collect (`drain_sorted`, `sort*`, `BTreeMap`,
/// `BTreeSet`)? Scans the whole statement — backward to the previous
/// `;`/`{`/`}` and forward to the terminating `;` (both bounded) — so
/// both `collect::<BTreeMap<_, _>>()` and an annotated
/// `let m: BTreeMap<_, _> = x.into_iter().collect();` qualify.
fn statement_routes_sorted(f: &FileCtx<'_>, k: usize) -> bool {
    let n = f.sig_len();
    let mut depth = 0i32;
    for j in k..n.min(k + 200) {
        match f.sig_text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" if depth <= 0 => break,
            t if SORTED_ROUTES.contains(&t) => return true,
            _ => {}
        }
    }
    let mut depth = 0i32;
    let mut j = k;
    for _ in 0..200 {
        if j == 0 {
            break;
        }
        j -= 1;
        match f.sig_text(j) {
            ")" | "]" => depth += 1,
            "(" | "[" => depth -= 1,
            ";" | "{" | "}" if depth <= 0 => break,
            t if SORTED_ROUTES.contains(&t) => return true,
            _ => {}
        }
    }
    false
}

/// For a `for` at significant index `k`, the significant-token range
/// `[start, end)` of the iterated expression (between `in` and the loop
/// body `{`).
fn for_loop_expr(f: &FileCtx<'_>, k: usize) -> Option<(usize, usize)> {
    let n = f.sig_len();
    let mut depth = 0i32;
    let mut in_at = None;
    for j in k + 1..n.min(k + 64) {
        match f.sig_text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth <= 0 => {
                in_at = Some(j);
                break;
            }
            "{" => return None,
            _ => {}
        }
    }
    let start = in_at? + 1;
    let mut depth = 0i32;
    for j in start..n.min(start + 96) {
        match f.sig_text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth <= 0 => return Some((start, j)),
            _ => {}
        }
    }
    None
}

/// D2 — wall-clock / thread-identity / environment reads.
pub fn check_d2(f: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for k in 0..f.sig_len() {
        if f.in_attr.get(k).copied().unwrap_or(false) {
            continue;
        }
        if f.sig_tok(k).map(|t| t.kind) != Some(TokKind::Ident) {
            continue;
        }
        let t = f.sig_text(k);
        let fires = match t {
            "Instant" => f.sig_text(k + 1) == ":" && f.sig_text(k + 3) == "now",
            "SystemTime" | "ThreadId" => true,
            "thread" => f.sig_text(k + 1) == ":" && f.sig_text(k + 3) == "current",
            "env" => {
                f.sig_text(k + 1) == ":"
                    && matches!(
                        f.sig_text(k + 3),
                        "var" | "vars" | "var_os" | "vars_os" | "args" | "args_os"
                    )
            }
            _ => false,
        };
        if fires {
            out.push(Finding {
                line: f.sig_tok(k).map(|t| t.line).unwrap_or(1),
                rule: RuleId::D2,
            });
        }
    }
    out
}

/// D3 — unseeded RNG construction.
pub fn check_d3(f: &FileCtx<'_>) -> Vec<Finding> {
    const UNSEEDED: [&str; 5] = [
        "thread_rng",
        "from_entropy",
        "from_os_rng",
        "from_rng",
        "OsRng",
    ];
    let mut out = Vec::new();
    for k in 0..f.sig_len() {
        if f.in_attr.get(k).copied().unwrap_or(false) {
            continue;
        }
        if f.sig_tok(k).map(|t| t.kind) == Some(TokKind::Ident) && UNSEEDED.contains(&f.sig_text(k))
        {
            out.push(Finding {
                line: f.sig_tok(k).map(|t| t.line).unwrap_or(1),
                rule: RuleId::D3,
            });
        }
    }
    out
}

/// S1 — `unsafe` blocks and `unsafe impl`s need a `// SAFETY:` comment
/// on the line(s) directly above (or trailing on the same line).
pub fn check_s1(f: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for k in 0..f.sig_len() {
        if f.sig_text(k) != "unsafe" || f.in_attr.get(k).copied().unwrap_or(false) {
            continue;
        }
        // `unsafe {` (block) or `unsafe impl` — `unsafe fn` declarations
        // are governed by `unsafe_op_in_unsafe_fn`, whose interior
        // blocks land back here.
        let next = f.sig_text(k + 1);
        if next != "{" && next != "impl" {
            continue;
        }
        let line = f.sig_tok(k).map(|t| t.line).unwrap_or(1);
        if !has_safety_comment_above(f, line) {
            out.push(Finding {
                line,
                rule: RuleId::S1,
            });
        }
    }
    out
}

/// Is there a `SAFETY` comment attached to `line` — trailing on the
/// line itself, or in the contiguous comment block directly above it?
fn has_safety_comment_above(f: &FileCtx<'_>, line: u32) -> bool {
    if f.lexed.line_text(line).contains("SAFETY") {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let text = f.lexed.line_text(l);
        let trimmed = text.trim_start();
        let is_comment = trimmed.starts_with("//") || trimmed.starts_with('*');
        if !is_comment {
            // Also accept the tail of a block comment (`… */`).
            if !trimmed.ends_with("*/") && !trimmed.starts_with("/*") {
                return false;
            }
        }
        if text.contains("SAFETY") {
            return true;
        }
        if l == 1 {
            return false;
        }
        l -= 1;
    }
    false
}

/// F1 — `.partial_cmp(..)` chained straight into `.unwrap()` /
/// `.expect(..)`.
pub fn check_f1(f: &FileCtx<'_>) -> Vec<Finding> {
    let n = f.sig_len();
    let mut out = Vec::new();
    for k in 0..n {
        if f.sig_text(k) != "partial_cmp"
            || f.sig_text(k.wrapping_sub(1)) != "."
            || f.sig_text(k + 1) != "("
            || f.in_attr.get(k).copied().unwrap_or(false)
        {
            continue;
        }
        // Skip the balanced argument list.
        let mut depth = 0i32;
        let mut j = k + 1;
        while j < n {
            match f.sig_text(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if f.sig_text(j + 1) == "." && matches!(f.sig_text(j + 2), "unwrap" | "expect") {
            out.push(Finding {
                line: f.sig_tok(k).map(|t| t.line).unwrap_or(1),
                rule: RuleId::F1,
            });
        }
    }
    out
}
