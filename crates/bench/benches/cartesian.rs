//! Criterion benches for cartesian product (Table 1, row 2): the tree
//! protocol, the star wHC, the unequal-size variant, and the uniform
//! HyperCube baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tamp_core::cartesian::{
    unequal::GeneralizedStarCartesianProduct, TreeCartesianProduct, UniformHyperCube,
    WeightedHyperCube,
};
use tamp_simulator::run_protocol;
use tamp_topology::builders;
use tamp_workloads::{PlacementStrategy, SetSpec};

fn bench_cartesian(c: &mut Criterion) {
    let mut group = c.benchmark_group("cartesian");
    group.sample_size(10);
    for &n in &[4_000usize, 16_000] {
        let star = builders::heterogeneous_star(&[1.0, 2.0, 4.0, 8.0, 8.0, 16.0]);
        let tree = builders::fat_tree(2, 3, 1.0);
        let w = SetSpec::new(n / 2, n / 2).generate(2);
        let p_star = PlacementStrategy::Uniform.place(&star, &w, 2);
        let p_tree = PlacementStrategy::Uniform.place(&tree, &w, 2);
        group.bench_with_input(BenchmarkId::new("whc-star", n), &n, |b, _| {
            b.iter(|| {
                let run = run_protocol(&star, &p_star, &WeightedHyperCube::new()).unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
        group.bench_with_input(BenchmarkId::new("tree-cp", n), &n, |b, _| {
            b.iter(|| {
                let run = run_protocol(&tree, &p_tree, &TreeCartesianProduct::new()).unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
        group.bench_with_input(BenchmarkId::new("uniform-hypercube", n), &n, |b, _| {
            b.iter(|| {
                let run = run_protocol(&tree, &p_tree, &UniformHyperCube::new()).unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
        let w_uneq = SetSpec::new(n / 16, n).generate(3);
        let p_uneq = PlacementStrategy::Uniform.place(&star, &w_uneq, 3);
        group.bench_with_input(BenchmarkId::new("unequal-star", n), &n, |b, _| {
            b.iter(|| {
                let run =
                    run_protocol(&star, &p_uneq, &GeneralizedStarCartesianProduct::new()).unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cartesian);
criterion_main!(benches);
