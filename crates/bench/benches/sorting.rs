//! Criterion benches for sorting (Table 1, row 3): weighted TeraSort vs
//! classic TeraSort, including the adversarial Theorem-6 placement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tamp_core::sorting::{adversarial_placement, TeraSort, WeightedTeraSort};
use tamp_simulator::run_protocol;
use tamp_topology::{builders, NodeId};
use tamp_workloads::{PlacementStrategy, SortSpec};

fn bench_sorting(c: &mut Criterion) {
    let mut group = c.benchmark_group("sorting");
    group.sample_size(10);
    for &n in &[8_000usize, 32_000] {
        let tree = builders::rack_tree(&[(4, 4.0, 2.0), (4, 4.0, 1.0)], 1.0);
        let w = SortSpec::new(n).generate(1);
        let p = PlacementStrategy::Zipf { alpha: 0.8 }.place(&tree, &w, 1);
        group.bench_with_input(BenchmarkId::new("weighted-terasort", n), &n, |b, _| {
            b.iter(|| {
                let run = run_protocol(&tree, &p, &WeightedTeraSort::new(9)).unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
        group.bench_with_input(BenchmarkId::new("terasort", n), &n, |b, _| {
            b.iter(|| {
                let run = run_protocol(&tree, &p, &TeraSort::new(9)).unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
        let sizes = vec![n as u64 / 8; 8];
        let adv = adversarial_placement(&tree, NodeId(8), &sizes);
        group.bench_with_input(BenchmarkId::new("wts-adversarial", n), &n, |b, _| {
            b.iter(|| {
                let run = run_protocol(&tree, &adv, &WeightedTeraSort::new(9)).unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sorting);
criterion_main!(benches);
