//! Criterion benches for the aggregation extension: the three all-to-one
//! protocols and the distributed group-by on thin-core rack trees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tamp_core::aggregate::{
    encode, Aggregator, CombiningTreeAggregate, FlatPartialAggregate, HashGroupBy, NaiveAggregate,
};
use tamp_simulator::{run_protocol, Placement, Rel};
use tamp_topology::builders;

fn grouped_placement(tree: &tamp_topology::Tree, groups: u64, per_group: u64) -> Placement {
    let mut p = Placement::empty(tree);
    for &v in tree.compute_nodes() {
        for g in 0..groups {
            for rep in 0..per_group {
                p.push(v, Rel::R, encode(g, rep + 1));
            }
        }
    }
    p
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation");
    group.sample_size(10);
    let tree = builders::rack_tree(&[(4, 4.0, 0.25), (4, 4.0, 0.25), (4, 4.0, 0.25)], 1.0);
    let target = tree.compute_nodes()[0];
    for &groups in &[16u64, 64] {
        let p = grouped_placement(&tree, groups, 8);
        group.bench_with_input(BenchmarkId::new("naive", groups), &groups, |b, _| {
            b.iter(|| {
                let run =
                    run_protocol(&tree, &p, &NaiveAggregate::new(target, Aggregator::Sum)).unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
        group.bench_with_input(BenchmarkId::new("flat-partial", groups), &groups, |b, _| {
            b.iter(|| {
                let run = run_protocol(
                    &tree,
                    &p,
                    &FlatPartialAggregate::new(target, Aggregator::Sum),
                )
                .unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
        group.bench_with_input(BenchmarkId::new("combining", groups), &groups, |b, _| {
            b.iter(|| {
                let run = run_protocol(
                    &tree,
                    &p,
                    &CombiningTreeAggregate::new(target, Aggregator::Sum),
                )
                .unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("hash-group-by", groups),
            &groups,
            |b, _| {
                b.iter(|| {
                    let run =
                        run_protocol(&tree, &p, &HashGroupBy::new(3, Aggregator::Sum)).unwrap();
                    black_box(run.cost.tuple_cost())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
