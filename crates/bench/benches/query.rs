//! Criterion benches for the relational query layer: full analytics
//! pipelines and the weighted-vs-uniform join shuffle under skew.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tamp_query::prelude::*;
use tamp_topology::builders;

fn make_catalog(rows: u64, skew: bool) -> Catalog {
    let tree = builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0, 4.0, 4.0]);
    let heavy = tree.compute_nodes()[0];
    let mut c = Catalog::new(tree);
    let facts: Vec<Vec<u64>> = (0..rows).map(|i| vec![i, i % 8, (i * 13) % 1000]).collect();
    let schema = Schema::new(vec!["id", "g", "x"]).unwrap();
    let table = if skew {
        DistributedTable::skewed("facts", schema, facts, c.tree(), heavy, 0.9)
    } else {
        DistributedTable::round_robin("facts", schema, facts, c.tree())
    };
    c.register(table).unwrap();
    let dims: Vec<Vec<u64>> = (0..8).map(|g| vec![g, g % 3]).collect();
    c.register(DistributedTable::round_robin(
        "dims",
        Schema::new(vec!["g", "tier"]).unwrap(),
        dims,
        c.tree(),
    ))
    .unwrap();
    c
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    group.sample_size(10);
    for &n in &[1_000u64, 4_000] {
        let catalog = make_catalog(n, false);
        let q = LogicalPlan::scan("facts")
            .filter(col("x").gt(lit(250)))
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .aggregate("tier", AggFunc::Sum, "x")
            .order_by("tier");
        group.bench_with_input(BenchmarkId::new("analytics-pipeline", n), &n, |b, _| {
            b.iter(|| {
                let res = execute(&catalog, &q, ExecOptions::default()).unwrap();
                black_box(res.cost.tuple_cost())
            })
        });

        let skewed = make_catalog(n, true);
        let join = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        for (name, strat) in [
            ("join-weighted", JoinStrategy::Weighted),
            ("join-uniform", JoinStrategy::Uniform),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let res = execute(
                        &skewed,
                        &join,
                        ExecOptions {
                            join: strat,
                            seed: 1,
                            ..ExecOptions::default()
                        },
                    )
                    .unwrap();
                    black_box(res.cost.tuple_cost())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
