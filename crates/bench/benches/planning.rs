//! Criterion benches for the planning substrates: balanced partition
//! (Algorithm 3), square packing (Lemma 5 / Algorithm 5), G† construction
//! and the lower-bound evaluators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tamp_core::cartesian::{cartesian_lower_bound, plan_tree_packing, plan_whc};
use tamp_core::intersection::{balanced_partition, intersection_lower_bound};
use tamp_topology::{builders, Dagger};
use tamp_workloads::{PlacementStrategy, SetSpec};

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("planning");
    group.sample_size(20);
    for &p in &[16usize, 64, 256] {
        let tree = builders::random_tree(p, p / 2, 0.5, 16.0, 5);
        let w = SetSpec::new(1_000, 7_000).generate(5);
        let placement = PlacementStrategy::Zipf { alpha: 1.0 }.place(&tree, &w, 5);
        let stats = placement.stats();
        group.bench_with_input(BenchmarkId::new("balanced-partition", p), &p, |b, _| {
            b.iter(|| black_box(balanced_partition(&tree, &stats.n, stats.total_r)))
        });
        group.bench_with_input(BenchmarkId::new("dagger", p), &p, |b, _| {
            b.iter(|| black_box(Dagger::build(&tree, &stats.n)))
        });
        group.bench_with_input(BenchmarkId::new("tree-packing", p), &p, |b, _| {
            b.iter(|| black_box(plan_tree_packing(&tree, &stats.n, stats.total_n())))
        });
        group.bench_with_input(BenchmarkId::new("lower-bounds", p), &p, |b, _| {
            b.iter(|| {
                black_box(intersection_lower_bound(&tree, &stats).value());
                black_box(cartesian_lower_bound(&tree, &stats).value());
            })
        });
    }
    for &p in &[16usize, 64, 256] {
        let caps: Vec<f64> = (0..p).map(|i| 1.0 + (i % 7) as f64).collect();
        let star = builders::heterogeneous_star(&caps);
        group.bench_with_input(BenchmarkId::new("whc-packing", p), &p, |b, _| {
            b.iter(|| black_box(plan_whc(&star, 100_000, None)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
