//! Criterion benches for set intersection (Table 1, row 1): simulator
//! throughput of the paper's algorithm vs the topology-agnostic baseline
//! across topologies and input sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tamp_core::intersection::{intersection_lower_bound, TreeIntersect, UniformHashJoin};
use tamp_simulator::run_protocol;
use tamp_topology::builders;
use tamp_workloads::{PlacementStrategy, SetSpec};

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection");
    group.sample_size(10);
    for &n in &[4_000usize, 16_000] {
        let tree = builders::rack_tree(&[(4, 4.0, 2.0), (4, 4.0, 1.0)], 1.0);
        let w = SetSpec::new(n / 4, 3 * n / 4)
            .with_intersection(n / 16)
            .generate(1);
        let p = PlacementStrategy::Zipf { alpha: 1.0 }.place(&tree, &w, 1);
        group.bench_with_input(BenchmarkId::new("tree-intersect", n), &n, |b, _| {
            b.iter(|| {
                let run = run_protocol(&tree, &p, &TreeIntersect::new(7)).unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
        group.bench_with_input(BenchmarkId::new("uniform-baseline", n), &n, |b, _| {
            b.iter(|| {
                let run = run_protocol(&tree, &p, &UniformHashJoin::new(7)).unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
        group.bench_with_input(BenchmarkId::new("lower-bound", n), &n, |b, _| {
            b.iter(|| black_box(intersection_lower_bound(&tree, &p.stats()).value()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intersection);
criterion_main!(benches);
