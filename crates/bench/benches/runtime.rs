//! Wall-clock benches for the execution backends: the centralized cost
//! simulator vs the pooled message-passing cluster running the same
//! paired job through the one `ExecBackend` API (the simulator only
//! meters costs; the cluster also pays pool synchronization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tamp_core::hashing::mix64;
use tamp_runtime::{jobs, ExecBackend, PooledClusterBackend, SimulatorBackend};
use tamp_simulator::{Placement, Rel};
use tamp_topology::builders;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    for &n in &[2_000u64, 8_000] {
        let tree = builders::rack_tree(&[(3, 1.0, 2.0), (3, 2.0, 4.0)], 1.0);
        let mut p = Placement::empty(&tree);
        let vc = tree.compute_nodes();
        for a in 0..n / 4 {
            p.push(vc[(mix64(a) % vc.len() as u64) as usize], Rel::R, a);
        }
        for a in 0..3 * n / 4 {
            let val = n / 8 + a;
            p.push(vc[(mix64(val ^ 7) % vc.len() as u64) as usize], Rel::S, val);
        }
        let job = jobs::tree_intersect(5);
        let backends: [(&str, Box<dyn ExecBackend>); 2] = [
            ("simulator", Box::new(SimulatorBackend)),
            ("pooled-cluster", Box::new(PooledClusterBackend::default())),
        ];
        for (name, backend) in &backends {
            group.bench_with_input(BenchmarkId::new(*name, n), &n, |b, _| {
                b.iter(|| {
                    let run = backend.execute(&tree, &p, &job).unwrap();
                    black_box(run.cost.tuple_cost())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
