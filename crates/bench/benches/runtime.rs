//! Criterion benches for the threaded runtime: wall-clock of the real
//! message-passing execution vs the centralized cost simulation for the
//! same protocols (the simulator meters costs; the runtime also pays
//! thread synchronization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tamp_core::hashing::mix64;
use tamp_core::intersection::TreeIntersect;
use tamp_runtime::programs::DistributedTreeIntersect;
use tamp_runtime::{run_cluster, ClusterOptions};
use tamp_simulator::{run_protocol, Placement, Rel};
use tamp_topology::builders;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    for &n in &[2_000u64, 8_000] {
        let tree = builders::rack_tree(&[(3, 1.0, 2.0), (3, 2.0, 4.0)], 1.0);
        let mut p = Placement::empty(&tree);
        let vc = tree.compute_nodes();
        for a in 0..n / 4 {
            p.push(vc[(mix64(a) % vc.len() as u64) as usize], Rel::R, a);
        }
        for a in 0..3 * n / 4 {
            let val = n / 8 + a;
            p.push(vc[(mix64(val ^ 7) % vc.len() as u64) as usize], Rel::S, val);
        }
        group.bench_with_input(BenchmarkId::new("simulator", n), &n, |b, _| {
            b.iter(|| {
                let run = run_protocol(&tree, &p, &TreeIntersect::new(5)).unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
        group.bench_with_input(BenchmarkId::new("threaded-cluster", n), &n, |b, _| {
            b.iter(|| {
                let run = run_cluster(
                    &tree,
                    &p,
                    |_| Box::new(DistributedTreeIntersect::new(5)),
                    ClusterOptions::default(),
                )
                .unwrap();
                black_box(run.cost.tuple_cost())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
