//! X-BATCH — the columnar record-batch engine vs the tuple interpreter.
//!
//! The query layer used to execute every operator row-at-a-time: one
//! recursive [`Expr`] interpreter dispatch per row per node, one
//! `Vec<Value>` allocation per produced row, one `HashMap` probe per
//! joined row. The columnar engine replaces that with record batches —
//! shared `Arc<[Value]>` columns — and column-at-a-time kernels: tight
//! per-column loops with selection masking for filters, refcount bumps
//! for projections of existing columns, and an open-addressed
//! multiplicative-hash table for the join build/probe.
//!
//! Both engines run the **same** prepared plan, the same strategy
//! traces, the same metered exchanges; the planner-level parity
//! proptests pin their rows and ledgers bit-identical. This suite
//! measures only what changes: engine throughput, in rows processed per
//! millisecond, on a filter-heavy scan and a join-heavy probe. The
//! deterministic `metered cost` column doubles as an in-suite parity
//! check — both engines must meter the identical cost.

use std::time::Instant;

use tamp_query::prelude::*;
use tamp_topology::builders;

use crate::table::{fnum, Table};

/// Fact-table rows for the filter-heavy scenario.
const FILTER_ROWS: u64 = 120_000;
/// Fact-table rows for the join-heavy scenario.
const JOIN_ROWS: u64 = 60_000;
/// Dimension rows for the join-heavy scenario (the broadcast side).
const DIM_ROWS: u64 = 16;
/// Timed repetitions per engine (the plan is prepared once).
const REPS: usize = 3;

/// One benchmark scenario: a catalog and a query over it.
struct Scenario {
    name: &'static str,
    ctx: QueryContext,
    query: LogicalPlan,
    /// Input rows the engine scans per execution (for the rows/ms rate).
    input_rows: u64,
}

/// Filter-heavy: a wide 8-column fact table on a 4-machine star, a
/// compound arithmetic predicate keeping ~1% of the rows, then a
/// 3-column projection with fresh arithmetic. No exchange ships more
/// than the survivors, so the engines' scan/filter/project kernels
/// dominate the wall time.
fn filter_heavy() -> Scenario {
    let tree = builders::star(4, 4.0);
    let mut ctx = QueryContext::new(tree);
    let rows: Vec<Vec<u64>> = (0..FILTER_ROWS)
        .map(|i| {
            vec![
                i,
                i % 97,
                (i * 31) % 1009,
                (i * 7) % 64,
                i % 13,
                (i * 3) % 501,
                i % 5,
                (i * 11) % 2003,
            ]
        })
        .collect();
    ctx.register(DistributedTable::round_robin(
        "facts",
        Schema::new(vec!["id", "a", "b", "c", "d", "e", "f", "g"]).unwrap(),
        rows,
        ctx.tree(),
    ))
    .unwrap();
    let query = LogicalPlan::scan("facts")
        .filter(
            col("b")
                .mul(lit(3))
                .add(col("a"))
                .rem(lit(1013))
                .lt(lit(11))
                .and(col("c").gt(lit(4))),
        )
        .project(vec![
            ("id", col("id")),
            ("score", col("b").mul(lit(5)).add(col("e"))),
            ("bucket", col("g").rem(lit(17))),
        ]);
    Scenario {
        name: "filter-heavy",
        ctx,
        query,
        input_rows: FILTER_ROWS,
    }
}

/// Join-heavy: a 60 000-row fact table joined with a 16-row dimension
/// (the planner broadcasts the dimension), keying so only 1 fact row in
/// 16 matches. The exchange ships 16 rows; the per-node hash probe over
/// every fact row dominates.
fn join_heavy() -> Scenario {
    let tree = builders::star(4, 4.0);
    let mut ctx = QueryContext::new(tree);
    let facts: Vec<Vec<u64>> = (0..JOIN_ROWS)
        .map(|i| vec![i, i % (DIM_ROWS * 16), (i * 13) % 999])
        .collect();
    let dims: Vec<Vec<u64>> = (0..DIM_ROWS).map(|g| vec![g, g % 4]).collect();
    ctx.register(DistributedTable::round_robin(
        "facts",
        Schema::new(vec!["id", "g", "x"]).unwrap(),
        facts,
        ctx.tree(),
    ))
    .unwrap();
    ctx.register(DistributedTable::round_robin(
        "dims",
        Schema::new(vec!["g", "tier"]).unwrap(),
        dims,
        ctx.tree(),
    ))
    .unwrap();
    let query = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
    Scenario {
        name: "join-heavy",
        ctx,
        query,
        input_rows: JOIN_ROWS,
    }
}

/// Best-of-`REPS` wall time for one prepared query, plus its result.
fn time_engine(ctx: &QueryContext, query: &LogicalPlan) -> (f64, QueryResult) {
    let prepared = ctx.prepare(query).unwrap();
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = prepared.run().unwrap();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        result = Some(r);
    }
    (best, result.unwrap())
}

/// The throughput table: each scenario once per engine.
fn engine_table() -> Table {
    let mut t = Table::new(
        "X-BATCH: columnar record-batch engine vs tuple interpreter \
         (same plans, same exchanges, same ledgers)",
        &[
            "workload",
            "rows",
            "out rows",
            "tuple ms",
            "columnar ms",
            "tuple rows/ms",
            "columnar rows/ms",
            "speedup",
            "metered cost",
        ],
    );
    for scenario in [filter_heavy(), join_heavy()] {
        let tuple_ctx = QueryContext::with_catalog(scenario.ctx.catalog().clone())
            .with_exec_mode(ExecMode::Tuple);
        let col_ctx = QueryContext::with_catalog(scenario.ctx.catalog().clone())
            .with_exec_mode(ExecMode::Columnar);
        let (tuple_ms, tuple_res) = time_engine(&tuple_ctx, &scenario.query);
        let (col_ms, col_res) = time_engine(&col_ctx, &scenario.query);
        // The engines must agree exactly before their times mean anything.
        assert_eq!(
            tuple_res.rows(false),
            col_res.rows(false),
            "{}: engines disagree on rows",
            scenario.name
        );
        assert_eq!(
            tuple_res.cost.edge_totals, col_res.cost.edge_totals,
            "{}: engines disagree on the metered ledger",
            scenario.name
        );
        let rate_t = scenario.input_rows as f64 / tuple_ms.max(1e-9);
        let rate_c = scenario.input_rows as f64 / col_ms.max(1e-9);
        t.row(vec![
            scenario.name.into(),
            scenario.input_rows.to_string(),
            col_res.rows(false).len().to_string(),
            fnum(tuple_ms),
            fnum(col_ms),
            fnum(rate_t),
            fnum(rate_c),
            fnum(rate_c / rate_t),
            fnum(col_res.cost.tuple_cost()),
        ]);
    }
    t.note(
        "Expected shape: ≥5× rows/ms for the columnar engine on both the \
         filter-heavy scan (vectorized predicate + projection kernels vs \
         per-row interpreter dispatch) and the join-heavy probe \
         (multiplicative-hash gather vs per-row HashMap + per-row output \
         allocation). The `metered cost` column is identical for both \
         engines by construction — the parity proptests pin it bit-exact.",
    );
    t
}

/// The columnar-engine throughput suite. See the module docs.
pub fn x_batch() -> Vec<Table> {
    vec![engine_table()]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The wall-clock acceptance gate: ≥5× engine throughput on both the
    /// filter-heavy and the join-heavy scenario. Ignored by default —
    /// it is a release-mode microbench (the debug-mode ratio is
    /// meaningless); CI runs it with `--release -- --ignored` like the
    /// x-scale gate.
    #[test]
    #[ignore = "wall-clock microbench; run with --release -- --ignored or via `experiments -- x-batch`"]
    fn x_batch_speedup_meets_acceptance_bar() {
        let t = engine_table();
        assert_eq!(t.num_rows(), 2);
        for i in 0..t.num_rows() {
            let name = t.cell(i, 0);
            let speedup: f64 = t.cell(i, 7).parse().unwrap();
            assert!(speedup >= 5.0, "{name} speedup only {speedup}×");
        }
    }
}
