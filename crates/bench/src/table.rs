//! Minimal aligned-column text tables for experiment output.

use std::fmt;

/// A text table: headers plus rows, rendered with aligned columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a free-text note rendered under the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Access a cell (row, column) for assertions in tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Every cell that parses as a finite number, in row-major order —
    /// the raw material for machine-readable baselines.
    pub fn numeric_cells(&self) -> Vec<f64> {
        self.rows
            .iter()
            .flatten()
            .filter_map(|c| c.parse::<f64>().ok())
            .filter(|x| x.is_finite())
            .collect()
    }

    /// Finite numeric cells restricted to the columns selected by
    /// `keep(header)` — lets baselines target cost-like columns instead
    /// of diluting medians with seeds and size parameters.
    pub fn numeric_cells_in_columns(&self, keep: impl Fn(&str) -> bool) -> Vec<f64> {
        let cols: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .filter(|(_, h)| keep(h))
            .map(|(i, _)| i)
            .collect();
        self.rows
            .iter()
            .flat_map(|row| cols.iter().map(move |&c| &row[c]))
            .filter_map(|c| c.parse::<f64>().ok())
            .filter(|x| x.is_finite())
            .collect()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            writeln!(f, "  {}", line.join("  "))
        };
        render(f, &self.headers)?;
        let total = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Format a float compactly for table cells.
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        assert!(s.contains("note: hello"));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(1, 0), "100");
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(3.141_51), "3.142");
        assert_eq!(fnum(42.42), "42.4");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(f64::INFINITY), "inf");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_bad_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
