//! X-SCALE — metering throughput from 4096- to 65,536-node scale.
//!
//! The per-round cost functional used to be charged the naive way: every
//! send walked its full `src → dst` path (memoized per pair), so one
//! all-to-all repartition round on `p` nodes cost `O(p² · depth)` stamp
//! work and `O(p² · depth)` memo memory. The aggregate meter charges the
//! same ledger through O(1)-LCA subtree deltas and Euler-order virtual
//! trees (see `tamp_simulator::metering`). This suite drives both
//! implementations over the same workloads on a 4096-compute fat-tree
//! and a 65,536-compute fat-tree — the latter's 87 381 nodes put every
//! `commit_round` on the meter's chunked parallel prefix-sum sweep — and
//! reports wall time and metering throughput; a smaller fat-tree
//! cross-checks that the two ledgers are bit-identical.
//!
//! The baseline here — `NaivePathMeter`, shared with the simulator's
//! metering proptest via `tamp_simulator::metering::oracle` — is a
//! faithful reconstruction of the seed implementation: a
//! `HashMap<(u32, u32), Box<[DirEdgeId]>>` path memo plus a
//! per-directed-edge stamp walk.

use std::time::Instant;

use tamp_simulator::metering::oracle::NaivePathMeter;
use tamp_simulator::{Cost, TrafficMeter};
use tamp_topology::{builders, NodeId, Tree};

use crate::table::{fnum, Table};

/// One send batch: what a workload charges into a meter each round.
enum Workload {
    /// Every source unicasts `amount` tuples to every other compute node.
    AllToAll { amount: u64 },
    /// Every source multicasts `amount` tuples to all compute nodes (the
    /// broadcast-join exchange: one Steiner union per source).
    BroadcastJoin { amount: u64 },
}

impl Workload {
    fn name(&self) -> &'static str {
        match self {
            Workload::AllToAll { .. } => "all-to-all",
            Workload::BroadcastJoin { .. } => "broadcast-join",
        }
    }

    /// Sends per source per round (for throughput accounting).
    fn sends_per_source(&self, p: usize) -> usize {
        match self {
            Workload::AllToAll { .. } => p - 1,
            Workload::BroadcastJoin { .. } => 1,
        }
    }

    fn drive_aggregate(&self, meter: &mut TrafficMeter, sources: &[NodeId], all: &[NodeId]) {
        match *self {
            Workload::AllToAll { amount } => {
                for &s in sources {
                    for &d in all {
                        if d != s {
                            meter.charge_unicast(s, d, amount);
                        }
                    }
                }
            }
            Workload::BroadcastJoin { amount } => {
                for &s in sources {
                    meter.charge_multicast(s, all, amount);
                }
            }
        }
    }

    fn drive_naive(
        &self,
        meter: &mut NaivePathMeter,
        tree: &Tree,
        sources: &[NodeId],
        all: &[NodeId],
    ) {
        match *self {
            Workload::AllToAll { amount } => {
                for &s in sources {
                    for &d in all {
                        if d != s {
                            meter.charge_unicast(tree, s, d, amount);
                        }
                    }
                }
            }
            Workload::BroadcastJoin { amount } => {
                for &s in sources {
                    meter.charge_multicast(tree, s, all, amount);
                }
            }
        }
    }
}

/// Run `workload` for `rounds` rounds on the aggregate meter over every
/// `subsample`-th source (1 = all); returns `(wall ms, sends, cost)`.
fn run_aggregate(
    tree: &Tree,
    workload: &Workload,
    rounds: usize,
    subsample: usize,
) -> (f64, usize, Cost) {
    let all = tree.compute_nodes().to_vec();
    let sources: Vec<NodeId> = all.iter().copied().step_by(subsample).collect();
    let mut meter = TrafficMeter::new(tree);
    let start = Instant::now();
    for _ in 0..rounds {
        workload.drive_aggregate(&mut meter, &sources, &all);
        meter.commit_round();
    }
    let wall = start.elapsed().as_secs_f64() * 1e3;
    let sends = rounds * sources.len() * workload.sends_per_source(all.len());
    (wall, sends, meter.finish())
}

/// Run `workload` for `rounds` rounds on the naive meter over a
/// subsampled source set (`1/subsample` of the nodes — the full p² memo
/// would not fit in memory, which is itself the point); returns
/// `(wall ms, sends)`. Multiple rounds let the path memo amortize, as it
/// did for the seed's repeated-shuffle workloads.
fn run_naive(tree: &Tree, workload: &Workload, rounds: usize, subsample: usize) -> (f64, usize) {
    let all = tree.compute_nodes().to_vec();
    let sources: Vec<NodeId> = all.iter().copied().step_by(subsample).collect();
    let mut meter = NaivePathMeter::new(tree);
    let start = Instant::now();
    for _ in 0..rounds {
        workload.drive_naive(&mut meter, tree, &sources, &all);
        meter.commit_round();
    }
    let wall = start.elapsed().as_secs_f64() * 1e3;
    let sends = rounds * sources.len() * workload.sends_per_source(all.len());
    (wall, sends)
}

/// The number of rounds each workload runs (lets the oracle's path memo
/// amortize once, as it did for the seed's repeated-shuffle workloads).
const ROUNDS: usize = 2;

/// X-SCALE-A: the 4096- and 65,536-compute throughput microbench
/// (wall-clock).
fn throughput_table() -> Table {
    let mut t1 = Table::new(
        "X-SCALE-A: metering throughput, 4096- and 65,536-compute fat-trees \
         (aggregate LCA vs per-path oracle)",
        &[
            "workload",
            "p",
            "agg sends",
            "agg ms",
            "agg sends/ms",
            "oracle sends",
            "oracle ms",
            "speedup",
            "tuple cost",
        ],
    );
    let rounds = ROUNDS;
    // Tree 1: 4^6 = 4096 compute leaves, 5461 nodes, leaf-to-leaf paths
    // up to 12 hops in the internal rooting. The all-to-all runs the
    // aggregate meter over the FULL p² send set (the original acceptance
    // workload); broadcast-join subsamples both sides symmetrically to
    // keep the suite's wall time in check.
    //
    // Tree 2: 4^8 = 65,536 compute leaves, 87 381 nodes — big enough
    // that every `commit_round` takes the meter's chunked parallel
    // prefix-sum sweep. Both meters subsample sources here (the full p²
    // set is 4.3 × 10⁹ sends); the oracle subsamples harder because its
    // per-pair path memo alone would be gigabytes at this scale.
    for (tree, runs) in [
        (
            builders::fat_tree(6, 4, 1.0),
            [
                (Workload::AllToAll { amount: 8 }, 1, 32),
                (Workload::BroadcastJoin { amount: 4 }, 4, 32),
            ],
        ),
        (
            builders::fat_tree(8, 4, 1.0),
            [
                (Workload::AllToAll { amount: 8 }, 128, 4096),
                (Workload::BroadcastJoin { amount: 4 }, 256, 4096),
            ],
        ),
    ] {
        let p = tree.num_compute();
        for (workload, agg_sub, oracle_sub) in runs {
            let (agg_ms, agg_sends, cost) = run_aggregate(&tree, &workload, rounds, agg_sub);
            let (naive_ms, naive_sends) = run_naive(&tree, &workload, rounds, oracle_sub);
            let agg_rate = agg_sends as f64 / agg_ms.max(1e-9);
            let naive_rate = naive_sends as f64 / naive_ms.max(1e-9);
            t1.row(vec![
                workload.name().into(),
                p.to_string(),
                agg_sends.to_string(),
                fnum(agg_ms),
                fnum(agg_rate),
                naive_sends.to_string(),
                fnum(naive_ms),
                fnum(agg_rate / naive_rate),
                fnum(cost.tuple_cost()),
            ]);
        }
    }
    t1.note(
        "Expected shape: the aggregate meter's throughput is ≥5× the per-path \
         oracle's on the all-to-all rounds — O(1) LCA deltas vs O(depth) stamp \
         walks plus a per-pair hash — and the gap widens with depth, so the \
         65,536-compute rows beat the 4096 ones. The oracle runs a subsampled \
         source set; its full p² path memo is the O(p²·depth) memory this \
         repo deleted.",
    );
    t1
}

/// X-SCALE-B: full-workload ledger parity on a smaller fat-tree —
/// deterministic, so this is the part `cargo test` asserts on.
fn parity_table() -> Table {
    let rounds = ROUNDS;
    let mut t2 = Table::new(
        "X-SCALE-B: full-workload ledger parity on a 256-compute fat-tree",
        &["workload", "p", "edge totals", "cost delta"],
    );
    let small = builders::fat_tree(4, 4, 1.0);
    let all = small.compute_nodes().to_vec();
    for workload in [
        Workload::AllToAll { amount: 3 },
        Workload::BroadcastJoin { amount: 5 },
    ] {
        let mut agg = TrafficMeter::new(&small);
        let mut naive = NaivePathMeter::new(&small);
        for _ in 0..rounds {
            workload.drive_aggregate(&mut agg, &all, &all);
            agg.commit_round();
            workload.drive_naive(&mut naive, &small, &all, &all);
            naive.commit_round();
        }
        // Parity must hold on relayed sends too.
        let relay = NodeId(small.num_compute() as u32); // a router
        agg.charge_via(all[0], relay, &all, 2);
        agg.commit_round();
        naive.charge_via(&small, all[0], relay, &all, 2);
        naive.commit_round();
        let cost = agg.finish();
        let naive_cost = naive.finish();
        let totals_match = cost.edge_totals == naive_cost.edge_totals;
        let delta: f64 = cost
            .per_round
            .iter()
            .zip(&naive_cost.per_round)
            .map(|(a, n)| (a.tuple_cost - n.tuple_cost).abs())
            .sum();
        t2.row(vec![
            workload.name().into(),
            all.len().to_string(),
            if totals_match {
                "identical".into()
            } else {
                "MISMATCH".into()
            },
            fnum(delta),
        ]);
    }
    t2.note("Expected shape: identical edge totals and zero cost delta on every row.");
    t2
}

/// The throughput + parity suite. See the module docs.
pub fn x_scale() -> Vec<Table> {
    vec![throughput_table(), parity_table()]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The deterministic half of the suite: every parity row must be
    /// bit-identical between the aggregate meter and the per-path
    /// oracle.
    #[test]
    fn x_scale_parity_is_bit_identical() {
        let b = parity_table();
        assert!(b.num_rows() >= 2);
        for i in 0..b.num_rows() {
            assert_eq!(b.cell(i, 2), "identical", "row {i}");
            assert_eq!(b.cell(i, 3), "0", "row {i} cost delta");
        }
    }

    /// The wall-clock half. Ignored by default: it runs the full
    /// 4096-compute workloads (~30 s unoptimized) and asserts a timing
    /// ratio, which belongs in the release-mode experiment gate (the CI
    /// `--check` run gates `x-scale`'s wall_ms), not in every
    /// `cargo test`. Run explicitly with `cargo test -- --ignored`.
    #[test]
    #[ignore = "wall-clock microbench; run with --ignored or via `experiments -- x-scale`"]
    fn x_scale_speedup_meets_acceptance_bar() {
        let a = throughput_table();
        // The acceptance bar: ≥5× metering throughput on the 4096-node
        // all-to-all vs the per-path oracle.
        assert_eq!(a.cell(0, 0), "all-to-all");
        let speedup: f64 = a.cell(0, 7).parse().unwrap();
        assert!(speedup >= 5.0, "all-to-all speedup only {speedup}×");
        // The broadcast union decomposition must also win, if less.
        let bspeed: f64 = a.cell(1, 7).parse().unwrap();
        assert!(bspeed >= 1.0, "broadcast-join speedup only {bspeed}×");
        // The 65,536-compute rows: deeper paths widen the gap, and the
        // commit path is the parallel sweep.
        assert_eq!(a.cell(2, 0), "all-to-all");
        assert_eq!(a.cell(2, 1), "65536");
        let big: f64 = a.cell(2, 7).parse().unwrap();
        assert!(big >= 5.0, "65,536-node all-to-all speedup only {big}×");
    }
}
