//! The experiment suite: one function per table/figure of the paper.
//!
//! Each experiment returns [`Table`]s whose rows juxtapose the paper's
//! *expected shape* (the proven guarantee) with the *measured* quantity
//! from the executable cost model. Absolute constants are ours; the shapes
//! — who wins, what the ratio envelope is, where crossovers fall — are the
//! paper's.

use tamp_core::cartesian::{
    cartesian_lower_bound, packing::check_covers_grid, plan_whc, unequal, TreeCartesianProduct,
    TreePlan, UniformHyperCube,
};
use tamp_core::intersection::{
    balanced_partition, intersection_lower_bound, verify_balanced_partition, TreeIntersect,
    UniformHashJoin,
};
use tamp_core::ratio::ratio;
use tamp_core::sorting::{adversarial_placement, sorting_lower_bound, TeraSort, WeightedTeraSort};
use tamp_simulator::{run_protocol, Placement, Rel};
use tamp_topology::{builders, Dagger, NodeId, Tree};
use tamp_workloads::{PlacementStrategy, SetSpec, SortSpec};

use crate::ablation::GlobalWeightedHashJoin;
use crate::table::{fnum, Table};

/// The standard topology zoo used across experiments.
pub fn standard_topologies() -> Vec<(String, Tree)> {
    vec![
        ("star-8-uniform".into(), builders::star(8, 1.0)),
        (
            "star-8-hetero".into(),
            builders::heterogeneous_star(&[1.0, 1.0, 2.0, 2.0, 4.0, 4.0, 8.0, 16.0]),
        ),
        (
            "rack-3x4".into(),
            builders::rack_tree(&[(4, 4.0, 2.0), (4, 4.0, 1.0), (4, 4.0, 8.0)], 1.0),
        ),
        ("fat-tree-2x3".into(), builders::fat_tree(2, 3, 1.0)),
        ("caterpillar-4x2".into(), builders::caterpillar(4, 2, 2.0)),
        (
            "random-17".into(),
            builders::random_tree(10, 7, 0.5, 16.0, 42),
        ),
    ]
}

fn mean_max(xs: &[f64]) -> (f64, f64) {
    let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if finite.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = finite.iter().sum::<f64>() / finite.len() as f64;
    let max = finite.iter().copied().fold(f64::MIN, f64::max);
    (mean, max)
}

/// T1-SI — Table 1, row 1 (Theorem 2): `TreeIntersect` runs in one round
/// with cost `O(log N · log |V|)` from the Theorem 1 bound, w.h.p., on
/// every topology and placement; the topology-agnostic baseline does not.
pub fn t1_si() -> Vec<Table> {
    let mut t = Table::new(
        "T1-SI  set intersection: 1 round, ratio ≤ O(log N · log |V|) w.h.p. (Thm 2)",
        &[
            "topology",
            "N",
            "placement",
            "rounds",
            "ratio(mean)",
            "ratio(max)",
            "envelope",
            "baseline(max)",
        ],
    );
    for (name, tree) in standard_topologies() {
        for &n in &[2_000usize, 8_000] {
            for (pname, strat) in [
                ("uniform", PlacementStrategy::Uniform),
                ("zipf1.2", PlacementStrategy::Zipf { alpha: 1.2 }),
            ] {
                let spec = SetSpec::new(n / 4, 3 * n / 4).with_intersection(n / 16);
                let mut ratios = Vec::new();
                let mut base_ratios = Vec::new();
                let mut rounds = 0usize;
                for seed in 0..6u64 {
                    let w = spec.generate(seed);
                    let placement = strat.place(&tree, &w, seed);
                    let lb = intersection_lower_bound(&tree, &placement.stats());
                    let run = run_protocol(&tree, &placement, &TreeIntersect::new(seed)).unwrap();
                    rounds = rounds.max(run.rounds);
                    ratios.push(ratio(run.cost.tuple_cost(), lb.value()));
                    let base =
                        run_protocol(&tree, &placement, &UniformHashJoin::new(seed)).unwrap();
                    base_ratios.push(ratio(base.cost.tuple_cost(), lb.value()));
                }
                let (mean, max) = mean_max(&ratios);
                let (_, bmax) = mean_max(&base_ratios);
                let envelope = (n as f64).log2() * (tree.num_nodes() as f64).log2();
                t.row(vec![
                    name.clone(),
                    n.to_string(),
                    pname.into(),
                    rounds.to_string(),
                    fnum(mean),
                    fnum(max),
                    fnum(envelope),
                    fnum(bmax),
                ]);
            }
        }
    }
    t.note("expected: rounds = 1, ratio(max) ≤ envelope; baseline may exceed it");
    vec![t]
}

/// T1-CP — Table 1, row 2 (Theorem 5): the tree cartesian product is
/// deterministic, one round, and O(1) from max(Thm 3, Thm 4).
pub fn t1_cp() -> Vec<Table> {
    let mut t = Table::new(
        "T1-CP  cartesian product: 1 round, deterministic, ratio = O(1) (Thm 5)",
        &[
            "topology",
            "N",
            "placement",
            "rounds",
            "ratio",
            "deterministic",
            "baseline-ratio",
        ],
    );
    for (name, tree) in standard_topologies() {
        for &n in &[2_000usize, 8_000] {
            for (pname, strat) in [
                ("uniform", PlacementStrategy::Uniform),
                ("zipf1.2", PlacementStrategy::Zipf { alpha: 1.2 }),
            ] {
                let spec = SetSpec::new(n / 2, n / 2);
                let w = spec.generate(7);
                let placement = strat.place(&tree, &w, 7);
                let lb = cartesian_lower_bound(&tree, &placement.stats());
                let run1 = run_protocol(&tree, &placement, &TreeCartesianProduct::new()).unwrap();
                let run2 = run_protocol(&tree, &placement, &TreeCartesianProduct::new()).unwrap();
                let det = (run1.cost.tuple_cost() - run2.cost.tuple_cost()).abs() < 1e-12;
                let base = run_protocol(&tree, &placement, &UniformHyperCube::new()).unwrap();
                t.row(vec![
                    name.clone(),
                    n.to_string(),
                    pname.into(),
                    run1.rounds.to_string(),
                    fnum(ratio(run1.cost.tuple_cost(), lb.value())),
                    det.to_string(),
                    fnum(ratio(base.cost.tuple_cost(), lb.value())),
                ]);
            }
        }
    }
    t.note("expected: rounds = 1, deterministic = true, ratio bounded by a constant");
    vec![t]
}

/// T1-SORT — Table 1, row 3 (Theorem 7): weighted TeraSort runs in 4
/// rounds with cost O(1) from the Theorem 6 bound w.h.p. (needs
/// `N ≥ 4|V_C|²·ln(|V_C|·N)`).
pub fn t1_sort() -> Vec<Table> {
    let mut t = Table::new(
        "T1-SORT  sorting: O(1) rounds, ratio = O(1) w.h.p. (Thm 7)",
        &[
            "topology",
            "N",
            "placement",
            "rounds",
            "ratio(mean)",
            "ratio(max)",
            "terasort(max)",
        ],
    );
    for (name, tree) in standard_topologies() {
        let k = tree.num_compute() as f64;
        for &n in &[8_000usize, 32_000] {
            // Theorem 7 premise.
            if (n as f64) < 4.0 * k * k * ((k * n as f64).ln()) {
                continue;
            }
            for (pname, strat) in [
                ("uniform", PlacementStrategy::Uniform),
                ("zipf1.0", PlacementStrategy::Zipf { alpha: 1.0 }),
            ] {
                let mut ratios = Vec::new();
                let mut tera = Vec::new();
                let mut rounds = 0usize;
                for seed in 0..5u64 {
                    let w = SortSpec::new(n).generate(seed);
                    let placement = strat.place(&tree, &w, seed);
                    let lb = sorting_lower_bound(&tree, &placement.stats());
                    let run =
                        run_protocol(&tree, &placement, &WeightedTeraSort::new(seed)).unwrap();
                    rounds = rounds.max(run.rounds);
                    ratios.push(ratio(run.cost.tuple_cost(), lb.value()));
                    let base = run_protocol(&tree, &placement, &TeraSort::new(seed)).unwrap();
                    tera.push(ratio(base.cost.tuple_cost(), lb.value()));
                }
                let (mean, max) = mean_max(&ratios);
                let (_, tmax) = mean_max(&tera);
                t.row(vec![
                    name.clone(),
                    n.to_string(),
                    pname.into(),
                    rounds.to_string(),
                    fnum(mean),
                    fnum(max),
                    fnum(tmax),
                ]);
            }
        }
    }
    t.note("expected: rounds = 4, ratio(max) bounded by a constant");
    vec![t]
}

/// F1 — Figure 1's two concrete topologies: weighted algorithms vs
/// topology-agnostic baselines on all three tasks.
pub fn f1() -> Vec<Table> {
    let mut t = Table::new(
        "F1  Figure-1 topologies: weighted vs topology-agnostic cost (tuples)",
        &[
            "topology",
            "task",
            "N",
            "weighted",
            "baseline",
            "lower-bound",
        ],
    );
    let topos = vec![
        ("fig-1a-star".to_string(), builders::figure_1a()),
        ("fig-1b-tree".to_string(), builders::figure_1b()),
    ];
    for (name, tree) in topos {
        for &n in &[1_000usize, 4_000, 16_000] {
            // Skewed placement: the interesting regime for weighted algos.
            let strat = PlacementStrategy::Zipf { alpha: 1.2 };
            // Set intersection.
            let w = SetSpec::new(n / 4, 3 * n / 4)
                .with_intersection(n / 16)
                .generate(1);
            let p = strat.place(&tree, &w, 1);
            let lb = intersection_lower_bound(&tree, &p.stats());
            let wi = run_protocol(&tree, &p, &TreeIntersect::new(1)).unwrap();
            let bi = run_protocol(&tree, &p, &UniformHashJoin::new(1)).unwrap();
            t.row(vec![
                name.clone(),
                "intersect".into(),
                n.to_string(),
                fnum(wi.cost.tuple_cost()),
                fnum(bi.cost.tuple_cost()),
                fnum(lb.value()),
            ]);
            // Cartesian product.
            let w = SetSpec::new(n / 2, n / 2).generate(2);
            let p = strat.place(&tree, &w, 2);
            let lb = cartesian_lower_bound(&tree, &p.stats());
            let wc = run_protocol(&tree, &p, &TreeCartesianProduct::new()).unwrap();
            let bc = run_protocol(&tree, &p, &UniformHyperCube::new()).unwrap();
            t.row(vec![
                name.clone(),
                "cartesian".into(),
                n.to_string(),
                fnum(wc.cost.tuple_cost()),
                fnum(bc.cost.tuple_cost()),
                fnum(lb.value()),
            ]);
            // Sorting.
            let w = SortSpec::new(n).generate(3);
            let p = strat.place(&tree, &w, 3);
            let lb = sorting_lower_bound(&tree, &p.stats());
            let ws = run_protocol(&tree, &p, &WeightedTeraSort::new(3)).unwrap();
            let bs = run_protocol(&tree, &p, &TeraSort::new(3)).unwrap();
            t.row(vec![
                name.clone(),
                "sort".into(),
                n.to_string(),
                fnum(ws.cost.tuple_cost()),
                fnum(bs.cost.tuple_cost()),
                fnum(lb.value()),
            ]);
        }
    }
    t.note("expected: weighted within a small factor of the lower bound on every task");
    t.note("on these UNIT-bandwidth topologies the baselines are at home: weighted wins");
    t.note("on intersection, ties on sorting, and pays its O(1) rounding constants on");
    t.note("cartesian — the weighted advantage appears under heterogeneity (T1-*, X-CROSS)");
    vec![t]
}

/// F2 — Figure 2 (balanced partition): structure and Definition-1
/// validity of Algorithm 3's output across random trees.
pub fn f2() -> Vec<Table> {
    let mut t = Table::new(
        "F2  balanced partition (Alg 3 / Def 1) on random trees",
        &[
            "seed",
            "|V|",
            "|V_C|",
            "|R|",
            "blocks",
            "min-block/|R|",
            "def1",
        ],
    );
    for seed in 0..12u64 {
        let tree = builders::random_tree(9, 6, 0.5, 8.0, seed);
        let w = SetSpec::new(500, 2500)
            .with_intersection(100)
            .generate(seed);
        let p = PlacementStrategy::Zipf { alpha: 0.8 }.place(&tree, &w, seed);
        let stats = p.stats();
        let small = stats.total_r.min(stats.total_s);
        let part = balanced_partition(&tree, &stats.n, small);
        let ok = verify_balanced_partition(&tree, &stats.n, small, &part).is_ok();
        let min_block = part
            .blocks
            .iter()
            .map(|b| b.iter().map(|&v| stats.n_v(v)).sum::<u64>())
            .min()
            .unwrap_or(0);
        t.row(vec![
            seed.to_string(),
            tree.num_nodes().to_string(),
            tree.num_compute().to_string(),
            small.to_string(),
            part.num_blocks().to_string(),
            fnum(min_block as f64 / small.max(1) as f64),
            if ok { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    t.note("expected: def1 = PASS on every row; min-block/|R| ≥ 1 (property 3)");
    vec![t]
}

/// F3 — Figure 3 (shapes of G†): Lemma 4 invariants and the root's
/// location across placements of increasing skew.
pub fn f3() -> Vec<Table> {
    let mut t = Table::new(
        "F3  G† structure (Lemma 4) across placement skews",
        &[
            "placement",
            "trials",
            "root=compute",
            "root=router",
            "lemma4",
            "all-to-root ratio(max)",
        ],
    );
    for (pname, strat) in [
        ("uniform", PlacementStrategy::Uniform),
        ("zipf1.0", PlacementStrategy::Zipf { alpha: 1.0 }),
        ("single-node", PlacementStrategy::SingleNode { k: 0 }),
    ] {
        let mut compute_root = 0usize;
        let mut router_root = 0usize;
        let mut lemma4_ok = true;
        let mut all_to_root_ratios = Vec::new();
        let trials = 12u64;
        for seed in 0..trials {
            let tree = builders::random_tree(8, 5, 0.5, 8.0, seed);
            let w = SetSpec::new(400, 400).generate(seed);
            let p = strat.place(&tree, &w, seed);
            let stats = p.stats();
            let dagger = Dagger::build(&tree, &stats.n);
            // Lemma 4: every non-root reaches the unique root.
            let root = dagger.root();
            lemma4_ok &= tree
                .nodes()
                .all(|v| v == root || dagger.parent(v).is_some());
            if tree.is_compute(root) {
                compute_root += 1;
                // The paper: routing all data to the compute root is
                // asymptotically optimal (matches Thm 3).
                let run = run_protocol(&tree, &p, &TreeCartesianProduct::new()).unwrap();
                if matches!(run.output, TreePlan::AllToRoot(_)) {
                    let lb = cartesian_lower_bound(&tree, &stats);
                    all_to_root_ratios.push(ratio(run.cost.tuple_cost(), lb.value()));
                }
            } else {
                router_root += 1;
            }
        }
        let (_, max) = mean_max(&all_to_root_ratios);
        t.row(vec![
            pname.into(),
            trials.to_string(),
            compute_root.to_string(),
            router_root.to_string(),
            if lemma4_ok {
                "PASS".into()
            } else {
                "FAIL".into()
            },
            if all_to_root_ratios.is_empty() {
                "-".into()
            } else {
                fnum(max)
            },
        ]);
    }
    t.note("expected: lemma4 = PASS; single-node skew makes the root a compute node");
    vec![t]
}

/// F4 — Figure 4 (packing squares): Lemma 5's coverage guarantee and the
/// waste of power-of-two rounding, across random bandwidth vectors.
pub fn f4() -> Vec<Table> {
    let mut t = Table::new(
        "F4  square packing (Lemma 5): coverage and rounding waste",
        &[
            "p",
            "trials",
            "coverage",
            "min covered/(½√Σd²)",
            "max Σd²/N²",
        ],
    );
    for &p in &[5usize, 16, 40] {
        let mut min_margin = f64::INFINITY;
        let mut max_waste: f64 = 0.0;
        let mut all_covered = true;
        let trials = 10u64;
        for seed in 0..trials {
            let mut caps = Vec::with_capacity(p);
            for i in 0..p {
                let u = tamp_core::hashing::mix64(seed * 97 + i as u64) as f64 / u64::MAX as f64;
                caps.push((16.0f64).powf(u)); // log-uniform in [1, 16]
            }
            let tree = builders::heterogeneous_star(&caps);
            let n: u64 = 10_000;
            let plan = plan_whc(&tree, n, None);
            let area: u128 = plan.squares.iter().map(|s| (s.side as u128).pow(2)).sum();
            all_covered &= check_covers_grid(&plan.squares, n / 2, n / 2).is_ok();
            // Lemma 5 guarantee: a fully covered origin square of side
            // 2^{i*} ≥ ½√(Σd²). Find the largest covered power of two.
            let mut covered_side = 1u64;
            while check_covers_grid(&plan.squares, covered_side * 2, covered_side * 2).is_ok() {
                covered_side *= 2;
            }
            min_margin = min_margin.min(covered_side as f64 / (0.5 * (area as f64).sqrt()));
            max_waste = max_waste.max(area as f64 / (n as f64 * n as f64));
        }
        t.row(vec![
            p.to_string(),
            trials.to_string(),
            if all_covered {
                "PASS".into()
            } else {
                "FAIL".into()
            },
            fnum(min_margin),
            fnum(max_waste),
        ]);
    }
    t.note("expected: coverage PASS, margin ≥ 1 (Lemma 5), waste ≤ 16 (2× rounding, squared)");
    vec![t]
}

/// F5 — Figure 5 (sorting lower-bound cases): on the adversarial
/// interleaved placement, the bottleneck-edge traffic of any correct sort
/// is within a constant of the cut bound.
pub fn f5() -> Vec<Table> {
    let mut t = Table::new(
        "F5  adversarial interleaved placement (Thm 6): cut traffic vs bound",
        &[
            "topology",
            "N",
            "LB(tuples)",
            "wTS cost",
            "ratio",
            "witness-traffic/min-side",
        ],
    );
    let topos: Vec<(String, Tree)> = vec![
        (
            "rack-2x3".into(),
            builders::rack_tree(&[(3, 2.0, 1.0), (3, 2.0, 1.0)], 1.0),
        ),
        ("caterpillar-5x2".into(), builders::caterpillar(5, 2, 1.0)),
        ("star-6".into(), builders::star(6, 1.0)),
    ];
    for (name, tree) in topos {
        for &per_node in &[500u64, 2_000] {
            let sizes = vec![per_node; tree.num_compute()];
            let root = tree
                .nodes()
                .find(|&v| !tree.is_compute(v))
                .unwrap_or(NodeId(0));
            let p = adversarial_placement(&tree, root, &sizes);
            let stats = p.stats();
            let lb = sorting_lower_bound(&tree, &stats);
            let run = run_protocol(&tree, &p, &WeightedTeraSort::new(11)).unwrap();
            // Traffic across the witness edge (both directions) vs its cut.
            let witness = lb.witness().expect("nonzero bound");
            let cuts = tamp_topology::CutWeights::compute(&tree, &stats.n);
            let traffic = run
                .cost
                .edge_total(tamp_topology::DirEdgeId::new(witness, false))
                + run
                    .cost
                    .edge_total(tamp_topology::DirEdgeId::new(witness, true));
            t.row(vec![
                name.clone(),
                (per_node * tree.num_compute() as u64).to_string(),
                fnum(lb.value()),
                fnum(run.cost.tuple_cost()),
                fnum(ratio(run.cost.tuple_cost(), lb.value())),
                fnum(traffic as f64 / cuts.min_side(witness).max(1) as f64),
            ]);
        }
    }
    t.note("expected: ratio O(1); witness traffic within a small factor of the min side");
    t.note("the bound is Ω(·) with proof constant ½, so ratios slightly below 1 are consistent");
    vec![t]
}

/// A1 — Appendix A.1: unequal cartesian product on stars across
/// `|R|/|S|` ratios.
pub fn a1() -> Vec<Table> {
    let mut t = Table::new(
        "A1  unequal cartesian product on stars (Thms 8+9, Alg 8)",
        &["|R|", "|S|", "strategy", "cost", "LB", "ratio"],
    );
    let tree = builders::heterogeneous_star(&[8.0, 4.0, 2.0, 1.0, 1.0, 0.5]);
    for &(r, s) in &[(512usize, 1024usize), (128, 1024), (16, 1024), (1024, 1024)] {
        let w = SetSpec::new(r, s).generate(1);
        let p = PlacementStrategy::Uniform.place(&tree, &w, 1);
        let run =
            run_protocol(&tree, &p, &unequal::GeneralizedStarCartesianProduct::new()).unwrap();
        let lb = unequal::unequal_lower_bound(&tree, &p.stats());
        t.row(vec![
            r.to_string(),
            s.to_string(),
            format!("{:?}", run.output),
            fnum(run.cost.tuple_cost()),
            fnum(lb.value()),
            fnum(ratio(run.cost.tuple_cost(), lb.value())),
        ]);
    }
    t.note("expected: ratio bounded by a constant across aspect ratios");
    t.note("Thms 8/9 carry Ω-constants ≤ 1, so ratios slightly below 1 are consistent");
    vec![t]
}

/// X-MPC — §2.2: on the asymmetric MPC star, measured costs match the
/// classic MPC formulas (receive-side max): hash join ≈ N'/p per relation
/// pair, HyperCube ≈ N/√p-style loads, TeraSort ≈ N/p + samples.
pub fn x_mpc() -> Vec<Table> {
    let mut t = Table::new(
        "X-MPC  the MPC special case (asymmetric star, receive-cost only)",
        &["p", "task", "N", "measured", "MPC prediction"],
    );
    for &p in &[4usize, 16] {
        let tree = builders::mpc_star(p);
        let n = 8_000usize;
        // Hash join: every node receives ≈ N/p tuples.
        let w = SetSpec::new(n / 2, n / 2).with_intersection(64).generate(5);
        let pl = PlacementStrategy::Uniform.place(&tree, &w, 5);
        let run = run_protocol(&tree, &pl, &UniformHashJoin::new(5)).unwrap();
        t.row(vec![
            p.to_string(),
            "hash-join".into(),
            n.to_string(),
            fnum(run.cost.tuple_cost()),
            fnum(n as f64 / p as f64),
        ]);
        // HyperCube: node (i,j) receives |R|/p1 + |S|/p2.
        let run = run_protocol(&tree, &pl, &UniformHyperCube::new()).unwrap();
        let p1 = (p as f64).sqrt().floor();
        let p2 = (p as f64 / p1).floor();
        let predict = (n as f64 / 2.0) / p1 + (n as f64 / 2.0) / p2;
        t.row(vec![
            p.to_string(),
            "hypercube".into(),
            n.to_string(),
            fnum(run.cost.tuple_cost()),
            fnum(predict),
        ]);
        // TeraSort: the coordinator receives ≈ ρ·N samples, then every
        // node receives ≈ N/p in the redistribution round.
        let w = SortSpec::new(n).generate(6);
        let pl = PlacementStrategy::Uniform.place(&tree, &w, 6);
        let run = run_protocol(&tree, &pl, &TeraSort::new(6)).unwrap();
        let samples = 4.0 * p as f64 * ((p as f64 * n as f64).ln());
        t.row(vec![
            p.to_string(),
            "terasort".into(),
            n.to_string(),
            fnum(run.cost.tuple_cost()),
            fnum(n as f64 / p as f64 + samples),
        ]);
    }
    t.note("expected: measured within a small constant of the MPC prediction");
    vec![t]
}

/// X-CROSS — the paper's motivation: as one link slows down, the
/// topology-agnostic baseline degrades linearly while the weighted
/// algorithm holds steady.
pub fn x_cross() -> Vec<Table> {
    let mut t = Table::new(
        "X-CROSS  cost vs slow-link factor (set intersection, star p=8)",
        &["slowdown", "weighted", "baseline", "baseline/weighted"],
    );
    for &f in &[1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let mut caps = vec![4.0; 8];
        caps[7] = 4.0 / f;
        let tree = builders::heterogeneous_star(&caps);
        // Data lives on the seven fast nodes only.
        let w = SetSpec::new(1_000, 3_000)
            .with_intersection(128)
            .generate(3);
        let mut placement = Placement::empty(&tree);
        let vc = tree.compute_nodes();
        for (i, &x) in w.r.iter().enumerate() {
            placement.push(vc[i % 7], Rel::R, x);
        }
        for (i, &x) in w.s.iter().enumerate() {
            placement.push(vc[(i + 3) % 7], Rel::S, x);
        }
        let wi = run_protocol(&tree, &placement, &TreeIntersect::new(3)).unwrap();
        let bi = run_protocol(&tree, &placement, &UniformHashJoin::new(3)).unwrap();
        t.row(vec![
            fnum(f),
            fnum(wi.cost.tuple_cost()),
            fnum(bi.cost.tuple_cost()),
            fnum(bi.cost.tuple_cost() / wi.cost.tuple_cost()),
        ]);
    }
    t.note("expected: weighted flat; baseline/weighted grows ≈ linearly in the slowdown");
    vec![t]
}

/// ABL-PARTITION — TreeIntersect with vs without the balanced partition
/// (single global weighted hash): β-edge traffic blows past |R| without
/// Definition 1.
pub fn abl_partition() -> Vec<Table> {
    let mut t = Table::new(
        "ABL-PARTITION  balanced partition vs single global weighted hash",
        &["|S|", "LB", "with-partition", "without", "without/with"],
    );
    // Long thin caterpillar: many β-edges in the middle.
    let tree = builders::caterpillar(6, 2, 1.0);
    for &s_size in &[2_000usize, 8_000, 32_000] {
        let w = SetSpec::new(200, s_size).with_intersection(64).generate(2);
        let p = PlacementStrategy::Uniform.place(&tree, &w, 2);
        let lb = intersection_lower_bound(&tree, &p.stats());
        let with = run_protocol(&tree, &p, &TreeIntersect::new(2)).unwrap();
        let without = run_protocol(&tree, &p, &GlobalWeightedHashJoin::new(2)).unwrap();
        t.row(vec![
            s_size.to_string(),
            fnum(lb.value()),
            fnum(with.cost.tuple_cost()),
            fnum(without.cost.tuple_cost()),
            fnum(without.cost.tuple_cost() / with.cost.tuple_cost().max(1e-12)),
        ]);
    }
    t.note("expected: 'without' grows with |S| (S crosses β-edges); 'with' stays near |R|-bound");
    vec![t]
}

/// ABL-POW2 — the cost of power-of-two rounding in wHC: per-node square
/// sides vs the ideal fractional share `w_v·L`.
pub fn abl_pow2() -> Vec<Table> {
    let mut t = Table::new(
        "ABL-POW2  wHC rounding overhead (side / (w·L))",
        &["topology", "max side/(wL)", "mean side/(wL)", "covered"],
    );
    for (name, caps) in [
        ("star-4", vec![1.0, 2.0, 3.0, 5.0]),
        ("star-8", vec![0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 13.0]),
    ] {
        let tree = builders::heterogeneous_star(&caps);
        let n = 20_000u64;
        let plan = plan_whc(&tree, n, None);
        let mut factors = Vec::new();
        for (i, &v) in tree.compute_nodes().iter().enumerate() {
            let ideal = caps[i] * plan.l;
            let side = plan
                .squares
                .iter()
                .find(|s| s.owner == v)
                .map(|s| s.side as f64)
                .unwrap_or(0.0);
            if ideal > 0.0 {
                factors.push(side / ideal);
            }
        }
        let (mean, max) = mean_max(&factors);
        let covered = check_covers_grid(&plan.squares, n / 2, n / 2).is_ok();
        t.row(vec![
            name.into(),
            fnum(max),
            fnum(mean),
            if covered {
                "PASS".into()
            } else {
                "FAIL".into()
            },
        ]);
    }
    t.note("expected: max < 2 (each side is the next power of two above w·L)");
    vec![t]
}

/// ABL-SPLITTERS — proportional vs uniform splitters on a heterogeneous
/// star whose data is placed behind the fat links: uniform splitters force
/// N/p onto the thin link.
pub fn abl_splitters() -> Vec<Table> {
    let mut t = Table::new(
        "ABL-SPLITTERS  proportional (wTS) vs uniform (TeraSort) splitters",
        &["N", "LB", "wTS", "TeraSort", "TeraSort/wTS"],
    );
    let tree = builders::heterogeneous_star(&[8.0, 8.0, 8.0, 8.0, 8.0, 8.0, 8.0, 0.25]);
    for &n in &[8_000usize, 32_000] {
        let w = SortSpec::new(n).generate(4);
        let p = PlacementStrategy::ProportionalToBandwidth.place(&tree, &w, 4);
        let lb = sorting_lower_bound(&tree, &p.stats());
        let wts = run_protocol(&tree, &p, &WeightedTeraSort::new(4)).unwrap();
        let tera = run_protocol(&tree, &p, &TeraSort::new(4)).unwrap();
        t.row(vec![
            n.to_string(),
            fnum(lb.value()),
            fnum(wts.cost.tuple_cost()),
            fnum(tera.cost.tuple_cost()),
            fnum(tera.cost.tuple_cost() / wts.cost.tuple_cost().max(1e-12)),
        ]);
    }
    t.note("expected: TeraSort pays ≈ (N/p)/w_thin on the thin link; wTS avoids it");
    vec![t]
}

/// ABL-TREEPACK — hierarchical (G†-aligned) packing keeps a subtree's
/// squares co-located: measure the per-uplink traffic of the tree CP vs
/// the `O(N·l_u)` budget of §4.4.
pub fn abl_treepack() -> Vec<Table> {
    let mut t = Table::new(
        "ABL-TREEPACK  tree CP per-uplink traffic vs N·l_u budget (§4.4)",
        &["topology", "max traffic/(N·l_u)", "edges-checked"],
    );
    for (name, tree) in [
        (
            "rack-3x3",
            builders::rack_tree(&[(3, 2.0, 1.0), (3, 2.0, 2.0), (3, 2.0, 4.0)], 1.0),
        ),
        ("fat-tree-2x3", builders::fat_tree(2, 3, 1.0)),
    ] {
        let n = 4_000usize;
        let w = SetSpec::new(n / 2, n / 2).generate(8);
        let p = PlacementStrategy::Uniform.place(&tree, &w, 8);
        let run = run_protocol(&tree, &p, &TreeCartesianProduct::new()).unwrap();
        let TreePlan::Packed { root, l, .. } = &run.output else {
            continue;
        };
        let stats = p.stats();
        let dagger = Dagger::build(&tree, &stats.n);
        assert_eq!(dagger.root(), *root);
        let mut worst: f64 = 0.0;
        let mut checked = 0usize;
        for v in tree.nodes() {
            let Some(_e) = dagger.parent_edge(v) else {
                continue;
            };
            let budget = stats.total_n() as f64 * l[v.index()];
            if budget <= 0.0 {
                continue;
            }
            // Downward traffic into the subtree of v (phase 2 deliveries).
            let down = run
                .cost
                .edge_total(tree.dir_edge_between(dagger.parent(v).unwrap(), v).unwrap());
            worst = worst.max(down as f64 / budget);
            checked += 1;
        }
        t.row(vec![name.into(), fnum(worst), checked.to_string()]);
    }
    t.note("expected: max ≤ 16 (the §4.4 constant for elements crossing (u, p_u))");
    vec![t]
}

/// All experiment ids, in canonical order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "t1-si",
    "t1-cp",
    "t1-sort",
    "f1",
    "f2",
    "f3",
    "f4",
    "f5",
    "a1",
    "x-mpc",
    "x-cross",
    "abl-partition",
    "abl-pow2",
    "abl-splitters",
    "abl-treepack",
    "x-agg",
    "x-groupby",
    "x-general",
    "x-runtime",
    "x-query",
    "x-plan",
    "x-strategy",
    "x-scale",
    "x-batch",
    "x-serve",
    "x-tenant",
    "x-chaos",
    "abl-drift",
    "x-uneq-tree",
    "x-iter",
    "x-lint",
];

/// Run one experiment by id.
pub fn run_experiment(id: &str) -> Option<Vec<Table>> {
    Some(match id {
        "t1-si" => t1_si(),
        "t1-cp" => t1_cp(),
        "t1-sort" => t1_sort(),
        "f1" => f1(),
        "f2" => f2(),
        "f3" => f3(),
        "f4" => f4(),
        "f5" => f5(),
        "a1" => a1(),
        "x-mpc" => x_mpc(),
        "x-cross" => x_cross(),
        "abl-partition" => abl_partition(),
        "abl-pow2" => abl_pow2(),
        "abl-splitters" => abl_splitters(),
        "abl-treepack" => abl_treepack(),
        "x-agg" => crate::extensions::x_agg(),
        "x-groupby" => crate::extensions::x_groupby(),
        "x-general" => crate::extensions::x_general(),
        "x-runtime" => crate::extensions::x_runtime(),
        "x-query" => crate::extensions::x_query(),
        "x-plan" => crate::extensions::x_plan(),
        "x-strategy" => crate::strategies::x_strategy(),
        "x-scale" => crate::xscale::x_scale(),
        "x-batch" => crate::xbatch::x_batch(),
        "x-serve" => crate::serving::x_serve(),
        "x-tenant" => crate::xtenant::x_tenant(),
        "x-chaos" => crate::xchaos::x_chaos(),
        "abl-drift" => crate::extensions::abl_drift(),
        "x-uneq-tree" => crate::extensions::x_unequal_tree(),
        "x-iter" => crate::xiter::x_iter(),
        "x-lint" => crate::xlint::x_lint(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_id_resolves() {
        for id in ALL_EXPERIMENTS {
            assert!(run_experiment(id).is_some(), "{id}");
        }
        assert!(run_experiment("nope").is_none());
    }

    #[test]
    fn f2_partitions_all_pass() {
        let tables = f2();
        for i in 0..tables[0].num_rows() {
            assert_eq!(tables[0].cell(i, 6), "PASS");
        }
    }

    #[test]
    fn f4_coverage_passes() {
        let tables = f4();
        for i in 0..tables[0].num_rows() {
            assert_eq!(tables[0].cell(i, 2), "PASS");
        }
    }

    #[test]
    fn x_cross_monotone_win() {
        let tables = x_cross();
        let t = &tables[0];
        let first: f64 = t.cell(0, 3).parse().unwrap();
        let last: f64 = t.cell(t.num_rows() - 1, 3).parse().unwrap();
        assert!(
            last > 4.0 * first,
            "slowdown should widen the gap: {first} → {last}"
        );
    }
}
