//! Ablation protocols: the paper's algorithms with one design ingredient
//! removed, used to show that ingredient is load-bearing.

use std::collections::HashMap;

use tamp_core::hashing::WeightedHash;
use tamp_simulator::{Protocol, Rel, Session, SimError, Value};
use tamp_topology::NodeId;

/// `TreeIntersect` *without* the balanced partition: a single weighted
/// hash over all compute nodes (one global "block").
///
/// This keeps per-node loads proportional to `N_v` but ignores Definition
/// 1's property 4, so β-edges can carry far more than `|R|` — the bound
/// Theorem 2's analysis needs.
#[derive(Clone, Debug)]
pub struct GlobalWeightedHashJoin {
    seed: u64,
}

impl GlobalWeightedHashJoin {
    /// Create with a hash seed.
    pub fn new(seed: u64) -> Self {
        GlobalWeightedHashJoin { seed }
    }
}

impl Protocol for GlobalWeightedHashJoin {
    type Output = Vec<Value>;

    fn name(&self) -> String {
        format!("global-weighted-hash-join(seed={})", self.seed)
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        let stats = session.stats().clone();
        let weighted: Vec<(NodeId, u64)> = tree
            .compute_nodes()
            .iter()
            .map(|&v| (v, stats.n_v(v)))
            .collect();
        let Some(hash) = WeightedHash::new(self.seed, &weighted) else {
            return Ok(Vec::new());
        };
        session.round(|round| {
            for &v in tree.compute_nodes() {
                for rel in [Rel::R, Rel::S] {
                    let mut by_dst: HashMap<NodeId, Vec<Value>> = HashMap::new();
                    for &a in round.state(v).rel(rel) {
                        by_dst.entry(hash.pick(a)).or_default().push(a);
                    }
                    for (dst, vals) in by_dst {
                        round.send(v, &[dst], rel, &vals)?;
                    }
                }
            }
            Ok(())
        })?;
        Ok(
            tamp_simulator::verify::emitted_intersection(session.states())
                .into_iter()
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    #[test]
    fn global_hash_is_correct_but_unpartitioned() {
        let t = builders::rack_tree(&[(2, 1.0, 1.0), (2, 1.0, 1.0)], 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (0..50).collect());
        p.set_s(NodeId(2), (25..75).collect());
        let run = run_protocol(&t, &p, &GlobalWeightedHashJoin::new(1)).unwrap();
        verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
    }
}
