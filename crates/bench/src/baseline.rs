//! Machine-readable experiment baselines.
//!
//! The experiment harness prints human-oriented tables; this module
//! distills each suite into a few stable numbers — row counts, the
//! median of the numeric cells (dominated by the metered costs, which
//! are deterministic per seed), and the wall-clock time of the suite —
//! and serializes them as JSON. Committing the emitted
//! `BENCH_baseline.json` starts the performance trajectory: future PRs
//! diff their run against the checked-in baseline to spot cost
//! regressions (deterministic) and large timing shifts (indicative).

/// Summary of one experiment suite.
#[derive(Clone, Debug)]
pub struct SuiteBaseline {
    /// Experiment id (e.g. `t1-si`).
    pub id: String,
    /// Number of tables the suite produced.
    pub tables: usize,
    /// Total data rows across those tables.
    pub rows: usize,
    /// Count of numeric cells feeding the median.
    pub numeric_cells: usize,
    /// Median of the numeric cells in cost-like columns (headers
    /// mentioning cost/ratio/bound/envelope/LB), falling back to all
    /// numeric cells for tables without such columns. Deterministic per
    /// seed, so a drift here is a real cost change.
    pub median_numeric: f64,
    /// Wall-clock milliseconds for the suite (machine-dependent).
    pub wall_ms: f64,
}

/// `true` for column headers that carry metered costs or cost ratios
/// (as opposed to seeds, sizes and trial counts).
fn is_cost_header(h: &str) -> bool {
    let h = h.to_ascii_lowercase();
    ["cost", "ratio", "bound", "envelope", "lb"]
        .iter()
        .any(|k| h.contains(k))
}

/// `true` for column headers that carry wall-clock measurements —
/// machine-dependent, so they must never feed the deterministic cost
/// median (the `wall_ms` field tracks timing separately).
fn is_timing_header(h: &str) -> bool {
    let h = h.to_ascii_lowercase();
    ["wall", "_ms", "_us", "/s", "sec"]
        .iter()
        .any(|k| h.contains(k))
}

/// Distill one finished suite (its tables plus measured wall time) into
/// a baseline entry.
pub fn summarize(id: &str, tables: &[crate::table::Table], wall_ms: f64) -> SuiteBaseline {
    let mut rows = 0usize;
    let mut cost_cells: Vec<f64> = Vec::new();
    let mut all_cells: Vec<f64> = Vec::new();
    for t in tables {
        rows += t.num_rows();
        cost_cells.extend(t.numeric_cells_in_columns(is_cost_header));
        all_cells.extend(t.numeric_cells_in_columns(|h| !is_timing_header(h)));
    }
    // Median over the cost-like columns keeps the regression signal
    // undiluted; tables with no such column fall back to all
    // *deterministic* numbers (every column except wall-clock ones).
    let mut cells = if cost_cells.is_empty() {
        all_cells
    } else {
        cost_cells
    };
    SuiteBaseline {
        id: id.to_string(),
        tables: tables.len(),
        rows,
        numeric_cells: cells.len(),
        median_numeric: median(&mut cells),
        wall_ms,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    // Total order (lint rule F1): a NaN cell must not panic the sort.
    xs.sort_unstable_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn json_f64(x: f64) -> String {
    // JSON has no NaN/Infinity; encode them as null.
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize baselines as a stable, dependency-free JSON document.
pub fn to_json(suites: &[SuiteBaseline]) -> String {
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"suites\": [\n");
    for (i, s) in suites.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"tables\": {}, \"rows\": {}, \"numeric_cells\": {}, \
             \"median_numeric\": {}, \"wall_ms\": {}}}{}\n",
            json_escape(&s.id),
            s.tables,
            s.rows,
            s.numeric_cells,
            json_f64(s.median_numeric),
            json_f64(s.wall_ms),
            if i + 1 < suites.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a baseline document produced by [`to_json`].
///
/// This is *not* a general JSON parser — the document is ours (flat
/// objects, no nested braces, no commas inside strings), so a split-based
/// reader is enough and keeps the crate dependency-free.
pub fn from_json(text: &str) -> Result<Vec<SuiteBaseline>, String> {
    let body = text
        .split("\"suites\"")
        .nth(1)
        .ok_or("missing \"suites\" key")?;
    let mut suites = Vec::new();
    for obj in body.split('{').skip(1) {
        let obj = obj.split('}').next().ok_or("unterminated suite object")?;
        let mut id: Option<String> = None;
        let (mut tables, mut rows, mut numeric_cells) = (0usize, 0usize, 0usize);
        let (mut median_numeric, mut wall_ms) = (f64::NAN, f64::NAN);
        for field in obj.split(',') {
            let mut kv = field.splitn(2, ':');
            let k = kv.next().unwrap_or("").trim().trim_matches('"').to_string();
            let v = kv
                .next()
                .ok_or_else(|| format!("malformed field `{field}`"))?
                .trim();
            let num = |v: &str| -> Result<f64, String> {
                if v == "null" {
                    Ok(f64::NAN)
                } else {
                    v.parse().map_err(|e| format!("bad number `{v}`: {e}"))
                }
            };
            match k.as_str() {
                "id" => id = Some(v.trim_matches('"').to_string()),
                "tables" => tables = num(v)? as usize,
                "rows" => rows = num(v)? as usize,
                "numeric_cells" => numeric_cells = num(v)? as usize,
                "median_numeric" => median_numeric = num(v)?,
                "wall_ms" => wall_ms = num(v)?,
                _ => {} // forward-compatible: ignore unknown keys
            }
        }
        suites.push(SuiteBaseline {
            id: id.ok_or("suite object without id")?,
            tables,
            rows,
            numeric_cells,
            median_numeric,
            wall_ms,
        });
    }
    Ok(suites)
}

/// The outcome of diffing a run against a committed baseline.
#[derive(Clone, Debug, Default)]
pub struct RegressionReport {
    /// Informational lines (new suites, baseline-only suites).
    pub notes: Vec<String>,
    /// Hard failures: suites whose cost signal worsened beyond tolerance.
    pub failures: Vec<String>,
}

/// Ignore wall-clock drift on suites faster than this: timer noise and
/// scheduling jitter dominate millisecond-scale runs.
const WALL_FLOOR_MS: f64 = 50.0;

/// The run-to-baseline machine-speed factor: the **median** of the
/// per-suite `current / baseline` wall ratios over the suites the gate
/// itself judges (baseline wall at or above [`WALL_FLOOR_MS`] —
/// sub-floor suites are timer noise and would drown the signal). A
/// uniformly slower machine (CI runner vs the laptop that committed the
/// baseline) shifts every ratio, and the median with it; one suite
/// regressing — or *improving*, the expected change in a perf-focused
/// repo — moves only its own ratio, which the median ignores, so
/// neither fails the gate for the unchanged suites. The deliberate
/// trade-off: if a majority of the qualifying suites regress for one
/// shared cause, the median reads it as a slower machine — that band of
/// regression is left to the deterministic cost gate.
fn machine_speed(current: &[SuiteBaseline], baseline: &[SuiteBaseline]) -> f64 {
    let mut ratios: Vec<f64> = current
        .iter()
        .filter_map(|cur| {
            let base = baseline.iter().find(|b| b.id == cur.id)?;
            (base.wall_ms.is_finite() && base.wall_ms >= WALL_FLOOR_MS && cur.wall_ms.is_finite())
                .then(|| cur.wall_ms / base.wall_ms)
        })
        .collect();
    if ratios.is_empty() {
        return 1.0; // no qualifying suites (the per-suite gate skips them all too)
    }
    median(&mut ratios)
}

/// Diff `current` against `baseline`. A suite **fails** when
///
/// - its `median_numeric` — the deterministic cost signal — worsens
///   (grows) by more than `tolerance` (`0.10` = 10%), or
/// - its `wall_ms` worsens by more than `wall_tolerance` (`0.50` = 50%)
///   after normalizing by the overall machine-speed factor (the median
///   of qualifying per-suite wall ratios, so neither a uniformly slower
///   machine nor a single-suite speedup produces false failures);
///   suites under 50 ms in the baseline are exempt (pure timer noise).
///
/// Suites only present on one side are reported as notes, never
/// failures.
pub fn check_regressions(
    current: &[SuiteBaseline],
    baseline: &[SuiteBaseline],
    tolerance: f64,
    wall_tolerance: f64,
) -> RegressionReport {
    let mut report = RegressionReport::default();
    let speed = machine_speed(current, baseline);
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.id == cur.id) else {
            report
                .notes
                .push(format!("{}: new suite (no baseline entry)", cur.id));
            continue;
        };
        if !base.median_numeric.is_nan() {
            if cur.median_numeric.is_nan() {
                // The suite used to have a cost signal and now has none —
                // that is a regression of the gate itself, not a free pass.
                report.failures.push(format!(
                    "{}: median_numeric vanished (NaN) but baseline has {:.6}",
                    cur.id, base.median_numeric,
                ));
            } else {
                let allowed = base.median_numeric * (1.0 + tolerance) + 1e-9;
                if cur.median_numeric > allowed {
                    report.failures.push(format!(
                        "{}: median_numeric {:.6} worsened >{:.0}% over baseline {:.6}",
                        cur.id,
                        cur.median_numeric,
                        tolerance * 100.0,
                        base.median_numeric,
                    ));
                }
            }
        }
        // Wall-clock gate: speed-normalized, floored, generous.
        if base.wall_ms.is_finite() && base.wall_ms >= WALL_FLOOR_MS && cur.wall_ms.is_finite() {
            let allowed = base.wall_ms * speed * (1.0 + wall_tolerance) + WALL_FLOOR_MS;
            if cur.wall_ms > allowed {
                report.failures.push(format!(
                    "{}: wall_ms {:.1} worsened >{:.0}% over baseline {:.1} \
                     (machine-speed factor {:.2})",
                    cur.id,
                    cur.wall_ms,
                    wall_tolerance * 100.0,
                    base.wall_ms,
                    speed,
                ));
            }
        }
    }
    for base in baseline {
        if !current.iter().any(|c| c.id == base.id) {
            report
                .notes
                .push(format!("{}: in baseline but not in this run", base.id));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite(id: &str, median: f64) -> SuiteBaseline {
        SuiteBaseline {
            id: id.into(),
            tables: 1,
            rows: 2,
            numeric_cells: 4,
            median_numeric: median,
            wall_ms: 1.0,
        }
    }

    #[test]
    fn json_roundtrips() {
        let suites = vec![suite("t1-si", 0.9), suite("x-plan", 123.456)];
        let parsed = from_json(&to_json(&suites)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].id, "t1-si");
        assert!((parsed[0].median_numeric - 0.9).abs() < 1e-9);
        assert_eq!(parsed[1].id, "x-plan");
        assert!((parsed[1].median_numeric - 123.456).abs() < 1e-9);
        assert_eq!(parsed[1].rows, 2);
    }

    #[test]
    fn regression_check_flags_only_worsening() {
        let baseline = vec![suite("a", 100.0), suite("gone", 5.0)];
        let current = vec![
            suite("a", 109.9),  // +9.9% — within the 10% envelope
            suite("new", 50.0), // no baseline — note only
        ];
        let report = check_regressions(&current, &baseline, 0.10, 0.50);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.notes.len(), 2);

        let worse = vec![suite("a", 111.0)];
        let report = check_regressions(&worse, &baseline, 0.10, 0.50);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);

        // Improvements never fail.
        let better = vec![suite("a", 20.0)];
        assert!(check_regressions(&better, &baseline, 0.10, 0.50)
            .failures
            .is_empty());

        // A cost signal that vanishes (NaN vs finite baseline) fails —
        // otherwise a suite degenerating to zero numeric cells would
        // bypass the gate entirely.
        let vanished = vec![suite("a", f64::NAN)];
        let report = check_regressions(&vanished, &baseline, 0.10, 0.50);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("vanished"));
    }

    fn timed(id: &str, wall: f64) -> SuiteBaseline {
        SuiteBaseline {
            wall_ms: wall,
            ..suite(id, 1.0)
        }
    }

    #[test]
    fn wall_gate_flags_relative_regressions_only() {
        let baseline = vec![
            timed("a", 200.0),
            timed("b", 400.0),
            timed("c", 800.0),
            timed("tiny", 2.0),
        ];
        // A uniformly 3× slower machine: every ratio shifts together, the
        // speed factor absorbs it, nothing fails.
        let slower: Vec<SuiteBaseline> = baseline
            .iter()
            .map(|s| timed(&s.id, s.wall_ms * 3.0))
            .collect();
        let report = check_regressions(&slower, &baseline, 0.10, 0.50);
        assert!(report.failures.is_empty(), "{:?}", report.failures);

        // One suite blowing up 5× on an otherwise steady machine fails.
        let blowup = vec![
            timed("a", 200.0),
            timed("b", 2000.0),
            timed("c", 800.0),
            timed("tiny", 2.0),
        ];
        let report = check_regressions(&blowup, &baseline, 0.10, 0.50);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("b: wall_ms"));

        // A genuine speedup in one suite must not fail the gate for the
        // unchanged suites (perf improvements are the expected change
        // here): the median speed factor ignores the improved outlier.
        let one_faster = vec![
            timed("a", 200.0),
            timed("b", 400.0),
            timed("c", 80.0), // 10× faster, others unchanged
            timed("tiny", 2.0),
        ];
        let report = check_regressions(&one_faster, &baseline, 0.10, 0.50);
        assert!(report.failures.is_empty(), "{:?}", report.failures);

        // Sub-floor suites never fail on wall time, however noisy —
        // and their jitter never skews the speed factor.
        let noisy_tiny = vec![
            timed("a", 200.0),
            timed("b", 400.0),
            timed("c", 800.0),
            timed("tiny", 40.0),
        ];
        let report = check_regressions(&noisy_tiny, &baseline, 0.10, 0.50);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
    }

    #[test]
    fn median_is_robust() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&mut []).is_nan());
    }

    #[test]
    fn json_shape_is_valid() {
        let suites = vec![SuiteBaseline {
            id: "t1-si".into(),
            tables: 1,
            rows: 24,
            numeric_cells: 96,
            median_numeric: 5.5,
            wall_ms: 12.0,
        }];
        let j = to_json(&suites);
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"id\": \"t1-si\""));
        assert!(j.contains("\"median_numeric\": 5.500000"));
        // No trailing comma before the closing bracket.
        assert!(!j.contains(",\n  ]"));
    }

    #[test]
    fn summarize_distills_a_real_suite() {
        let tables = crate::suite::run_experiment("abl-partition").unwrap();
        let s = summarize("abl-partition", &tables, 1.0);
        assert_eq!(s.id, "abl-partition");
        assert!(s.tables >= 1 && s.rows >= 1 && s.numeric_cells >= 1);
        assert!(s.median_numeric.is_finite());
        assert_eq!(s.wall_ms, 1.0);
    }
}
