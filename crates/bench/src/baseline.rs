//! Machine-readable experiment baselines.
//!
//! The experiment harness prints human-oriented tables; this module
//! distills each suite into a few stable numbers — row counts, the
//! median of the numeric cells (dominated by the metered costs, which
//! are deterministic per seed), and the wall-clock time of the suite —
//! and serializes them as JSON. Committing the emitted
//! `BENCH_baseline.json` starts the performance trajectory: future PRs
//! diff their run against the checked-in baseline to spot cost
//! regressions (deterministic) and large timing shifts (indicative).

/// Summary of one experiment suite.
#[derive(Clone, Debug)]
pub struct SuiteBaseline {
    /// Experiment id (e.g. `t1-si`).
    pub id: String,
    /// Number of tables the suite produced.
    pub tables: usize,
    /// Total data rows across those tables.
    pub rows: usize,
    /// Count of numeric cells feeding the median.
    pub numeric_cells: usize,
    /// Median of the numeric cells in cost-like columns (headers
    /// mentioning cost/ratio/bound/envelope/LB), falling back to all
    /// numeric cells for tables without such columns. Deterministic per
    /// seed, so a drift here is a real cost change.
    pub median_numeric: f64,
    /// Wall-clock milliseconds for the suite (machine-dependent).
    pub wall_ms: f64,
}

/// `true` for column headers that carry metered costs or cost ratios
/// (as opposed to seeds, sizes and trial counts).
fn is_cost_header(h: &str) -> bool {
    let h = h.to_ascii_lowercase();
    ["cost", "ratio", "bound", "envelope", "lb"]
        .iter()
        .any(|k| h.contains(k))
}

/// Distill one finished suite (its tables plus measured wall time) into
/// a baseline entry.
pub fn summarize(id: &str, tables: &[crate::table::Table], wall_ms: f64) -> SuiteBaseline {
    let mut rows = 0usize;
    let mut cost_cells: Vec<f64> = Vec::new();
    let mut all_cells: Vec<f64> = Vec::new();
    for t in tables {
        rows += t.num_rows();
        cost_cells.extend(t.numeric_cells_in_columns(is_cost_header));
        all_cells.extend(t.numeric_cells());
    }
    // Median over the cost-like columns keeps the regression signal
    // undiluted; tables with no such column fall back to all numbers.
    let mut cells = if cost_cells.is_empty() {
        all_cells
    } else {
        cost_cells
    };
    SuiteBaseline {
        id: id.to_string(),
        tables: tables.len(),
        rows,
        numeric_cells: cells.len(),
        median_numeric: median(&mut cells),
        wall_ms,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn json_f64(x: f64) -> String {
    // JSON has no NaN/Infinity; encode them as null.
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize baselines as a stable, dependency-free JSON document.
pub fn to_json(suites: &[SuiteBaseline]) -> String {
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"suites\": [\n");
    for (i, s) in suites.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"tables\": {}, \"rows\": {}, \"numeric_cells\": {}, \
             \"median_numeric\": {}, \"wall_ms\": {}}}{}\n",
            json_escape(&s.id),
            s.tables,
            s.rows,
            s.numeric_cells,
            json_f64(s.median_numeric),
            json_f64(s.wall_ms),
            if i + 1 < suites.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&mut []).is_nan());
    }

    #[test]
    fn json_shape_is_valid() {
        let suites = vec![SuiteBaseline {
            id: "t1-si".into(),
            tables: 1,
            rows: 24,
            numeric_cells: 96,
            median_numeric: 5.5,
            wall_ms: 12.0,
        }];
        let j = to_json(&suites);
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"id\": \"t1-si\""));
        assert!(j.contains("\"median_numeric\": 5.500000"));
        // No trailing comma before the closing bracket.
        assert!(!j.contains(",\n  ]"));
    }

    #[test]
    fn summarize_distills_a_real_suite() {
        let tables = crate::suite::run_experiment("abl-partition").unwrap();
        let s = summarize("abl-partition", &tables, 1.0);
        assert_eq!(s.id, "abl-partition");
        assert!(s.tables >= 1 && s.rows >= 1 && s.numeric_cells >= 1);
        assert!(s.median_numeric.is_finite());
        assert_eq!(s.wall_ms, 1.0);
    }
}
