//! X-CHAOS — seeded chaos schedules against checkpointed recovery.
//!
//! For each seed, [`chaos::schedule`] generates a deterministic fault
//! plan queue (worker kills, subtree detaches, link degradations and
//! stalls over valid targets), arms it on an orchestrator with
//! per-superstep checkpointing, and streams a mixed workload through the
//! recovery loop. The two degraded-mode guarantees are asserted per
//! seed:
//!
//! 1. **Bit-identical recovery** — every served answer (canonical rows
//!    *and* metered `edge_totals`) equals the fault-free serial run's,
//!    whatever the schedule threw at the crew;
//! 2. **Partial restart** — every recovery that resumed from a
//!    checkpoint replayed *strictly fewer* supersteps than the whole
//!    query (replayed + skipped = total, skipped > 0), straight from the
//!    [`RecoveryEvent`](tamp_query::RecoveryEvent) ledger.
//!
//! The release gate sweeps [`GATE_SEEDS`] seeds; the debug test a small
//! prefix.

use std::time::{Duration, Instant};

use tamp_query::orchestrator::chaos::{self, ChaosSpec};
use tamp_query::orchestrator::Orchestrator;
use tamp_query::prelude::*;
use tamp_topology::builders;

use crate::table::{fnum, Table};

/// Seeds swept by the release gate (and `experiments -- x-chaos`).
pub const GATE_SEEDS: u64 = 64;
/// Fault plans armed per seed (all consumed: one per execution attempt).
const PLANS_PER_SEED: usize = 3;
/// Queries served per seed (enough to drain every armed plan).
const SERVES_PER_SEED: usize = 6;

fn chaos_context() -> QueryContext {
    let tree = builders::star(6, 1.0);
    let mut ctx = QueryContext::new(tree.clone()).with_seed(41);
    let facts: Vec<Vec<u64>> = (0..180).map(|i| vec![i, i % 7, (i * 53) % 400]).collect();
    ctx.register(DistributedTable::round_robin(
        "facts",
        Schema::new(vec!["id", "g", "x"]).unwrap(),
        facts,
        &tree,
    ))
    .unwrap();
    ctx
}

fn workload() -> Vec<LogicalPlan> {
    vec![
        LogicalPlan::scan("facts").aggregate("g", AggFunc::Sum, "x"),
        LogicalPlan::scan("facts")
            .filter(col("x").lt(lit(200)))
            .aggregate("g", AggFunc::Count, "id"),
        LogicalPlan::scan("facts").order_by("x").limit(20),
    ]
}

/// What one chaos sweep measured.
#[derive(Debug)]
pub struct ChaosMeasurement {
    /// Seeds swept.
    pub seeds: u64,
    /// Queries served across all seeds.
    pub serves: u64,
    /// Faults that actually fired mid-execution.
    pub faults_fired: u64,
    /// Replay recoveries (one per fired recoverable fault).
    pub recoveries: u64,
    /// Recoveries that resumed from a superstep checkpoint.
    pub partial_restarts: u64,
    /// Supersteps skipped by checkpointed resumes, summed.
    pub supersteps_skipped: u64,
    /// Every served answer matched the fault-free serial run bit for bit.
    pub identical: bool,
    /// Every partial restart replayed strictly fewer supersteps than the
    /// whole query (replayed + skipped = total, skipped > 0).
    pub strictly_fewer: bool,
    /// Wall time for the whole sweep.
    pub wall: Duration,
}

/// Sweep `seeds` seeded chaos schedules, checking every answer and every
/// recovery event.
pub fn measure(seeds: u64) -> ChaosMeasurement {
    let queries = workload();
    let reference: Vec<QueryResult> = {
        let ctx = chaos_context();
        queries
            .iter()
            .map(|q| ctx.prepare(q).unwrap().run().unwrap())
            .collect()
    };

    let mut serves = 0u64;
    let mut faults_fired = 0u64;
    let mut recoveries = 0u64;
    let mut partial_restarts = 0u64;
    let mut supersteps_skipped = 0u64;
    let mut identical = true;
    let mut strictly_fewer = true;

    let start = Instant::now();
    for seed in 0..seeds {
        let orch = Orchestrator::builder(chaos_context())
            .tenant(TenantSpec::new("chaos", 1, 64))
            .checkpoints(1)
            .build()
            .unwrap();
        let tree = orch.service().context().tree().clone();
        let spec = ChaosSpec::new(seed)
            .with_plans(PLANS_PER_SEED)
            .with_max_round(3);
        for plan in chaos::schedule(&tree, &spec) {
            orch.inject_faults(plan).unwrap();
        }
        for i in 0..SERVES_PER_SEED {
            let k = i % queries.len();
            let served = orch
                .serve_as("chaos", &queries[k])
                .unwrap_or_else(|e| panic!("seed {seed}: serve failed: {e}"));
            serves += 1;
            identical &= served.result.rows(false) == reference[k].rows(false)
                && served.result.cost.edge_totals == reference[k].cost.edge_totals;
        }
        faults_fired += orch.fault_events().len() as u64;
        for rec in orch.recovery_events() {
            recoveries += 1;
            if let Some(from) = rec.resumed_from {
                partial_restarts += 1;
                supersteps_skipped += rec.skipped_supersteps as u64;
                // The whole query is replayed + skipped supersteps; a
                // partial restart must beat that strictly.
                let replayed = rec.replayed_supersteps.unwrap_or(usize::MAX);
                let total = replayed + rec.skipped_supersteps;
                strictly_fewer &= from > 0 && rec.skipped_supersteps > 0 && replayed < total;
            }
        }
    }
    ChaosMeasurement {
        seeds,
        serves,
        faults_fired,
        recoveries,
        partial_restarts,
        supersteps_skipped,
        identical,
        strictly_fewer,
        wall: start.elapsed(),
    }
}

/// X-CHAOS — the seeded chaos harness: bit-identical recovery and
/// strictly-fewer-superstep partial restarts across [`GATE_SEEDS`]
/// deterministic fault schedules.
pub fn x_chaos() -> Vec<Table> {
    let m = measure(GATE_SEEDS);
    let mut t = Table::new(
        "X-CHAOS  seeded fault schedules vs checkpointed recovery",
        &[
            "seeds",
            "serves",
            "faults",
            "recoveries",
            "partial_restarts",
            "supersteps_skipped",
            "identical",
            "strictly_fewer",
            "wall_ms",
        ],
    );
    t.row(vec![
        m.seeds.to_string(),
        m.serves.to_string(),
        m.faults_fired.to_string(),
        m.recoveries.to_string(),
        m.partial_restarts.to_string(),
        m.supersteps_skipped.to_string(),
        if m.identical { "yes" } else { "NO" }.into(),
        if m.strictly_fewer { "yes" } else { "NO" }.into(),
        fnum(m.wall.as_secs_f64() * 1e3),
    ]);
    t.note(
        "Expected shape: identical = yes (every answer under every seeded schedule \
         matches the fault-free serial run bit for bit) and strictly_fewer = yes \
         (every checkpointed resume replays replayed < replayed + skipped supersteps, \
         skipped > 0, read from the RecoveryEvent ledger). Fault/recovery counts are \
         deterministic per seed set; wall time is machine-dependent.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_chaos_sweep_is_identical_with_partial_restarts() {
        let m = measure(8);
        assert!(m.identical, "a chaos-recovered answer diverged");
        assert!(m.strictly_fewer, "a resume replayed the whole query");
        assert!(m.recoveries >= 1, "8 seeds must fire at least one fault");
        assert_eq!(m.serves, 8 * SERVES_PER_SEED as u64);
    }

    /// The release acceptance gate: 64 seeded schedules, every answer
    /// bit-identical, every checkpointed resume strictly cheaper than a
    /// whole-query replay, and at least one partial restart observed.
    #[test]
    #[ignore = "full chaos sweep; run in release (CI does)"]
    fn gate_chaos_sweep_is_bit_identical_and_partially_restarts() {
        let m = measure(GATE_SEEDS);
        assert!(m.identical, "a chaos-recovered answer diverged");
        assert!(m.strictly_fewer, "a resume replayed the whole query");
        assert!(
            m.partial_restarts >= 1,
            "64 seeds with checkpoint-every-superstep must resume at least once"
        );
        assert!(
            m.recoveries >= m.partial_restarts,
            "recovery ledger inconsistent: {m:?}"
        );
        assert_eq!(m.serves, GATE_SEEDS * SERVES_PER_SEED as u64);
    }
}
