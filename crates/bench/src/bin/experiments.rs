//! The experiment harness CLI: regenerates every table and figure of the
//! paper against the executable cost model.
//!
//! ```text
//! cargo run --release -p tamp-bench --bin experiments            # all
//! cargo run --release -p tamp-bench --bin experiments -- t1-si f4
//! cargo run --release -p tamp-bench --bin experiments -- --list
//! cargo run --release -p tamp-bench --bin experiments -- all --json
//! cargo run --release -p tamp-bench --bin experiments -- all --json=out.json
//! ```
//!
//! With `--json` (or `--json=PATH`), a machine-readable per-suite
//! summary (median costs and wall-clock timings) is written to `PATH`
//! (default `BENCH_baseline.json`) in addition to the printed tables.
//! The `=` form is deliberate: a free-standing operand after `--json`
//! would be ambiguous with a (possibly typo'd) experiment id.
//!
//! With `--check=PATH`, the run is additionally diffed against the
//! committed baseline at `PATH`: the process exits non-zero if any
//! suite's `median_numeric` (the deterministic cost signal) worsened by
//! more than 10%, or any suite's `wall_ms` worsened by more than 50%
//! after machine-speed normalization — the CI bench-regression gate.

use std::time::Instant;

use tamp_bench::baseline;
use tamp_bench::suite::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut ids: Vec<&str> = Vec::new();
    for arg in &args {
        if arg == "--json" {
            json_path = Some("BENCH_baseline.json".to_string());
        } else if let Some(path) = arg.strip_prefix("--json=") {
            if path.is_empty() {
                eprintln!("--json= requires a path");
                std::process::exit(2);
            }
            json_path = Some(path.to_string());
        } else if let Some(path) = arg.strip_prefix("--check=") {
            if path.is_empty() {
                eprintln!("--check= requires a baseline path");
                std::process::exit(2);
            }
            check_path = Some(path.to_string());
        } else if arg.starts_with("--") && arg != "--list" {
            eprintln!("unknown flag: {arg}");
            std::process::exit(2);
        } else {
            ids.push(arg.as_str());
        }
    }
    let ids: Vec<&str> = if ids.is_empty() || ids.contains(&"all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        ids
    };
    println!("tamp experiment harness — PODS 2021 topology-aware MPC reproduction");
    let mut suites = Vec::new();
    for id in ids {
        let start = Instant::now();
        match run_experiment(id) {
            Some(tables) => {
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                for table in &tables {
                    println!("{table}");
                }
                suites.push(baseline::summarize(id, &tables, wall_ms));
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, baseline::to_json(&suites)) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote per-suite baseline to {path}");
    }
    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let committed = match baseline::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("failed to parse baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let report = baseline::check_regressions(&suites, &committed, 0.10, 0.50);
        for note in &report.notes {
            println!("baseline note: {note}");
        }
        if report.failures.is_empty() {
            println!(
                "bench-regression check passed against {path} ({} suites compared)",
                suites.len()
            );
        } else {
            for failure in &report.failures {
                eprintln!("bench REGRESSION: {failure}");
            }
            std::process::exit(1);
        }
    }
}
