//! The experiment harness CLI: regenerates every table and figure of the
//! paper against the executable cost model.
//!
//! ```text
//! cargo run --release -p tamp-bench --bin experiments            # all
//! cargo run --release -p tamp-bench --bin experiments -- t1-si f4
//! cargo run --release -p tamp-bench --bin experiments -- --list
//! ```

use tamp_bench::suite::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!("tamp experiment harness — PODS 2021 topology-aware MPC reproduction");
    for id in ids {
        match run_experiment(id) {
            Some(tables) => {
                for table in tables {
                    println!("{table}");
                }
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                std::process::exit(2);
            }
        }
    }
}
