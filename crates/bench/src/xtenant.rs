//! X-TENANT — the orchestration layer under adversarial multi-tenant
//! load, measured.
//!
//! One [`Orchestrator`] over a star topology serves **1,041 sessions
//! across 9 tenants**: a weight-1 "burst" tenant flooding from 16
//! threads (the adversary) against eight weight-4 "polite" tenants
//! submitting steadily (the victims), through a deliberately small
//! admission capacity so queues build and every subsystem is exercised
//! at once:
//!
//! - **weighted-fair admission** — deficit-weighted round-robin must
//!   keep every polite tenant inside its structural wait bound
//!   (`max_waited_grants` ≲ one rotation of total weight) no matter how
//!   deep the burst queue grows;
//! - **elastic autoscaling** — the crew starts at the spec minimum and
//!   the control loop grows it as queue depth crosses target; every
//!   resize is logged with its full observation and replayed through
//!   the pure [`decide`] law after the run;
//! - **fault injection + replay recovery** — a chaos thread keeps
//!   arming kill-worker plans mid-stream, and a final guaranteed
//!   kill-at-round-0 closes the run; every faulted query must recover
//!   to results bit-identical to the serial reference.
//!
//! The `cost` column is the workload's deterministic metered tuple cost
//! (the baseline signal); per-tenant waits, walls, and fault counts are
//! machine- and schedule-dependent by nature.

use std::time::{Duration, Instant};

use tamp_query::orchestrator::{decide, Orchestrator, ScaleDecision, ScalingSpec, TenantStats};
use tamp_query::prelude::*;
use tamp_query::QueryError;
use tamp_runtime::FaultPlan;
use tamp_topology::builders;

use crate::table::{fnum, Table};

/// Threads flooding the weight-1 burst tenant.
pub const BURST_THREADS: usize = 16;
/// Sessions per burst thread.
pub const BURST_QUERIES: usize = 40;
/// Polite tenants (one submitting thread each).
pub const POLITE_TENANTS: usize = 8;
/// Sessions per polite tenant.
pub const POLITE_QUERIES: usize = 50;
/// Shared admission capacity (small on purpose: queues must build).
pub const CAPACITY: usize = 3;

/// Total sessions the scenario serves (incl. the final guaranteed
/// fault-recovery session): 16×40 + 8×50 + 1 = 1,041.
pub const SESSIONS: usize = BURST_THREADS * BURST_QUERIES + POLITE_TENANTS * POLITE_QUERIES + 1;

fn tenant_context() -> QueryContext {
    let tree = builders::star(8, 1.0);
    let mut ctx = QueryContext::new(tree.clone()).with_seed(59);
    let facts: Vec<Vec<u64>> = (0..160).map(|i| vec![i, i % 8, (i * 43) % 512]).collect();
    ctx.register(DistributedTable::round_robin(
        "facts",
        Schema::new(vec!["id", "g", "x"]).unwrap(),
        facts,
        &tree,
    ))
    .unwrap();
    ctx
}

fn workload() -> Vec<LogicalPlan> {
    vec![
        LogicalPlan::scan("facts").aggregate("g", AggFunc::Sum, "x"),
        LogicalPlan::scan("facts")
            .filter(col("x").lt(lit(256)))
            .aggregate("g", AggFunc::Count, "id"),
        LogicalPlan::scan("facts").order_by("x").limit(16),
    ]
}

/// One full adversarial-burst run, verified.
pub struct TenantMeasurement {
    /// Per-tenant serving stats, in registration order.
    pub stats: Vec<TenantStats>,
    /// Every served result matched the serial reference bit for bit
    /// (rows and metered `edge_totals`) — including fault-recovered
    /// queries.
    pub identical: bool,
    /// Faults that actually fired mid-run.
    pub faults_fired: usize,
    /// Replay recoveries performed (one per fired fault).
    pub recoveries: usize,
    /// Every logged scaling decision replayed from its recorded
    /// observation through the pure control law.
    pub log_replays: bool,
    /// Resize events in the scaling log.
    pub resizes: usize,
    /// Crew width when the run ended (within `[min, max]`).
    pub final_width: usize,
    /// Deterministic metered tuple cost of one workload pass.
    pub workload_cost: f64,
    /// Wall time for all sessions.
    pub wall: Duration,
}

/// Serve under active chaos. The injector is a FIFO, so a chaos thread
/// arming plans faster than queries drain them can exhaust one query's
/// retry budget; exhaustion drains the armed queue, so retrying the
/// serve is bounded and lands on a healthy crew.
fn serve_tolerating_exhaustion(
    orch: &Orchestrator,
    tenant: &str,
    plan: &tamp_query::LogicalPlan,
) -> tamp_query::ServedQuery {
    loop {
        match orch.serve_as(tenant, plan) {
            Ok(served) => return served,
            Err(QueryError::RecoveryExhausted { .. }) => continue,
            Err(e) => panic!("serve_as failed non-recoverably: {e}"),
        }
    }
}

/// Run the adversarial scenario: burst vs polite tenants with
/// autoscaling and chaos-injected faults, checking every answer.
pub fn measure() -> TenantMeasurement {
    let queries = workload();
    let serial: Vec<QueryResult> = {
        let ctx = tenant_context();
        queries
            .iter()
            .map(|q| ctx.prepare(q).unwrap().run().unwrap())
            .collect()
    };
    let workload_cost: f64 = serial.iter().map(|r| r.cost.tuple_cost()).sum();

    let mut builder = Orchestrator::builder(tenant_context())
        .tenant(TenantSpec::new("burst", 1, 1024))
        .capacity(CAPACITY)
        .scaling(
            ScalingSpec::new(1, 8)
                .with_target_queue_depth(4)
                .with_cooldown(2),
        );
    for p in 0..POLITE_TENANTS {
        builder = builder.tenant(TenantSpec::new(format!("polite-{p}"), 4, 64));
    }
    let orch = builder.build().unwrap();
    let computes = orch.service().context().tree().compute_nodes().to_vec();

    let start = Instant::now();
    let identical = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..BURST_THREADS {
            let (orch, queries, serial) = (&orch, &queries, &serial);
            handles.push(scope.spawn(move || {
                let mut ok = true;
                for i in 0..BURST_QUERIES {
                    let k = (t + i) % queries.len();
                    let served = serve_tolerating_exhaustion(orch, "burst", &queries[k]);
                    ok &= served.result.rows(false) == serial[k].rows(false)
                        && served.result.cost.edge_totals == serial[k].cost.edge_totals;
                }
                ok
            }));
        }
        for p in 0..POLITE_TENANTS {
            let (orch, queries, serial) = (&orch, &queries, &serial);
            handles.push(scope.spawn(move || {
                let tenant = format!("polite-{p}");
                let mut ok = true;
                for i in 0..POLITE_QUERIES {
                    let k = (p + i) % queries.len();
                    let served = serve_tolerating_exhaustion(orch, &tenant, &queries[k]);
                    ok &= served.result.rows(false) == serial[k].rows(false)
                        && served.result.cost.edge_totals == serial[k].cost.edge_totals;
                }
                ok
            }));
        }
        // The chaos thread: one-shot kill plans armed while sessions
        // stream. Plans queue FIFO in the injector, so a burst of arms
        // can fell several consecutive attempts of one run — the serving
        // threads tolerate retry exhaustion above.
        {
            let (orch, computes) = (&orch, &computes);
            handles.push(scope.spawn(move || {
                for round in 0..16 {
                    let victim = computes[round % computes.len()];
                    orch.inject_faults(FaultPlan::new().kill_worker(victim, round % 2))
                        .unwrap();
                    std::thread::yield_now();
                }
                true
            }));
        }
        handles.into_iter().all(|h| h.join().unwrap())
    });

    // Final guaranteed fault → recovery cycle (also drains any plan the
    // chaos thread left armed): kill at round 0 cannot be missed.
    orch.inject_faults(FaultPlan::new().kill_worker(computes[0], 0))
        .unwrap();
    let served = serve_tolerating_exhaustion(&orch, "burst", &queries[0]);
    let identical = identical
        && served.result.rows(false) == serial[0].rows(false)
        && served.result.cost.edge_totals == serial[0].cost.edge_totals;
    let wall = start.elapsed();

    let spec = orch.scaling_spec().expect("scaling was configured");
    let events = orch.scaling_events();
    let log_replays = events
        .iter()
        .all(|e| decide(spec, &e.observation) == (e.decision, e.reason))
        && events.iter().all(|e| match e.decision {
            ScaleDecision::Grow(w) | ScaleDecision::Shrink(w) => (spec.min..=spec.max).contains(&w),
            ScaleDecision::Hold => false,
        });

    TenantMeasurement {
        stats: orch.stats(),
        identical,
        faults_fired: orch.fault_events().len(),
        recoveries: orch.recovery_events().len(),
        log_replays,
        resizes: events.len(),
        final_width: orch.pool_width(),
        workload_cost,
        wall,
    }
}

/// X-TENANT — weighted-fair multi-tenant orchestration: adversarial
/// burst vs polite tenants, elastic autoscaling, chaos faults, all
/// bit-identical.
pub fn x_tenant() -> Vec<Table> {
    let m = measure();

    let mut per = Table::new(
        "X-TENANT  per-tenant serving under a 16-thread adversarial burst (DRR admission)",
        &[
            "tenant",
            "weight",
            "prio",
            "served",
            "rejected",
            "cache_hit%",
            "recovered",
            "waited_max",
            "queue_p50_us",
            "queue_p99_us",
        ],
    );
    for t in &m.stats {
        let hit_pct = if t.served == 0 {
            0.0
        } else {
            100.0 * t.cache_hits as f64 / t.served as f64
        };
        per.row(vec![
            t.tenant.clone(),
            t.weight.to_string(),
            format!("{:?}", t.priority),
            t.served.to_string(),
            t.rejected.to_string(),
            fnum(hit_pct),
            t.recovered.to_string(),
            t.max_waited_grants.to_string(),
            t.queue_p50.as_micros().to_string(),
            t.queue_p99.as_micros().to_string(),
        ]);
    }
    per.note(
        "Expected shape: no tenant starves (served = submitted, rejected = 0); each \
         weight-4 polite tenant's waited_max stays \u{2264} ~2 rotations of total weight \
         (the structural DRR bound) while the weight-1 burst tenant absorbs the queueing. \
         Waits and percentiles are wall-clock (machine-dependent).",
    );

    let mut sum = Table::new(
        "X-TENANT  orchestrator run summary (autoscaling + fault replay)",
        &[
            "sessions",
            "tenants",
            "capacity",
            "width_final",
            "resizes",
            "log_replays",
            "faults",
            "recoveries",
            "identical",
            "cost",
            "wall_ms",
        ],
    );
    sum.row(vec![
        SESSIONS.to_string(),
        m.stats.len().to_string(),
        CAPACITY.to_string(),
        m.final_width.to_string(),
        m.resizes.to_string(),
        if m.log_replays { "yes" } else { "NO" }.into(),
        m.faults_fired.to_string(),
        m.recoveries.to_string(),
        if m.identical { "yes" } else { "NO" }.into(),
        fnum(m.workload_cost),
        fnum(m.wall.as_secs_f64() * 1e3),
    ]);
    sum.note(
        "Expected shape: identical = yes (every session, fault-recovered or not, matches \
         the serial reference bit for bit) and log_replays = yes (every resize decision \
         reproduces from its recorded observation via the pure control law). `cost` is \
         the deterministic metered signal; fault/resize counts depend on thread timing.",
    );
    vec![per, sum]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_burst_run_is_fair_identical_and_replayable() {
        let m = measure();
        assert!(m.identical, "a served result diverged from serial");
        assert!(m.log_replays, "a scaling decision failed to replay");
        assert_eq!(m.stats.len(), 1 + POLITE_TENANTS);
        assert!(SESSIONS >= 1000 && m.stats.len() >= 8);
        assert_eq!(
            m.faults_fired, m.recoveries,
            "every fired fault must trigger exactly one replay recovery"
        );
        assert!(m.recoveries >= 1, "the guaranteed final fault must fire");
        let total_weight: u64 = m.stats.iter().map(|t| u64::from(t.weight)).sum();
        for t in &m.stats {
            assert_eq!(t.rejected, 0, "tenant {} was rejected", t.tenant);
            let want = if t.tenant == "burst" {
                (BURST_THREADS * BURST_QUERIES + 1) as u64
            } else {
                POLITE_QUERIES as u64
            };
            assert_eq!(t.served, want, "tenant {} starved", t.tenant);
            if t.tenant != "burst" {
                assert!(
                    t.max_waited_grants <= 2 * total_weight,
                    "tenant {} waited {} grants (total weight {total_weight})",
                    t.tenant,
                    t.max_waited_grants
                );
            }
        }
    }

    /// Release gate (no-starvation): under the 16-thread burst, every
    /// polite tenant's p99 queue wait stays bounded — within a small
    /// constant of the adversary's own p99 (relative, so the bar holds
    /// on slow machines). Wall-clock sensitive, so `#[ignore]`d here and
    /// enforced by CI against the release build.
    #[test]
    #[ignore = "wall-clock acceptance bar; run in release (CI does)"]
    fn polite_p99_queue_wait_is_bounded_under_burst() {
        let m = measure();
        assert!(m.identical && m.log_replays);
        let burst_p99 = m
            .stats
            .iter()
            .find(|t| t.tenant == "burst")
            .unwrap()
            .queue_p99;
        // Slack floor absorbs timer granularity when queues never build.
        let bound = burst_p99.max(Duration::from_millis(5)) * 4;
        for t in m.stats.iter().filter(|t| t.tenant != "burst") {
            assert!(
                t.queue_p99 <= bound,
                "{}: p99 {:?} exceeds bound {:?} (burst p99 {:?})",
                t.tenant,
                t.queue_p99,
                bound,
                burst_p99
            );
        }
    }

    /// Release gate (fault replay): chaos-injected kills mid-stream plus
    /// a guaranteed kill-at-round-0 all recover to bit-identical
    /// results, one replay per fired fault.
    #[test]
    #[ignore = "full adversarial rerun; run in release (CI does)"]
    fn fault_injected_sessions_recover_bit_identically() {
        let m = measure();
        assert!(m.identical, "a fault-recovered result diverged");
        assert!(m.recoveries >= 1);
        assert_eq!(m.faults_fired, m.recoveries);
        // Per-tenant `recovered` counts *queries*; `recoveries` counts
        // replay *events*. A query can be felled twice when the chaos
        // thread re-arms a kill between its failure and its replay, so
        // queries ≤ events.
        let recovered: u64 = m.stats.iter().map(|t| t.recovered).sum();
        assert!(
            recovered >= 1 && recovered <= m.recoveries as u64,
            "{recovered} recovered queries vs {} recovery events",
            m.recoveries
        );
    }
}
