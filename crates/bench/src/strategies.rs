//! X-STRATEGY — the pluggable-strategy planner, measured.
//!
//! For each strategy-pluggable operator (join, cross-join, sort,
//! aggregate) and a set of *decisive* scenarios — environments where the
//! paper predicts a clear winner — every registered candidate runs
//! forced, and the table juxtaposes its plan-time estimate, its metered
//! cost, the task's per-edge lower bound and the Table-1 ratio
//! `metered / LB`. The `picked` column marks the strategy the cost-based
//! planner chose on its own; `auto≤best` asserts the headline property:
//! the auto-picked strategy's metered cost is never worse than any
//! forced alternative on these scenarios.

use tamp_query::prelude::*;
use tamp_topology::builders;

use crate::table::{fnum, Table};

/// One decisive scenario: a catalog, a single-exchange query, and the
/// operator whose candidates are under test.
struct Scenario {
    name: &'static str,
    catalog: Catalog,
    query: LogicalPlan,
    op: OperatorKind,
    /// Label prefix of the operator under test in the physical plan.
    label: &'static str,
}

fn facts_schema() -> Schema {
    Schema::new(vec!["id", "g", "x"]).unwrap()
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();

    // JOIN 1: tiny dimension table on a uniform star — broadcast wins.
    {
        let tree = builders::star(6, 1.0);
        let mut c = Catalog::new(tree);
        c.register(DistributedTable::round_robin(
            "big",
            facts_schema(),
            (0..600).map(|i| vec![i, i % 8, i * 2]).collect(),
            c.tree(),
        ))
        .unwrap();
        c.register(DistributedTable::round_robin(
            "small",
            Schema::new(vec!["g", "tier"]).unwrap(),
            (0..8).map(|g| vec![g, g % 3]).collect(),
            c.tree(),
        ))
        .unwrap();
        out.push(Scenario {
            name: "join: tiny-dim / uniform star",
            catalog: c,
            query: LogicalPlan::scan("big").join_on(LogicalPlan::scan("small"), "g", "g"),
            op: OperatorKind::Join,
            label: "HashJoin",
        });
    }

    // JOIN 2: both sides co-located behind a thin link — the weighted
    // repartition moves (almost) nothing.
    {
        let tree = builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0, 4.0, 4.0]);
        let heavy = tree.compute_nodes()[0];
        let mut c = Catalog::new(tree);
        c.register(DistributedTable::single_node(
            "big",
            facts_schema(),
            (0..500).map(|i| vec![i, i % 6, i * 2]).collect(),
            c.tree(),
            heavy,
        ))
        .unwrap();
        c.register(DistributedTable::single_node(
            "small",
            Schema::new(vec!["g", "y"]).unwrap(),
            (0..300).map(|i| vec![i % 6, i]).collect(),
            c.tree(),
            heavy,
        ))
        .unwrap();
        out.push(Scenario {
            name: "join: co-located skew / thin link",
            catalog: c,
            query: LogicalPlan::scan("big").join_on(LogicalPlan::scan("small"), "g", "g"),
            op: OperatorKind::Join,
            label: "HashJoin",
        });
    }

    // CROSS 1: heterogeneous star, balanced mid-size sides — the wHC
    // rectangles size each node's share to its link.
    {
        let tree = builders::heterogeneous_star(&[8.0, 4.0, 2.0, 1.0, 1.0, 0.5]);
        let mut c = Catalog::new(tree);
        c.register(DistributedTable::round_robin(
            "a",
            Schema::new(vec!["u"]).unwrap(),
            (0..240).map(|i| vec![i]).collect(),
            c.tree(),
        ))
        .unwrap();
        c.register(DistributedTable::round_robin(
            "b",
            Schema::new(vec!["v"]).unwrap(),
            (0..240).map(|i| vec![1000 + i]).collect(),
            c.tree(),
        ))
        .unwrap();
        out.push(Scenario {
            name: "cross: balanced sides / hetero star",
            catalog: c,
            query: LogicalPlan::scan("a").cross(LogicalPlan::scan("b")),
            op: OperatorKind::CrossJoin,
            label: "CrossJoin",
        });
    }

    // CROSS 2: one tiny side — broadcasting it is unbeatable.
    {
        let tree = builders::star(5, 1.0);
        let mut c = Catalog::new(tree);
        c.register(DistributedTable::round_robin(
            "a",
            Schema::new(vec!["u"]).unwrap(),
            (0..400).map(|i| vec![i]).collect(),
            c.tree(),
        ))
        .unwrap();
        c.register(DistributedTable::round_robin(
            "b",
            Schema::new(vec!["v"]).unwrap(),
            (0..6).map(|i| vec![1000 + i]).collect(),
            c.tree(),
        ))
        .unwrap();
        out.push(Scenario {
            name: "cross: tiny side / uniform star",
            catalog: c,
            query: LogicalPlan::scan("a").cross(LogicalPlan::scan("b")),
            op: OperatorKind::CrossJoin,
            label: "CrossJoin",
        });
    }

    // SORT: data parked behind the fat links of a heterogeneous star —
    // proportional splitters keep it there, uniform splitters force
    // N/k over the thin link.
    {
        let tree = builders::heterogeneous_star(&[8.0, 8.0, 8.0, 8.0, 8.0, 8.0, 8.0, 0.25]);
        let heavy = tree.compute_nodes()[0];
        let mut c = Catalog::new(tree);
        c.register(DistributedTable::skewed(
            "t",
            facts_schema(),
            (0..800).map(|i| vec![i, i % 9, (i * 37) % 4096]).collect(),
            c.tree(),
            heavy,
            0.6,
        ))
        .unwrap();
        out.push(Scenario {
            name: "sort: data behind fat links",
            catalog: c,
            query: LogicalPlan::scan("t").order_by("x"),
            op: OperatorKind::Sort,
            label: "OrderBy",
        });
    }

    // AGGREGATE: three racks behind thin uplinks, every node holding the
    // same few groups — in-network combining crosses each uplink once
    // per group.
    {
        let tree = builders::rack_tree(&[(4, 4.0, 0.25), (4, 4.0, 0.25), (4, 4.0, 0.25)], 1.0);
        let mut c = Catalog::new(tree);
        // Hash the group key so round-robin placement leaves (almost)
        // every group present at every node — the regime where
        // in-network combining beats shipping per-(node, group) partials
        // over the thin uplinks.
        let mut rows = Vec::new();
        for i in 0..720u64 {
            rows.push(vec![i, tamp_core::hashing::mix64(i) % 24, (i * 13) % 100]);
        }
        c.register(DistributedTable::round_robin(
            "t",
            facts_schema(),
            rows,
            c.tree(),
        ))
        .unwrap();
        out.push(Scenario {
            name: "aggregate: thin-uplink racks",
            catalog: c,
            query: LogicalPlan::scan("t").aggregate("g", AggFunc::Sum, "x"),
            op: OperatorKind::Aggregate,
            label: "Aggregate",
        });
    }

    out
}

/// The first exchange whose operator label starts with `prefix`
/// (post-order walk).
fn find_exchange<'p>(plan: &'p PhysicalPlan, prefix: &str) -> Option<&'p Exchange> {
    for child in plan.children() {
        if let Some(x) = find_exchange(child, prefix) {
            return Some(x);
        }
    }
    if plan.label().starts_with(prefix) {
        return plan.exchange();
    }
    None
}

/// X-STRATEGY — every registered candidate per operator: estimate,
/// metered cost, lower bound, Table-1 ratio, and the auto choice.
pub fn x_strategy() -> Vec<Table> {
    let mut t = Table::new(
        "X-STRATEGY  pluggable operator strategies: estimate vs metered vs lower bound",
        &[
            "scenario",
            "strategy",
            "est",
            "metered",
            "LB",
            "metered/LB",
            "picked",
            "auto\u{2264}best",
        ],
    );
    for sc in scenarios() {
        let seed = 5u64;
        let auto_ctx = QueryContext::with_catalog(sc.catalog.clone()).with_seed(seed);
        let auto_prepared = auto_ctx.prepare(&sc.query).unwrap();
        let auto_exchange = find_exchange(auto_prepared.physical_plan(), sc.label)
            .unwrap_or_else(|| panic!("{}: no {} exchange", sc.name, sc.label));
        let picked = auto_exchange.name();
        let lb = auto_exchange.lower_bound.map(|b| b.value());
        let auto_metered = auto_prepared.run().unwrap().cost.tuple_cost();

        let names: Vec<&'static str> = auto_ctx
            .strategies()
            .candidates(sc.op)
            .iter()
            .map(|s| s.name())
            .collect();
        let mut best_forced = f64::INFINITY;
        let mut rows = Vec::new();
        for name in names {
            let ctx = QueryContext::with_catalog(sc.catalog.clone())
                .with_seed(seed)
                .with_strategy(sc.op, name);
            let prepared = ctx.prepare(&sc.query).unwrap();
            let x = find_exchange(prepared.physical_plan(), sc.label).unwrap();
            let est = x.estimate.tuple_cost;
            let metered = prepared.run().unwrap().cost.tuple_cost();
            best_forced = best_forced.min(metered);
            rows.push((name, est, metered));
        }
        for (name, est, metered) in rows {
            t.row(vec![
                sc.name.into(),
                name.into(),
                fnum(est),
                fnum(metered),
                lb.map_or("-".into(), fnum),
                lb.map_or("-".into(), |lb| fnum(tamp_core::ratio::ratio(metered, lb))),
                if name == picked {
                    "*".into()
                } else {
                    String::new()
                },
                if name == picked {
                    if auto_metered <= best_forced + 1e-9 {
                        "yes".into()
                    } else {
                        "NO".into()
                    }
                } else {
                    String::new()
                },
            ]);
        }
    }
    t.note(
        "Expected shape: on every decisive scenario the auto-picked strategy's metered \
         cost matches the best forced candidate (auto\u{2264}best = yes), and the winner's \
         metered/LB ratio stays within a small constant — the paper's Table-1 claim \
         surfaced per query operator.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_matches_best_forced_on_every_decisive_scenario() {
        let tables = x_strategy();
        let t = &tables[0];
        let mut picked_rows = 0;
        for i in 0..t.num_rows() {
            if t.cell(i, 6) == "*" {
                picked_rows += 1;
                assert_eq!(t.cell(i, 7), "yes", "scenario {}", t.cell(i, 0));
            }
        }
        // One auto pick per scenario.
        assert_eq!(picked_rows, 6);
    }

    #[test]
    fn every_operator_lists_at_least_two_candidates() {
        let tables = x_strategy();
        let t = &tables[0];
        for scenario in [
            "join: tiny-dim / uniform star",
            "cross: balanced sides / hetero star",
            "sort: data behind fat links",
            "aggregate: thin-uplink racks",
        ] {
            let n = (0..t.num_rows())
                .filter(|&i| t.cell(i, 0) == scenario)
                .count();
            assert!(n >= 2, "{scenario}: {n} candidates");
        }
    }
}
