//! X-SERVE — the concurrent serving layer, measured.
//!
//! For each topology, a fixed mixed workload (multi-join analytics,
//! sorted limits, distinct aggregation) is pushed through four serving
//! modes over one shared backend:
//!
//! - `serial / uncached` — a fresh `prepare()` per query, one client
//!   (the single-session baseline every PR before the serving layer
//!   paid);
//! - `serial / cached` — one client through a [`QueryService`]: planning
//!   amortized by the prepared-plan cache;
//! - `8 threads / uncached` — eight clients, each replanning every query;
//! - `8 threads / cached` — eight clients through one shared
//!   `QueryService`: the serving-layer headline.
//!
//! Every mode runs the *same* total query count and every result is
//! checked bit-identical (canonical rows and metered ledger) to the
//! serial reference — concurrency and caching change throughput, never
//! answers. The shared engine here is the centralized simulator (the
//! cheapest replay, so the plan-cache signal dominates the measurement
//! even on a single-core machine); the serving stress suite drives the
//! same `QueryService` through the shared-crew pooled cluster. The
//! `cost` column (the workload's total metered tuple cost) is the
//! deterministic baseline signal; wall/qps columns are
//! machine-dependent.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tamp_query::prelude::*;
use tamp_query::service::QueryService;
use tamp_runtime::backend::ExecBackend;
use tamp_runtime::SimulatorBackend;
use tamp_topology::{builders, Tree};

use crate::table::{fnum, Table};

/// Client threads in the concurrent modes (the acceptance scenario).
pub const SERVE_THREADS: usize = 8;
/// Total queries per mode (divisible by `SERVE_THREADS` and the
/// workload size).
pub const SERVE_QUERIES: usize = 48;

fn scenarios() -> Vec<(&'static str, Tree)> {
    vec![
        ("star-32", builders::star(32, 1.0)),
        ("fat-tree-2x5", builders::fat_tree(2, 5, 1.0)),
    ]
}

fn serving_context(tree: &Tree) -> QueryContext {
    let mut ctx = QueryContext::new(tree.clone()).with_seed(17);
    let facts: Vec<Vec<u64>> = (0..96).map(|i| vec![i, i % 11, (i * 29) % 1024]).collect();
    ctx.register(DistributedTable::round_robin(
        "facts",
        Schema::new(vec!["id", "g", "x"]).unwrap(),
        facts,
        tree,
    ))
    .unwrap();
    ctx.register(DistributedTable::round_robin(
        "dims",
        Schema::new(vec!["g", "tier"]).unwrap(),
        (0..11).map(|g| vec![g, g + 40]).collect(),
        tree,
    ))
    .unwrap();
    ctx.register(DistributedTable::round_robin(
        "grps",
        Schema::new(vec!["tier", "band"]).unwrap(),
        (40..51).map(|t| vec![t, t % 4]).collect(),
        tree,
    ))
    .unwrap();
    ctx
}

/// Serving-shaped queries: multi-operator analytics plans whose
/// planning (candidate pricing per exchange) is a substantial share of
/// their cost — the regime where a prepared-plan cache pays.
fn workload() -> Vec<LogicalPlan> {
    vec![
        LogicalPlan::scan("facts")
            .filter(col("x").lt(lit(700)))
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .join_on(LogicalPlan::scan("grps"), "tier", "tier")
            .aggregate("band", AggFunc::Sum, "x")
            .order_by("band"),
        LogicalPlan::scan("facts")
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .order_by("x")
            .limit(20),
        LogicalPlan::scan("facts")
            .project(vec![("g", col("g")), ("b", col("x").div(lit(128)))])
            .distinct()
            .aggregate("g", AggFunc::Count, "b")
            .order_by("g"),
    ]
}

/// One mode's measurement: wall time for `SERVE_QUERIES` queries, plus
/// whether every result matched the serial reference bit for bit.
struct ModeRun {
    wall: Duration,
    identical: bool,
}

fn check(result: &QueryResult, want: &QueryResult) -> bool {
    result.rows(false) == want.rows(false) && result.cost.edge_totals == want.cost.edge_totals
}

/// `threads` clients, each serving its share of `SERVE_QUERIES` fresh
/// `prepare()` calls (no cache) against the shared backend.
fn run_uncached(
    ctx: &QueryContext,
    backend: &Arc<dyn ExecBackend + Send + Sync>,
    queries: &[LogicalPlan],
    reference: &[QueryResult],
    threads: usize,
) -> ModeRun {
    let per_thread = SERVE_QUERIES / threads;
    let start = Instant::now();
    let identical = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut ok = true;
                    for i in 0..per_thread {
                        let k = (t + i) % queries.len();
                        let result = ctx.prepare(&queries[k]).unwrap().run_on(backend).unwrap();
                        ok &= check(&result, &reference[k]);
                    }
                    ok
                })
            })
            .collect();
        handles.into_iter().all(|h| h.join().unwrap())
    });
    ModeRun {
        wall: start.elapsed(),
        identical,
    }
}

/// `threads` clients through one shared [`QueryService`] (plan cache +
/// FIFO admission), same total query count.
fn run_cached(
    service: &QueryService,
    queries: &[LogicalPlan],
    reference: &[QueryResult],
    threads: usize,
) -> ModeRun {
    let per_thread = SERVE_QUERIES / threads;
    let start = Instant::now();
    let identical = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut ok = true;
                    for i in 0..per_thread {
                        let k = (t + i) % queries.len();
                        let served = service.serve(&queries[k]).unwrap();
                        ok &= check(&served.result, &reference[k]);
                    }
                    ok
                })
            })
            .collect();
        handles.into_iter().all(|h| h.join().unwrap())
    });
    ModeRun {
        wall: start.elapsed(),
        identical,
    }
}

/// The four modes of one scenario, measured. Returns
/// `(mode label, threads, run)` rows plus the workload's deterministic
/// total metered cost, and the concurrent-cached vs serial-uncached
/// speedup.
pub struct ServeMeasurement {
    /// `(mode, threads, wall, identical)` in presentation order.
    pub modes: Vec<(&'static str, usize, Duration, bool)>,
    /// Total metered tuple cost of one pass over the workload
    /// (deterministic: the baseline signal).
    pub workload_cost: f64,
    /// `serial/uncached wall ÷ 8-thread/cached wall` — the headline.
    pub speedup: f64,
}

/// Measure one topology's four serving modes.
pub fn measure(tree: &Tree) -> ServeMeasurement {
    let queries = workload();
    let ctx = serving_context(tree);
    // Serial reference results (also the deterministic cost signal).
    let reference: Vec<QueryResult> = queries
        .iter()
        .map(|q| ctx.prepare(q).unwrap().run().unwrap())
        .collect();
    let workload_cost: f64 = reference.iter().map(|r| r.cost.tuple_cost()).sum();

    let backend: Arc<dyn ExecBackend + Send + Sync> = Arc::new(SimulatorBackend);
    let service = QueryService::new(serving_context(tree), Arc::clone(&backend))
        .with_max_inflight(SERVE_THREADS)
        .unwrap();
    // Warm the plan cache so the cached modes measure steady-state
    // serving, not first-arrival planning.
    for q in &queries {
        service.serve(q).unwrap();
    }

    let serial_uncached = run_uncached(&ctx, &backend, &queries, &reference, 1);
    let serial_cached = run_cached(&service, &queries, &reference, 1);
    let conc_uncached = run_uncached(&ctx, &backend, &queries, &reference, SERVE_THREADS);
    let conc_cached = run_cached(&service, &queries, &reference, SERVE_THREADS);

    let speedup = serial_uncached.wall.as_secs_f64() / conc_cached.wall.as_secs_f64().max(1e-9);
    ServeMeasurement {
        modes: vec![
            (
                "serial / uncached",
                1,
                serial_uncached.wall,
                serial_uncached.identical,
            ),
            (
                "serial / cached",
                1,
                serial_cached.wall,
                serial_cached.identical,
            ),
            (
                "8 threads / uncached",
                SERVE_THREADS,
                conc_uncached.wall,
                conc_uncached.identical,
            ),
            (
                "8 threads / cached",
                SERVE_THREADS,
                conc_cached.wall,
                conc_cached.identical,
            ),
        ],
        workload_cost,
        speedup,
    }
}

/// X-SERVE — concurrent serving throughput: cached vs uncached, serial
/// vs 8 threads, all bit-identical to single-session execution.
pub fn x_serve() -> Vec<Table> {
    let mut t = Table::new(
        "X-SERVE  QueryService: threads \u{d7} queries, plan cache on/off, one shared backend",
        &[
            "topology",
            "mode",
            "threads",
            "queries",
            "cost",
            "wall_ms",
            "q/s",
            "speedup",
            "identical",
        ],
    );
    for (name, tree) in scenarios() {
        let m = measure(&tree);
        let base_wall = m.modes[0].2.as_secs_f64();
        for (mode, threads, wall, identical) in &m.modes {
            let secs = wall.as_secs_f64().max(1e-9);
            t.row(vec![
                name.into(),
                (*mode).into(),
                threads.to_string(),
                SERVE_QUERIES.to_string(),
                fnum(m.workload_cost),
                fnum(secs * 1e3),
                fnum(SERVE_QUERIES as f64 / secs),
                fnum(base_wall / secs),
                if *identical { "yes" } else { "NO" }.into(),
            ]);
        }
    }
    t.note(
        "Expected shape: every mode bit-identical to serial single-session execution \
         (identical = yes); the plan cache and concurrency only move wall/q\u{2044}s. The \
         release acceptance bar (cached 8-thread \u{2265} 2\u{d7} uncached serial) is \
         enforced by the ignored release-mode test in this module. `cost` is the \
         deterministic per-workload metered signal.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mode_is_bit_identical_and_cost_is_scenario_constant() {
        let tables = x_serve();
        let t = &tables[0];
        assert_eq!(t.num_rows(), 8); // 2 topologies × 4 modes
        for i in 0..t.num_rows() {
            assert_eq!(t.cell(i, 8), "yes", "{} / {}", t.cell(i, 0), t.cell(i, 1));
        }
        // The cost signal is per-topology constant across modes.
        for base in [0, 4] {
            for i in base..base + 4 {
                assert_eq!(t.cell(i, 4), t.cell(base, 4));
            }
        }
    }

    /// The acceptance bar: cached concurrent serving ≥ 2× uncached
    /// serial on the 8-thread scenario. Wall-clock sensitive, so it is
    /// `#[ignore]`d here and enforced by CI against the release build
    /// (same step as the x-scale throughput bar).
    #[test]
    #[ignore = "wall-clock acceptance bar; run in release (CI does)"]
    fn cached_concurrent_is_at_least_2x_uncached_serial() {
        for (name, tree) in scenarios() {
            // A second attempt absorbs scheduler noise on busy CI
            // machines; a clean first pass short-circuits it.
            let mut best = 0.0f64;
            for _ in 0..2 {
                best = best.max(measure(&tree).speedup);
                if best >= 2.0 {
                    break;
                }
            }
            assert!(
                best >= 2.0,
                "{name}: cached 8-thread speedup {best:.2}\u{d7} < 2\u{d7}"
            );
        }
    }
}
