//! Experiments for the repository's extensions beyond the paper's three
//! tasks: aggregation, general topologies, the threaded runtime, the
//! relational query layer, and the bandwidth-imprecision ablation of the
//! §3.3 remark.

use tamp_core::aggregate::{
    aggregation_lower_bound, encode, groupby_lower_bound, Aggregator, CombiningTreeAggregate,
    FlatPartialAggregate, HashGroupBy, NaiveAggregate,
};
use tamp_core::cartesian::TreeCartesianProduct;
use tamp_core::general::{graph_intersection_lower_bound, run_on_graph, TreeExtraction};
use tamp_core::hashing::mix64;
use tamp_core::intersection::TreeIntersect;
use tamp_core::ratio::ratio;
use tamp_core::robustness::{perturb_bandwidths, BroadcastStatistics};
use tamp_core::sorting::WeightedTeraSort;
use tamp_query::prelude::*;
use tamp_runtime::{jobs, ExecBackend, PooledClusterBackend, SimulatorBackend};
use tamp_simulator::{run_protocol, Placement, Rel};
use tamp_topology::graph::builders as gb;
use tamp_topology::{builders, Tree};

use crate::table::{fnum, Table};

fn scatter(tree: &Tree, r: u64, s: u64, seed: u64) -> Placement {
    let mut p = Placement::empty(tree);
    let vc = tree.compute_nodes();
    for a in 0..r {
        let v = vc[(mix64(a ^ seed) % vc.len() as u64) as usize];
        p.push(v, Rel::R, a);
    }
    for a in 0..s {
        let v = vc[(mix64(a ^ seed ^ 0xFE) % vc.len() as u64) as usize];
        p.push(v, Rel::S, r / 2 + a);
    }
    p
}

/// X-AGG — distribution-aware aggregation (related-work extension):
/// in-network combining vs flat pre-aggregation vs raw shipping on
/// thin-core rack trees, against the per-edge group lower bound.
pub fn x_agg() -> Vec<Table> {
    let mut t = Table::new(
        "X-AGG: all-to-one aggregation on 3 racks × 4 nodes, thin core uplinks (0.25)",
        &[
            "groups/node",
            "naive",
            "flat",
            "combining",
            "LB",
            "flat/LB",
            "comb/LB",
        ],
    );
    let tree = builders::rack_tree(&[(4, 4.0, 0.25), (4, 4.0, 0.25), (4, 4.0, 0.25)], 1.0);
    let target = tree.compute_nodes()[0];
    for &groups in &[5u64, 20, 80] {
        let mut p = Placement::empty(&tree);
        for &v in tree.compute_nodes() {
            for g in 0..groups {
                for rep in 0..4 {
                    p.push(v, Rel::R, encode(g, rep + 1));
                }
            }
        }
        let lb = aggregation_lower_bound(&tree, &p, target).value();
        let naive = run_protocol(&tree, &p, &NaiveAggregate::new(target, Aggregator::Sum))
            .unwrap()
            .cost
            .tuple_cost();
        let flat = run_protocol(
            &tree,
            &p,
            &FlatPartialAggregate::new(target, Aggregator::Sum),
        )
        .unwrap()
        .cost
        .tuple_cost();
        let comb = run_protocol(
            &tree,
            &p,
            &CombiningTreeAggregate::new(target, Aggregator::Sum),
        )
        .unwrap()
        .cost
        .tuple_cost();
        t.row(vec![
            groups.to_string(),
            fnum(naive),
            fnum(flat),
            fnum(comb),
            fnum(lb),
            fnum(ratio(flat, lb)),
            fnum(ratio(comb, lb)),
        ]);
    }
    t.note(
        "Expected shape: combining crosses each thin uplink once per group \
         (comb/LB small constant); flat pays per-node duplication (≈4× more); \
         naive pays raw data size.",
    );
    vec![t]
}

/// X-GROUPBY — distributed group-by under the proportional hash vs the
/// per-cut split-group lower bound, across the topology zoo.
pub fn x_groupby() -> Vec<Table> {
    let mut t = Table::new(
        "X-GROUPBY: HashGroupBy cost vs split-group lower bound",
        &["topology", "cost", "LB", "cost/LB"],
    );
    for (name, tree) in crate::suite::standard_topologies() {
        let mut p = Placement::empty(&tree);
        for (i, &v) in tree.compute_nodes().iter().enumerate() {
            for j in 0..200u64 {
                p.push(v, Rel::R, encode((i as u64 * 17 + j) % 32, j % 100));
            }
        }
        let lb = groupby_lower_bound(&tree, &p).value();
        let cost = run_protocol(&tree, &p, &HashGroupBy::new(7, Aggregator::Sum))
            .unwrap()
            .cost
            .tuple_cost();
        t.row(vec![name, fnum(cost), fnum(lb), fnum(ratio(cost, lb))]);
    }
    t.note("Expected shape: cost within a small factor of the cut bound everywhere.");
    vec![t]
}

/// X-GENERAL — §7 future work: the paper's tree algorithms on grids,
/// tori and hypercubes via spanning-tree extraction, against per-cut
/// lower bounds; max-bandwidth vs BFS extraction as an ablation.
pub fn x_general() -> Vec<Table> {
    let mut t = Table::new(
        "X-GENERAL: set intersection on non-tree topologies via tree extraction",
        &["graph", "extraction", "cost", "graph LB", "cost/LB"],
    );
    let graphs: Vec<(&str, tamp_topology::Graph)> = vec![
        ("grid-4x4", gb::grid(4, 4, 1.0)),
        ("torus-4x4", gb::torus(4, 4, 1.0)),
        ("hypercube-4d", gb::hypercube(4, 1.0)),
        ("random-12+8", gb::random_connected(12, 8, 0.5, 4.0, 42)),
    ];
    for (name, graph) in &graphs {
        let vc = graph.compute_nodes();
        let mut frags = vec![tamp_simulator::NodeState::default(); graph.num_nodes()];
        for a in 0..400u64 {
            frags[vc[(mix64(a) % vc.len() as u64) as usize].index()]
                .r
                .push(a);
            frags[vc[(mix64(a ^ 0xF) % vc.len() as u64) as usize].index()]
                .s
                .push(200 + a);
        }
        let p = Placement::from_fragments(frags);
        for (how, how_name) in [
            (TreeExtraction::MaxBandwidth, "max-bw"),
            (TreeExtraction::BfsFromFirstCompute, "bfs"),
        ] {
            let (run, tree) = run_on_graph(graph, &p, &TreeIntersect::new(3), how).unwrap();
            let lb = graph_intersection_lower_bound(graph, &tree, &p.stats()).value();
            t.row(vec![
                name.to_string(),
                how_name.to_string(),
                fnum(run.cost.tuple_cost()),
                fnum(lb),
                fnum(ratio(run.cost.tuple_cost(), lb)),
            ]);
        }
    }
    t.note(
        "Expected shape: single-tree routing is within a moderate factor of the \
         per-cut bound on cut-dominated graphs, and the gap grows on expanders \
         (hypercube) — exactly why §7 calls general topologies challenging.",
    );
    vec![t]
}

/// X-RUNTIME — the pooled message-passing cluster against the
/// centralized cost simulator, both selected through the one
/// `ExecBackend` API: identical traffic for the deterministic plans,
/// never-worse traffic for direct-routed cartesian products.
pub fn x_runtime() -> Vec<Table> {
    let mut t = Table::new(
        "X-RUNTIME: pooled cluster vs cost simulator (same seeds, one ExecBackend API)",
        &[
            "task",
            "topology",
            "sim cost",
            "runtime cost",
            "supersteps",
            "relation",
        ],
    );
    let topo = builders::rack_tree(&[(3, 1.0, 2.0), (3, 2.0, 4.0)], 1.0);
    let sim_backend = SimulatorBackend;
    let rt_backend = PooledClusterBackend::default();

    let p = scatter(&topo, 200, 600, 5);
    let job = jobs::tree_intersect(5);
    let sim = sim_backend.execute(&topo, &p, &job).unwrap();
    let rt = rt_backend.execute(&topo, &p, &job).unwrap();
    t.row(vec![
        "intersection".into(),
        "rack-2x3".into(),
        fnum(sim.cost.tuple_cost()),
        fnum(rt.cost.tuple_cost()),
        format!("{}+1", rt.rounds),
        if rt.cost.edge_totals == sim.cost.edge_totals && rt.rounds == sim.rounds {
            "identical traffic".into()
        } else {
            "MISMATCH".into()
        },
    ]);

    let mut p = Placement::empty(&topo);
    let vc = topo.compute_nodes();
    for x in 0..600u64 {
        p.push(vc[(x % vc.len() as u64) as usize], Rel::R, mix64(x));
    }
    let job = jobs::weighted_terasort(3);
    let sim = sim_backend.execute(&topo, &p, &job).unwrap();
    let rt = rt_backend.execute(&topo, &p, &job).unwrap();
    t.row(vec![
        "sorting".into(),
        "rack-2x3".into(),
        fnum(sim.cost.tuple_cost()),
        fnum(rt.cost.tuple_cost()),
        format!("{}+1", rt.rounds),
        if rt.cost.edge_totals == sim.cost.edge_totals && rt.rounds == sim.rounds {
            "identical traffic".into()
        } else {
            "MISMATCH".into()
        },
    ]);

    let p = scatter(&topo, 120, 120, 2);
    let job = jobs::tree_cartesian();
    let sim = sim_backend.execute(&topo, &p, &job).unwrap();
    let rt = rt_backend.execute(&topo, &p, &job).unwrap();
    t.row(vec![
        "cartesian".into(),
        "rack-2x3".into(),
        fnum(sim.cost.tuple_cost()),
        fnum(rt.cost.tuple_cost()),
        format!("{}+1", rt.rounds),
        if rt.cost.tuple_cost() <= sim.cost.tuple_cost() + 1e-9 {
            "runtime ≤ sim (direct routing)".into()
        } else {
            "MISMATCH".into()
        },
    ]);
    t.note(
        "Expected shape: distributed per-node plan derivation reproduces the \
         centralized sends exactly; no hidden coordination is required. \
         Supersteps are the metered rounds plus the silent termination step.",
    );
    vec![t]
}

/// X-QUERY — the relational layer: per-operator cost breakdown for an
/// analytics query, and the weighted-vs-uniform join shuffle under
/// increasing placement skew.
pub fn x_query() -> Vec<Table> {
    let tree = builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0, 4.0, 4.0]);
    let heavy = tree.compute_nodes()[0];

    // Per-operator breakdown.
    let mut t1 = Table::new(
        "X-QUERY-A: per-operator tuple cost (filter → join → group-by → order-by)",
        &["operator", "tuple cost"],
    );
    {
        let mut c = Catalog::new(tree.clone());
        let rows: Vec<Vec<u64>> = (0..600).map(|i| vec![i, i % 8, (i * 13) % 1000]).collect();
        c.register(DistributedTable::round_robin(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            c.tree(),
        ))
        .unwrap();
        let dims: Vec<Vec<u64>> = (0..8).map(|g| vec![g, g % 3]).collect();
        c.register(DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "tier"]).unwrap(),
            dims,
            c.tree(),
        ))
        .unwrap();
        let q = LogicalPlan::scan("facts")
            .filter(col("x").gt(lit(250)))
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .aggregate("tier", AggFunc::Sum, "x")
            .order_by("tier");
        let res = execute(&c, &q, ExecOptions::default()).unwrap();
        for (op, cost) in &res.operator_costs {
            t1.row(vec![op.clone(), fnum(*cost)]);
        }
        t1.note(format!(
            "total = {} over {} rounds",
            fnum(res.cost.tuple_cost()),
            res.rounds
        ));
    }

    // Skew sweep: weighted vs uniform join shuffle.
    let mut t2 = Table::new(
        "X-QUERY-B: join shuffle cost vs placement skew (heavy node behind a 0.5-bw link)",
        &["skew α", "uniform", "weighted", "uniform/weighted"],
    );
    for &alpha in &[0.2f64, 0.5, 0.8, 1.0] {
        let mut c = Catalog::new(tree.clone());
        let rows: Vec<Vec<u64>> = (0..500).map(|i| vec![i, i % 6, i * 2]).collect();
        c.register(DistributedTable::skewed(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            c.tree(),
            heavy,
            alpha,
        ))
        .unwrap();
        let dims: Vec<Vec<u64>> = (0..6).map(|g| vec![g, g + 40]).collect();
        c.register(DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "label"]).unwrap(),
            dims,
            c.tree(),
        ))
        .unwrap();
        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        let uniform = execute(
            &c,
            &q,
            ExecOptions {
                join: JoinStrategy::Uniform,
                seed: 1,
            },
        )
        .unwrap()
        .cost
        .tuple_cost();
        let weighted = execute(
            &c,
            &q,
            ExecOptions {
                join: JoinStrategy::Weighted,
                seed: 1,
            },
        )
        .unwrap()
        .cost
        .tuple_cost();
        t2.row(vec![
            format!("{alpha:.1}"),
            fnum(uniform),
            fnum(weighted),
            fnum(ratio(uniform, weighted)),
        ]);
    }
    t2.note(
        "Expected shape: the distribution-aware shuffle's advantage widens with \
         skew — the Algorithm 2 idea, surfacing at the query layer.",
    );
    vec![t1, t2]
}

/// ABL-DRIFT — the §3.3 remark as an ablation: intersection and sorting
/// traffic is invariant under bandwidth drift; the cartesian plan is not,
/// and stale planning degrades with the drift spread. Also prices the §2
/// knowledge assumption (statistics broadcast).
pub fn abl_drift() -> Vec<Table> {
    let tree = builders::rack_tree(&[(3, 4.0, 8.0), (3, 0.5, 1.0)], 1.0);
    let mut t = Table::new(
        "ABL-DRIFT: traffic under bandwidth drift (spread s ⇒ links scaled in [1/s, s])",
        &[
            "spread",
            "SI traffic Δ",
            "sort traffic Δ",
            "CP fresh",
            "CP stale",
            "stale/fresh",
        ],
    );
    let p_si = scatter(&tree, 150, 450, 4);
    let mut p_sort = Placement::empty(&tree);
    for x in 0..500u64 {
        let vc = tree.compute_nodes();
        p_sort.push(vc[(x % vc.len() as u64) as usize], Rel::R, mix64(x));
    }
    let p_cp = scatter(&tree, 90, 90, 8);
    let si_base = run_protocol(&tree, &p_si, &TreeIntersect::new(6)).unwrap();
    let sort_base = run_protocol(&tree, &p_sort, &WeightedTeraSort::new(2)).unwrap();
    let cp_fresh = run_protocol(&tree, &p_cp, &TreeCartesianProduct::new()).unwrap();
    for &spread in &[1.5f64, 3.0, 8.0] {
        let drifted = perturb_bandwidths(&tree, spread, 11);
        let si = run_protocol(&drifted, &p_si, &TreeIntersect::new(6)).unwrap();
        let sort = run_protocol(&drifted, &p_sort, &WeightedTeraSort::new(2)).unwrap();
        let si_delta: u64 = si
            .cost
            .edge_totals
            .iter()
            .zip(&si_base.cost.edge_totals)
            .map(|(a, b)| a.abs_diff(*b))
            .sum();
        let sort_delta: u64 = sort
            .cost
            .edge_totals
            .iter()
            .zip(&sort_base.cost.edge_totals)
            .map(|(a, b)| a.abs_diff(*b))
            .sum();
        let stale = run_protocol(
            &tree,
            &p_cp,
            &TreeCartesianProduct::with_planning_tree(drifted),
        )
        .unwrap();
        t.row(vec![
            format!("{spread:.1}"),
            si_delta.to_string(),
            sort_delta.to_string(),
            fnum(cp_fresh.cost.tuple_cost()),
            fnum(stale.cost.tuple_cost()),
            fnum(ratio(stale.cost.tuple_cost(), cp_fresh.cost.tuple_cost())),
        ]);
    }
    t.note(
        "Expected shape: Δ = 0 for intersection and sorting at every spread \
         (bandwidth-oblivious routing, the §3.3 remark). The cartesian plan \
         *changes* with its bandwidth inputs — in power-of-2 jumps and in \
         either direction, since Algorithm 5 guarantees O(1)-optimality, not \
         a cost-minimal plan.",
    );

    let mut t2 = Table::new(
        "ABL-DRIFT-B: cost of the §2 knowledge assumption (stats broadcast)",
        &["N", "stats cost", "SI data cost", "stats share"],
    );
    for &n in &[1_000u64, 10_000, 100_000] {
        let p = scatter(&tree, n / 4, 3 * n / 4, 9);
        let stats = run_protocol(&tree, &p, &BroadcastStatistics::new())
            .unwrap()
            .cost
            .tuple_cost();
        let data = run_protocol(&tree, &p, &TreeIntersect::new(1))
            .unwrap()
            .cost
            .tuple_cost();
        t2.row(vec![
            n.to_string(),
            fnum(stats),
            fnum(data),
            format!("{:.4}%", 100.0 * stats / (stats + data)),
        ]);
    }
    t2.note("Expected shape: the knowledge assumption costs O(|V_C|) per edge — its share vanishes as N grows.");
    vec![t, t2]
}

/// X-UNEQ-TREE — §4.5's open problem: unequal sizes on general trees.
/// Best-of-three heuristic vs the (possibly loose) Theorem-8-style bound,
/// sweeping the size ratio.
pub fn x_unequal_tree() -> Vec<Table> {
    use tamp_core::cartesian::{
        unequal_tree_lower_bound, UnequalTreeCartesianProduct, UnequalTreeStrategy,
    };
    let mut t = Table::new(
        "X-UNEQ-TREE: |R| ≠ |S| cartesian product on a 2-rack tree (auto vs forced strategies)",
        &[
            "|R|:|S|",
            "auto picks",
            "auto",
            "all-to-node",
            "broadcast",
            "padded-squares",
            "LB",
            "auto/LB",
        ],
    );
    let tree = builders::rack_tree(&[(3, 2.0, 4.0), (3, 1.0, 2.0)], 1.0);
    for &(r, s) in &[
        (8u64, 512u64),
        (32, 512),
        (128, 512),
        (256, 512),
        (512, 512),
    ] {
        let p = scatter(&tree, r, s, 13);
        let stats = p.stats();
        let lb = unequal_tree_lower_bound(&tree, &stats).value();
        let auto_run = run_protocol(&tree, &p, &UnequalTreeCartesianProduct::new()).unwrap();
        let forced: Vec<f64> = [
            UnequalTreeStrategy::AllToNode,
            UnequalTreeStrategy::BroadcastSmall,
            UnequalTreeStrategy::PaddedSquares,
        ]
        .into_iter()
        .map(|st| {
            run_protocol(&tree, &p, &UnequalTreeCartesianProduct::with_strategy(st))
                .unwrap()
                .cost
                .tuple_cost()
        })
        .collect();
        t.row(vec![
            format!("{r}:{s}"),
            format!("{:?}", auto_run.output),
            fnum(auto_run.cost.tuple_cost()),
            fnum(forced[0]),
            fnum(forced[1]),
            fnum(forced[2]),
            fnum(lb),
            fnum(ratio(auto_run.cost.tuple_cost(), lb)),
        ]);
    }
    t.note(
        "Expected shape: broadcast wins at extreme ratios (cost ≈ |R|), padded \
         squares take over as sizes converge, and the auto rule tracks the best \
         column. No matching lower bound is known in the middle — the measured \
         auto/LB gap quantifies §4.5's open problem.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_agg_combining_beats_flat() {
        let t = &x_agg()[0];
        for i in 0..t.num_rows() {
            let flat: f64 = t.cell(i, 2).parse().unwrap();
            let comb: f64 = t.cell(i, 3).parse().unwrap();
            assert!(comb < flat, "row {i}: combining {comb} vs flat {flat}");
        }
    }

    #[test]
    fn x_runtime_has_no_mismatch() {
        let t = &x_runtime()[0];
        for i in 0..t.num_rows() {
            assert_ne!(t.cell(i, 4), "MISMATCH", "row {i}");
        }
    }

    #[test]
    fn abl_drift_invariance_holds() {
        let t = &abl_drift()[0];
        for i in 0..t.num_rows() {
            assert_eq!(t.cell(i, 1), "0", "SI traffic drifted in row {i}");
            assert_eq!(t.cell(i, 2), "0", "sort traffic drifted in row {i}");
        }
    }

    #[test]
    fn x_query_weighted_wins_at_full_skew() {
        let tables = x_query();
        let t = &tables[1];
        let last: f64 = t.cell(t.num_rows() - 1, 3).parse().unwrap();
        assert!(last > 1.5, "uniform/weighted at α=1.0 was only {last}");
    }

    #[test]
    fn x_general_rows_are_finite() {
        let t = &x_general()[0];
        assert_eq!(t.num_rows(), 8);
        for i in 0..t.num_rows() {
            let r: f64 = t.cell(i, 4).parse().unwrap();
            assert!(r.is_finite() && r >= 0.9, "row {i} ratio {r}");
        }
    }

    #[test]
    fn x_uneq_tree_auto_tracks_best() {
        let t = &x_unequal_tree()[0];
        for i in 0..t.num_rows() {
            let auto: f64 = t.cell(i, 2).parse().unwrap();
            let best = (3..6)
                .map(|c| t.cell(i, c).parse::<f64>().unwrap())
                .fold(f64::INFINITY, f64::min);
            assert!(
                auto <= 2.0 * best + 1e-9,
                "row {i}: auto {auto} vs best {best}"
            );
        }
    }

    #[test]
    fn x_groupby_ratios_are_bounded() {
        let t = &x_groupby()[0];
        for i in 0..t.num_rows() {
            let r: f64 = t.cell(i, 3).parse().unwrap();
            assert!(r.is_finite() && r < 64.0, "row {i} ratio {r}");
        }
    }
}
