//! Experiments for the repository's extensions beyond the paper's three
//! tasks: aggregation, general topologies, the threaded runtime, the
//! relational query layer, and the bandwidth-imprecision ablation of the
//! §3.3 remark.

use tamp_core::aggregate::{
    aggregation_lower_bound, encode, groupby_lower_bound, Aggregator, CombiningTreeAggregate,
    FlatPartialAggregate, HashGroupBy, NaiveAggregate,
};
use tamp_core::cartesian::TreeCartesianProduct;
use tamp_core::general::{graph_intersection_lower_bound, run_on_graph, TreeExtraction};
use tamp_core::hashing::mix64;
use tamp_core::intersection::TreeIntersect;
use tamp_core::ratio::ratio;
use tamp_core::robustness::{perturb_bandwidths, BroadcastStatistics};
use tamp_core::sorting::WeightedTeraSort;
use tamp_query::prelude::*;
use tamp_runtime::{jobs, ExecBackend, PooledClusterBackend, SimulatorBackend};
use tamp_simulator::{run_protocol, Placement, Rel};
use tamp_topology::graph::builders as gb;
use tamp_topology::{builders, Tree};

use crate::table::{fnum, Table};

fn scatter(tree: &Tree, r: u64, s: u64, seed: u64) -> Placement {
    let mut p = Placement::empty(tree);
    let vc = tree.compute_nodes();
    for a in 0..r {
        let v = vc[(mix64(a ^ seed) % vc.len() as u64) as usize];
        p.push(v, Rel::R, a);
    }
    for a in 0..s {
        let v = vc[(mix64(a ^ seed ^ 0xFE) % vc.len() as u64) as usize];
        p.push(v, Rel::S, r / 2 + a);
    }
    p
}

/// X-AGG — distribution-aware aggregation (related-work extension):
/// in-network combining vs flat pre-aggregation vs raw shipping on
/// thin-core rack trees, against the per-edge group lower bound.
pub fn x_agg() -> Vec<Table> {
    let mut t = Table::new(
        "X-AGG: all-to-one aggregation on 3 racks × 4 nodes, thin core uplinks (0.25)",
        &[
            "groups/node",
            "naive",
            "flat",
            "combining",
            "LB",
            "flat/LB",
            "comb/LB",
        ],
    );
    let tree = builders::rack_tree(&[(4, 4.0, 0.25), (4, 4.0, 0.25), (4, 4.0, 0.25)], 1.0);
    let target = tree.compute_nodes()[0];
    for &groups in &[5u64, 20, 80] {
        let mut p = Placement::empty(&tree);
        for &v in tree.compute_nodes() {
            for g in 0..groups {
                for rep in 0..4 {
                    p.push(v, Rel::R, encode(g, rep + 1));
                }
            }
        }
        let lb = aggregation_lower_bound(&tree, &p, target).value();
        let naive = run_protocol(&tree, &p, &NaiveAggregate::new(target, Aggregator::Sum))
            .unwrap()
            .cost
            .tuple_cost();
        let flat = run_protocol(
            &tree,
            &p,
            &FlatPartialAggregate::new(target, Aggregator::Sum),
        )
        .unwrap()
        .cost
        .tuple_cost();
        let comb = run_protocol(
            &tree,
            &p,
            &CombiningTreeAggregate::new(target, Aggregator::Sum),
        )
        .unwrap()
        .cost
        .tuple_cost();
        t.row(vec![
            groups.to_string(),
            fnum(naive),
            fnum(flat),
            fnum(comb),
            fnum(lb),
            fnum(ratio(flat, lb)),
            fnum(ratio(comb, lb)),
        ]);
    }
    t.note(
        "Expected shape: combining crosses each thin uplink once per group \
         (comb/LB small constant); flat pays per-node duplication (≈4× more); \
         naive pays raw data size.",
    );
    vec![t]
}

/// X-GROUPBY — distributed group-by under the proportional hash vs the
/// per-cut split-group lower bound, across the topology zoo.
pub fn x_groupby() -> Vec<Table> {
    let mut t = Table::new(
        "X-GROUPBY: HashGroupBy cost vs split-group lower bound",
        &["topology", "cost", "LB", "cost/LB"],
    );
    for (name, tree) in crate::suite::standard_topologies() {
        let mut p = Placement::empty(&tree);
        for (i, &v) in tree.compute_nodes().iter().enumerate() {
            for j in 0..200u64 {
                p.push(v, Rel::R, encode((i as u64 * 17 + j) % 32, j % 100));
            }
        }
        let lb = groupby_lower_bound(&tree, &p).value();
        let cost = run_protocol(&tree, &p, &HashGroupBy::new(7, Aggregator::Sum))
            .unwrap()
            .cost
            .tuple_cost();
        t.row(vec![name, fnum(cost), fnum(lb), fnum(ratio(cost, lb))]);
    }
    t.note("Expected shape: cost within a small factor of the cut bound everywhere.");
    vec![t]
}

/// X-GENERAL — §7 future work: the paper's tree algorithms on grids,
/// tori and hypercubes via spanning-tree extraction, against per-cut
/// lower bounds; max-bandwidth vs BFS extraction as an ablation.
pub fn x_general() -> Vec<Table> {
    let mut t = Table::new(
        "X-GENERAL: set intersection on non-tree topologies via tree extraction",
        &["graph", "extraction", "cost", "graph LB", "cost/LB"],
    );
    let graphs: Vec<(&str, tamp_topology::Graph)> = vec![
        ("grid-4x4", gb::grid(4, 4, 1.0)),
        ("torus-4x4", gb::torus(4, 4, 1.0)),
        ("hypercube-4d", gb::hypercube(4, 1.0)),
        ("random-12+8", gb::random_connected(12, 8, 0.5, 4.0, 42)),
    ];
    for (name, graph) in &graphs {
        let vc = graph.compute_nodes();
        let mut frags = vec![tamp_simulator::NodeState::default(); graph.num_nodes()];
        for a in 0..400u64 {
            frags[vc[(mix64(a) % vc.len() as u64) as usize].index()]
                .r
                .push(a);
            frags[vc[(mix64(a ^ 0xF) % vc.len() as u64) as usize].index()]
                .s
                .push(200 + a);
        }
        let p = Placement::from_fragments(frags);
        for (how, how_name) in [
            (TreeExtraction::MaxBandwidth, "max-bw"),
            (TreeExtraction::BfsFromFirstCompute, "bfs"),
        ] {
            let (run, tree) = run_on_graph(graph, &p, &TreeIntersect::new(3), how).unwrap();
            let lb = graph_intersection_lower_bound(graph, &tree, &p.stats()).value();
            t.row(vec![
                name.to_string(),
                how_name.to_string(),
                fnum(run.cost.tuple_cost()),
                fnum(lb),
                fnum(ratio(run.cost.tuple_cost(), lb)),
            ]);
        }
    }
    t.note(
        "Expected shape: single-tree routing is within a moderate factor of the \
         per-cut bound on cut-dominated graphs, and the gap grows on expanders \
         (hypercube) — exactly why §7 calls general topologies challenging.",
    );
    vec![t]
}

/// X-RUNTIME — the pooled message-passing cluster against the
/// centralized cost simulator, both selected through the one
/// `ExecBackend` API: identical traffic for the deterministic plans,
/// never-worse traffic for direct-routed cartesian products.
pub fn x_runtime() -> Vec<Table> {
    let mut t = Table::new(
        "X-RUNTIME: pooled cluster vs cost simulator (same seeds, one ExecBackend API)",
        &[
            "task",
            "topology",
            "sim cost",
            "runtime cost",
            "supersteps",
            "relation",
        ],
    );
    let topo = builders::rack_tree(&[(3, 1.0, 2.0), (3, 2.0, 4.0)], 1.0);
    let sim_backend = SimulatorBackend;
    let rt_backend = PooledClusterBackend::default();

    let p = scatter(&topo, 200, 600, 5);
    let job = jobs::tree_intersect(5);
    let sim = sim_backend.execute(&topo, &p, &job).unwrap();
    let rt = rt_backend.execute(&topo, &p, &job).unwrap();
    t.row(vec![
        "intersection".into(),
        "rack-2x3".into(),
        fnum(sim.cost.tuple_cost()),
        fnum(rt.cost.tuple_cost()),
        format!("{}+1", rt.rounds),
        if rt.cost.edge_totals == sim.cost.edge_totals && rt.rounds == sim.rounds {
            "identical traffic".into()
        } else {
            "MISMATCH".into()
        },
    ]);

    let mut p = Placement::empty(&topo);
    let vc = topo.compute_nodes();
    for x in 0..600u64 {
        p.push(vc[(x % vc.len() as u64) as usize], Rel::R, mix64(x));
    }
    let job = jobs::weighted_terasort(3);
    let sim = sim_backend.execute(&topo, &p, &job).unwrap();
    let rt = rt_backend.execute(&topo, &p, &job).unwrap();
    t.row(vec![
        "sorting".into(),
        "rack-2x3".into(),
        fnum(sim.cost.tuple_cost()),
        fnum(rt.cost.tuple_cost()),
        format!("{}+1", rt.rounds),
        if rt.cost.edge_totals == sim.cost.edge_totals && rt.rounds == sim.rounds {
            "identical traffic".into()
        } else {
            "MISMATCH".into()
        },
    ]);

    let p = scatter(&topo, 120, 120, 2);
    let job = jobs::tree_cartesian();
    let sim = sim_backend.execute(&topo, &p, &job).unwrap();
    let rt = rt_backend.execute(&topo, &p, &job).unwrap();
    t.row(vec![
        "cartesian".into(),
        "rack-2x3".into(),
        fnum(sim.cost.tuple_cost()),
        fnum(rt.cost.tuple_cost()),
        format!("{}+1", rt.rounds),
        if rt.cost.tuple_cost() <= sim.cost.tuple_cost() + 1e-9 {
            "runtime ≤ sim (direct routing)".into()
        } else {
            "MISMATCH".into()
        },
    ]);
    t.note(
        "Expected shape: distributed per-node plan derivation reproduces the \
         centralized sends exactly; no hidden coordination is required. \
         Supersteps are the metered rounds plus the silent termination step.",
    );
    vec![t]
}

/// X-QUERY — the relational layer: per-operator cost breakdown for an
/// analytics query, and the weighted-vs-uniform join shuffle under
/// increasing placement skew.
pub fn x_query() -> Vec<Table> {
    let tree = builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0, 4.0, 4.0]);
    let heavy = tree.compute_nodes()[0];

    // Per-operator breakdown.
    let mut t1 = Table::new(
        "X-QUERY-A: per-operator tuple cost (filter → join → group-by → order-by)",
        &["operator", "est cost", "tuple cost"],
    );
    {
        let mut c = Catalog::new(tree.clone());
        let rows: Vec<Vec<u64>> = (0..600).map(|i| vec![i, i % 8, (i * 13) % 1000]).collect();
        c.register(DistributedTable::round_robin(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            c.tree(),
        ))
        .unwrap();
        let dims: Vec<Vec<u64>> = (0..8).map(|g| vec![g, g % 3]).collect();
        c.register(DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "tier"]).unwrap(),
            dims,
            c.tree(),
        ))
        .unwrap();
        let q = LogicalPlan::scan("facts")
            .filter(col("x").gt(lit(250)))
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .aggregate("tier", AggFunc::Sum, "x")
            .order_by("tier");
        let res = execute(&c, &q, ExecOptions::default()).unwrap();
        for oc in &res.operator_costs {
            t1.row(vec![oc.op.clone(), fnum(oc.estimated), fnum(oc.actual)]);
        }
        t1.note(format!(
            "total = {} over {} rounds",
            fnum(res.cost.tuple_cost()),
            res.rounds
        ));
    }

    // Skew sweep: weighted vs uniform join shuffle.
    let mut t2 = Table::new(
        "X-QUERY-B: join shuffle cost vs placement skew (heavy node behind a 0.5-bw link)",
        &["skew α", "uniform", "weighted", "uniform/weighted"],
    );
    for &alpha in &[0.2f64, 0.5, 0.8, 1.0] {
        let mut c = Catalog::new(tree.clone());
        let rows: Vec<Vec<u64>> = (0..500).map(|i| vec![i, i % 6, i * 2]).collect();
        c.register(DistributedTable::skewed(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            c.tree(),
            heavy,
            alpha,
        ))
        .unwrap();
        let dims: Vec<Vec<u64>> = (0..6).map(|g| vec![g, g + 40]).collect();
        c.register(DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "label"]).unwrap(),
            dims,
            c.tree(),
        ))
        .unwrap();
        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        let uniform = execute(
            &c,
            &q,
            ExecOptions {
                join: JoinStrategy::Uniform,
                seed: 1,
                ..ExecOptions::default()
            },
        )
        .unwrap()
        .cost
        .tuple_cost();
        let weighted = execute(
            &c,
            &q,
            ExecOptions {
                join: JoinStrategy::Weighted,
                seed: 1,
                ..ExecOptions::default()
            },
        )
        .unwrap()
        .cost
        .tuple_cost();
        t2.row(vec![
            format!("{alpha:.1}"),
            fnum(uniform),
            fnum(weighted),
            fnum(ratio(uniform, weighted)),
        ]);
    }
    t2.note(
        "Expected shape: the distribution-aware shuffle's advantage widens with \
         skew — the Algorithm 2 idea, surfacing at the query layer.",
    );
    vec![t1, t2]
}

/// ABL-DRIFT — the §3.3 remark as an ablation: intersection and sorting
/// traffic is invariant under bandwidth drift; the cartesian plan is not,
/// and stale planning degrades with the drift spread. Also prices the §2
/// knowledge assumption (statistics broadcast).
pub fn abl_drift() -> Vec<Table> {
    let tree = builders::rack_tree(&[(3, 4.0, 8.0), (3, 0.5, 1.0)], 1.0);
    let mut t = Table::new(
        "ABL-DRIFT: traffic under bandwidth drift (spread s ⇒ links scaled in [1/s, s])",
        &[
            "spread",
            "SI traffic Δ",
            "sort traffic Δ",
            "CP fresh",
            "CP stale",
            "stale/fresh",
        ],
    );
    let p_si = scatter(&tree, 150, 450, 4);
    let mut p_sort = Placement::empty(&tree);
    for x in 0..500u64 {
        let vc = tree.compute_nodes();
        p_sort.push(vc[(x % vc.len() as u64) as usize], Rel::R, mix64(x));
    }
    let p_cp = scatter(&tree, 90, 90, 8);
    let si_base = run_protocol(&tree, &p_si, &TreeIntersect::new(6)).unwrap();
    let sort_base = run_protocol(&tree, &p_sort, &WeightedTeraSort::new(2)).unwrap();
    let cp_fresh = run_protocol(&tree, &p_cp, &TreeCartesianProduct::new()).unwrap();
    for &spread in &[1.5f64, 3.0, 8.0] {
        let drifted = perturb_bandwidths(&tree, spread, 11);
        let si = run_protocol(&drifted, &p_si, &TreeIntersect::new(6)).unwrap();
        let sort = run_protocol(&drifted, &p_sort, &WeightedTeraSort::new(2)).unwrap();
        let si_delta: u64 = si
            .cost
            .edge_totals
            .iter()
            .zip(&si_base.cost.edge_totals)
            .map(|(a, b)| a.abs_diff(*b))
            .sum();
        let sort_delta: u64 = sort
            .cost
            .edge_totals
            .iter()
            .zip(&sort_base.cost.edge_totals)
            .map(|(a, b)| a.abs_diff(*b))
            .sum();
        let stale = run_protocol(
            &tree,
            &p_cp,
            &TreeCartesianProduct::with_planning_tree(drifted),
        )
        .unwrap();
        t.row(vec![
            format!("{spread:.1}"),
            si_delta.to_string(),
            sort_delta.to_string(),
            fnum(cp_fresh.cost.tuple_cost()),
            fnum(stale.cost.tuple_cost()),
            fnum(ratio(stale.cost.tuple_cost(), cp_fresh.cost.tuple_cost())),
        ]);
    }
    t.note(
        "Expected shape: Δ = 0 for intersection and sorting at every spread \
         (bandwidth-oblivious routing, the §3.3 remark). The cartesian plan \
         *changes* with its bandwidth inputs — in power-of-2 jumps and in \
         either direction, since Algorithm 5 guarantees O(1)-optimality, not \
         a cost-minimal plan.",
    );

    let mut t2 = Table::new(
        "ABL-DRIFT-B: cost of the §2 knowledge assumption (stats broadcast)",
        &["N", "stats cost", "SI data cost", "stats share"],
    );
    for &n in &[1_000u64, 10_000, 100_000] {
        let p = scatter(&tree, n / 4, 3 * n / 4, 9);
        let stats = run_protocol(&tree, &p, &BroadcastStatistics::new())
            .unwrap()
            .cost
            .tuple_cost();
        let data = run_protocol(&tree, &p, &TreeIntersect::new(1))
            .unwrap()
            .cost
            .tuple_cost();
        t2.row(vec![
            n.to_string(),
            fnum(stats),
            fnum(data),
            format!("{:.4}%", 100.0 * stats / (stats + data)),
        ]);
    }
    t2.note("Expected shape: the knowledge assumption costs O(|V_C|) per edge — its share vanishes as N grows.");
    vec![t, t2]
}

/// The physical plan's join strategy name (post-order walk).
fn join_strategy_name(plan: &PhysicalPlan) -> Option<&'static str> {
    for child in plan.children() {
        if let Some(k) = join_strategy_name(child) {
            return Some(k);
        }
    }
    if plan.label().starts_with("HashJoin") {
        return plan.exchange().map(|x| x.name());
    }
    None
}

/// X-PLAN — the cost-based physical planner: estimated vs metered cost
/// per exchange (the `EXPLAIN` numbers, verified at run time), and the
/// plan-time `Auto` join choice against every forced strategy.
pub fn x_plan() -> Vec<Table> {
    // A: estimated vs metered per operator, star vs fat-tree.
    let mut t1 = Table::new(
        "X-PLAN-A: estimated vs metered tuple cost per operator (the EXPLAIN estimates, verified)",
        &[
            "topology",
            "operator",
            "exchange",
            "est cost",
            "metered cost",
        ],
    );
    for (name, tree) in [
        (
            "star-6-hetero",
            builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0, 4.0, 4.0]),
        ),
        ("fat-tree-2x3", builders::fat_tree(2, 3, 1.0)),
    ] {
        let facts = DistributedTable::round_robin(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            (0..600).map(|i| vec![i, i % 8, (i * 13) % 1000]).collect(),
            &tree,
        );
        let dims = DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "tier"]).unwrap(),
            (0..8).map(|g| vec![g, g % 3]).collect(),
            &tree,
        );
        let mut ctx = QueryContext::new(tree).with_seed(7);
        ctx.register(facts).unwrap().register(dims).unwrap();
        let q = LogicalPlan::scan("facts")
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .aggregate("tier", AggFunc::Sum, "x")
            .order_by("tier");
        let prepared = ctx.prepare(&q).unwrap();
        assert!(prepared.explain().contains("est cost"));
        let res = prepared.run().unwrap();
        // Label each operator with its planned exchange kind, matched by
        // the shared operator label (stable across planner and executor).
        fn strategies_by_label(plan: &PhysicalPlan, out: &mut Vec<(String, &'static str)>) {
            for child in plan.children() {
                strategies_by_label(child, out);
            }
            if let Some(x) = plan.exchange() {
                out.push((plan.label(), x.name()));
            }
        }
        let mut exchange_kinds = Vec::new();
        strategies_by_label(prepared.physical_plan(), &mut exchange_kinds);
        for oc in &res.operator_costs {
            if oc.estimated == 0.0 && oc.actual == 0.0 {
                continue; // local operators are free on both ledgers
            }
            let kind = exchange_kinds
                .iter()
                .find(|(label, _)| *label == oc.op)
                .map(|(_, k)| *k);
            t1.row(vec![
                name.into(),
                oc.op.clone(),
                kind.map_or("-".into(), |k| k.to_string()),
                fnum(oc.estimated),
                fnum(oc.actual),
            ]);
        }
    }
    t1.note(
        "Expected shape: estimates track metered costs within a small factor — \
         both route traffic along the same tree paths and charge the same §2 \
         functional; the gap is cardinality estimation, not the cost model.",
    );

    // B: the plan-time Auto choice vs every forced strategy.
    let mut t2 = Table::new(
        "X-PLAN-B: cost-based Auto join vs forced strategies (metered cost; Auto must match the best)",
        &[
            "scenario",
            "auto picks",
            "auto",
            "weighted",
            "uniform",
            "broadcast",
            "auto ≤ best",
        ],
    );
    for (scenario, catalog) in x_plan_scenarios() {
        let q = LogicalPlan::scan("big").join_on(LogicalPlan::scan("small"), "g", "g");
        let run = |join| {
            QueryContext::with_catalog(catalog.clone())
                .with_seed(5)
                .with_join_strategy(join)
                .execute(&q)
                .unwrap()
                .cost
                .tuple_cost()
        };
        let auto_ctx = QueryContext::with_catalog(catalog.clone()).with_seed(5);
        let picked = join_strategy_name(auto_ctx.prepare(&q).unwrap().physical_plan()).unwrap();
        let auto = run(JoinStrategy::Auto);
        let weighted = run(JoinStrategy::Weighted);
        let uniform = run(JoinStrategy::Uniform);
        let broadcast = run(JoinStrategy::BroadcastSmall);
        let best = weighted.min(uniform).min(broadcast);
        t2.row(vec![
            scenario,
            picked.to_string(),
            fnum(auto),
            fnum(weighted),
            fnum(uniform),
            fnum(broadcast),
            if auto <= best + 1e-9 { "yes" } else { "NO" }.into(),
        ]);
    }
    t2.note(
        "Expected shape: the plan-time cost comparison lands on the strategy \
         that is actually cheapest — broadcast for tiny build sides, weighted \
         repartition under co-located skew — so the Auto column equals the \
         best forced column (same seed ⇒ same traffic).",
    );
    vec![t1, t2]
}

/// Join scenarios with a decisive best strategy, over tables `big` ⋈
/// `small` on `g`.
fn x_plan_scenarios() -> Vec<(String, Catalog)> {
    let mut out = Vec::new();
    // 1. Tiny dimension table on a uniform star: broadcast wins.
    {
        let tree = builders::star(6, 1.0);
        let mut c = Catalog::new(tree);
        c.register(DistributedTable::round_robin(
            "big",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            (0..600).map(|i| vec![i, i % 8, i * 2]).collect(),
            c.tree(),
        ))
        .unwrap();
        c.register(DistributedTable::round_robin(
            "small",
            Schema::new(vec!["g", "tier"]).unwrap(),
            (0..8).map(|g| vec![g, g % 3]).collect(),
            c.tree(),
        ))
        .unwrap();
        out.push(("tiny-dim / uniform star".into(), c));
    }
    // 2. Both sides ~90% co-located behind a thin link: the weighted
    //    repartition keeps the data in place.
    {
        let tree = builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0, 4.0, 4.0]);
        let heavy = tree.compute_nodes()[0];
        let mut c = Catalog::new(tree);
        c.register(DistributedTable::skewed(
            "big",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            (0..500).map(|i| vec![i, i % 6, i * 2]).collect(),
            c.tree(),
            heavy,
            0.9,
        ))
        .unwrap();
        c.register(DistributedTable::skewed(
            "small",
            Schema::new(vec!["g", "y"]).unwrap(),
            (0..300).map(|i| vec![i % 6, i]).collect(),
            c.tree(),
            heavy,
            0.9,
        ))
        .unwrap();
        out.push(("co-located 90% skew / thin link".into(), c));
    }
    // 3. Big side parked on one fat-link node, mid-size spread small
    //    side: one-round broadcast to the single holder beats two
    //    repartition rounds.
    {
        let tree = builders::heterogeneous_star(&[4.0, 2.0, 2.0, 2.0, 2.0, 2.0]);
        let fat = tree.compute_nodes()[0];
        let mut c = Catalog::new(tree);
        c.register(DistributedTable::single_node(
            "big",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            (0..2_000).map(|i| vec![i, i % 6, i]).collect(),
            c.tree(),
            fat,
        ))
        .unwrap();
        c.register(DistributedTable::round_robin(
            "small",
            Schema::new(vec!["g", "y"]).unwrap(),
            (0..60).map(|i| vec![i % 6, i]).collect(),
            c.tree(),
        ))
        .unwrap();
        out.push(("single-holder big side / fat link".into(), c));
    }
    out
}

/// X-UNEQ-TREE — §4.5's open problem: unequal sizes on general trees.
/// Best-of-three heuristic vs the (possibly loose) Theorem-8-style bound,
/// sweeping the size ratio.
pub fn x_unequal_tree() -> Vec<Table> {
    use tamp_core::cartesian::{
        unequal_tree_lower_bound, UnequalTreeCartesianProduct, UnequalTreeStrategy,
    };
    let mut t = Table::new(
        "X-UNEQ-TREE: |R| ≠ |S| cartesian product on a 2-rack tree (auto vs forced strategies)",
        &[
            "|R|:|S|",
            "auto picks",
            "auto",
            "all-to-node",
            "broadcast",
            "padded-squares",
            "LB",
            "auto/LB",
        ],
    );
    let tree = builders::rack_tree(&[(3, 2.0, 4.0), (3, 1.0, 2.0)], 1.0);
    for &(r, s) in &[
        (8u64, 512u64),
        (32, 512),
        (128, 512),
        (256, 512),
        (512, 512),
    ] {
        let p = scatter(&tree, r, s, 13);
        let stats = p.stats();
        let lb = unequal_tree_lower_bound(&tree, &stats).value();
        let auto_run = run_protocol(&tree, &p, &UnequalTreeCartesianProduct::new()).unwrap();
        let forced: Vec<f64> = [
            UnequalTreeStrategy::AllToNode,
            UnequalTreeStrategy::BroadcastSmall,
            UnequalTreeStrategy::PaddedSquares,
        ]
        .into_iter()
        .map(|st| {
            run_protocol(&tree, &p, &UnequalTreeCartesianProduct::with_strategy(st))
                .unwrap()
                .cost
                .tuple_cost()
        })
        .collect();
        t.row(vec![
            format!("{r}:{s}"),
            format!("{:?}", auto_run.output),
            fnum(auto_run.cost.tuple_cost()),
            fnum(forced[0]),
            fnum(forced[1]),
            fnum(forced[2]),
            fnum(lb),
            fnum(ratio(auto_run.cost.tuple_cost(), lb)),
        ]);
    }
    t.note(
        "Expected shape: broadcast wins at extreme ratios (cost ≈ |R|), padded \
         squares take over as sizes converge, and the auto rule tracks the best \
         column. No matching lower bound is known in the middle — the measured \
         auto/LB gap quantifies §4.5's open problem.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_agg_combining_beats_flat() {
        let t = &x_agg()[0];
        for i in 0..t.num_rows() {
            let flat: f64 = t.cell(i, 2).parse().unwrap();
            let comb: f64 = t.cell(i, 3).parse().unwrap();
            assert!(comb < flat, "row {i}: combining {comb} vs flat {flat}");
        }
    }

    #[test]
    fn x_runtime_has_no_mismatch() {
        let t = &x_runtime()[0];
        for i in 0..t.num_rows() {
            assert_ne!(t.cell(i, 4), "MISMATCH", "row {i}");
        }
    }

    #[test]
    fn abl_drift_invariance_holds() {
        let t = &abl_drift()[0];
        for i in 0..t.num_rows() {
            assert_eq!(t.cell(i, 1), "0", "SI traffic drifted in row {i}");
            assert_eq!(t.cell(i, 2), "0", "sort traffic drifted in row {i}");
        }
    }

    #[test]
    fn x_query_weighted_wins_at_full_skew() {
        let tables = x_query();
        let t = &tables[1];
        let last: f64 = t.cell(t.num_rows() - 1, 3).parse().unwrap();
        assert!(last > 1.5, "uniform/weighted at α=1.0 was only {last}");
    }

    #[test]
    fn x_plan_auto_matches_best_forced_strategy() {
        // The acceptance criterion of the cost-based planner: for every
        // x-plan scenario, Auto's metered cost is <= the best forced
        // strategy's (same seed, so matching the pick means matching the
        // traffic bit for bit).
        let tables = x_plan();
        let t = &tables[1];
        assert!(t.num_rows() >= 3);
        for i in 0..t.num_rows() {
            assert_eq!(t.cell(i, 6), "yes", "scenario {}", t.cell(i, 0));
            let auto: f64 = t.cell(i, 2).parse().unwrap();
            let best = [3, 4, 5]
                .iter()
                .map(|&j| t.cell(i, j).parse::<f64>().unwrap())
                .fold(f64::INFINITY, f64::min);
            assert!(auto <= best + 1e-9, "auto {auto} vs best {best}");
        }
    }

    #[test]
    fn x_plan_estimates_are_positive_for_exchanges() {
        let tables = x_plan();
        let t = &tables[0];
        assert!(t.num_rows() > 0);
        for i in 0..t.num_rows() {
            let est: f64 = t.cell(i, 3).parse().unwrap();
            let actual: f64 = t.cell(i, 4).parse().unwrap();
            assert!(est > 0.0, "row {i}: {} est {est}", t.cell(i, 1));
            assert!(actual >= 0.0, "row {i} actual {actual}");
        }
    }

    #[test]
    fn x_general_rows_are_finite() {
        let t = &x_general()[0];
        assert_eq!(t.num_rows(), 8);
        for i in 0..t.num_rows() {
            let r: f64 = t.cell(i, 4).parse().unwrap();
            assert!(r.is_finite() && r >= 0.9, "row {i} ratio {r}");
        }
    }

    #[test]
    fn x_uneq_tree_auto_tracks_best() {
        let t = &x_unequal_tree()[0];
        for i in 0..t.num_rows() {
            let auto: f64 = t.cell(i, 2).parse().unwrap();
            let best = (3..6)
                .map(|c| t.cell(i, c).parse::<f64>().unwrap())
                .fold(f64::INFINITY, f64::min);
            assert!(
                auto <= 2.0 * best + 1e-9,
                "row {i}: auto {auto} vs best {best}"
            );
        }
    }

    #[test]
    fn x_groupby_ratios_are_bounded() {
        let t = &x_groupby()[0];
        for i in 0..t.num_rows() {
            let r: f64 = t.cell(i, 3).parse().unwrap();
            assert!(r.is_finite() && r < 64.0, "row {i} ratio {r}");
        }
    }
}
