//! X-LINT — the suppression budget, tracked like a measurement.
//!
//! `tamp-lint` (see `crates/lint`) gates CI on zero violations, so the
//! interesting *trajectory* is the allow inventory: every
//! `// lint: allow(..)` site is a documented exception to the
//! determinism/safety invariants, and the count creeping upward is the
//! early signal that exceptions are becoming the norm. This suite runs
//! the same workspace scan as `tests/lint.rs` and tabulates per-rule
//! violation/allow counts into the bench baseline, so
//! `BENCH_baseline.json` pins the budget and `--check` flags drift.
//!
//! All cells are deterministic (counts over the checked-in sources), so
//! they feed the baseline's cost median directly.

use tamp_lint::{scan_workspace, workspace_root, Report, RuleId};

use crate::table::Table;

/// Run the workspace scan once, for both the table and any caller that
/// wants the raw report.
pub fn scan() -> Report {
    scan_workspace(&workspace_root()).expect("scan workspace sources")
}

/// Build the X-LINT tables from a finished report.
pub fn tables(report: &Report) -> Vec<Table> {
    let mut per_rule = Table::new(
        "X-LINT: per-rule violation/allow counts",
        &["rule", "violations", "allows"],
    );
    for (rule, (violations, allows)) in report.rule_counts() {
        per_rule.row(vec![
            rule.id().to_string(),
            violations.to_string(),
            allows.to_string(),
        ]);
    }
    per_rule.note(
        "gate: violations must be 0 (enforced by tests/lint.rs and CI); \
         allows is the suppression budget — every site carries a reason",
    );

    let mut totals = Table::new(
        "X-LINT: workspace totals",
        &["files_scanned", "violations", "allow_sites"],
    );
    totals.row(vec![
        report.files.to_string(),
        report.diagnostics.len().to_string(),
        report.allows.len().to_string(),
    ]);
    for a in &report.allows {
        totals.note(format!(
            "allow {}:{} ({}) — {}",
            a.file,
            a.line,
            a.rule.id(),
            a.reason
        ));
    }
    vec![per_rule, totals]
}

/// The `x-lint` experiment: scan, tabulate, and hard-fail on any
/// violation so a dirty tree cannot silently mint a new baseline.
pub fn x_lint() -> Vec<Table> {
    let report = scan();
    assert!(
        report.is_clean(),
        "x-lint: workspace has violations — fix or annotate before \
         regenerating baselines:\n{}",
        report.render_text()
    );
    // Sanity: the rule universe is stable; a new rule must show up here
    // (and in the baseline row count) the day it lands.
    assert_eq!(RuleId::ALL.len(), 7);
    tables(&report)
}
