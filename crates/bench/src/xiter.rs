//! X-ITER — iterative graph analytics: topology-aware vs agnostic
//! vertex placement, and frontier-mode exchange shrinkage.
//!
//! The iterative fixpoint driver (`tamp_query::iterative`) prices every
//! iteration on the §2 functional, which makes the placement question
//! quantitative: the same PageRank on the same graph costs whatever the
//! bottleneck link carries per iteration. Two scenario axes, following
//! the torus/grid topology-comparison methodology:
//!
//! 1. **Skewed fat-tree** — a power-law (Zipf-endpoint) graph on a
//!    bandwidth-heterogeneous fat-tree (one fat rack, one thin rack).
//!    The topology-aware variant places contiguous degree-balanced
//!    blocks proportional to leaf bandwidth
//!    ([`VertexPartition::Blocked`]), parking the hub cluster's degree
//!    mass behind the fat links; the agnostic variant hashes vertices
//!    uniformly ([`VertexPartition::Hash`]), so the thin leaf links
//!    carry a full share of the hub's traffic at an eighth of the
//!    bandwidth and dominate the §2 max. Release gate: aware metered
//!    cost ≤ 0.7× agnostic.
//! 2. **Torus-embedded grid** — a grid graph on a caterpillar tree
//!    (the grid-like embedding the repository supports today). Blocked
//!    placement preserves the grid's id-locality, so only block-boundary
//!    arcs ship.
//!
//! Plus the frontier axis: BFS from the power-law hub in
//! [`IterMode::FrontierDelta`](tamp_query::iterative::IterMode::FrontierDelta) must show **strictly decreasing**
//! per-iteration exchange volume — the level sets shrink, and each
//! iteration's estimate is re-priced from the previous iteration's
//! metered cardinalities. Both gates run on the simulator backend;
//! backend parity is covered by `tests/plan_parity.rs`.

use tamp_query::iterative::{IterativeJob, IterativeOutcome, IterativeSpec};
use tamp_topology::{builders, Tree};
use tamp_workloads::{GraphSpec, PlacementStrategy, VertexPartition};

use crate::table::{fnum, Table};

/// Seed for every graph and partition in the suite.
const SEED: u64 = 11;
/// PageRank damping (0.5 keeps fixpoints short: residual halves per
/// iteration).
const DAMPING: f64 = 0.5;
/// PageRank budget/tolerance.
const SPEC: IterativeSpec = IterativeSpec {
    max_iters: 40,
    tolerance: 1e-3,
    mode: tamp_query::iterative::IterMode::Jacobi,
};

/// One placement comparison on one scenario.
#[derive(Debug)]
pub struct IterMeasurement {
    /// Scenario label.
    pub scenario: &'static str,
    /// Iterations to convergence (identical for both placements — the
    /// fixpoint does not depend on where vertices live).
    pub iterations: usize,
    /// Cross-owner rows the topology-aware placement exchanged in total.
    pub aware_rows: u64,
    /// Total metered cost, topology-aware (blocked, degree-balanced).
    pub aware_cost: f64,
    /// Total metered cost, topology-agnostic (uniform hash).
    pub agnostic_cost: f64,
}

impl IterMeasurement {
    /// agnostic / aware — the gate watches ≥ 1.43 (aware ≤ 0.7×).
    pub fn ratio(&self) -> f64 {
        self.agnostic_cost / self.aware_cost
    }
}

fn run_pagerank(tree: &Tree, graph: &GraphSpec, part: VertexPartition) -> IterativeOutcome {
    let g = graph.generate(SEED);
    let owners = part.owners(tree, &g, SEED);
    let job = IterativeJob::pagerank(g.arcs().to_vec(), owners, DAMPING, SPEC);
    job.prepare(tree)
        .expect("bench fixpoint converges")
        .run(tree)
        .expect("simulator replay")
}

/// PageRank on `graph` over `tree`, topology-aware (blocked proportional
/// to bandwidth) vs agnostic (uniform hash).
pub fn measure_pagerank(scenario: &'static str, tree: &Tree, graph: &GraphSpec) -> IterMeasurement {
    let aware = run_pagerank(
        tree,
        graph,
        VertexPartition::Blocked(PlacementStrategy::ProportionalToBandwidth),
    );
    let agnostic = run_pagerank(tree, graph, VertexPartition::Hash);
    assert_eq!(
        aware.iterations.len(),
        agnostic.iterations.len(),
        "the fixpoint is placement-independent"
    );
    IterMeasurement {
        scenario,
        iterations: aware.iterations.len(),
        aware_rows: aware.total_exchanged_rows(),
        aware_cost: aware.total_metered(),
        agnostic_cost: agnostic.total_metered(),
    }
}

/// The bandwidth-skewed fat-tree of the gated scenario: one fat rack
/// (8× leaf links, proportionally fat uplink) next to a thin one — the
/// heterogeneous datacenter shape the paper's placement results target.
fn skewed_tree() -> Tree {
    builders::rack_tree(&[(3, 8.0, 24.0), (3, 1.0, 4.0)], 16.0)
}

/// The skewed fat-tree scenario (the release-gated one): power-law
/// graph on the heterogeneous fat-tree. The aware placement parks the
/// hub blocks' degree mass behind the fat rack; hash spreads it
/// uniformly, so the thin leaf links become the per-round bottleneck.
pub fn skewed_fat_tree() -> IterMeasurement {
    measure_pagerank(
        "skewed fat-tree",
        &skewed_tree(),
        &GraphSpec::power_law(360, 2600, 1.0),
    )
}

/// The torus-embedded grid scenario.
pub fn torus_grid() -> IterMeasurement {
    let tree = builders::caterpillar(4, 2, 1.0);
    measure_pagerank("torus grid", &tree, &GraphSpec::grid(18, 20))
}

/// Frontier-mode BFS from the power-law hub: the per-iteration exchange
/// volumes (combined rows) whose strict decrease the gate asserts.
pub fn frontier_bfs() -> IterativeOutcome {
    let tree = builders::fat_tree(2, 3, 1.0);
    let g = GraphSpec::power_law(360, 5200, 1.2).generate(SEED);
    let owners = VertexPartition::Blocked(PlacementStrategy::ProportionalToBandwidth)
        .owners(&tree, &g, SEED);
    let job = IterativeJob::bfs(
        g.arcs().to_vec(),
        owners,
        0,
        IterativeSpec::frontier(20, 0.0),
    );
    job.prepare(&tree)
        .expect("BFS settles")
        .run(&tree)
        .expect("simulator replay")
}

/// `true` iff per-iteration exchange volume strictly decreases.
pub fn strictly_decreasing(out: &IterativeOutcome) -> bool {
    out.iterations
        .windows(2)
        .all(|w| w[1].exchanged_rows < w[0].exchanged_rows)
}

/// X-ITER — topology-aware vs agnostic iterative placement, and frontier
/// exchange shrinkage.
pub fn x_iter() -> Vec<Table> {
    let mut placement = Table::new(
        "X-ITER  PageRank: topology-aware (blocked) vs agnostic (hash) placement",
        &[
            "scenario",
            "iters",
            "aware rows",
            "aware cost",
            "agnostic cost",
            "agnostic/aware ratio",
        ],
    );
    for m in [skewed_fat_tree(), torus_grid()] {
        placement.row(vec![
            m.scenario.to_string(),
            m.iterations.to_string(),
            m.aware_rows.to_string(),
            fnum(m.aware_cost),
            fnum(m.agnostic_cost),
            fnum(m.ratio()),
        ]);
    }
    placement.note(
        "Expected shape: ratio > 1 on both scenarios — on the skewed fat-tree the \
         bandwidth-proportional blocks park the hub's degree mass behind the fat \
         rack (hash makes the thin links the bottleneck); on the grid the blocks \
         keep neighborhoods intra-node so only boundary arcs ship. The release \
         gate pins the skewed fat-tree ratio at ≥ 1.43 (aware ≤ 0.7× agnostic). \
         Iteration counts are placement-independent: the fixpoint itself never \
         changes, only its price.",
    );

    let bfs = frontier_bfs();
    let mut volume = Table::new(
        "X-ITER  frontier BFS from the hub: per-iteration exchange volume",
        &[
            "iter",
            "rows",
            "estimated cost",
            "metered cost",
            "cut lb cost",
            "residual",
        ],
    );
    for i in &bfs.iterations {
        volume.row(vec![
            i.iter.to_string(),
            i.exchanged_rows.to_string(),
            fnum(i.estimated),
            fnum(i.metered),
            fnum(i.lower_bound),
            fnum(i.residual),
        ]);
    }
    volume.note(format!(
        "Expected shape: rows strictly decreasing (gate) — the hub reaches most of \
         the graph in one hop, so each BFS level set shrinks, and from iteration 1 \
         the estimate is the previous iteration's metered exchange re-priced \
         (estimated[i+1] = metered[i]). Strictly decreasing here: {}.",
        if strictly_decreasing(&bfs) {
            "yes"
        } else {
            "NO"
        }
    ));

    vec![placement, volume]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_iter_scenarios_favor_topology_aware_placement() {
        // Debug-sized versions of both scenarios.
        let tree = skewed_tree();
        let m = measure_pagerank("small skewed", &tree, &GraphSpec::power_law(120, 900, 1.0));
        assert!(m.ratio() > 1.0, "blocked placement must beat hash: {m:?}");
        let tree = builders::caterpillar(4, 2, 1.0);
        let m = measure_pagerank("small grid", &tree, &GraphSpec::grid(10, 12));
        assert!(m.ratio() > 1.0, "grid blocking must beat hash: {m:?}");
    }

    #[test]
    fn small_frontier_bfs_shrinks() {
        let tree = builders::star(4, 1.0);
        let g = GraphSpec::power_law(100, 800, 1.0).generate(3);
        let owners = VertexPartition::Blocked(PlacementStrategy::Uniform).owners(&tree, &g, 3);
        let out = IterativeJob::bfs(
            g.arcs().to_vec(),
            owners,
            0,
            IterativeSpec::frontier(20, 0.0),
        )
        .prepare(&tree)
        .unwrap()
        .run(&tree)
        .unwrap();
        assert!(strictly_decreasing(&out), "{:?}", out.iterations);
    }

    /// The release acceptance gate: topology-aware PageRank ≤ 0.7× the
    /// agnostic metered cost on the skewed fat-tree, and frontier BFS
    /// exchange volume strictly decreasing.
    #[test]
    #[ignore = "full-size scenarios; run in release (CI does)"]
    fn gate_topology_aware_wins_and_frontier_shrinks() {
        let m = skewed_fat_tree();
        assert!(
            m.aware_cost <= 0.7 * m.agnostic_cost,
            "aware {} > 0.7 × agnostic {} (ratio {:.2})",
            m.aware_cost,
            m.agnostic_cost,
            m.ratio()
        );
        let t = torus_grid();
        assert!(t.ratio() > 1.0, "grid blocking must beat hash: {t:?}");
        let bfs = frontier_bfs();
        assert!(
            strictly_decreasing(&bfs),
            "frontier exchange volume must strictly decrease: {:?}",
            bfs.iterations
        );
    }
}
