//! # tamp-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper (see the experiment index in `DESIGN.md`), plus the ablation
//! protocols used to justify individual design choices.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p tamp-bench --bin experiments -- all
//! ```
//!
//! or a single experiment by id (`t1-si`, `t1-cp`, `t1-sort`, `f1`–`f5`,
//! `a1`, `x-mpc`, `x-cross`, `x-agg`, `x-groupby`, `x-general`,
//! `x-runtime`, `x-query`, `x-scale`, `x-batch`, `x-serve`, `x-tenant`,
//! `x-chaos`, `x-uneq-tree`, `x-iter`, `x-lint`, `abl-partition`,
//! `abl-pow2`, `abl-splitters`, `abl-treepack`, `abl-drift`).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ablation;
pub mod baseline;
pub mod extensions;
pub mod serving;
pub mod strategies;
pub mod suite;
pub mod table;
pub mod xbatch;
pub mod xchaos;
pub mod xiter;
pub mod xlint;
pub mod xscale;
pub mod xtenant;

pub use table::Table;
