//! Engine invariants: the meter must charge exactly what moves, values
//! must be conserved, and multicast must never cost more than the
//! equivalent unicasts.

use proptest::prelude::*;
use tamp_simulator::{run_protocol, Placement, Protocol, Rel, Session, SimError, Value};
use tamp_topology::{builders, NodeId, Tree};

/// Send each value in `plan` from its source to its destinations, in one
/// round, as either one multicast or separate unicasts.
struct PlannedSends {
    plan: Vec<(usize, Vec<usize>, Vec<Value>)>,
    multicast: bool,
}

impl Protocol for PlannedSends {
    type Output = ();
    fn name(&self) -> String {
        "planned".into()
    }
    fn run(&self, s: &mut Session<'_>) -> Result<(), SimError> {
        let vc: Vec<NodeId> = s.tree().compute_nodes().to_vec();
        s.round(|r| {
            for (src, dsts, vals) in &self.plan {
                let src = vc[src % vc.len()];
                let dsts: Vec<NodeId> = dsts.iter().map(|&d| vc[d % vc.len()]).collect();
                if self.multicast {
                    r.send(src, &dsts, Rel::R, vals)?;
                } else {
                    for &d in &dsts {
                        r.send(src, &[d], Rel::R, vals)?;
                    }
                }
            }
            Ok(())
        })
    }
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    (2usize..8, 1usize..6, 0u64..1_000)
        .prop_map(|(c, r, seed)| builders::random_tree(c, r, 0.5, 8.0, seed))
}

fn arb_plan() -> impl Strategy<Value = Vec<(usize, Vec<usize>, Vec<Value>)>> {
    proptest::collection::vec(
        (
            0usize..8,
            proptest::collection::vec(0usize..8, 1..4),
            proptest::collection::vec(0u64..1_000, 1..6),
        ),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn multicast_never_beats_unicast_and_delivers_identically(
        tree in arb_tree(),
        plan in arb_plan(),
    ) {
        let placement = Placement::empty(&tree);
        let multi = run_protocol(&tree, &placement, &PlannedSends {
            plan: plan.clone(),
            multicast: true,
        }).unwrap();
        let uni = run_protocol(&tree, &placement, &PlannedSends {
            plan: plan.clone(),
            multicast: false,
        }).unwrap();
        // Same deliveries either way (ordering may differ).
        for v in tree.nodes() {
            let mut a = multi.final_state[v.index()].r.clone();
            let mut b = uni.final_state[v.index()].r.clone();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
        // Multicast can only reduce traffic (path-union dedup).
        prop_assert!(multi.cost.total_tuples() <= uni.cost.total_tuples());
        prop_assert!(multi.cost.tuple_cost() <= uni.cost.tuple_cost() + 1e-9);
    }

    #[test]
    fn every_delivery_is_charged(tree in arb_tree(), plan in arb_plan()) {
        let placement = Placement::empty(&tree);
        let run = run_protocol(&tree, &placement, &PlannedSends {
            plan: plan.clone(),
            multicast: true,
        }).unwrap();
        // Total delivered tuples at distance ≥ 1 can't exceed the tuples
        // metered on the wire (each remote delivery crosses ≥ 1 edge).
        let vc: Vec<NodeId> = tree.compute_nodes().to_vec();
        let mut remote_deliveries = 0u64;
        for (src, dsts, vals) in &plan {
            let src = vc[src % vc.len()];
            let mut seen = std::collections::BTreeSet::new();
            for &d in dsts {
                let d = vc[d % vc.len()];
                if d != src && seen.insert(d) {
                    remote_deliveries += vals.len() as u64;
                }
            }
        }
        prop_assert!(run.cost.total_tuples() >= remote_deliveries / 2,
            "wire {} vs deliveries {}", run.cost.total_tuples(), remote_deliveries);
        // Self-deliveries are free: a plan with only self-sends costs 0.
        let self_only: Vec<_> = plan
            .iter()
            .map(|(s, _, vals)| (*s, vec![*s], vals.clone()))
            .collect();
        let free = run_protocol(&tree, &placement, &PlannedSends {
            plan: self_only,
            multicast: true,
        }).unwrap();
        prop_assert_eq!(free.cost.tuple_cost(), 0.0);
    }

    #[test]
    fn cost_is_sum_of_round_maxima(tree in arb_tree(), plan in arb_plan()) {
        let placement = Placement::empty(&tree);
        let run = run_protocol(&tree, &placement, &PlannedSends {
            plan,
            multicast: true,
        }).unwrap();
        let recomputed: f64 = run.cost.per_round.iter().map(|r| r.tuple_cost).sum();
        prop_assert!((run.cost.tuple_cost() - recomputed).abs() < 1e-9);
        for rc in &run.cost.per_round {
            prop_assert!(rc.tuple_cost >= 0.0);
            prop_assert!(rc.max_tuples <= rc.total_tuples);
        }
    }
}
