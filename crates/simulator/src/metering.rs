//! Shared traffic metering, computed **in aggregate over the tree**.
//!
//! Both execution engines — the centralized [`Session`](crate::Session)
//! and the pooled BSP runtime in `tamp-runtime` — charge communication on
//! the same ledger: per round and per *directed* edge, a value multicast
//! to several destinations traverses each edge of the union of its
//! routing paths exactly once. [`TrafficMeter`] is that accounting,
//! extracted so the two engines cannot drift: identical sends produce
//! bit-identical [`Cost`]s no matter which engine executed them.
//!
//! # Output-sensitive charging
//!
//! The naive implementation walks every send's full `src → dst` path —
//! `O(p² · depth)` stamp work for one repartition round on `p` nodes,
//! plus a memo table of every routed pair. This meter instead exploits
//! the tree structure end to end (cf. `topology::lca`):
//!
//! - a **unicast** `a → b` of `t` tuples is four per-node delta updates:
//!   `+t` on the up-accumulator at `a` and the down-accumulator at `b`,
//!   `−t` on both at `lca(a, b)`. A post-order up-sweep at round commit
//!   turns subtree sums into per-edge charges, splitting the child→parent
//!   (up) direction from parent→child (down). O(1) per send, O(n) per
//!   round.
//! - a **multicast** `src → dsts` charges each directed edge of the
//!   Steiner union of its paths once. The union is decomposed through
//!   the Euler-order **virtual tree** of the terminals: sort the distinct
//!   terminals by `tin`, add `+t` at every terminal, `−t` at every
//!   consecutive-pair LCA, and `−t` at `src` (whose upward leg is
//!   charged as up-edges `src → lca(terminals)` instead). O(k log k) for
//!   `k` destinations, independent of path lengths.
//!
//! The same commit sweep serves both, so one round of any mix of sends
//! costs O(n + sends) instead of O(sends · depth). The pre-aggregation
//! per-path walk survives only as the hidden [`oracle`] reference
//! implementation (used by a proptest asserting bit-identical ledgers
//! on random trees and send batches, and as the `x-scale` bench
//! baseline).

use tamp_topology::{LcaIndex, NodeId, Tree};

use crate::cost::{Cost, Ledger};

const NONE: u32 = u32::MAX;

/// Node count at which [`TrafficMeter::commit_round`] switches from the
/// sequential post-order fold to the chunked parallel sweep. Below this,
/// thread spawn overhead dwarfs the O(n) sweep itself.
const PARALLEL_SWEEP_THRESHOLD: usize = 4096;

/// Union-of-paths, per-directed-edge traffic metering over a sequence of
/// rounds, charged in aggregate (see the module docs).
///
/// Usage per round: any number of [`TrafficMeter::charge_unicast`] /
/// [`TrafficMeter::charge_multicast`] / [`TrafficMeter::charge_via`]
/// calls, then one [`TrafficMeter::commit_round`].
/// [`TrafficMeter::finish`] folds the ledger into a [`Cost`].
#[derive(Clone, Debug)]
pub struct TrafficMeter {
    ledger: Ledger,
    lca: LcaIndex,
    /// Nodes in DFS preorder of the rooting at node 0 (parents first).
    order: Vec<u32>,
    /// Preorder position of each node (inverse of `order`).
    pos: Vec<u32>,
    /// Subtree size of each node under the root-0 rooting; together with
    /// `pos`, `subtree(v)` is the contiguous preorder range
    /// `[pos[v], pos[v] + size[v])` — the key to the parallel sweep.
    size: Vec<u32>,
    /// Deeper endpoint of each undirected edge (the child side).
    edge_child: Vec<u32>,
    /// Per-node delta accumulator for child→parent (up) charges. The
    /// `−t` entries make intermediate values wrap below zero; u64
    /// wrapping arithmetic is exact because every subtree sum is a
    /// mathematically nonnegative total that fits in u64.
    up: Vec<u64>,
    /// Per-node delta accumulator for parent→child (down) charges.
    down: Vec<u64>,
    /// Distinct terminals of the multicast being charged, then sorted by
    /// Euler `tin` (reused scratch).
    terminals: Vec<NodeId>,
    /// Terminal-dedup stamps: `seen[v] == seen_ctr` marks `v` as already
    /// collected for the current multicast.
    seen: Vec<u32>,
    seen_ctr: u32,
    /// `true` once any charge landed in the round in progress.
    dirty: bool,
}

impl TrafficMeter {
    /// A meter over `tree`'s directed edges with an empty ledger.
    pub fn new(tree: &Tree) -> Self {
        let n = tree.num_nodes();
        let lca = LcaIndex::new(tree);
        let order: Vec<u32> = tree.dfs_order().iter().map(|v| v.0).collect();
        let mut pos = vec![0u32; n];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i as u32;
        }
        let mut size = vec![1u32; n];
        for &x in order.iter().rev() {
            if let Some(p) = lca.parent(NodeId(x)) {
                size[p.index()] += size[x as usize];
            }
        }
        let edge_child = tree.edges().map(|e| tree.deeper_endpoint(e).0).collect();
        TrafficMeter {
            ledger: Ledger::new(tree),
            lca,
            order,
            pos,
            size,
            edge_child,
            up: vec![0; n],
            down: vec![0; n],
            terminals: Vec::new(),
            seen: vec![0; n],
            seen_ctr: 0,
            dirty: false,
        }
    }

    /// Number of directed edges being metered.
    pub fn num_dir_edges(&self) -> usize {
        self.ledger.num_dir_edges()
    }

    /// Number of committed rounds.
    pub fn rounds_committed(&self) -> usize {
        self.ledger.num_rounds()
    }

    /// Charge `amount` tuples on every directed edge of the unique path
    /// `a → b`. O(1).
    pub fn charge_unicast(&mut self, a: NodeId, b: NodeId, amount: u64) {
        if a == b || amount == 0 {
            return;
        }
        self.dirty = true;
        let l = self.lca.lca(a, b);
        self.bump_up(a, amount);
        self.dip_up(l, amount);
        self.bump_down(b, amount);
        self.dip_down(l, amount);
    }

    /// Charge one multicast: `amount` tuples from `src` to every node of
    /// `dsts`, each directed edge of the union of the paths charged once
    /// (duplicate destinations collapse). O(k log k) in the number of
    /// destinations.
    pub fn charge_multicast(&mut self, src: NodeId, dsts: &[NodeId], amount: u64) {
        if amount == 0 {
            return;
        }
        // Distinct terminals: {src} ∪ dsts, deduplicated by stamp.
        self.seen_ctr = self.seen_ctr.wrapping_add(1);
        if self.seen_ctr == 0 {
            self.seen.fill(0);
            self.seen_ctr = 1;
        }
        let mut terminals = std::mem::take(&mut self.terminals);
        terminals.clear();
        self.seen[src.index()] = self.seen_ctr;
        terminals.push(src);
        for &d in dsts {
            let s = &mut self.seen[d.index()];
            if *s != self.seen_ctr {
                *s = self.seen_ctr;
                terminals.push(d);
            }
        }
        if terminals.len() < 2 {
            self.terminals = terminals;
            return; // every destination is the source: nothing travels
        }
        self.dirty = true;
        terminals.sort_unstable_by_key(|&v| self.lca.tin(v));

        // The union's upward leg is exactly `src → L` where `L` is the
        // LCA of all terminals (the first/last in tin order).
        let l = self.lca.lca(terminals[0], terminals[terminals.len() - 1]);
        self.bump_up(src, amount);
        self.dip_up(l, amount);

        // Every other union edge points away from the root-0 rooting's
        // parent side, i.e. is a down-edge of its child node `x`, and is
        // in the union iff some terminal lies in `subtree(x)` (and `x`
        // is below `L`, and `src` is not in `subtree(x)`). The virtual
        // tree decomposition charges that indicator additively: `+t` per
        // terminal, `−t` per consecutive-pair LCA — terminals inside any
        // subtree are a contiguous tin run, so each union edge nets
        // exactly `+t` — and `−t` at `src` cancels the upward leg (and,
        // combined with the pair terms, everything above `L`).
        for i in 0..terminals.len() {
            self.bump_down(terminals[i], amount);
            if i + 1 < terminals.len() {
                let pl = self.lca.lca(terminals[i], terminals[i + 1]);
                self.dip_down(pl, amount);
            }
        }
        self.dip_down(src, amount);
        self.terminals = terminals;
    }

    /// Charge a relayed multicast: `amount` tuples travel `src → relay`,
    /// then fan out `relay → dsts` as one multicast. Both legs are
    /// charged in full (the data physically traverses the relay, so the
    /// legs do not union with each other).
    pub fn charge_via(&mut self, src: NodeId, relay: NodeId, dsts: &[NodeId], amount: u64) {
        self.charge_unicast(src, relay, amount);
        self.charge_multicast(relay, dsts, amount);
    }

    #[inline]
    fn bump_up(&mut self, v: NodeId, amount: u64) {
        let x = &mut self.up[v.index()];
        *x = x.wrapping_add(amount);
    }

    #[inline]
    fn dip_up(&mut self, v: NodeId, amount: u64) {
        let x = &mut self.up[v.index()];
        *x = x.wrapping_sub(amount);
    }

    #[inline]
    fn bump_down(&mut self, v: NodeId, amount: u64) {
        let x = &mut self.down[v.index()];
        *x = x.wrapping_add(amount);
    }

    #[inline]
    fn dip_down(&mut self, v: NodeId, amount: u64) {
        let x = &mut self.down[v.index()];
        *x = x.wrapping_sub(amount);
    }

    /// Commit the accumulated charges as one finished round: the
    /// per-node deltas become per-edge subtree sums, emitted sparsely in
    /// edge-id order. O(n + touched) work; above
    /// `PARALLEL_SWEEP_THRESHOLD` (4096) nodes the sweep runs chunked across
    /// threads with a deterministic reduction order, so both paths emit
    /// the identical pair sequence.
    pub fn commit_round(&mut self) {
        if !self.dirty {
            self.ledger.push_round(Vec::new());
            return;
        }
        let pairs = if self.order.len() >= PARALLEL_SWEEP_THRESHOLD {
            self.sweep_parallel()
        } else {
            self.sweep_sequential()
        };
        self.up.fill(0);
        self.down.fill(0);
        self.dirty = false;
        self.ledger.push_round(pairs);
    }

    /// Emit the two directed charges of undirected edge `e` (child side
    /// `child`, subtree sums `su` up / `sd` down), ascending by dir-edge
    /// id — shared by both sweep paths so their output is bit-identical.
    #[inline]
    fn push_edge_pairs(&self, e: usize, child: u32, su: u64, sd: u64, out: &mut Vec<(u32, u64)>) {
        if su == 0 && sd == 0 {
            return;
        }
        debug_assert!(su <= u64::MAX / 2 && sd <= u64::MAX / 2, "negative charge");
        let up_dir = self.lca.up_edge(NodeId(child)).map_or(NONE, |d| d.0);
        let d0 = (e as u32) << 1;
        let (first, second) = if up_dir == d0 { (su, sd) } else { (sd, su) };
        if first > 0 {
            out.push((d0, first));
        }
        if second > 0 {
            out.push((d0 | 1, second));
        }
    }

    /// The sequential post-order fold: children precede parents in
    /// reverse DFS order, so folding each node into its parent leaves
    /// every node holding its subtree sum.
    fn sweep_sequential(&mut self) -> Vec<(u32, u64)> {
        for &x in self.order.iter().rev() {
            if let Some(p) = self.lca.parent(NodeId(x)) {
                let (xi, pi) = (x as usize, p.index());
                self.up[pi] = self.up[pi].wrapping_add(self.up[xi]);
                self.down[pi] = self.down[pi].wrapping_add(self.down[xi]);
            }
        }
        debug_assert_eq!(self.up[self.order[0] as usize], 0, "up deltas must cancel");
        debug_assert_eq!(
            self.down[self.order[0] as usize], 0,
            "down deltas must cancel"
        );
        let mut pairs: Vec<(u32, u64)> = Vec::new();
        for (e, &child) in self.edge_child.iter().enumerate() {
            let x = child as usize;
            self.push_edge_pairs(e, child, self.up[x], self.down[x], &mut pairs);
        }
        pairs
    }

    /// The parallel sweep: a subtree is a contiguous preorder range, so
    /// `subtree_sum(v) = P[pos[v] + size[v]] − P[pos[v]]` over the
    /// wrapping prefix sums `P` of the preorder-permuted deltas — no
    /// serial parent chain at all. The permutation gather and the
    /// per-edge emission are chunked over `std::thread::scope`; chunks
    /// are contiguous index ranges concatenated in order, so the emitted
    /// pair sequence is deterministic and identical to the fold's.
    fn sweep_parallel(&self) -> Vec<(u32, u64)> {
        let n = self.order.len();
        let threads = std::thread::available_parallelism()
            .map_or(1, usize::from)
            .clamp(1, 8);
        let chunk = n.div_ceil(threads);
        let mut pu = vec![0u64; n + 1];
        let mut pd = vec![0u64; n + 1];
        std::thread::scope(|s| {
            let order = &self.order;
            let (up, down) = (&self.up, &self.down);
            let mut rest_u = &mut pu[1..];
            let mut rest_d = &mut pd[1..];
            let mut start = 0usize;
            while !rest_u.is_empty() {
                let take = chunk.min(rest_u.len());
                let (cu, ru) = rest_u.split_at_mut(take);
                let (cd, rd) = rest_d.split_at_mut(take);
                (rest_u, rest_d) = (ru, rd);
                s.spawn(move || {
                    for (k, (u, d)) in cu.iter_mut().zip(cd.iter_mut()).enumerate() {
                        let v = order[start + k] as usize;
                        *u = up[v];
                        *d = down[v];
                    }
                });
                start += take;
            }
        });
        // Wrapping prefix sums: one cheap serial pass (the fold's serial
        // part was O(depth)-dependent; this is a flat scan).
        for i in 0..n {
            pu[i + 1] = pu[i + 1].wrapping_add(pu[i]);
            pd[i + 1] = pd[i + 1].wrapping_add(pd[i]);
        }
        debug_assert_eq!(pu[n], 0, "up deltas must cancel");
        debug_assert_eq!(pd[n], 0, "down deltas must cancel");
        // Per-edge emission, chunked in edge-id order.
        let e_chunk = self.edge_child.len().div_ceil(threads).max(1);
        let mut chunks: Vec<Vec<(u32, u64)>> = Vec::new();
        std::thread::scope(|s| {
            let (pu, pd) = (&pu, &pd);
            let handles: Vec<_> = self
                .edge_child
                .chunks(e_chunk)
                .enumerate()
                .map(|(ci, children)| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for (k, &child) in children.iter().enumerate() {
                            let p = self.pos[child as usize] as usize;
                            let sz = self.size[child as usize] as usize;
                            let su = pu[p + sz].wrapping_sub(pu[p]);
                            let sd = pd[p + sz].wrapping_sub(pd[p]);
                            self.push_edge_pairs(ci * e_chunk + k, child, su, sd, &mut out);
                        }
                        out
                    })
                })
                .collect();
            chunks = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        let mut pairs = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            pairs.extend(c);
        }
        pairs
    }

    /// Discard the accumulated charges of the round in progress — for
    /// callers abandoning a failed round so its partial sends don't leak
    /// into the next committed round.
    pub fn abort_round(&mut self) {
        self.up.fill(0);
        self.down.fill(0);
        self.dirty = false;
    }

    /// Fold the committed rounds into a [`Cost`]. Uncommitted charges of a
    /// round in progress are dropped.
    pub fn finish(self) -> Cost {
        self.ledger.finish()
    }
}

/// The pre-aggregation reference implementation: walk every path, stamp
/// every edge. This is the oracle the aggregate meter is proptested
/// against and the baseline the `x-scale` bench measures — it exists
/// for exactly those consumers, hence the `doc(hidden)`. Not a
/// supported metering API.
#[doc(hidden)]
pub mod oracle {
    use std::collections::HashMap;

    use tamp_topology::DirEdgeId;

    use super::*;

    /// A faithful reconstruction of the seed metering: a memoized
    /// `HashMap<(src, dst), Box<[DirEdgeId]>>` path table (`PathCache`),
    /// a dense per-round charge vector, and a stamp array deduplicating
    /// edges within one union (multicast) scope.
    pub struct NaivePathMeter {
        bandwidth: Vec<f64>,
        paths: HashMap<(u32, u32), Box<[DirEdgeId]>>,
        current: Vec<u64>,
        stamp: Vec<u32>,
        stamp_ctr: u32,
        rounds: Vec<Vec<u64>>,
    }

    impl NaivePathMeter {
        /// A naive meter over `tree`'s directed edges.
        pub fn new(tree: &Tree) -> Self {
            let bandwidth: Vec<f64> = tree.dir_edges().map(|d| tree.bandwidth(d).get()).collect();
            let n = bandwidth.len();
            NaivePathMeter {
                bandwidth,
                paths: HashMap::new(),
                current: vec![0; n],
                stamp: vec![0; n],
                stamp_ctr: 0,
                rounds: Vec::new(),
            }
        }

        fn begin_union(&mut self) {
            self.stamp_ctr = self.stamp_ctr.wrapping_add(1);
            if self.stamp_ctr == 0 {
                self.stamp.fill(0);
                self.stamp_ctr = 1;
            }
        }

        fn charge_path(&mut self, tree: &Tree, a: NodeId, b: NodeId, amount: u64) {
            if a == b || amount == 0 {
                return;
            }
            let path = self
                .paths
                .entry((a.0, b.0))
                .or_insert_with(|| tree.path(a, b).into_boxed_slice());
            for &d in path.iter() {
                let i = d.index();
                if self.stamp[i] != self.stamp_ctr {
                    self.stamp[i] = self.stamp_ctr;
                    self.current[i] += amount;
                }
            }
        }

        /// Charge one unicast (its own union scope).
        pub fn charge_unicast(&mut self, tree: &Tree, a: NodeId, b: NodeId, amount: u64) {
            self.begin_union();
            self.charge_path(tree, a, b, amount);
        }

        /// Charge one multicast: union of the `src → dst` paths.
        pub fn charge_multicast(&mut self, tree: &Tree, src: NodeId, dsts: &[NodeId], amount: u64) {
            self.begin_union();
            for &dst in dsts {
                self.charge_path(tree, src, dst, amount);
            }
        }

        /// Charge a relayed multicast: both legs in full, each its own
        /// union scope.
        pub fn charge_via(
            &mut self,
            tree: &Tree,
            src: NodeId,
            relay: NodeId,
            dsts: &[NodeId],
            amount: u64,
        ) {
            self.charge_unicast(tree, src, relay, amount);
            self.charge_multicast(tree, relay, dsts, amount);
        }

        /// Commit the round in progress.
        pub fn commit_round(&mut self) {
            let n = self.current.len();
            let charges = std::mem::replace(&mut self.current, vec![0; n]);
            self.rounds.push(charges);
        }

        /// The seed's dense `Ledger::finish`, verbatim.
        pub fn finish(self) -> Cost {
            use crate::cost::RoundCost;
            let mut per_round = Vec::with_capacity(self.rounds.len());
            let mut edge_totals = vec![0u64; self.bandwidth.len()];
            for traffic in &self.rounds {
                let mut round = RoundCost {
                    tuple_cost: 0.0,
                    bottleneck: None,
                    max_tuples: 0,
                    total_tuples: 0,
                };
                for (d, &tuples) in traffic.iter().enumerate() {
                    edge_totals[d] += tuples;
                    round.total_tuples += tuples;
                    round.max_tuples = round.max_tuples.max(tuples);
                    let w = self.bandwidth[d];
                    let c = if w.is_infinite() {
                        0.0
                    } else {
                        tuples as f64 / w
                    };
                    if c > round.tuple_cost {
                        round.tuple_cost = c;
                        round.bottleneck = Some(DirEdgeId(d as u32));
                    }
                }
                per_round.push(round);
            }
            Cost {
                per_round,
                edge_totals,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tamp_topology::builders;

    #[test]
    fn multicast_unions_paths() {
        // Star with 4 leaves: a broadcast from leaf 0 charges the uplink
        // once and each downlink once.
        let t = builders::star(4, 1.0);
        let mut m = TrafficMeter::new(&t);
        let vc = t.compute_nodes().to_vec();
        m.charge_multicast(vc[0], &vc, 10);
        m.commit_round();
        let cost = m.finish();
        assert_eq!(cost.total_tuples(), 40);
        assert_eq!(cost.tuple_cost(), 10.0);
    }

    #[test]
    fn union_scopes_are_independent() {
        let t = builders::star(2, 1.0);
        let mut m = TrafficMeter::new(&t);
        let vc = t.compute_nodes().to_vec();
        // Two separate unicasts of the same path charge it twice…
        m.charge_multicast(vc[0], &[vc[1]], 3);
        m.charge_multicast(vc[0], &[vc[1]], 3);
        m.commit_round();
        // …while one multicast with a duplicated destination charges once.
        m.charge_multicast(vc[0], &[vc[1], vc[1]], 3);
        m.commit_round();
        let cost = m.finish();
        assert_eq!(cost.per_round[0].total_tuples, 12);
        assert_eq!(cost.per_round[1].total_tuples, 6);
    }

    #[test]
    fn rounds_are_separated() {
        let t = builders::star(2, 2.0);
        let mut m = TrafficMeter::new(&t);
        let vc = t.compute_nodes().to_vec();
        m.charge_multicast(vc[0], &[vc[1]], 4);
        m.commit_round();
        m.charge_multicast(vc[1], &[vc[0]], 2);
        m.commit_round();
        assert_eq!(m.rounds_committed(), 2);
        let cost = m.finish();
        assert_eq!(cost.per_round.len(), 2);
        assert_eq!(cost.per_round[0].tuple_cost, 2.0);
        assert_eq!(cost.per_round[1].tuple_cost, 1.0);
    }

    #[test]
    fn self_and_empty_sends_are_free() {
        let t = builders::star(3, 1.0);
        let mut m = TrafficMeter::new(&t);
        let vc = t.compute_nodes().to_vec();
        m.charge_unicast(vc[0], vc[0], 9);
        m.charge_multicast(vc[1], &[vc[1], vc[1]], 9);
        m.charge_multicast(vc[2], &[], 9);
        m.charge_unicast(vc[0], vc[1], 0);
        m.commit_round();
        let cost = m.finish();
        assert_eq!(cost.total_tuples(), 0);
        assert_eq!(cost.per_round[0].bottleneck, None);
    }

    #[test]
    fn abort_discards_partial_charges() {
        let t = builders::star(2, 1.0);
        let mut m = TrafficMeter::new(&t);
        let vc = t.compute_nodes().to_vec();
        m.charge_unicast(vc[0], vc[1], 7);
        m.abort_round();
        m.charge_unicast(vc[0], vc[1], 1);
        m.commit_round();
        let cost = m.finish();
        assert_eq!(cost.total_tuples(), 2); // 1 tuple × 2 hops
    }

    /// Above [`PARALLEL_SWEEP_THRESHOLD`] nodes `commit_round` takes the
    /// chunked prefix-sum sweep; it must emit the *identical* pair
    /// sequence as the sequential fold, not merely the same totals.
    #[test]
    fn parallel_sweep_matches_sequential_fold() {
        let tree = builders::random_tree(3000, 2500, 0.5, 16.0, 42);
        assert!(tree.nodes().count() >= PARALLEL_SWEEP_THRESHOLD);
        let mut m = TrafficMeter::new(&tree);
        let all: Vec<NodeId> = tree.nodes().collect();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let src = all[rng.random_range(0..all.len())];
            let mut dsts = Vec::new();
            for _ in 0..rng.random_range(1..4usize) {
                dsts.push(all[rng.random_range(0..all.len())]);
            }
            m.charge_multicast(src, &dsts, rng.random_range(0..50u64));
        }
        // Parallel reads the raw deltas (`&self`); sequential folds them
        // in place, so it must run second.
        let par = m.sweep_parallel();
        let seq = m.sweep_sequential();
        assert_eq!(par, seq);
        assert!(!par.is_empty());
    }

    /// Drive identical random batches — unicasts, multicasts with
    /// duplicated destinations, `send_via` relay legs (router relays
    /// included) — through the aggregate meter and the per-path oracle
    /// and require bit-identical ledgers.
    fn parity_case(seed: u64) -> (Cost, Cost) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_compute = rng.random_range(1..9usize);
        let n_routers = rng.random_range(1..8usize);
        let tree = builders::random_tree(n_compute, n_routers, 0.5, 16.0, seed ^ 0xA5);
        let all: Vec<NodeId> = tree.nodes().collect();
        let mut agg = TrafficMeter::new(&tree);
        let mut naive = oracle::NaivePathMeter::new(&tree);
        let rounds = rng.random_range(1..4usize);
        for _ in 0..rounds {
            let sends = rng.random_range(0..16usize);
            for _ in 0..sends {
                let amount = rng.random_range(0..20u64);
                let pick = |rng: &mut StdRng| all[rng.random_range(0..all.len())];
                let mut dsts = Vec::new();
                for _ in 0..rng.random_range(0..6usize) {
                    dsts.push(pick(&mut rng)); // duplicates welcome
                }
                match rng.random_range(0..3u32) {
                    0 => {
                        let (a, b) = (pick(&mut rng), pick(&mut rng));
                        agg.charge_unicast(a, b, amount);
                        naive.charge_unicast(&tree, a, b, amount);
                    }
                    1 => {
                        let src = pick(&mut rng);
                        agg.charge_multicast(src, &dsts, amount);
                        naive.charge_multicast(&tree, src, &dsts, amount);
                    }
                    _ => {
                        let (src, relay) = (pick(&mut rng), pick(&mut rng));
                        agg.charge_via(src, relay, &dsts, amount);
                        naive.charge_via(&tree, src, relay, &dsts, amount);
                    }
                }
            }
            agg.commit_round();
            naive.commit_round();
        }
        (agg.finish(), naive.finish())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn aggregate_charging_matches_per_path_oracle(seed in 0u64..1_000_000) {
            let (agg, naive) = parity_case(seed);
            prop_assert_eq!(&agg.edge_totals, &naive.edge_totals);
            prop_assert_eq!(&agg.per_round, &naive.per_round);
        }
    }
}
