//! Shared traffic metering.
//!
//! Both execution engines — the centralized [`Session`](crate::Session)
//! and the pooled BSP runtime in `tamp-runtime` — charge communication on
//! the same ledger: per round and per *directed* edge, a value multicast
//! to several destinations traverses each edge of the union of its
//! routing paths exactly once. [`TrafficMeter`] is that accounting,
//! extracted so the two engines cannot drift: identical sends produce
//! bit-identical [`Cost`]s no matter which engine executed them.

use tamp_topology::{NodeId, PathCache, Tree};

use crate::cost::{Cost, Ledger};

/// Union-of-paths, per-directed-edge traffic metering over a sequence of
/// rounds.
///
/// Usage per round: any number of [`TrafficMeter::charge_multicast`] /
/// [`TrafficMeter::begin_union`] + [`TrafficMeter::charge_path`] calls,
/// then one [`TrafficMeter::commit_round`]. [`TrafficMeter::finish`]
/// folds the ledger into a [`Cost`].
#[derive(Clone, Debug)]
pub struct TrafficMeter {
    ledger: Ledger,
    paths: PathCache,
    /// Charges of the round currently being accumulated.
    current: Vec<u64>,
    /// Steiner-union deduplication scratch: `stamp[d] == stamp_ctr` marks
    /// directed edge `d` as already charged in the current union scope.
    stamp: Vec<u32>,
    stamp_ctr: u32,
}

impl TrafficMeter {
    /// A meter over `tree`'s directed edges with an empty ledger.
    pub fn new(tree: &Tree) -> Self {
        let ledger = Ledger::new(tree);
        let n = ledger.num_dir_edges();
        TrafficMeter {
            ledger,
            paths: PathCache::new(),
            current: vec![0; n],
            stamp: vec![0; n],
            stamp_ctr: 0,
        }
    }

    /// Number of directed edges being metered.
    pub fn num_dir_edges(&self) -> usize {
        self.stamp.len()
    }

    /// Number of committed rounds.
    pub fn rounds_committed(&self) -> usize {
        self.ledger.num_rounds()
    }

    /// Open a new union scope: subsequent [`TrafficMeter::charge_path`]
    /// calls charge each directed edge at most once until the next
    /// `begin_union`.
    pub fn begin_union(&mut self) {
        self.stamp_ctr = self.stamp_ctr.wrapping_add(1);
        if self.stamp_ctr == 0 {
            self.stamp.fill(0);
            self.stamp_ctr = 1;
        }
    }

    /// Charge `amount` tuples on every directed edge of the `a → b` path
    /// not yet charged in the current union scope.
    pub fn charge_path(&mut self, tree: &Tree, a: NodeId, b: NodeId, amount: u64) {
        if a == b {
            return;
        }
        for &d in self.paths.path(tree, a, b) {
            let i = d.index();
            if self.stamp[i] != self.stamp_ctr {
                self.stamp[i] = self.stamp_ctr;
                self.current[i] += amount;
            }
        }
    }

    /// Charge one multicast: `amount` tuples from `src` to every node of
    /// `dsts`, each directed edge of the union of the paths charged once.
    pub fn charge_multicast(&mut self, tree: &Tree, src: NodeId, dsts: &[NodeId], amount: u64) {
        self.begin_union();
        for &dst in dsts {
            self.charge_path(tree, src, dst, amount);
        }
    }

    /// Commit the accumulated charges as one finished round.
    pub fn commit_round(&mut self) {
        let n = self.current.len();
        let charges = std::mem::replace(&mut self.current, vec![0; n]);
        self.ledger.push_round(charges);
    }

    /// Discard the accumulated charges of the round in progress — for
    /// callers abandoning a failed round so its partial sends don't leak
    /// into the next committed round.
    pub fn abort_round(&mut self) {
        self.current.fill(0);
    }

    /// Fold the committed rounds into a [`Cost`]. Uncommitted charges of a
    /// round in progress are dropped.
    pub fn finish(self) -> Cost {
        self.ledger.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_topology::builders;

    #[test]
    fn multicast_unions_paths() {
        // Star with 4 leaves: a broadcast from leaf 0 charges the uplink
        // once and each downlink once.
        let t = builders::star(4, 1.0);
        let mut m = TrafficMeter::new(&t);
        let vc = t.compute_nodes().to_vec();
        m.charge_multicast(&t, vc[0], &vc, 10);
        m.commit_round();
        let cost = m.finish();
        assert_eq!(cost.total_tuples(), 40);
        assert_eq!(cost.tuple_cost(), 10.0);
    }

    #[test]
    fn union_scopes_are_independent() {
        let t = builders::star(2, 1.0);
        let mut m = TrafficMeter::new(&t);
        let vc = t.compute_nodes().to_vec();
        // Two separate unicasts of the same path charge it twice…
        m.charge_multicast(&t, vc[0], &[vc[1]], 3);
        m.charge_multicast(&t, vc[0], &[vc[1]], 3);
        m.commit_round();
        // …while one multicast with a duplicated destination charges once.
        m.charge_multicast(&t, vc[0], &[vc[1], vc[1]], 3);
        m.commit_round();
        let cost = m.finish();
        assert_eq!(cost.per_round[0].total_tuples, 12);
        assert_eq!(cost.per_round[1].total_tuples, 6);
    }

    #[test]
    fn rounds_are_separated() {
        let t = builders::star(2, 2.0);
        let mut m = TrafficMeter::new(&t);
        let vc = t.compute_nodes().to_vec();
        m.charge_multicast(&t, vc[0], &[vc[1]], 4);
        m.commit_round();
        m.charge_multicast(&t, vc[1], &[vc[0]], 2);
        m.commit_round();
        assert_eq!(m.rounds_committed(), 2);
        let cost = m.finish();
        assert_eq!(cost.per_round.len(), 2);
        assert_eq!(cost.per_round[0].tuple_cost, 2.0);
        assert_eq!(cost.per_round[1].tuple_cost, 1.0);
    }
}
