//! Shared traffic metering, computed **in aggregate over the tree**.
//!
//! Both execution engines — the centralized [`Session`](crate::Session)
//! and the pooled BSP runtime in `tamp-runtime` — charge communication on
//! the same ledger: per round and per *directed* edge, a value multicast
//! to several destinations traverses each edge of the union of its
//! routing paths exactly once. [`TrafficMeter`] is that accounting,
//! extracted so the two engines cannot drift: identical sends produce
//! bit-identical [`Cost`]s no matter which engine executed them.
//!
//! # Output-sensitive charging
//!
//! The naive implementation walks every send's full `src → dst` path —
//! `O(p² · depth)` stamp work for one repartition round on `p` nodes,
//! plus a memo table of every routed pair. This meter instead exploits
//! the tree structure end to end (cf. `topology::lca`):
//!
//! - a **unicast** `a → b` of `t` tuples is four per-node delta updates:
//!   `+t` on the up-accumulator at `a` and the down-accumulator at `b`,
//!   `−t` on both at `lca(a, b)`. A post-order up-sweep at round commit
//!   turns subtree sums into per-edge charges, splitting the child→parent
//!   (up) direction from parent→child (down). O(1) per send, O(n) per
//!   round.
//! - a **multicast** `src → dsts` charges each directed edge of the
//!   Steiner union of its paths once. The union is decomposed through
//!   the Euler-order **virtual tree** of the terminals: sort the distinct
//!   terminals by `tin`, add `+t` at every terminal, `−t` at every
//!   consecutive-pair LCA, and `−t` at `src` (whose upward leg is
//!   charged as up-edges `src → lca(terminals)` instead). O(k log k) for
//!   `k` destinations, independent of path lengths.
//!
//! The same commit sweep serves both, so one round of any mix of sends
//! costs O(n + sends) instead of O(sends · depth). The pre-aggregation
//! per-path walk survives only as the hidden [`oracle`] reference
//! implementation (used by a proptest asserting bit-identical ledgers
//! on random trees and send batches, and as the `x-scale` bench
//! baseline).

use tamp_topology::{LcaIndex, NodeId, Tree};

use crate::cost::{Cost, Ledger};

const NONE: u32 = u32::MAX;

/// Union-of-paths, per-directed-edge traffic metering over a sequence of
/// rounds, charged in aggregate (see the module docs).
///
/// Usage per round: any number of [`TrafficMeter::charge_unicast`] /
/// [`TrafficMeter::charge_multicast`] / [`TrafficMeter::charge_via`]
/// calls, then one [`TrafficMeter::commit_round`].
/// [`TrafficMeter::finish`] folds the ledger into a [`Cost`].
#[derive(Clone, Debug)]
pub struct TrafficMeter {
    ledger: Ledger,
    lca: LcaIndex,
    /// Nodes in DFS preorder of the rooting at node 0 (parents first).
    order: Vec<u32>,
    /// Deeper endpoint of each undirected edge (the child side).
    edge_child: Vec<u32>,
    /// Per-node delta accumulator for child→parent (up) charges. The
    /// `−t` entries make intermediate values wrap below zero; u64
    /// wrapping arithmetic is exact because every subtree sum is a
    /// mathematically nonnegative total that fits in u64.
    up: Vec<u64>,
    /// Per-node delta accumulator for parent→child (down) charges.
    down: Vec<u64>,
    /// Distinct terminals of the multicast being charged, then sorted by
    /// Euler `tin` (reused scratch).
    terminals: Vec<NodeId>,
    /// Terminal-dedup stamps: `seen[v] == seen_ctr` marks `v` as already
    /// collected for the current multicast.
    seen: Vec<u32>,
    seen_ctr: u32,
    /// `true` once any charge landed in the round in progress.
    dirty: bool,
}

impl TrafficMeter {
    /// A meter over `tree`'s directed edges with an empty ledger.
    pub fn new(tree: &Tree) -> Self {
        let n = tree.num_nodes();
        let lca = LcaIndex::new(tree);
        let order: Vec<u32> = tree.dfs_order().iter().map(|v| v.0).collect();
        let edge_child = tree.edges().map(|e| tree.deeper_endpoint(e).0).collect();
        TrafficMeter {
            ledger: Ledger::new(tree),
            lca,
            order,
            edge_child,
            up: vec![0; n],
            down: vec![0; n],
            terminals: Vec::new(),
            seen: vec![0; n],
            seen_ctr: 0,
            dirty: false,
        }
    }

    /// Number of directed edges being metered.
    pub fn num_dir_edges(&self) -> usize {
        self.ledger.num_dir_edges()
    }

    /// Number of committed rounds.
    pub fn rounds_committed(&self) -> usize {
        self.ledger.num_rounds()
    }

    /// Charge `amount` tuples on every directed edge of the unique path
    /// `a → b`. O(1).
    pub fn charge_unicast(&mut self, a: NodeId, b: NodeId, amount: u64) {
        if a == b || amount == 0 {
            return;
        }
        self.dirty = true;
        let l = self.lca.lca(a, b);
        self.bump_up(a, amount);
        self.dip_up(l, amount);
        self.bump_down(b, amount);
        self.dip_down(l, amount);
    }

    /// Charge one multicast: `amount` tuples from `src` to every node of
    /// `dsts`, each directed edge of the union of the paths charged once
    /// (duplicate destinations collapse). O(k log k) in the number of
    /// destinations.
    pub fn charge_multicast(&mut self, src: NodeId, dsts: &[NodeId], amount: u64) {
        if amount == 0 {
            return;
        }
        // Distinct terminals: {src} ∪ dsts, deduplicated by stamp.
        self.seen_ctr = self.seen_ctr.wrapping_add(1);
        if self.seen_ctr == 0 {
            self.seen.fill(0);
            self.seen_ctr = 1;
        }
        let mut terminals = std::mem::take(&mut self.terminals);
        terminals.clear();
        self.seen[src.index()] = self.seen_ctr;
        terminals.push(src);
        for &d in dsts {
            let s = &mut self.seen[d.index()];
            if *s != self.seen_ctr {
                *s = self.seen_ctr;
                terminals.push(d);
            }
        }
        if terminals.len() < 2 {
            self.terminals = terminals;
            return; // every destination is the source: nothing travels
        }
        self.dirty = true;
        terminals.sort_unstable_by_key(|&v| self.lca.tin(v));

        // The union's upward leg is exactly `src → L` where `L` is the
        // LCA of all terminals (the first/last in tin order).
        let l = self.lca.lca(terminals[0], terminals[terminals.len() - 1]);
        self.bump_up(src, amount);
        self.dip_up(l, amount);

        // Every other union edge points away from the root-0 rooting's
        // parent side, i.e. is a down-edge of its child node `x`, and is
        // in the union iff some terminal lies in `subtree(x)` (and `x`
        // is below `L`, and `src` is not in `subtree(x)`). The virtual
        // tree decomposition charges that indicator additively: `+t` per
        // terminal, `−t` per consecutive-pair LCA — terminals inside any
        // subtree are a contiguous tin run, so each union edge nets
        // exactly `+t` — and `−t` at `src` cancels the upward leg (and,
        // combined with the pair terms, everything above `L`).
        for i in 0..terminals.len() {
            self.bump_down(terminals[i], amount);
            if i + 1 < terminals.len() {
                let pl = self.lca.lca(terminals[i], terminals[i + 1]);
                self.dip_down(pl, amount);
            }
        }
        self.dip_down(src, amount);
        self.terminals = terminals;
    }

    /// Charge a relayed multicast: `amount` tuples travel `src → relay`,
    /// then fan out `relay → dsts` as one multicast. Both legs are
    /// charged in full (the data physically traverses the relay, so the
    /// legs do not union with each other).
    pub fn charge_via(&mut self, src: NodeId, relay: NodeId, dsts: &[NodeId], amount: u64) {
        self.charge_unicast(src, relay, amount);
        self.charge_multicast(relay, dsts, amount);
    }

    #[inline]
    fn bump_up(&mut self, v: NodeId, amount: u64) {
        let x = &mut self.up[v.index()];
        *x = x.wrapping_add(amount);
    }

    #[inline]
    fn dip_up(&mut self, v: NodeId, amount: u64) {
        let x = &mut self.up[v.index()];
        *x = x.wrapping_sub(amount);
    }

    #[inline]
    fn bump_down(&mut self, v: NodeId, amount: u64) {
        let x = &mut self.down[v.index()];
        *x = x.wrapping_add(amount);
    }

    #[inline]
    fn dip_down(&mut self, v: NodeId, amount: u64) {
        let x = &mut self.down[v.index()];
        *x = x.wrapping_sub(amount);
    }

    /// Commit the accumulated charges as one finished round: one
    /// post-order up-sweep turns the per-node deltas into per-edge
    /// subtree sums, emitted sparsely in edge-id order. O(n + touched).
    pub fn commit_round(&mut self) {
        if !self.dirty {
            self.ledger.push_round(Vec::new());
            return;
        }
        // Children precede parents in reverse DFS order; fold each
        // node's accumulated subtree sum into its parent in place.
        for &x in self.order.iter().rev() {
            if let Some(p) = self.lca.parent(NodeId(x)) {
                let (xi, pi) = (x as usize, p.index());
                self.up[pi] = self.up[pi].wrapping_add(self.up[xi]);
                self.down[pi] = self.down[pi].wrapping_add(self.down[xi]);
            }
        }
        debug_assert_eq!(self.up[self.order[0] as usize], 0, "up deltas must cancel");
        debug_assert_eq!(
            self.down[self.order[0] as usize], 0,
            "down deltas must cancel"
        );
        let mut pairs: Vec<(u32, u64)> = Vec::new();
        for (e, &child) in self.edge_child.iter().enumerate() {
            let x = child as usize;
            let (su, sd) = (self.up[x], self.down[x]);
            if su == 0 && sd == 0 {
                continue;
            }
            debug_assert!(su <= u64::MAX / 2 && sd <= u64::MAX / 2, "negative charge");
            let up_dir = self.lca.up_edge(NodeId(child)).map_or(NONE, |d| d.0);
            let d0 = (e as u32) << 1;
            // Emit both directions of the edge ascending by dir-edge id.
            let (first, second) = if up_dir == d0 { (su, sd) } else { (sd, su) };
            if first > 0 {
                pairs.push((d0, first));
            }
            if second > 0 {
                pairs.push((d0 | 1, second));
            }
        }
        self.up.fill(0);
        self.down.fill(0);
        self.dirty = false;
        self.ledger.push_round(pairs);
    }

    /// Discard the accumulated charges of the round in progress — for
    /// callers abandoning a failed round so its partial sends don't leak
    /// into the next committed round.
    pub fn abort_round(&mut self) {
        self.up.fill(0);
        self.down.fill(0);
        self.dirty = false;
    }

    /// Fold the committed rounds into a [`Cost`]. Uncommitted charges of a
    /// round in progress are dropped.
    pub fn finish(self) -> Cost {
        self.ledger.finish()
    }
}

/// The pre-aggregation reference implementation: walk every path, stamp
/// every edge. This is the oracle the aggregate meter is proptested
/// against and the baseline the `x-scale` bench measures — it exists
/// for exactly those consumers, hence the `doc(hidden)`. Not a
/// supported metering API.
#[doc(hidden)]
pub mod oracle {
    use std::collections::HashMap;

    use tamp_topology::DirEdgeId;

    use super::*;

    /// A faithful reconstruction of the seed metering: a memoized
    /// `HashMap<(src, dst), Box<[DirEdgeId]>>` path table (`PathCache`),
    /// a dense per-round charge vector, and a stamp array deduplicating
    /// edges within one union (multicast) scope.
    pub struct NaivePathMeter {
        bandwidth: Vec<f64>,
        paths: HashMap<(u32, u32), Box<[DirEdgeId]>>,
        current: Vec<u64>,
        stamp: Vec<u32>,
        stamp_ctr: u32,
        rounds: Vec<Vec<u64>>,
    }

    impl NaivePathMeter {
        /// A naive meter over `tree`'s directed edges.
        pub fn new(tree: &Tree) -> Self {
            let bandwidth: Vec<f64> = tree.dir_edges().map(|d| tree.bandwidth(d).get()).collect();
            let n = bandwidth.len();
            NaivePathMeter {
                bandwidth,
                paths: HashMap::new(),
                current: vec![0; n],
                stamp: vec![0; n],
                stamp_ctr: 0,
                rounds: Vec::new(),
            }
        }

        fn begin_union(&mut self) {
            self.stamp_ctr = self.stamp_ctr.wrapping_add(1);
            if self.stamp_ctr == 0 {
                self.stamp.fill(0);
                self.stamp_ctr = 1;
            }
        }

        fn charge_path(&mut self, tree: &Tree, a: NodeId, b: NodeId, amount: u64) {
            if a == b || amount == 0 {
                return;
            }
            let path = self
                .paths
                .entry((a.0, b.0))
                .or_insert_with(|| tree.path(a, b).into_boxed_slice());
            for &d in path.iter() {
                let i = d.index();
                if self.stamp[i] != self.stamp_ctr {
                    self.stamp[i] = self.stamp_ctr;
                    self.current[i] += amount;
                }
            }
        }

        /// Charge one unicast (its own union scope).
        pub fn charge_unicast(&mut self, tree: &Tree, a: NodeId, b: NodeId, amount: u64) {
            self.begin_union();
            self.charge_path(tree, a, b, amount);
        }

        /// Charge one multicast: union of the `src → dst` paths.
        pub fn charge_multicast(&mut self, tree: &Tree, src: NodeId, dsts: &[NodeId], amount: u64) {
            self.begin_union();
            for &dst in dsts {
                self.charge_path(tree, src, dst, amount);
            }
        }

        /// Charge a relayed multicast: both legs in full, each its own
        /// union scope.
        pub fn charge_via(
            &mut self,
            tree: &Tree,
            src: NodeId,
            relay: NodeId,
            dsts: &[NodeId],
            amount: u64,
        ) {
            self.charge_unicast(tree, src, relay, amount);
            self.charge_multicast(tree, relay, dsts, amount);
        }

        /// Commit the round in progress.
        pub fn commit_round(&mut self) {
            let n = self.current.len();
            let charges = std::mem::replace(&mut self.current, vec![0; n]);
            self.rounds.push(charges);
        }

        /// The seed's dense `Ledger::finish`, verbatim.
        pub fn finish(self) -> Cost {
            use crate::cost::RoundCost;
            let mut per_round = Vec::with_capacity(self.rounds.len());
            let mut edge_totals = vec![0u64; self.bandwidth.len()];
            for traffic in &self.rounds {
                let mut round = RoundCost {
                    tuple_cost: 0.0,
                    bottleneck: None,
                    max_tuples: 0,
                    total_tuples: 0,
                };
                for (d, &tuples) in traffic.iter().enumerate() {
                    edge_totals[d] += tuples;
                    round.total_tuples += tuples;
                    round.max_tuples = round.max_tuples.max(tuples);
                    let w = self.bandwidth[d];
                    let c = if w.is_infinite() {
                        0.0
                    } else {
                        tuples as f64 / w
                    };
                    if c > round.tuple_cost {
                        round.tuple_cost = c;
                        round.bottleneck = Some(DirEdgeId(d as u32));
                    }
                }
                per_round.push(round);
            }
            Cost {
                per_round,
                edge_totals,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tamp_topology::builders;

    #[test]
    fn multicast_unions_paths() {
        // Star with 4 leaves: a broadcast from leaf 0 charges the uplink
        // once and each downlink once.
        let t = builders::star(4, 1.0);
        let mut m = TrafficMeter::new(&t);
        let vc = t.compute_nodes().to_vec();
        m.charge_multicast(vc[0], &vc, 10);
        m.commit_round();
        let cost = m.finish();
        assert_eq!(cost.total_tuples(), 40);
        assert_eq!(cost.tuple_cost(), 10.0);
    }

    #[test]
    fn union_scopes_are_independent() {
        let t = builders::star(2, 1.0);
        let mut m = TrafficMeter::new(&t);
        let vc = t.compute_nodes().to_vec();
        // Two separate unicasts of the same path charge it twice…
        m.charge_multicast(vc[0], &[vc[1]], 3);
        m.charge_multicast(vc[0], &[vc[1]], 3);
        m.commit_round();
        // …while one multicast with a duplicated destination charges once.
        m.charge_multicast(vc[0], &[vc[1], vc[1]], 3);
        m.commit_round();
        let cost = m.finish();
        assert_eq!(cost.per_round[0].total_tuples, 12);
        assert_eq!(cost.per_round[1].total_tuples, 6);
    }

    #[test]
    fn rounds_are_separated() {
        let t = builders::star(2, 2.0);
        let mut m = TrafficMeter::new(&t);
        let vc = t.compute_nodes().to_vec();
        m.charge_multicast(vc[0], &[vc[1]], 4);
        m.commit_round();
        m.charge_multicast(vc[1], &[vc[0]], 2);
        m.commit_round();
        assert_eq!(m.rounds_committed(), 2);
        let cost = m.finish();
        assert_eq!(cost.per_round.len(), 2);
        assert_eq!(cost.per_round[0].tuple_cost, 2.0);
        assert_eq!(cost.per_round[1].tuple_cost, 1.0);
    }

    #[test]
    fn self_and_empty_sends_are_free() {
        let t = builders::star(3, 1.0);
        let mut m = TrafficMeter::new(&t);
        let vc = t.compute_nodes().to_vec();
        m.charge_unicast(vc[0], vc[0], 9);
        m.charge_multicast(vc[1], &[vc[1], vc[1]], 9);
        m.charge_multicast(vc[2], &[], 9);
        m.charge_unicast(vc[0], vc[1], 0);
        m.commit_round();
        let cost = m.finish();
        assert_eq!(cost.total_tuples(), 0);
        assert_eq!(cost.per_round[0].bottleneck, None);
    }

    #[test]
    fn abort_discards_partial_charges() {
        let t = builders::star(2, 1.0);
        let mut m = TrafficMeter::new(&t);
        let vc = t.compute_nodes().to_vec();
        m.charge_unicast(vc[0], vc[1], 7);
        m.abort_round();
        m.charge_unicast(vc[0], vc[1], 1);
        m.commit_round();
        let cost = m.finish();
        assert_eq!(cost.total_tuples(), 2); // 1 tuple × 2 hops
    }

    /// Drive identical random batches — unicasts, multicasts with
    /// duplicated destinations, `send_via` relay legs (router relays
    /// included) — through the aggregate meter and the per-path oracle
    /// and require bit-identical ledgers.
    fn parity_case(seed: u64) -> (Cost, Cost) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_compute = rng.random_range(1..9usize);
        let n_routers = rng.random_range(1..8usize);
        let tree = builders::random_tree(n_compute, n_routers, 0.5, 16.0, seed ^ 0xA5);
        let all: Vec<NodeId> = tree.nodes().collect();
        let mut agg = TrafficMeter::new(&tree);
        let mut naive = oracle::NaivePathMeter::new(&tree);
        let rounds = rng.random_range(1..4usize);
        for _ in 0..rounds {
            let sends = rng.random_range(0..16usize);
            for _ in 0..sends {
                let amount = rng.random_range(0..20u64);
                let pick = |rng: &mut StdRng| all[rng.random_range(0..all.len())];
                let mut dsts = Vec::new();
                for _ in 0..rng.random_range(0..6usize) {
                    dsts.push(pick(&mut rng)); // duplicates welcome
                }
                match rng.random_range(0..3u32) {
                    0 => {
                        let (a, b) = (pick(&mut rng), pick(&mut rng));
                        agg.charge_unicast(a, b, amount);
                        naive.charge_unicast(&tree, a, b, amount);
                    }
                    1 => {
                        let src = pick(&mut rng);
                        agg.charge_multicast(src, &dsts, amount);
                        naive.charge_multicast(&tree, src, &dsts, amount);
                    }
                    _ => {
                        let (src, relay) = (pick(&mut rng), pick(&mut rng));
                        agg.charge_via(src, relay, &dsts, amount);
                        naive.charge_via(&tree, src, relay, &dsts, amount);
                    }
                }
            }
            agg.commit_round();
            naive.commit_round();
        }
        (agg.finish(), naive.finish())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn aggregate_charging_matches_per_path_oracle(seed in 0u64..1_000_000) {
            let (agg, naive) = parity_case(seed);
            prop_assert_eq!(&agg.edge_totals, &naive.edge_totals);
            prop_assert_eq!(&agg.per_round, &naive.per_round);
        }
    }
}
