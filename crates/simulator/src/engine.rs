//! The synchronous round engine.
//!
//! A [`Protocol`] drives a [`Session`] through rounds. Within a round, all
//! reads observe the state as of the **start** of the round (BSP
//! semantics); deliveries land when the round commits. Between rounds a
//! protocol may perform arbitrary *local* computation by mutating a node's
//! own state through [`Session::state_mut`] — local computation is free in
//! the model, only communication is charged.
//!
//! Every send names an explicit destination set and is routed along the
//! unique tree paths (optionally through an explicit relay node, which is
//! how the paper's cartesian-product protocol routes everything through
//! the root of `G†`). A value multicast to several destinations traverses
//! each directed link of the union of its routing paths exactly once.

use std::sync::Arc;

use tamp_topology::{NodeId, Tree};

use crate::cost::Cost;
use crate::error::SimError;
use crate::metering::TrafficMeter;
use crate::placement::{Placement, PlacementStats};
use crate::value::{NodeState, Rel, Value};

/// A round-based algorithm in the topology-aware model.
pub trait Protocol {
    /// What the protocol returns (e.g. the intersection, or a unit for
    /// in-place tasks like sorting).
    type Output;

    /// Human-readable protocol name (used in reports).
    fn name(&self) -> String;

    /// Drive the session: any number of [`Session::round`] calls
    /// interleaved with local computation.
    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError>;
}

/// The result of executing a protocol.
#[derive(Clone, Debug)]
pub struct Run<O> {
    /// Protocol output.
    pub output: O,
    /// Metered cost.
    pub cost: Cost,
    /// Number of communication rounds executed (including silent ones).
    pub rounds: usize,
    /// Final per-node state `X_r(v)`.
    pub final_state: Vec<NodeState>,
    /// Protocol name.
    pub name: String,
}

/// Validate the placement, execute the protocol, and collect costs.
pub fn run_protocol<P: Protocol>(
    tree: &Tree,
    placement: &Placement,
    protocol: &P,
) -> Result<Run<P::Output>, SimError> {
    placement.validate(tree)?;
    let mut session = Session::new(tree, placement)?;
    let output = protocol.run(&mut session)?;
    let (cost, final_state, rounds) = session.finish();
    Ok(Run {
        output,
        cost,
        rounds,
        final_state,
        name: protocol.name(),
    })
}

/// Execution state of one protocol run.
pub struct Session<'t> {
    tree: &'t Tree,
    state: Vec<NodeState>,
    initial_stats: PlacementStats,
    /// The shared union-of-paths accounting, identical to the runtime's.
    /// Also the single source of truth for the round count.
    meter: TrafficMeter,
    /// Per-node in-flight delivery chunks, reused across rounds so a
    /// 4096-node session does not reallocate two `Vec`s per node per
    /// round. Each chunk is a shared payload: a multicast pushes one
    /// `Arc` clone per destination instead of copying the values.
    inbox_r: Vec<Vec<Arc<[Value]>>>,
    inbox_s: Vec<Vec<Arc<[Value]>>>,
}

impl<'t> Session<'t> {
    /// Start a session with the given initial placement.
    pub fn new(tree: &'t Tree, placement: &Placement) -> Result<Self, SimError> {
        placement.validate(tree)?;
        let n_nodes = tree.num_nodes();
        Ok(Session {
            tree,
            state: placement.fragments().to_vec(),
            initial_stats: placement.stats(),
            meter: TrafficMeter::new(tree),
            inbox_r: vec![Vec::new(); n_nodes],
            inbox_s: vec![Vec::new(); n_nodes],
        })
    }

    /// The topology.
    #[inline]
    pub fn tree(&self) -> &'t Tree {
        self.tree
    }

    /// Initial cardinality statistics — the knowledge the model grants
    /// every algorithm up front.
    #[inline]
    pub fn stats(&self) -> &PlacementStats {
        &self.initial_stats
    }

    /// Current state of node `v`.
    #[inline]
    pub fn state(&self, v: NodeId) -> &NodeState {
        &self.state[v.index()]
    }

    /// All node states, indexed by node id.
    #[inline]
    pub fn states(&self) -> &[NodeState] {
        &self.state
    }

    /// Mutable state of node `v` — *local computation*, free in the model.
    #[inline]
    pub fn state_mut(&mut self, v: NodeId) -> &mut NodeState {
        &mut self.state[v.index()]
    }

    /// Number of rounds executed so far.
    #[inline]
    pub fn rounds_executed(&self) -> usize {
        self.meter.rounds_committed()
    }

    /// Execute one communication round. All sends issued inside the closure
    /// observe round-start state; deliveries are applied on return.
    pub fn round<F>(&mut self, f: F) -> Result<(), SimError>
    where
        F: FnOnce(&mut RoundCtx<'_, 't>) -> Result<(), SimError>,
    {
        let mut ctx = RoundCtx {
            tree: self.tree,
            state: &self.state,
            meter: &mut self.meter,
            inbox_r: &mut self.inbox_r,
            inbox_s: &mut self.inbox_s,
        };
        let result = f(&mut ctx);
        if let Err(e) = result {
            // Abandon the failed round entirely: neither its partial
            // charges nor its deliveries may leak into later rounds.
            self.meter.abort_round();
            for inbox in self.inbox_r.iter_mut().chain(self.inbox_s.iter_mut()) {
                inbox.clear();
            }
            return Err(e);
        }
        self.meter.commit_round();
        // Materialize the shared chunks into node state; `clear` keeps
        // the per-node buffers (and their capacity) for the next round.
        for (v, chunks) in self.inbox_r.iter_mut().enumerate() {
            for chunk in chunks.drain(..) {
                self.state[v].r.extend_from_slice(&chunk);
            }
        }
        for (v, chunks) in self.inbox_s.iter_mut().enumerate() {
            for chunk in chunks.drain(..) {
                self.state[v].s.extend_from_slice(&chunk);
            }
        }
        Ok(())
    }

    /// Fold the ledger and hand back `(cost, final_state, rounds)`.
    ///
    /// This is how engine-agnostic drivers (the `ExecBackend` layer in
    /// `tamp-runtime`) finish a session they ran outside
    /// [`run_protocol`].
    pub fn into_parts(self) -> (Cost, Vec<NodeState>, usize) {
        let rounds = self.meter.rounds_committed();
        (self.meter.finish(), self.state, rounds)
    }

    /// Fold the ledger and hand back final state.
    pub(crate) fn finish(self) -> (Cost, Vec<NodeState>, usize) {
        self.into_parts()
    }
}

/// Send interface available inside a round.
pub struct RoundCtx<'a, 't> {
    tree: &'t Tree,
    state: &'a [NodeState],
    meter: &'a mut TrafficMeter,
    inbox_r: &'a mut Vec<Vec<Arc<[Value]>>>,
    inbox_s: &'a mut Vec<Vec<Arc<[Value]>>>,
}

impl<'a, 't> RoundCtx<'a, 't> {
    /// The topology.
    #[inline]
    pub fn tree(&self) -> &'t Tree {
        self.tree
    }

    /// Round-start state of node `v`.
    #[inline]
    pub fn state(&self, v: NodeId) -> &NodeState {
        &self.state[v.index()]
    }

    /// Multicast `values` of relation `rel` from `src` to every node in
    /// `dsts`, along the unique tree paths. Each directed edge in the union
    /// of the paths carries each value once.
    pub fn send(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        rel: Rel,
        values: &[Value],
    ) -> Result<(), SimError> {
        if values.is_empty() || dsts.is_empty() {
            return Ok(());
        }
        self.send_shared(src, dsts, rel, values.into())
    }

    /// Zero-copy variant of [`RoundCtx::send`]: the shared payload is
    /// delivered as one `Arc` clone per destination, so a broadcast costs
    /// one allocation total — callers that already hold their payload in
    /// an `Arc` (e.g. the query layer's exchange-trace replay) never copy
    /// it at all.
    pub fn send_shared(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        rel: Rel,
        values: Arc<[Value]>,
    ) -> Result<(), SimError> {
        if values.is_empty() || dsts.is_empty() {
            return Ok(());
        }
        self.check_endpoints(src, dsts)?;
        self.meter.charge_multicast(src, dsts, values.len() as u64);
        self.deliver(dsts, rel, values);
        Ok(())
    }

    /// Like [`RoundCtx::send`], but routed explicitly through `relay`
    /// (which may be a router): values travel `src → relay`, then fan out
    /// `relay → dsts` as a multicast. Both legs are charged; this is the
    /// routing pattern of the paper's tree cartesian-product protocol
    /// (Section 4.4), where all data flows through the root of `G†`.
    pub fn send_via(
        &mut self,
        src: NodeId,
        relay: NodeId,
        dsts: &[NodeId],
        rel: Rel,
        values: &[Value],
    ) -> Result<(), SimError> {
        if values.is_empty() {
            return Ok(());
        }
        self.check_endpoints(src, dsts)?;
        // Both legs are charged in full: the data physically traverses
        // the relay, so they do not union with each other.
        self.meter.charge_via(src, relay, dsts, values.len() as u64);
        if !dsts.is_empty() {
            self.deliver(dsts, rel, values.into());
        }
        Ok(())
    }

    fn check_endpoints(&self, src: NodeId, dsts: &[NodeId]) -> Result<(), SimError> {
        if !self.tree.is_compute(src) {
            return Err(SimError::SendFromRouter(src));
        }
        if let Some(&bad) = dsts.iter().find(|&&d| !self.tree.is_compute(d)) {
            return Err(SimError::SendToRouter(bad));
        }
        Ok(())
    }

    fn deliver(&mut self, dsts: &[NodeId], rel: Rel, values: Arc<[Value]>) {
        for &dst in dsts {
            let inbox = match rel {
                Rel::R => &mut self.inbox_r[dst.index()],
                Rel::S => &mut self.inbox_s[dst.index()],
            };
            inbox.push(Arc::clone(&values));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_topology::builders;

    struct OneShot;

    impl Protocol for OneShot {
        type Output = ();
        fn name(&self) -> String {
            "one-shot".into()
        }
        fn run(&self, s: &mut Session<'_>) -> Result<(), SimError> {
            let n0 = NodeId(0);
            let n1 = NodeId(1);
            s.round(|r| {
                let vals = r.state(n0).r.clone();
                r.send(n0, &[n1], Rel::R, &vals)
            })
        }
    }

    #[test]
    fn unicast_charges_both_hops() {
        let t = builders::star(2, 2.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![1, 2, 3, 4]);
        let run = run_protocol(&t, &p, &OneShot).unwrap();
        assert_eq!(run.rounds, 1);
        // 4 tuples over bw-2 links: leaf→hub and hub→leaf each cost 2.
        assert_eq!(run.cost.tuple_cost(), 2.0);
        assert_eq!(run.cost.total_tuples(), 8); // 4 tuples × 2 hops
        assert_eq!(run.final_state[1].r, vec![1, 2, 3, 4]);
        // Sender keeps its copy (copy semantics).
        assert_eq!(run.final_state[0].r, vec![1, 2, 3, 4]);
    }

    struct Broadcast;

    impl Protocol for Broadcast {
        type Output = ();
        fn name(&self) -> String {
            "broadcast".into()
        }
        fn run(&self, s: &mut Session<'_>) -> Result<(), SimError> {
            let all: Vec<NodeId> = s.tree().compute_nodes().to_vec();
            s.round(|r| {
                let vals = r.state(NodeId(0)).s.clone();
                r.send(NodeId(0), &all, Rel::S, &vals)
            })
        }
    }

    #[test]
    fn multicast_charges_union_once() {
        // Star with 4 leaves: broadcasting 10 tuples from leaf 0 charges
        // the uplink (0→hub) 10 once, and each downlink 10.
        let t = builders::star(4, 1.0);
        let mut p = Placement::empty(&t);
        p.set_s(NodeId(0), (0..10).collect());
        let run = run_protocol(&t, &p, &Broadcast).unwrap();
        // Bottleneck is any loaded edge at 10 tuples / bw 1.
        assert_eq!(run.cost.tuple_cost(), 10.0);
        // Uplink charged once (10), three downlinks (30): total 40. The
        // self-delivery to node 0 is free (empty path).
        assert_eq!(run.cost.total_tuples(), 40);
        // Node 0 holds its original copy plus the self-delivery.
        assert_eq!(run.final_state[0].s.len(), 20);
        for v in 1..4 {
            assert_eq!(run.final_state[v].s.len(), 10);
        }
    }

    struct Relay;

    impl Protocol for Relay {
        type Output = ();
        fn name(&self) -> String {
            "relay".into()
        }
        fn run(&self, s: &mut Session<'_>) -> Result<(), SimError> {
            // Route 0 → hub of rack A... via the *far* router, then back.
            let relay = NodeId(2); // hub
            s.round(|r| {
                let vals = r.state(NodeId(0)).r.clone();
                r.send_via(NodeId(0), relay, &[NodeId(0), NodeId(1)], Rel::R, &vals)
            })
        }
    }

    #[test]
    fn relay_charges_both_legs() {
        let t = builders::star(2, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![7, 8]);
        let run = run_protocol(&t, &p, &Relay).unwrap();
        // Leg 1: 0→hub = 2 tuples. Leg 2: hub→0 (2) + hub→1 (2).
        assert_eq!(run.cost.total_tuples(), 6);
        // Node 0 receives its own data back (plus keeps the original).
        assert_eq!(run.final_state[0].r.len(), 4);
        assert_eq!(run.final_state[1].r, vec![7, 8]);
    }

    struct BadSend;

    impl Protocol for BadSend {
        type Output = ();
        fn name(&self) -> String {
            "bad".into()
        }
        fn run(&self, s: &mut Session<'_>) -> Result<(), SimError> {
            s.round(|r| r.send(NodeId(0), &[NodeId(2)], Rel::R, &[1]))
        }
    }

    #[test]
    fn rejects_router_destination() {
        let t = builders::star(2, 1.0); // node 2 is the hub
        let p = Placement::empty(&t);
        assert_eq!(
            run_protocol(&t, &p, &BadSend).unwrap_err(),
            SimError::SendToRouter(NodeId(2))
        );
    }

    struct TwoRounds;

    impl Protocol for TwoRounds {
        type Output = usize;
        fn name(&self) -> String {
            "two-rounds".into()
        }
        fn run(&self, s: &mut Session<'_>) -> Result<usize, SimError> {
            s.round(|r| r.send(NodeId(0), &[NodeId(1)], Rel::R, &[1, 2]))?;
            // Local computation between rounds: node 1 keeps only one value.
            s.state_mut(NodeId(1)).r.truncate(1);
            s.round(|r| {
                let vals = r.state(NodeId(1)).r.clone();
                r.send(NodeId(1), &[NodeId(0)], Rel::R, &vals)
            })?;
            Ok(s.rounds_executed())
        }
    }

    #[test]
    fn rounds_compose_and_local_compute_is_free() {
        let t = builders::star(2, 1.0);
        let p = Placement::empty(&t);
        let run = run_protocol(&t, &p, &TwoRounds).unwrap();
        assert_eq!(run.output, 2);
        assert_eq!(run.rounds, 2);
        // Round 1 moves 2 tuples (cost 2), round 2 moves 1 (cost 1).
        assert_eq!(run.cost.per_round[0].tuple_cost, 2.0);
        assert_eq!(run.cost.per_round[1].tuple_cost, 1.0);
        assert_eq!(run.cost.tuple_cost(), 3.0);
    }

    #[test]
    fn mpc_star_charges_receive_only() {
        // In the MPC embedding, sending is free (∞ uplink) and receiving
        // costs tuples/1.
        let t = builders::mpc_star(2);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (0..5).collect());
        let run = run_protocol(&t, &p, &OneShot).unwrap();
        assert_eq!(run.cost.tuple_cost(), 5.0);
    }

    #[test]
    fn failed_rounds_leave_no_partial_charges_or_deliveries() {
        // A round that charges a valid send and then errors must be
        // abandoned wholesale: a session that continues afterwards sees
        // neither the aborted charges nor the aborted deliveries.
        let t = builders::star(2, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![1, 2, 3]);
        let mut s = Session::new(&t, &p).unwrap();
        let err = s.round(|r| {
            let vals = r.state(NodeId(0)).r.clone();
            r.send(NodeId(0), &[NodeId(1)], Rel::R, &vals)?; // charges 3 tuples
            r.send(NodeId(0), &[NodeId(2)], Rel::R, &[9]) // hub: errors
        });
        assert_eq!(err.unwrap_err(), SimError::SendToRouter(NodeId(2)));
        assert_eq!(s.rounds_executed(), 0);
        s.round(|r| r.send(NodeId(0), &[NodeId(1)], Rel::R, &[7]))
            .unwrap();
        let (cost, state, rounds) = s.into_parts();
        assert_eq!(rounds, 1);
        // Only the second round's single tuple is metered (2 hops).
        assert_eq!(cost.total_tuples(), 2);
        assert_eq!(cost.per_round[0].tuple_cost, 1.0);
        // The aborted round's delivery never landed.
        assert_eq!(state[1].r, vec![7]);
    }
}
