//! End-to-end correctness checkers for the three tasks.
//!
//! The model only requires each output to be *emitted by at least one
//! node*, so verification is global: it inspects the final per-node states
//! and checks that, collectively, the nodes can produce the full answer.

use std::collections::{BTreeSet, HashMap};

use tamp_topology::NodeId;

use crate::value::{NodeState, Value};

/// The intersection a single node can emit from what it holds:
/// `set(R_known) ∩ set(S_known)`.
pub fn local_intersection(state: &NodeState) -> BTreeSet<Value> {
    let r: BTreeSet<Value> = state.r.iter().copied().collect();
    state.s.iter().copied().filter(|v| r.contains(v)).collect()
}

/// Union of all nodes' locally emittable intersections.
pub fn emitted_intersection(states: &[NodeState]) -> BTreeSet<Value> {
    let mut out = BTreeSet::new();
    for st in states {
        out.extend(local_intersection(st));
    }
    out
}

/// Ground-truth `R ∩ S` as sets.
pub fn true_intersection(r: &[Value], s: &[Value]) -> BTreeSet<Value> {
    let rs: BTreeSet<Value> = r.iter().copied().collect();
    s.iter().copied().filter(|v| rs.contains(v)).collect()
}

/// Verify that the final states collectively emit exactly `R ∩ S`.
pub fn check_intersection(states: &[NodeState], r: &[Value], s: &[Value]) -> Result<(), String> {
    let got = emitted_intersection(states);
    let want = true_intersection(r, s);
    if got == want {
        Ok(())
    } else {
        let missing = want.difference(&got).count();
        let spurious = got.difference(&want).count();
        Err(format!(
            "intersection mismatch: {missing} missing, {spurious} spurious (want {}, got {})",
            want.len(),
            got.len()
        ))
    }
}

/// Verify that every pair `(r_i, s_j) ∈ R × S` is *covered*: some node
/// holds both `r_i` and `s_j` in its final state, so it can emit the pair.
///
/// Values may repeat in `r` or `s`; a node holding a value covers all of
/// its occurrences. Runs in `O(|R| · |V_C| · |S|/64)` using bitsets.
pub fn check_pair_coverage(states: &[NodeState], r: &[Value], s: &[Value]) -> Result<(), String> {
    if r.is_empty() || s.is_empty() {
        return Ok(());
    }
    let words = s.len().div_ceil(64);
    let mut s_positions: HashMap<Value, Vec<usize>> = HashMap::new();
    for (j, &v) in s.iter().enumerate() {
        s_positions.entry(v).or_default().push(j);
    }
    // Per node: bitset of S positions it knows.
    let mut node_sbits: Vec<Vec<u64>> = Vec::with_capacity(states.len());
    for st in states {
        let mut bits = vec![0u64; words];
        for v in &st.s {
            if let Some(ps) = s_positions.get(v) {
                for &j in ps {
                    bits[j / 64] |= 1u64 << (j % 64);
                }
            }
        }
        node_sbits.push(bits);
    }
    // Which nodes know each R value.
    let mut r_holders: HashMap<Value, Vec<usize>> = HashMap::new();
    for (v_idx, st) in states.iter().enumerate() {
        for v in &st.r {
            r_holders.entry(*v).or_default().push(v_idx);
        }
    }
    // Deduplicate holder lists (a node may hold a value several times).
    for holders in r_holders.values_mut() {
        holders.dedup();
    }
    let full_last = if s.len().is_multiple_of(64) {
        u64::MAX
    } else {
        (1u64 << (s.len() % 64)) - 1
    };
    let mut row = vec![0u64; words];
    for (i, &rv) in r.iter().enumerate() {
        row.fill(0);
        if let Some(holders) = r_holders.get(&rv) {
            for &h in holders {
                for (w, bits) in row.iter_mut().zip(&node_sbits[h]) {
                    *w |= bits;
                }
            }
        }
        let covered =
            row[..words - 1].iter().all(|&w| w == u64::MAX) && row[words - 1] == full_last;
        if !covered {
            let j = (0..s.len())
                .find(|&j| row[j / 64] & (1 << (j % 64)) == 0)
                .unwrap_or(0);
            return Err(format!(
                "pair ({}, {}) at grid ({i}, {j}) is not covered by any node",
                rv, s[j]
            ));
        }
    }
    Ok(())
}

/// Verify a sorted redistribution (Section 5): following `order` (a valid
/// left-to-right ordering of the compute nodes), each node's `R` fragment
/// must be locally sorted, fragments must be non-decreasing across
/// consecutive nodes, and the concatenation must be a permutation of
/// `original`.
pub fn check_sorted_partition(
    order: &[NodeId],
    states: &[NodeState],
    original: &[Value],
) -> Result<(), String> {
    let mut concat: Vec<Value> = Vec::with_capacity(original.len());
    let mut prev_max: Option<Value> = None;
    for &v in order {
        let frag = &states[v.index()].r;
        if frag.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!("node {v} fragment is not locally sorted"));
        }
        if let (Some(pm), Some(&first)) = (prev_max, frag.first()) {
            if first < pm {
                return Err(format!(
                    "node {v} starts at {first}, below previous node max {pm}"
                ));
            }
        }
        if let Some(&last) = frag.last() {
            prev_max = Some(last);
        }
        concat.extend_from_slice(frag);
    }
    let mut want = original.to_vec();
    want.sort_unstable();
    if concat != want {
        return Err(format!(
            "sorted output is not a permutation of the input ({} vs {} elements)",
            concat.len(),
            want.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(r: Vec<Value>, s: Vec<Value>) -> NodeState {
        NodeState { r, s }
    }

    #[test]
    fn intersection_checks() {
        let states = vec![st(vec![1, 2], vec![2, 9]), st(vec![5], vec![5])];
        assert_eq!(emitted_intersection(&states), BTreeSet::from([2, 5]));
        assert!(check_intersection(&states, &[1, 2, 5], &[2, 5, 9]).is_ok());
        // Missing 5 coverage.
        let bad = vec![st(vec![1, 2], vec![2, 9]), st(vec![5], vec![])];
        assert!(check_intersection(&bad, &[1, 2, 5], &[2, 5, 9]).is_err());
    }

    #[test]
    fn pair_coverage_detects_gap() {
        let r = vec![10, 20];
        let s = vec![30, 40];
        let full = vec![st(vec![10, 20], vec![30, 40])];
        assert!(check_pair_coverage(&full, &r, &s).is_ok());
        let split = vec![st(vec![10], vec![30, 40]), st(vec![20], vec![30])];
        let err = check_pair_coverage(&split, &r, &s).unwrap_err();
        assert!(err.contains("(20, 40)"), "{err}");
    }

    #[test]
    fn pair_coverage_handles_duplicates() {
        let r = vec![1, 1];
        let s = vec![2, 2];
        let states = vec![st(vec![1], vec![2])];
        assert!(check_pair_coverage(&states, &r, &s).is_ok());
    }

    #[test]
    fn pair_coverage_empty_inputs() {
        assert!(check_pair_coverage(&[], &[], &[1]).is_ok());
    }

    #[test]
    fn sorted_partition_checks() {
        let order = vec![NodeId(0), NodeId(1)];
        let good = vec![st(vec![1, 3], vec![]), st(vec![3, 7], vec![])];
        assert!(check_sorted_partition(&order, &good, &[3, 1, 7, 3]).is_ok());

        let unsorted = vec![st(vec![3, 1], vec![]), st(vec![7], vec![])];
        assert!(check_sorted_partition(&order, &unsorted, &[3, 1, 7]).is_err());

        let out_of_order = vec![st(vec![5], vec![]), st(vec![2], vec![])];
        assert!(check_sorted_partition(&order, &out_of_order, &[5, 2]).is_err());

        let not_perm = vec![st(vec![1], vec![]), st(vec![2], vec![])];
        assert!(check_sorted_partition(&order, &not_perm, &[1, 2, 3]).is_err());
    }
}
