//! Simulator error type.

use std::fmt;

use tamp_topology::NodeId;

/// Errors raised while building placements or executing protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Initial data was placed on a router node.
    DataAtRouter(NodeId),
    /// A protocol tried to send from a router node.
    SendFromRouter(NodeId),
    /// A protocol tried to deliver data to a router node.
    SendToRouter(NodeId),
    /// A placement table's length does not match the topology.
    PlacementShape {
        /// Nodes in the topology.
        expected: usize,
        /// Entries supplied.
        got: usize,
    },
    /// Protocol-specific failure.
    Protocol(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DataAtRouter(v) => write!(f, "initial data placed on router {v}"),
            Self::SendFromRouter(v) => write!(f, "send from router {v}"),
            Self::SendToRouter(v) => write!(f, "delivery to router {v}"),
            Self::PlacementShape { expected, got } => {
                write!(
                    f,
                    "placement has {got} entries, topology has {expected} nodes"
                )
            }
            Self::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}
