//! Human-readable run reports.

use std::fmt;

use tamp_topology::Tree;

use crate::cost::Cost;
use crate::engine::Run;

/// A formatted summary of a protocol run: total cost, rounds, and the
/// bottleneck link of every round.
#[derive(Clone, Debug)]
pub struct RunReport {
    name: String,
    rounds: usize,
    tuple_cost: f64,
    total_tuples: u64,
    lines: Vec<String>,
}

impl RunReport {
    /// Build a report from a run against its topology.
    pub fn new<O>(tree: &Tree, run: &Run<O>) -> Self {
        Self::from_parts(tree, &run.name, run.rounds, &run.cost)
    }

    /// Build a report from loose parts.
    pub fn from_parts(tree: &Tree, name: &str, rounds: usize, cost: &Cost) -> Self {
        let mut lines = Vec::with_capacity(cost.per_round.len());
        for (i, rc) in cost.per_round.iter().enumerate() {
            let at = match rc.bottleneck {
                Some(d) => {
                    let (u, v) = tree.dir_endpoints(d);
                    format!("{u}→{v}")
                }
                None => "-".to_string(),
            };
            lines.push(format!(
                "  round {:>2}: cost {:>12.2} tuples  (bottleneck {at}, max edge {} tuples, volume {})",
                i + 1,
                rc.tuple_cost,
                rc.max_tuples,
                rc.total_tuples,
            ));
        }
        RunReport {
            name: name.to_string(),
            rounds,
            tuple_cost: cost.tuple_cost(),
            total_tuples: cost.total_tuples(),
            lines,
        }
    }

    /// Total tuple cost of the run.
    pub fn tuple_cost(&self) -> f64 {
        self.tuple_cost
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} round(s), cost {:.2} tuples, volume {} tuples",
            self.name, self.rounds, self.tuple_cost, self.total_tuples
        )?;
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_protocol, Protocol, Session};
    use crate::error::SimError;
    use crate::placement::Placement;
    use crate::value::Rel;
    use tamp_topology::{builders, NodeId};

    struct Ping;
    impl Protocol for Ping {
        type Output = ();
        fn name(&self) -> String {
            "ping".into()
        }
        fn run(&self, s: &mut Session<'_>) -> Result<(), SimError> {
            s.round(|r| r.send(NodeId(0), &[NodeId(1)], Rel::R, &[1, 2, 3]))
        }
    }

    #[test]
    fn report_renders() {
        let t = builders::star(2, 1.0);
        let p = Placement::empty(&t);
        let run = run_protocol(&t, &p, &Ping).unwrap();
        let rep = RunReport::new(&t, &run);
        let text = rep.to_string();
        assert!(text.contains("ping: 1 round(s)"));
        assert!(text.contains("round  1"));
        assert_eq!(rep.tuple_cost(), 3.0);
    }
}
