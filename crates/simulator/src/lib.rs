//! # tamp-simulator
//!
//! An executable implementation of the topology-aware massively parallel
//! computation **cost model** of Section 2 (Hu, Koutris, Blanas; PODS 2021,
//! after Blanas et al., CIDR 2020).
//!
//! A parallel algorithm proceeds in synchronous rounds. In each round every
//! compute node performs local computation and then sends data to other
//! compute nodes along **explicitly routed paths**. The cost of round `i`
//! is that of the most bottlenecked link,
//!
//! ```text
//! cost_i(A) = max_{e ∈ E} |Y_i(e)| / w_e ,        cost(A) = Σ_i cost_i(A)
//! ```
//!
//! where `Y_i(e)` is the data routed through directed link `e` in round `i`.
//! This crate meters `|Y_i(e)|` exactly — protocols written against
//! [`Session`] cannot move a tuple without being charged for it — and
//! reports costs both in tuples and in bits.
//!
//! Sends are **multicasts**: a value sent from `src` to a set of
//! destinations traverses each directed link of the union of routing paths
//! once. This matches the accounting used throughout the paper (e.g. in
//! Lemma 1's analysis a tuple forwarded to all of `V_β ∪ {h(a)}` crosses
//! the sender's uplink once).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cost;
pub mod engine;
pub mod error;
pub mod metering;
pub mod placement;
pub mod trace;
pub mod value;
pub mod verify;

pub use cost::{Cost, RoundCost};
pub use engine::{run_protocol, Protocol, RoundCtx, Run, Session};
pub use error::SimError;
pub use metering::TrafficMeter;
pub use placement::{Placement, PlacementStats};
pub use trace::RunReport;
pub use value::{NodeState, Rel, Value};
