//! Data values, relation tags and per-node state.

/// A data element. All of the paper's tasks operate on elements of a common
/// (totally ordered) domain; we use `u64`.
pub type Value = u64;

/// Which input relation a tuple belongs to.
///
/// Set intersection and cartesian product take two inputs `R` and `S`;
/// sorting uses a single input stored under [`Rel::R`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rel {
    /// The first (by convention, smaller) input set.
    R,
    /// The second input set.
    S,
}

/// The data held by one compute node: the local fragments of `R` and `S`,
/// i.e. `X_i(v)` in the paper's notation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeState {
    /// Local fragment of `R`.
    pub r: Vec<Value>,
    /// Local fragment of `S`.
    pub s: Vec<Value>,
}

impl NodeState {
    /// Total number of elements held, `N_v = |R_v| + |S_v|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.r.len() + self.s.len()
    }

    /// `true` if the node holds nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.r.is_empty() && self.s.is_empty()
    }

    /// Access the fragment of one relation.
    #[inline]
    pub fn rel(&self, rel: Rel) -> &Vec<Value> {
        match rel {
            Rel::R => &self.r,
            Rel::S => &self.s,
        }
    }

    /// Mutable access to the fragment of one relation.
    #[inline]
    pub fn rel_mut(&mut self, rel: Rel) -> &mut Vec<Value> {
        match rel {
            Rel::R => &mut self.r,
            Rel::S => &mut self.s,
        }
    }
}
