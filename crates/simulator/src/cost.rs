//! Traffic metering and the round-max cost functional.
//!
//! The ledger records, per round and per *directed* edge, the number of
//! tuples routed through it. At the end of a run it folds into a [`Cost`]:
//!
//! ```text
//! cost(A) = Σ_i max_e |Y_i(e)| / w_e
//! ```
//!
//! measured in tuples, plus the same quantity in bits
//! (`bits = tuples × bits_per_tuple`).

use tamp_topology::{DirEdgeId, Tree};

/// Number of bits used to represent one element when converting tuple costs
/// to bit costs. The paper charges `O(log N)` bits per element; we default
/// to the machine representation.
pub const DEFAULT_BITS_PER_TUPLE: u64 = 64;

/// Per-round traffic ledger, stored **sparsely**: each round keeps only
/// the `(directed edge, tuples)` pairs it actually touched, sorted by
/// edge id. A 4096-node repartition round on a 5461-node fat-tree
/// touches a few thousand edges; a dense `Vec<u64>` per round would
/// carry all ~11k directed edges for every round of every run. Memory
/// and [`Ledger::finish`] are O(touched), not O(edges × rounds).
#[derive(Clone, Debug)]
pub(crate) struct Ledger {
    /// Bandwidth of each directed edge (`f64::INFINITY` allowed).
    bandwidth: Vec<f64>,
    /// `rounds[i]` = nonzero `(dir-edge index, tuples)` pairs of round
    /// `i`, ascending by edge index.
    rounds: Vec<Vec<(u32, u64)>>,
}

impl Ledger {
    pub(crate) fn new(tree: &Tree) -> Self {
        let bandwidth = tree.dir_edges().map(|d| tree.bandwidth(d).get()).collect();
        Ledger {
            bandwidth,
            rounds: Vec::new(),
        }
    }

    /// Append the touched-edge pairs of a finished round (ascending by
    /// edge index, zero-tuple entries omitted).
    pub(crate) fn push_round(&mut self, traffic: Vec<(u32, u64)>) {
        debug_assert!(traffic.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(traffic
            .iter()
            .all(|&(d, t)| (d as usize) < self.bandwidth.len() && t > 0));
        self.rounds.push(traffic);
    }

    pub(crate) fn num_dir_edges(&self) -> usize {
        self.bandwidth.len()
    }

    pub(crate) fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    pub(crate) fn finish(self) -> Cost {
        let mut per_round = Vec::with_capacity(self.rounds.len());
        let mut edge_totals = vec![0u64; self.bandwidth.len()];
        for traffic in &self.rounds {
            let mut round = RoundCost {
                tuple_cost: 0.0,
                bottleneck: None,
                max_tuples: 0,
                total_tuples: 0,
            };
            // Ascending edge order keeps the bottleneck tie-break (first
            // edge attaining the max) identical to the old dense scan.
            for &(d, tuples) in traffic {
                edge_totals[d as usize] += tuples;
                round.total_tuples += tuples;
                round.max_tuples = round.max_tuples.max(tuples);
                let w = self.bandwidth[d as usize];
                let c = if w.is_infinite() {
                    0.0
                } else {
                    tuples as f64 / w
                };
                if c > round.tuple_cost {
                    round.tuple_cost = c;
                    round.bottleneck = Some(DirEdgeId(d));
                }
            }
            per_round.push(round);
        }
        Cost {
            per_round,
            edge_totals,
        }
    }
}

/// Cost of one round: the bottleneck term plus diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundCost {
    /// `max_e |Y_i(e)| / w_e`, in tuples.
    pub tuple_cost: f64,
    /// The edge attaining the maximum (`None` if the round was silent).
    pub bottleneck: Option<DirEdgeId>,
    /// Largest per-edge tuple count, regardless of bandwidth.
    pub max_tuples: u64,
    /// Total tuples moved in this round (Σ over directed edges).
    pub total_tuples: u64,
}

/// The cost of a full run of a protocol.
#[derive(Clone, Debug, Default)]
pub struct Cost {
    /// Per-round breakdown, in execution order.
    pub per_round: Vec<RoundCost>,
    /// Total tuples per directed edge, summed over rounds.
    pub edge_totals: Vec<u64>,
}

impl Cost {
    /// `cost(A) = Σ_i max_e |Y_i(e)| / w_e` in tuples.
    pub fn tuple_cost(&self) -> f64 {
        self.per_round.iter().map(|r| r.tuple_cost).sum()
    }

    /// The same cost in bits, at `bits` bits per tuple.
    pub fn bit_cost(&self, bits: u64) -> f64 {
        self.tuple_cost() * bits as f64
    }

    /// Number of rounds in which any data moved.
    pub fn active_rounds(&self) -> usize {
        self.per_round.iter().filter(|r| r.total_tuples > 0).count()
    }

    /// Total tuples moved across all edges and rounds (volume, not cost).
    pub fn total_tuples(&self) -> u64 {
        self.per_round.iter().map(|r| r.total_tuples).sum()
    }

    /// Tuples through a directed edge, summed over rounds.
    pub fn edge_total(&self, d: DirEdgeId) -> u64 {
        self.edge_totals[d.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_topology::builders;

    #[test]
    fn cost_is_round_max_sum() {
        let t = builders::heterogeneous_star(&[1.0, 2.0]);
        let mut ledger = Ledger::new(&t);
        // Round 1: 10 tuples on edge 0 (bw 1), 10 on edge 2 (bw 2).
        ledger.push_round(vec![(0, 10), (2, 10)]);
        // Round 2: 6 tuples on edge 2 (bw 2) only.
        ledger.push_round(vec![(2, 6)]);
        let cost = ledger.finish();
        assert_eq!(cost.per_round[0].tuple_cost, 10.0); // max(10/1, 10/2)
        assert_eq!(cost.per_round[1].tuple_cost, 3.0);
        assert_eq!(cost.tuple_cost(), 13.0);
        assert_eq!(cost.bit_cost(64), 13.0 * 64.0);
        assert_eq!(cost.total_tuples(), 26);
        assert_eq!(cost.edge_total(DirEdgeId(2)), 16);
        assert_eq!(cost.active_rounds(), 2);
        assert_eq!(cost.per_round[0].bottleneck, Some(DirEdgeId(0)));
    }

    #[test]
    fn infinite_bandwidth_is_free() {
        let t = builders::mpc_star(2);
        let mut ledger = Ledger::new(&t);
        // Load every edge; only finite (hub→leaf) directions should cost.
        let n = ledger.num_dir_edges();
        ledger.push_round((0..n as u32).map(|d| (d, 8)).collect());
        let cost = ledger.finish();
        assert_eq!(cost.per_round[0].tuple_cost, 8.0);
    }
}
