//! Initial data distributions `D` over the compute nodes.
//!
//! The paper departs from prior MPC work by making the initial distribution
//! a first-class input: algorithms know `|X_0(v)|` (and per-relation
//! cardinalities) for every compute node and optimize against it. A
//! [`Placement`] carries the actual fragments; [`PlacementStats`] carries
//! the cardinalities — the part protocols are allowed to use for planning.

use tamp_topology::{NodeId, Tree};

use crate::error::SimError;
use crate::value::{NodeState, Rel, Value};

/// The initial distribution of input data across nodes.
///
/// Fragments are indexed by node id; router entries must stay empty. The
/// fragments of all nodes partition the input (no initial duplication),
/// which is the paper's standing assumption — [`Placement::validate`]
/// checks emptiness at routers but deliberately not disjointness, since
/// inputs are multisets for sorting.
#[derive(Clone, Debug, Default)]
pub struct Placement {
    fragments: Vec<NodeState>,
}

impl Placement {
    /// An empty placement shaped for `tree`.
    pub fn empty(tree: &Tree) -> Self {
        Placement {
            fragments: vec![NodeState::default(); tree.num_nodes()],
        }
    }

    /// An empty placement for a topology of `n` nodes. Useful when the
    /// topology is a general graph rather than a [`Tree`].
    pub fn empty_sized(n: usize) -> Self {
        Placement {
            fragments: vec![NodeState::default(); n],
        }
    }

    /// Build from per-node fragments (indexed by node id).
    pub fn from_fragments(fragments: Vec<NodeState>) -> Self {
        Placement { fragments }
    }

    /// Set the `R` fragment of node `v`.
    pub fn set_r(&mut self, v: NodeId, data: Vec<Value>) {
        self.fragments[v.index()].r = data;
    }

    /// Set the `S` fragment of node `v`.
    pub fn set_s(&mut self, v: NodeId, data: Vec<Value>) {
        self.fragments[v.index()].s = data;
    }

    /// Append to the fragment of one relation at node `v`.
    pub fn push(&mut self, v: NodeId, rel: Rel, value: Value) {
        self.fragments[v.index()].rel_mut(rel).push(value);
    }

    /// The fragment of node `v`.
    pub fn node(&self, v: NodeId) -> &NodeState {
        &self.fragments[v.index()]
    }

    /// All fragments, indexed by node id.
    pub fn fragments(&self) -> &[NodeState] {
        &self.fragments
    }

    /// Consume into per-node fragments.
    pub fn into_fragments(self) -> Vec<NodeState> {
        self.fragments
    }

    /// Check shape and that routers hold no data.
    pub fn validate(&self, tree: &Tree) -> Result<(), SimError> {
        if self.fragments.len() != tree.num_nodes() {
            return Err(SimError::PlacementShape {
                expected: tree.num_nodes(),
                got: self.fragments.len(),
            });
        }
        for v in tree.nodes() {
            if !tree.is_compute(v) && !self.fragments[v.index()].is_empty() {
                return Err(SimError::DataAtRouter(v));
            }
        }
        Ok(())
    }

    /// Cardinality statistics (the "public knowledge" of the model).
    pub fn stats(&self) -> PlacementStats {
        let r: Vec<u64> = self.fragments.iter().map(|f| f.r.len() as u64).collect();
        let s: Vec<u64> = self.fragments.iter().map(|f| f.s.len() as u64).collect();
        let n: Vec<u64> = r.iter().zip(&s).map(|(a, b)| a + b).collect();
        PlacementStats {
            total_r: r.iter().sum(),
            total_s: s.iter().sum(),
            r,
            s,
            n,
        }
    }

    /// All `R` values across nodes (for verification).
    pub fn all_r(&self) -> Vec<Value> {
        self.fragments
            .iter()
            .flat_map(|f| f.r.iter().copied())
            .collect()
    }

    /// All `S` values across nodes (for verification).
    pub fn all_s(&self) -> Vec<Value> {
        self.fragments
            .iter()
            .flat_map(|f| f.s.iter().copied())
            .collect()
    }
}

/// Per-node cardinalities `|R_v|`, `|S_v|`, `N_v` plus totals — the
/// statistics the model assumes every algorithm knows up front
/// (Section 2, "Computation").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacementStats {
    /// `|R_v|` per node id.
    pub r: Vec<u64>,
    /// `|S_v|` per node id.
    pub s: Vec<u64>,
    /// `N_v = |R_v| + |S_v|` per node id.
    pub n: Vec<u64>,
    /// `|R|`.
    pub total_r: u64,
    /// `|S|`.
    pub total_s: u64,
}

impl PlacementStats {
    /// Total input size `N = |R| + |S|`.
    #[inline]
    pub fn total_n(&self) -> u64 {
        self.total_r + self.total_s
    }

    /// `N_v` for a node.
    #[inline]
    pub fn n_v(&self, v: NodeId) -> u64 {
        self.n[v.index()]
    }

    /// `|R_v|` for a node.
    #[inline]
    pub fn r_v(&self, v: NodeId) -> u64 {
        self.r[v.index()]
    }

    /// `|S_v|` for a node.
    #[inline]
    pub fn s_v(&self, v: NodeId) -> u64 {
        self.s[v.index()]
    }

    /// Cardinalities of one relation, indexed by node.
    #[inline]
    pub fn rel(&self, rel: Rel) -> &[u64] {
        match rel {
            Rel::R => &self.r,
            Rel::S => &self.s,
        }
    }

    /// Total cardinality of one relation.
    #[inline]
    pub fn total_rel(&self, rel: Rel) -> u64 {
        match rel {
            Rel::R => self.total_r,
            Rel::S => self.total_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_topology::builders;

    #[test]
    fn stats_count_fragments() {
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![1, 2, 3]);
        p.set_s(NodeId(0), vec![9]);
        p.set_s(NodeId(2), vec![4, 5]);
        let st = p.stats();
        assert_eq!(st.total_r, 3);
        assert_eq!(st.total_s, 3);
        assert_eq!(st.total_n(), 6);
        assert_eq!(st.n_v(NodeId(0)), 4);
        assert_eq!(st.n_v(NodeId(1)), 0);
        assert_eq!(st.s_v(NodeId(2)), 2);
        assert!(p.validate(&t).is_ok());
    }

    #[test]
    fn rejects_data_at_router() {
        let t = builders::star(2, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(2), vec![1]); // node 2 is the hub router
        assert_eq!(p.validate(&t), Err(SimError::DataAtRouter(NodeId(2))));
    }

    #[test]
    fn rejects_wrong_shape() {
        let t = builders::star(2, 1.0);
        let p = Placement::from_fragments(vec![NodeState::default(); 2]);
        assert!(matches!(
            p.validate(&t),
            Err(SimError::PlacementShape {
                expected: 3,
                got: 2
            })
        ));
    }
}
