//! O(1) lowest-common-ancestor queries over a [`Tree`].
//!
//! [`LcaIndex`] is the routing substrate that replaced the old
//! `PathCache` memo table. Instead of memoizing every `(src, dst)` path —
//! `O(p² · depth)` memory on an all-to-all workload, plus a hash lookup
//! on every send — it stores `O(n log n)` flat arrays from which **any**
//! path decomposes in constant time:
//!
//! - an **Euler tour** of the internal rooting at node 0 (`2n − 1`
//!   entries) with each node's first occurrence;
//! - a **sparse table** of range-minimum-by-depth queries over the tour,
//!   giving `lca(a, b)` in O(1) with no hashing;
//! - per-node `depth`, `parent`, and the two directed **parent-edge ids**
//!   (`up_edge(v)` = `v → parent(v)`, `down_edge(v)` = `parent(v) → v`).
//!
//! The unique tree path `a → b` is then `a → lca(a, b) → b`: the first
//! leg climbs `up_edge`s, the second descends `down_edge`s. Aggregate
//! consumers (the traffic meter's subtree-delta charging, virtual-tree
//! Steiner unions) never materialize the path at all — they only need
//! `lca`, `tin` order and the parent-edge arrays; [`LcaIndex::for_each_path_edge`]
//! exists for the callers that do walk edges (the query planner's
//! estimates, test oracles) and costs O(path length) with zero
//! allocation.

use crate::node::NodeId;
use crate::tree::{DirEdgeId, Tree};

const NONE: u32 = u32::MAX;

/// Euler-tour + sparse-table LCA index with flat path-decomposition
/// arrays. Build once per [`Tree`] in `O(n log n)`; query forever in
/// O(1).
#[derive(Clone, Debug)]
pub struct LcaIndex {
    /// Euler tour of the rooting at node 0: node ids, `2n − 1` entries.
    euler: Vec<u32>,
    /// Depth of `euler[i]` (kept alongside to make range-min cache-local).
    euler_depth: Vec<u32>,
    /// First occurrence of each node in `euler`.
    first: Vec<u32>,
    /// `table[k]` holds, for each tour position `i`, the position of the
    /// minimum-depth entry in `euler[i .. i + 2^k]`.
    table: Vec<Vec<u32>>,
    /// Per-node depth in the rooting at node 0.
    depth: Vec<u32>,
    /// Parent node id (`NONE` for the root).
    parent: Vec<u32>,
    /// Directed edge `v → parent(v)` (`NONE` for the root).
    up: Vec<u32>,
    /// Directed edge `parent(v) → v` (`NONE` for the root).
    down: Vec<u32>,
}

impl LcaIndex {
    /// Build the index for `tree`'s internal rooting at node 0.
    pub fn new(tree: &Tree) -> Self {
        let n = tree.num_nodes();
        let mut depth = vec![0u32; n];
        let mut parent = vec![NONE; n];
        let mut up = vec![NONE; n];
        let mut down = vec![NONE; n];
        for v in tree.nodes() {
            if let Some((p, e)) = tree.parent0(v) {
                parent[v.index()] = p.0;
                let (eu, _) = tree.endpoints(e);
                // Direction 0 of `e` is `eu → ev` as stored.
                up[v.index()] = DirEdgeId::new(e, eu != v).0;
                down[v.index()] = DirEdgeId::new(e, eu == v).0;
            }
        }
        // Parents precede children in DFS order, so one forward pass
        // fills every depth.
        for &v in tree.dfs_order() {
            if let Some((p, _)) = tree.parent0(v) {
                depth[v.index()] = depth[p.index()] + 1;
            }
        }

        // Euler tour: enter a node, and re-enter it after each child.
        let mut euler = Vec::with_capacity(2 * n - 1);
        let mut euler_depth = Vec::with_capacity(2 * n - 1);
        let mut first = vec![NONE; n];
        // Iterative DFS emitting (node, visit) events; children in
        // adjacency order to match the Tree's own traversals.
        enum Ev {
            Enter(NodeId),
            Emit(NodeId),
        }
        let mut stack = vec![Ev::Enter(NodeId(0))];
        while let Some(ev) = stack.pop() {
            let x = match ev {
                Ev::Enter(x) => {
                    // Children first-to-last ⇒ push their enter events in
                    // reverse, interleaved with re-emissions of `x`.
                    let children: Vec<NodeId> = tree
                        .neighbors(x)
                        .iter()
                        .filter(|&&(y, _)| parent[y.index()] == x.0)
                        .map(|&(y, _)| y)
                        .collect();
                    for &c in children.iter().rev() {
                        stack.push(Ev::Emit(x));
                        stack.push(Ev::Enter(c));
                    }
                    x
                }
                Ev::Emit(x) => x,
            };
            if first[x.index()] == NONE {
                first[x.index()] = euler.len() as u32;
            }
            euler.push(x.0);
            euler_depth.push(depth[x.index()]);
        }
        debug_assert_eq!(euler.len(), 2 * n - 1);

        // Sparse table over the tour (range-min by depth).
        let m = euler.len();
        let levels = (usize::BITS - m.leading_zeros()) as usize; // ⌈log2 m⌉ + 1
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..m as u32).collect());
        let mut k = 1usize;
        while (1 << k) <= m {
            let half = 1 << (k - 1);
            let prev = &table[k - 1];
            let mut row = Vec::with_capacity(m - (1 << k) + 1);
            for i in 0..=(m - (1 << k)) {
                let a = prev[i];
                let b = prev[i + half];
                row.push(if euler_depth[a as usize] <= euler_depth[b as usize] {
                    a
                } else {
                    b
                });
            }
            table.push(row);
            k += 1;
        }

        LcaIndex {
            euler,
            euler_depth,
            first,
            table,
            depth,
            parent,
            up,
            down,
        }
    }

    /// Number of nodes indexed.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.first.len()
    }

    /// Depth of `v` in the rooting at node 0.
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }

    /// DFS preorder key of `v` (its first Euler-tour position). Sorting
    /// nodes by `tin` yields the order virtual-tree constructions need:
    /// every subtree is a contiguous run.
    #[inline]
    pub fn tin(&self, v: NodeId) -> u32 {
        self.first[v.index()]
    }

    /// Parent of `v` in the rooting at node 0 (`None` for the root).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v.index()];
        (p != NONE).then_some(NodeId(p))
    }

    /// The directed edge `v → parent(v)` (`None` for the root).
    #[inline]
    pub fn up_edge(&self, v: NodeId) -> Option<DirEdgeId> {
        let d = self.up[v.index()];
        (d != NONE).then_some(DirEdgeId(d))
    }

    /// The directed edge `parent(v) → v` (`None` for the root).
    #[inline]
    pub fn down_edge(&self, v: NodeId) -> Option<DirEdgeId> {
        let d = self.down[v.index()];
        (d != NONE).then_some(DirEdgeId(d))
    }

    /// The lowest common ancestor of `a` and `b`, in O(1).
    #[inline]
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut i, mut j) = (self.first[a.index()], self.first[b.index()]);
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let (i, j) = (i as usize, j as usize + 1); // half-open [i, j)
        let k = (usize::BITS - 1 - (j - i).leading_zeros()) as usize; // ⌊log2 len⌋
        let x = self.table[k][i];
        let y = self.table[k][j - (1 << k)];
        let pos = if self.euler_depth[x as usize] <= self.euler_depth[y as usize] {
            x
        } else {
            y
        };
        NodeId(self.euler[pos as usize])
    }

    /// Number of hops on the unique path `a → b`, in O(1).
    #[inline]
    pub fn dist(&self, a: NodeId, b: NodeId) -> u32 {
        let l = self.lca(a, b);
        self.depth(a) + self.depth(b) - 2 * self.depth(l)
    }

    /// Visit every directed edge of the unique path `a → b`, in path
    /// order, without allocating: the `a → lca` leg climbs `up_edge`s,
    /// the `lca → b` leg descends `down_edge`s.
    pub fn for_each_path_edge<F: FnMut(DirEdgeId)>(&self, a: NodeId, b: NodeId, mut f: F) {
        if a == b {
            return;
        }
        let l = self.lca(a, b);
        let mut x = a;
        while x != l {
            f(DirEdgeId(self.up[x.index()]));
            x = NodeId(self.parent[x.index()]);
        }
        // Collect the downward leg bottom-up, then emit reversed. The
        // descent is at most the tree depth; a smallvec-style stack
        // buffer would remove even this, but paths are only walked by
        // estimate/oracle code, never by the aggregate meter.
        let mut leg = Vec::with_capacity(self.dist(l, b) as usize);
        let mut y = b;
        while y != l {
            leg.push(DirEdgeId(self.down[y.index()]));
            y = NodeId(self.parent[y.index()]);
        }
        for &d in leg.iter().rev() {
            f(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn all_trees() -> Vec<Tree> {
        vec![
            builders::star(5, 1.0),
            builders::rack_tree(&[(2, 1.0, 2.0), (3, 2.0, 1.0)], 1.0),
            builders::fat_tree(3, 2, 1.0),
            builders::caterpillar(5, 2, 1.0),
            builders::random_tree(9, 6, 0.5, 8.0, 7),
            builders::random_tree(1, 1, 1.0, 1.0, 0),
        ]
    }

    /// Reference LCA: climb to equal depth, then in lockstep.
    fn naive_lca(tree: &Tree, mut a: NodeId, mut b: NodeId) -> NodeId {
        let depth = |mut v: NodeId| {
            let mut d = 0;
            while let Some((p, _)) = tree.parent0(v) {
                v = p;
                d += 1;
            }
            d
        };
        let (mut da, mut db) = (depth(a), depth(b));
        while da > db {
            a = tree.parent0(a).unwrap().0;
            da -= 1;
        }
        while db > da {
            b = tree.parent0(b).unwrap().0;
            db -= 1;
        }
        while a != b {
            a = tree.parent0(a).unwrap().0;
            b = tree.parent0(b).unwrap().0;
        }
        a
    }

    #[test]
    fn lca_matches_naive_on_all_pairs() {
        for tree in all_trees() {
            let idx = LcaIndex::new(&tree);
            for a in tree.nodes() {
                for b in tree.nodes() {
                    assert_eq!(
                        idx.lca(a, b),
                        naive_lca(&tree, a, b),
                        "lca({a}, {b}) on {} nodes",
                        tree.num_nodes()
                    );
                }
            }
        }
    }

    #[test]
    fn path_decomposition_matches_tree_path() {
        for tree in all_trees() {
            let idx = LcaIndex::new(&tree);
            for a in tree.nodes() {
                for b in tree.nodes() {
                    let mut got = Vec::new();
                    idx.for_each_path_edge(a, b, |d| got.push(d));
                    assert_eq!(got, tree.path(a, b), "path({a}, {b})");
                    assert_eq!(got.len() as u32, idx.dist(a, b));
                }
            }
        }
    }

    #[test]
    fn parent_edges_are_consistent() {
        for tree in all_trees() {
            let idx = LcaIndex::new(&tree);
            for v in tree.nodes() {
                match tree.parent0(v) {
                    None => {
                        assert!(idx.parent(v).is_none());
                        assert!(idx.up_edge(v).is_none() && idx.down_edge(v).is_none());
                        assert_eq!(idx.depth(v), 0);
                    }
                    Some((p, _)) => {
                        assert_eq!(idx.parent(v), Some(p));
                        let up = idx.up_edge(v).unwrap();
                        let down = idx.down_edge(v).unwrap();
                        assert_eq!(tree.dir_endpoints(up), (v, p));
                        assert_eq!(tree.dir_endpoints(down), (p, v));
                        assert_eq!(idx.depth(v), idx.depth(p) + 1);
                    }
                }
            }
        }
    }

    #[test]
    fn tin_orders_subtrees_contiguously() {
        for tree in all_trees() {
            let idx = LcaIndex::new(&tree);
            let mut nodes: Vec<NodeId> = tree.nodes().collect();
            nodes.sort_by_key(|&v| idx.tin(v));
            // For every node, the nodes of its subtree form a contiguous
            // run in tin order.
            for c in tree.nodes() {
                let in_subtree: Vec<bool> = nodes.iter().map(|&x| tree.in_subtree0(x, c)).collect();
                let first = in_subtree.iter().position(|&b| b);
                let last = in_subtree.iter().rposition(|&b| b);
                if let (Some(f), Some(l)) = (first, last) {
                    assert!(
                        in_subtree[f..=l].iter().all(|&b| b),
                        "subtree of {c} not contiguous in tin order"
                    );
                }
            }
        }
    }
}
