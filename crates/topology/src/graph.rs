//! General (non-tree) network topologies — the paper's §7 future work.
//!
//! > "General topologies (e.g., grid, torus) are particularly challenging
//! > because there are multiple routing paths between two compute nodes."
//!
//! This module provides the substrate for experimenting with that setting:
//!
//! - [`Graph`] — an arbitrary connected directed-symmetric topology with
//!   per-direction bandwidths and compute/router node kinds;
//! - [`Graph::widest_path`] — maximum-bottleneck routing between any two
//!   nodes (the natural single-path routing rule when bandwidths differ);
//! - [`Graph::max_bandwidth_spanning_tree`] — extraction of a spanning
//!   [`Tree`] that keeps the widest links, so that every tree algorithm in
//!   `tamp-core` runs unchanged on a general topology (node ids are
//!   preserved, so placements transfer verbatim);
//! - [`Graph::bfs_spanning_tree`] — hop-minimal extraction, as an ablation
//!   against the bandwidth-greedy tree;
//! - [`Graph::cut_capacity`] — the total bandwidth crossing a bipartition,
//!   which turns the paper's per-edge lower bounds into valid per-*cut*
//!   lower bounds on the graph: if `D` tuples must cross a cut with total
//!   crossing capacity `W`, any algorithm pays at least `D / W`;
//! - builders for the topology families the paper names as future work
//!   (grid, torus) plus hypercubes, rings, cliques and random connected
//!   graphs.

use std::collections::{BinaryHeap, VecDeque};

use crate::bandwidth::Bandwidth;
use crate::error::TopologyError;
use crate::node::{NodeId, NodeKind};
use crate::tree::{DirEdgeId, EdgeId, Tree};

#[derive(Clone, Debug)]
struct GEdge {
    u: NodeId,
    v: NodeId,
    w_uv: Bandwidth,
    w_vu: Bandwidth,
}

/// A validated connected topology that may contain cycles.
///
/// Edge and node id conventions mirror [`Tree`]: [`EdgeId`] indexes the
/// undirected edge list, [`DirEdgeId`] selects a direction (`u→v` forward,
/// `v→u` reverse).
#[derive(Clone, Debug)]
pub struct Graph {
    kinds: Vec<NodeKind>,
    edges: Vec<GEdge>,
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    compute: Vec<NodeId>,
}

/// Incremental constructor for [`Graph`], mirroring
/// [`TreeBuilder`](crate::tree::TreeBuilder).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    kinds: Vec<NodeKind>,
    edges: Vec<(usize, usize, f64, f64)>,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a compute node.
    pub fn compute(&mut self) -> NodeId {
        self.kinds.push(NodeKind::Compute);
        NodeId::from_index(self.kinds.len() - 1)
    }

    /// Add a routing-only node.
    pub fn router(&mut self) -> NodeId {
        self.kinds.push(NodeKind::Router);
        NodeId::from_index(self.kinds.len() - 1)
    }

    /// Add `n` compute nodes.
    pub fn computes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.compute()).collect()
    }

    /// Add a symmetric link of bandwidth `w`.
    pub fn link(&mut self, u: NodeId, v: NodeId, w: f64) -> Result<(), TopologyError> {
        self.link_asym(u, v, w, w)
    }

    /// Add a link with direction-dependent bandwidths.
    pub fn link_asym(
        &mut self,
        u: NodeId,
        v: NodeId,
        w_uv: f64,
        w_vu: f64,
    ) -> Result<(), TopologyError> {
        Bandwidth::new(w_uv)?;
        Bandwidth::new(w_vu)?;
        self.edges.push((u.index(), v.index(), w_uv, w_vu));
        Ok(())
    }

    /// Validate and build.
    pub fn build(self) -> Result<Graph, TopologyError> {
        Graph::from_parts(self.kinds, self.edges)
    }
}

impl Graph {
    /// Build a graph from node kinds and edges `(u, v, w_{u→v}, w_{v→u})`.
    pub fn from_parts(
        kinds: Vec<NodeKind>,
        raw_edges: Vec<(usize, usize, f64, f64)>,
    ) -> Result<Self, TopologyError> {
        let n = kinds.len();
        let mut edges = Vec::with_capacity(raw_edges.len());
        let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n];
        for (i, &(u, v, w_uv, w_vu)) in raw_edges.iter().enumerate() {
            if u >= n {
                return Err(TopologyError::UnknownNode(u));
            }
            if v >= n {
                return Err(TopologyError::UnknownNode(v));
            }
            if u == v {
                return Err(TopologyError::SelfLoop(u));
            }
            let e = EdgeId(i as u32);
            let (u, v) = (NodeId::from_index(u), NodeId::from_index(v));
            edges.push(GEdge {
                u,
                v,
                w_uv: Bandwidth::new(w_uv)?,
                w_vu: Bandwidth::new(w_vu)?,
            });
            adj[u.index()].push((v, e));
            adj[v.index()].push((u, e));
        }
        let compute: Vec<NodeId> = (0..n)
            .filter(|&i| kinds[i].is_compute())
            .map(NodeId::from_index)
            .collect();
        if compute.is_empty() {
            return Err(TopologyError::NoComputeNodes);
        }
        // Connectivity check (BFS from node 0).
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([NodeId(0)]);
        seen[0] = true;
        let mut count = 1usize;
        while let Some(x) = queue.pop_front() {
            for &(y, _) in &adj[x.index()] {
                if !seen[y.index()] {
                    seen[y.index()] = true;
                    count += 1;
                    queue.push_back(y);
                }
            }
        }
        if count != n {
            return Err(TopologyError::Disconnected);
        }
        Ok(Graph {
            kinds,
            edges,
            adj,
            compute,
        })
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Compute nodes in id order.
    #[inline]
    pub fn compute_nodes(&self) -> &[NodeId] {
        &self.compute
    }

    /// Is `v` a compute node?
    #[inline]
    pub fn is_compute(&self, v: NodeId) -> bool {
        self.kinds[v.index()].is_compute()
    }

    /// Neighbors of `v` as `(neighbor, edge)` pairs.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[v.index()]
    }

    /// Endpoints `(u, v)` of an edge.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let ed = &self.edges[e.index()];
        (ed.u, ed.v)
    }

    /// Bandwidth of a directed edge.
    #[inline]
    pub fn bandwidth(&self, d: DirEdgeId) -> Bandwidth {
        let ed = &self.edges[d.edge().index()];
        if d.is_reverse() {
            ed.w_vu
        } else {
            ed.w_uv
        }
    }

    /// The symmetric bandwidth of an edge (`min` of the two directions).
    #[inline]
    pub fn sym_bandwidth(&self, e: EdgeId) -> Bandwidth {
        let ed = &self.edges[e.index()];
        if ed.w_uv.get() <= ed.w_vu.get() {
            ed.w_uv
        } else {
            ed.w_vu
        }
    }

    /// `true` if every edge has equal bandwidth in both directions.
    pub fn is_symmetric(&self) -> bool {
        self.edges.iter().all(|e| e.w_uv == e.w_vu)
    }

    /// The directed edge from `a` toward neighbor `b`, if the link exists.
    pub fn dir_edge_between(&self, a: NodeId, b: NodeId) -> Option<DirEdgeId> {
        self.adj[a.index()].iter().find_map(|&(nb, e)| {
            (nb == b).then(|| {
                let reverse = self.edges[e.index()].u != a;
                DirEdgeId::new(e, reverse)
            })
        })
    }

    /// Maximum-bottleneck ("widest") path from `a` to `b`, tie-broken by
    /// hop count. Returns the directed edges along the path, or an empty
    /// path when `a == b`.
    pub fn widest_path(&self, a: NodeId, b: NodeId) -> Vec<DirEdgeId> {
        if a == b {
            return Vec::new();
        }
        let n = self.num_nodes();
        // (bottleneck, -hops) priority; f64 bottleneck via ordered bits.
        #[derive(PartialEq)]
        struct Item {
            bottleneck: f64,
            hops: usize,
            node: NodeId,
        }
        impl Eq for Item {}
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Bandwidths are validated positive and finite, so the
                // F1 total order agrees with partial_cmp here — but it
                // can never panic or silently equate on a stray NaN.
                self.bottleneck
                    .total_cmp(&other.bottleneck)
                    .then_with(|| other.hops.cmp(&self.hops))
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut best: Vec<(f64, usize)> = vec![(0.0, usize::MAX); n];
        let mut back: Vec<Option<DirEdgeId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        best[a.index()] = (f64::INFINITY, 0);
        heap.push(Item {
            bottleneck: f64::INFINITY,
            hops: 0,
            node: a,
        });
        while let Some(Item {
            bottleneck,
            hops,
            node,
        }) = heap.pop()
        {
            if (bottleneck, hops) != (best[node.index()].0, best[node.index()].1) {
                continue;
            }
            if node == b {
                break;
            }
            for &(nb, e) in &self.adj[node.index()] {
                let reverse = self.edges[e.index()].u != node;
                let d = DirEdgeId::new(e, reverse);
                let w = self.bandwidth(d).get();
                let cand = (bottleneck.min(w), hops + 1);
                let cur = best[nb.index()];
                if cand.0 > cur.0 || (cand.0 == cur.0 && cand.1 < cur.1) {
                    best[nb.index()] = cand;
                    back[nb.index()] = Some(d);
                    heap.push(Item {
                        bottleneck: cand.0,
                        hops: cand.1,
                        node: nb,
                    });
                }
            }
        }
        // Reconstruct b ← a.
        let mut path = Vec::new();
        let mut cur = b;
        while cur != a {
            let d = back[cur.index()].expect("graph is connected");
            path.push(d);
            let (from, _) = self.dir_endpoints(d);
            cur = from;
        }
        path.reverse();
        path
    }

    /// Endpoints `(from, to)` of a directed edge.
    #[inline]
    pub fn dir_endpoints(&self, d: DirEdgeId) -> (NodeId, NodeId) {
        let ed = &self.edges[d.edge().index()];
        if d.is_reverse() {
            (ed.v, ed.u)
        } else {
            (ed.u, ed.v)
        }
    }

    /// Extract the spanning tree that greedily keeps the widest links
    /// (Kruskal on descending symmetric bandwidth; deterministic
    /// tie-break by edge id). Node ids — and therefore placements — carry
    /// over unchanged.
    ///
    /// The resulting [`Tree`] preserves each chosen edge's per-direction
    /// bandwidths. Any algorithm cost measured on the tree is achievable
    /// on the graph (the tree's edges are graph edges), so tree-protocol
    /// costs are *upper* bounds for the graph while
    /// [`cut_capacity`](Graph::cut_capacity)-based bounds are *lower*
    /// bounds — the gap is the price of ignoring the extra links.
    pub fn max_bandwidth_spanning_tree(&self) -> Result<Tree, TopologyError> {
        let mut order: Vec<usize> = (0..self.edges.len()).collect();
        order.sort_by(|&i, &j| {
            let wi = self.sym_bandwidth(EdgeId(i as u32)).get();
            let wj = self.sym_bandwidth(EdgeId(j as u32)).get();
            wj.total_cmp(&wi).then(i.cmp(&j))
        });
        self.spanning_tree_from_edge_order(&order)
    }

    /// Extract a hop-minimal spanning tree by BFS from `root`. An ablation
    /// counterpart to [`Graph::max_bandwidth_spanning_tree`].
    pub fn bfs_spanning_tree(&self, root: NodeId) -> Result<Tree, TopologyError> {
        let n = self.num_nodes();
        let mut chosen: Vec<(usize, usize, f64, f64)> = Vec::with_capacity(n - 1);
        let mut seen = vec![false; n];
        seen[root.index()] = true;
        let mut queue = VecDeque::from([root]);
        while let Some(x) = queue.pop_front() {
            for &(y, e) in &self.adj[x.index()] {
                if !seen[y.index()] {
                    seen[y.index()] = true;
                    let ed = &self.edges[e.index()];
                    chosen.push((ed.u.index(), ed.v.index(), ed.w_uv.get(), ed.w_vu.get()));
                    queue.push_back(y);
                }
            }
        }
        Tree::from_parts(self.kinds.clone(), chosen)
    }

    fn spanning_tree_from_edge_order(&self, order: &[usize]) -> Result<Tree, TopologyError> {
        let n = self.num_nodes();
        let mut dsu = Dsu::new(n);
        let mut chosen: Vec<(usize, usize, f64, f64)> = Vec::with_capacity(n - 1);
        for &i in order {
            let ed = &self.edges[i];
            if dsu.union(ed.u.index(), ed.v.index()) {
                chosen.push((ed.u.index(), ed.v.index(), ed.w_uv.get(), ed.w_vu.get()));
                if chosen.len() == n - 1 {
                    break;
                }
            }
        }
        Tree::from_parts(self.kinds.clone(), chosen)
    }

    /// Total bandwidth of all directed edges crossing the bipartition
    /// `side` (both directions). `side[v] == true` marks one side.
    ///
    /// If `D` tuples must cross the cut in total, any algorithm's cost is
    /// at least `D / cut_capacity`: each crossing tuple uses some crossing
    /// edge, and a round in which `y_d` tuples traverse directed edge `d`
    /// costs `max_d y_d / w_d ≥ (Σ_d y_d) / (Σ_d w_d)`.
    ///
    /// Returns `f64::INFINITY` if any crossing edge has infinite
    /// bandwidth.
    pub fn cut_capacity(&self, side: &[bool]) -> f64 {
        assert_eq!(side.len(), self.num_nodes());
        let mut total = 0.0f64;
        for ed in &self.edges {
            if side[ed.u.index()] != side[ed.v.index()] {
                if ed.w_uv.is_infinite() || ed.w_vu.is_infinite() {
                    return f64::INFINITY;
                }
                total += ed.w_uv.get() + ed.w_vu.get();
            }
        }
        total
    }

    /// The bipartition a spanning-tree edge induces on this graph's nodes:
    /// `side[v] == true` iff `v` lies on `tree.deeper_endpoint(e)`'s side.
    ///
    /// The `tree` must span this graph's node set (same ids), e.g. one
    /// produced by [`Graph::max_bandwidth_spanning_tree`].
    pub fn tree_cut_side(&self, tree: &Tree, e: EdgeId) -> Vec<bool> {
        assert_eq!(tree.num_nodes(), self.num_nodes());
        let deep = tree.deeper_endpoint(e);
        (0..self.num_nodes())
            .map(|i| tree.cut_side_of(e, NodeId(i as u32)) == tree.cut_side_of(e, deep))
            .collect()
    }
}

/// Disjoint-set union with path halving and union by size.
struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }
}

/// Builders for the general-topology families of §7.
pub mod builders {
    use super::*;

    /// `rows × cols` grid of compute nodes, 4-neighbor links of
    /// bandwidth `w`.
    pub fn grid(rows: usize, cols: usize, w: f64) -> Graph {
        assert!(rows >= 1 && cols >= 1 && rows * cols >= 1);
        let mut b = GraphBuilder::new();
        let nodes = b.computes(rows * cols);
        let id = |r: usize, c: usize| nodes[r * cols + c];
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    b.link(id(r, c), id(r, c + 1), w).expect("valid bw");
                }
                if r + 1 < rows {
                    b.link(id(r, c), id(r + 1, c), w).expect("valid bw");
                }
            }
        }
        b.build().expect("grid is connected")
    }

    /// `rows × cols` torus (grid with wraparound links). Requires
    /// `rows, cols ≥ 3` so no duplicate edges arise.
    pub fn torus(rows: usize, cols: usize, w: f64) -> Graph {
        assert!(rows >= 3 && cols >= 3);
        let mut b = GraphBuilder::new();
        let nodes = b.computes(rows * cols);
        let id = |r: usize, c: usize| nodes[r * cols + c];
        for r in 0..rows {
            for c in 0..cols {
                b.link(id(r, c), id(r, (c + 1) % cols), w)
                    .expect("valid bw");
                b.link(id(r, c), id((r + 1) % rows, c), w)
                    .expect("valid bw");
            }
        }
        b.build().expect("torus is connected")
    }

    /// `d`-dimensional hypercube of `2^d` compute nodes.
    pub fn hypercube(d: u32, w: f64) -> Graph {
        assert!((1..=16).contains(&d));
        let n = 1usize << d;
        let mut b = GraphBuilder::new();
        let nodes = b.computes(n);
        for i in 0..n {
            for bit in 0..d {
                let j = i ^ (1 << bit);
                if i < j {
                    b.link(nodes[i], nodes[j], w).expect("valid bw");
                }
            }
        }
        b.build().expect("hypercube is connected")
    }

    /// Ring of `n ≥ 3` compute nodes.
    pub fn ring(n: usize, w: f64) -> Graph {
        assert!(n >= 3);
        let mut b = GraphBuilder::new();
        let nodes = b.computes(n);
        for i in 0..n {
            b.link(nodes[i], nodes[(i + 1) % n], w).expect("valid bw");
        }
        b.build().expect("ring is connected")
    }

    /// Complete graph on `n ≥ 2` compute nodes.
    pub fn complete(n: usize, w: f64) -> Graph {
        assert!(n >= 2);
        let mut b = GraphBuilder::new();
        let nodes = b.computes(n);
        for i in 0..n {
            for j in i + 1..n {
                b.link(nodes[i], nodes[j], w).expect("valid bw");
            }
        }
        b.build().expect("complete graph is connected")
    }

    /// A random connected graph: a random spanning tree plus `extra`
    /// random chords, bandwidths uniform in `[bw_lo, bw_hi]`.
    pub fn random_connected(
        n_compute: usize,
        extra: usize,
        bw_lo: f64,
        bw_hi: f64,
        seed: u64,
    ) -> Graph {
        assert!(n_compute >= 2);
        assert!(bw_lo > 0.0 && bw_hi >= bw_lo);
        let mut b = GraphBuilder::new();
        let nodes = b.computes(n_compute);
        // Splitmix-style deterministic stream.
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let bw = {
            let span = bw_hi - bw_lo;
            move |r: u64| bw_lo + span * ((r % 1_000_000) as f64 / 1_000_000.0)
        };
        // Random tree: attach node i to a uniform earlier node.
        let mut present: Vec<(usize, usize)> = Vec::new();
        for i in 1..n_compute {
            let p = (next() % i as u64) as usize;
            let w = bw(next());
            b.link(nodes[p], nodes[i], w).expect("valid bw");
            present.push((p.min(i), p.max(i)));
        }
        // Extra chords, skipping duplicates and self loops.
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < extra && attempts < extra * 20 + 50 {
            attempts += 1;
            let a = (next() % n_compute as u64) as usize;
            let c = (next() % n_compute as u64) as usize;
            if a == c {
                continue;
            }
            let key = (a.min(c), a.max(c));
            if present.contains(&key) {
                continue;
            }
            present.push(key);
            let w = bw(next());
            b.link(nodes[key.0], nodes[key.1], w).expect("valid bw");
            added += 1;
        }
        b.build().expect("random graph is connected")
    }

    /// View a [`Tree`] as a [`Graph`] (identity embedding).
    pub fn from_tree(tree: &Tree) -> Graph {
        let kinds: Vec<NodeKind> = (0..tree.num_nodes())
            .map(|i| tree.kind(NodeId(i as u32)))
            .collect();
        let edges: Vec<(usize, usize, f64, f64)> = tree
            .edges()
            .map(|e| {
                let (u, v) = tree.endpoints(e);
                let fwd = tree.bandwidth(DirEdgeId::new(e, false)).get();
                let rev = tree.bandwidth(DirEdgeId::new(e, true)).get();
                (u.index(), v.index(), fwd, rev)
            })
            .collect();
        Graph::from_parts(kinds, edges).expect("a tree is a connected graph")
    }
}

#[cfg(test)]
mod tests {
    use super::builders::*;
    use super::*;

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, 1.0);
        assert_eq!(g.num_nodes(), 12);
        // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.compute_nodes().len(), 12);
        assert!(g.is_symmetric());
    }

    #[test]
    fn torus_shape() {
        let g = torus(3, 3, 2.0);
        assert_eq!(g.num_nodes(), 9);
        assert_eq!(g.num_edges(), 18); // 2 per node
        for v in 0..9 {
            assert_eq!(g.neighbors(NodeId(v)).len(), 4);
        }
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(3, 1.0);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 12); // d * 2^(d-1)
        for v in 0..8 {
            assert_eq!(g.neighbors(NodeId(v)).len(), 3);
        }
    }

    #[test]
    fn ring_and_complete_shapes() {
        let r = ring(5, 1.0);
        assert_eq!(r.num_edges(), 5);
        let k = complete(5, 1.0);
        assert_eq!(k.num_edges(), 10);
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = GraphBuilder::new();
        let a = b.compute();
        let c = b.compute();
        let _d = b.compute();
        b.link(a, c, 1.0).unwrap();
        assert_eq!(b.build().unwrap_err(), TopologyError::Disconnected);
    }

    #[test]
    fn rejects_self_loop_and_bad_bandwidth() {
        let mut b = GraphBuilder::new();
        let a = b.compute();
        assert!(matches!(
            b.link(a, a, -1.0),
            Err(TopologyError::InvalidBandwidth(_))
        ));
        b.link_asym(a, a, 1.0, 1.0).unwrap();
        assert_eq!(b.build().unwrap_err(), TopologyError::SelfLoop(0));
    }

    #[test]
    fn rejects_no_compute() {
        let mut b = GraphBuilder::new();
        let a = b.router();
        let c = b.router();
        b.link(a, c, 1.0).unwrap();
        assert_eq!(b.build().unwrap_err(), TopologyError::NoComputeNodes);
    }

    #[test]
    fn widest_path_prefers_fat_links() {
        // Triangle: direct a–b link is thin (1), the detour via c is wide (10).
        let mut b = GraphBuilder::new();
        let n = b.computes(3);
        b.link(n[0], n[1], 1.0).unwrap();
        b.link(n[0], n[2], 10.0).unwrap();
        b.link(n[2], n[1], 10.0).unwrap();
        let g = b.build().unwrap();
        let path = g.widest_path(n[0], n[1]);
        assert_eq!(path.len(), 2);
        let (from, mid) = g.dir_endpoints(path[0]);
        assert_eq!(from, n[0]);
        assert_eq!(mid, n[2]);
    }

    #[test]
    fn widest_path_ties_break_by_hops() {
        // Square with equal bandwidths: both routes have bottleneck 1;
        // prefer the 2-hop one over any longer alternative.
        let g = ring(4, 1.0);
        let path = g.widest_path(NodeId(0), NodeId(2));
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn widest_path_trivial_cases() {
        let g = grid(2, 2, 1.0);
        assert!(g.widest_path(NodeId(0), NodeId(0)).is_empty());
        let p = g.widest_path(NodeId(0), NodeId(1));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn mbst_keeps_widest_links() {
        // Square where one side is thin: the MBST drops the thin edge.
        let mut b = GraphBuilder::new();
        let n = b.computes(4);
        b.link(n[0], n[1], 0.1).unwrap(); // thin
        b.link(n[1], n[2], 5.0).unwrap();
        b.link(n[2], n[3], 5.0).unwrap();
        b.link(n[3], n[0], 5.0).unwrap();
        let g = b.build().unwrap();
        let t = g.max_bandwidth_spanning_tree().unwrap();
        assert_eq!(t.num_edges(), 3);
        for e in t.edges() {
            assert_eq!(t.sym_bandwidth(e).get(), 5.0);
        }
    }

    #[test]
    fn bfs_tree_is_hop_minimal() {
        let g = grid(3, 3, 1.0);
        let t = g.bfs_spanning_tree(NodeId(4)).unwrap(); // center
        assert_eq!(t.num_edges(), 8);
        // Every node is within 2 hops of the center in the BFS tree.
        for v in 0..9 {
            assert!(t.distance(NodeId(4), NodeId(v)) <= 2);
        }
    }

    #[test]
    fn spanning_trees_preserve_node_ids_and_kinds() {
        let mut b = GraphBuilder::new();
        let c = b.computes(3);
        let r = b.router();
        b.link(c[0], r, 1.0).unwrap();
        b.link(c[1], r, 2.0).unwrap();
        b.link(c[2], r, 3.0).unwrap();
        b.link(c[0], c[1], 0.5).unwrap();
        let g = b.build().unwrap();
        let t = g.max_bandwidth_spanning_tree().unwrap();
        assert_eq!(t.num_nodes(), 4);
        assert!(!t.is_compute(r));
        assert!(t.is_compute(c[0]));
    }

    #[test]
    fn cut_capacity_counts_both_directions() {
        let g = ring(4, 2.0);
        // Separate {0,1} from {2,3}: two crossing edges, 2 directions each.
        let side = vec![true, true, false, false];
        assert_eq!(g.cut_capacity(&side), 8.0);
    }

    #[test]
    fn cut_capacity_infinite_link() {
        let mut b = GraphBuilder::new();
        let n = b.computes(2);
        b.link(n[0], n[1], f64::INFINITY).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.cut_capacity(&[true, false]), f64::INFINITY);
    }

    #[test]
    fn tree_cut_sides_partition_nodes() {
        let g = grid(2, 3, 1.0);
        let t = g.max_bandwidth_spanning_tree().unwrap();
        for e in t.edges() {
            let side = g.tree_cut_side(&t, e);
            let ones = side.iter().filter(|&&s| s).count();
            assert!(ones >= 1 && ones < side.len());
            // Cut capacity on the graph is at least the tree edge's own.
            assert!(g.cut_capacity(&side) >= 2.0 * t.sym_bandwidth(e).get() - 1e-12);
        }
    }

    #[test]
    fn random_connected_is_reproducible() {
        let g1 = random_connected(10, 5, 0.5, 2.0, 42);
        let g2 = random_connected(10, 5, 0.5, 2.0, 42);
        assert_eq!(g1.num_edges(), g2.num_edges());
        let g3 = random_connected(10, 5, 0.5, 2.0, 43);
        assert_eq!(g3.num_nodes(), 10);
        // Tree edges (9) plus up to 5 chords.
        assert!(g1.num_edges() >= 9 && g1.num_edges() <= 14);
    }

    #[test]
    fn from_tree_roundtrip() {
        let t = crate::builders::rack_tree(&[(2, 1.0, 2.0), (3, 2.0, 1.0)], 1.0);
        let g = from_tree(&t);
        assert_eq!(g.num_nodes(), t.num_nodes());
        assert_eq!(g.num_edges(), t.num_edges());
        let t2 = g.max_bandwidth_spanning_tree().unwrap();
        assert_eq!(t2.num_edges(), t.num_edges());
    }

    #[test]
    fn widest_path_bottleneck_matches_mbst_path() {
        // Classic MBST property: the max-bandwidth spanning tree preserves
        // the widest-path bottleneck between every pair.
        let g = random_connected(8, 6, 0.5, 4.0, 7);
        let t = g.max_bandwidth_spanning_tree().unwrap();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                let (a, b) = (NodeId(a), NodeId(b));
                let gp = g.widest_path(a, b);
                let g_bottleneck = gp
                    .iter()
                    .map(|&d| g.bandwidth(d).get())
                    .fold(f64::INFINITY, f64::min);
                let tp = t.path(a, b);
                let t_bottleneck = tp
                    .iter()
                    .map(|&d| t.bandwidth(d).get())
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    (g_bottleneck - t_bottleneck).abs() < 1e-12,
                    "pair ({a:?}, {b:?}): graph {g_bottleneck} vs tree {t_bottleneck}"
                );
            }
        }
    }
}
