//! Validated tree topologies with per-direction bandwidths.
//!
//! A [`Tree`] is the network model of Section 2 restricted to trees: an
//! undirected tree over compute and router nodes where every undirected
//! edge `{u, v}` carries **two** directed bandwidths `w_{u→v}` and
//! `w_{v→u}`. The paper's algorithms assume *symmetric* trees
//! (`w_{u→v} = w_{v→u}`, Section 2.1); the asymmetric capability exists so
//! that the classic MPC model can be embedded (Section 2.2).
//!
//! Node ids are dense indices. Edge ids index the undirected edge table; a
//! [`DirEdgeId`] addresses one direction of an undirected edge, which is the
//! granularity at which the cost model meters traffic.

use crate::bandwidth::Bandwidth;
use crate::error::TopologyError;
use crate::node::{NodeId, NodeKind};

/// Identifier of an undirected edge of a [`Tree`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of one *direction* of an undirected edge.
///
/// Direction `0` of edge `e` is `e.u → e.v` (as stored); direction `1` is
/// the reverse. The simulator meters traffic per `DirEdgeId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DirEdgeId(pub u32);

impl DirEdgeId {
    /// The underlying undirected edge.
    #[inline]
    pub fn edge(self) -> EdgeId {
        EdgeId(self.0 >> 1)
    }

    /// `true` if this is the reverse (`v → u`) direction.
    #[inline]
    pub fn is_reverse(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index (for per-direction tables of size `2 * num_edges`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from an edge and a direction flag.
    #[inline]
    pub fn new(edge: EdgeId, reverse: bool) -> Self {
        DirEdgeId(edge.0 << 1 | u32::from(reverse))
    }
}

#[derive(Clone, Debug)]
struct Edge {
    u: NodeId,
    v: NodeId,
    /// Bandwidth in direction `u → v`.
    w_uv: Bandwidth,
    /// Bandwidth in direction `v → u`.
    w_vu: Bandwidth,
}

/// Incrementally assembles a [`Tree`].
///
/// ```
/// use tamp_topology::{TreeBuilder, NodeKind};
///
/// let mut b = TreeBuilder::new();
/// let hub = b.router();
/// let a = b.compute();
/// let c = b.compute();
/// b.link(hub, a, 2.0).unwrap();
/// b.link(hub, c, 1.0).unwrap();
/// let tree = b.build().unwrap();
/// assert_eq!(tree.compute_nodes().len(), 2);
/// assert!(tree.is_symmetric());
/// ```
#[derive(Default, Debug)]
pub struct TreeBuilder {
    kinds: Vec<NodeKind>,
    edges: Vec<(usize, usize, f64, f64)>,
}

impl TreeBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a compute node; returns its id.
    pub fn compute(&mut self) -> NodeId {
        self.kinds.push(NodeKind::Compute);
        NodeId::from_index(self.kinds.len() - 1)
    }

    /// Add a router node; returns its id.
    pub fn router(&mut self) -> NodeId {
        self.kinds.push(NodeKind::Router);
        NodeId::from_index(self.kinds.len() - 1)
    }

    /// Add `n` compute nodes; returns their ids.
    pub fn computes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.compute()).collect()
    }

    /// Add a symmetric link with bandwidth `w` in both directions.
    pub fn link(&mut self, u: NodeId, v: NodeId, w: f64) -> Result<(), TopologyError> {
        self.link_asym(u, v, w, w)
    }

    /// Add a link with direction-dependent bandwidths.
    pub fn link_asym(
        &mut self,
        u: NodeId,
        v: NodeId,
        w_uv: f64,
        w_vu: f64,
    ) -> Result<(), TopologyError> {
        Bandwidth::new(w_uv)?;
        Bandwidth::new(w_vu)?;
        if u == v {
            return Err(TopologyError::SelfLoop(u.index()));
        }
        self.edges.push((u.index(), v.index(), w_uv, w_vu));
        Ok(())
    }

    /// Validate and freeze into a [`Tree`].
    pub fn build(self) -> Result<Tree, TopologyError> {
        Tree::from_parts(self.kinds, self.edges)
    }
}

/// A validated tree topology.
///
/// Construction (via [`TreeBuilder`] or [`Tree::from_parts`]) checks that
/// the edges form a spanning tree and that at least one compute node exists.
#[derive(Clone, Debug)]
pub struct Tree {
    kinds: Vec<NodeKind>,
    edges: Vec<Edge>,
    /// Undirected adjacency: for each node, `(neighbor, edge)` pairs in
    /// insertion order (this order defines left-to-right traversals).
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    compute: Vec<NodeId>,
    /// Rooting at node 0 used internally for routing and cuts.
    parent: Vec<Option<(NodeId, EdgeId)>>,
    depth: Vec<u32>,
    /// Preorder (DFS from node 0) — every node's subtree is a contiguous
    /// `tin..tout` interval.
    tin: Vec<u32>,
    tout: Vec<u32>,
    /// Nodes in DFS order (for subtree aggregation in O(|V|)).
    dfs_order: Vec<NodeId>,
}

impl Tree {
    /// Build a tree from raw parts: node kinds and edges
    /// `(u, v, w_{u→v}, w_{v→u})`.
    pub fn from_parts(
        kinds: Vec<NodeKind>,
        raw_edges: Vec<(usize, usize, f64, f64)>,
    ) -> Result<Self, TopologyError> {
        let n = kinds.len();
        if raw_edges.len() + 1 != n {
            return Err(TopologyError::NotATree);
        }
        let mut edges = Vec::with_capacity(raw_edges.len());
        let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n];
        for (i, &(u, v, w_uv, w_vu)) in raw_edges.iter().enumerate() {
            if u >= n {
                return Err(TopologyError::UnknownNode(u));
            }
            if v >= n {
                return Err(TopologyError::UnknownNode(v));
            }
            if u == v {
                return Err(TopologyError::SelfLoop(u));
            }
            let e = EdgeId(i as u32);
            let (u, v) = (NodeId::from_index(u), NodeId::from_index(v));
            edges.push(Edge {
                u,
                v,
                w_uv: Bandwidth::new(w_uv)?,
                w_vu: Bandwidth::new(w_vu)?,
            });
            adj[u.index()].push((v, e));
            adj[v.index()].push((u, e));
        }
        let compute: Vec<NodeId> = (0..n)
            .filter(|&i| kinds[i].is_compute())
            .map(NodeId::from_index)
            .collect();
        if compute.is_empty() {
            return Err(TopologyError::NoComputeNodes);
        }

        // DFS from node 0: connectivity check + rooting caches.
        let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        let mut depth = vec![0u32; n];
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut dfs_order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut clock = 0u32;
        // Iterative DFS with explicit enter/exit events.
        let mut stack: Vec<(NodeId, bool)> = vec![(NodeId(0), false)];
        while let Some((x, exiting)) = stack.pop() {
            if exiting {
                tout[x.index()] = clock;
                continue;
            }
            if visited[x.index()] {
                return Err(TopologyError::NotATree);
            }
            visited[x.index()] = true;
            tin[x.index()] = clock;
            clock += 1;
            dfs_order.push(x);
            stack.push((x, true));
            // Reverse so children are visited in adjacency (insertion) order.
            for &(y, e) in adj[x.index()].iter().rev() {
                if parent[x.index()] == Some((y, e)) {
                    continue; // the tree edge back to x's parent
                }
                if visited[y.index()] {
                    // A second route to an already-visited node ⇒ cycle.
                    return Err(TopologyError::NotATree);
                }
                parent[y.index()] = Some((x, e));
                depth[y.index()] = depth[x.index()] + 1;
                stack.push((y, false));
            }
        }
        if dfs_order.len() != n {
            return Err(TopologyError::Disconnected);
        }
        Ok(Tree {
            kinds,
            edges,
            adj,
            compute,
            parent,
            depth,
            tin,
            tout,
            dfs_order,
        })
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of undirected edges (`|V| - 1`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The compute nodes `V_C`, in id order.
    #[inline]
    pub fn compute_nodes(&self) -> &[NodeId] {
        &self.compute
    }

    /// Number of compute nodes `|V_C|`.
    #[inline]
    pub fn num_compute(&self) -> usize {
        self.compute.len()
    }

    /// Kind of node `v`.
    #[inline]
    pub fn kind(&self, v: NodeId) -> NodeKind {
        self.kinds[v.index()]
    }

    /// `true` if `v` is a compute node.
    #[inline]
    pub fn is_compute(&self, v: NodeId) -> bool {
        self.kinds[v.index()].is_compute()
    }

    /// Degree of node `v` in the undirected tree.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// `true` if `v` is a leaf (degree ≤ 1).
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.degree(v) <= 1
    }

    /// Neighbors of `v` with the connecting edge ids.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[v.index()]
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId::from_index)
    }

    /// All undirected edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.num_edges()).map(|i| EdgeId(i as u32))
    }

    /// All directed edge ids (`2 × num_edges`).
    pub fn dir_edges(&self) -> impl Iterator<Item = DirEdgeId> + '_ {
        (0..2 * self.num_edges()).map(|i| DirEdgeId(i as u32))
    }

    /// Endpoints `(u, v)` of an undirected edge, as stored.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let ed = &self.edges[e.index()];
        (ed.u, ed.v)
    }

    /// Tail and head of a directed edge.
    #[inline]
    pub fn dir_endpoints(&self, d: DirEdgeId) -> (NodeId, NodeId) {
        let (u, v) = self.endpoints(d.edge());
        if d.is_reverse() {
            (v, u)
        } else {
            (u, v)
        }
    }

    /// Bandwidth of a directed edge.
    #[inline]
    pub fn bandwidth(&self, d: DirEdgeId) -> Bandwidth {
        let ed = &self.edges[d.edge().index()];
        if d.is_reverse() {
            ed.w_vu
        } else {
            ed.w_uv
        }
    }

    /// Bandwidth of a *symmetric* undirected edge (both directions equal).
    ///
    /// # Panics
    /// Panics in debug builds if the edge is asymmetric.
    #[inline]
    pub fn sym_bandwidth(&self, e: EdgeId) -> Bandwidth {
        let ed = &self.edges[e.index()];
        debug_assert_eq!(
            ed.w_uv.get(),
            ed.w_vu.get(),
            "sym_bandwidth on asymmetric edge"
        );
        ed.w_uv
    }

    /// Re-weight edge `e` in place, dividing both directed bandwidths by
    /// `factor` — the degraded-link mutation of the serving arc
    /// (`factor > 1` slows the link; `factor < 1` restores it).
    ///
    /// Only the stored bandwidths change: the structural caches (DFS
    /// order, depths, parents, subtree intervals) are bandwidth-independent,
    /// so every routing query stays valid. Costs, plan prices, and
    /// [`fingerprint`](Self::fingerprint) all observe the new weights
    /// immediately.
    pub fn scale_bandwidth(&mut self, e: EdgeId, factor: f64) -> Result<(), TopologyError> {
        if e.index() >= self.edges.len() {
            return Err(TopologyError::UnknownEdge(e.index()));
        }
        if !factor.is_finite() || factor <= 0.0 {
            return Err(TopologyError::InvalidBandwidth(factor));
        }
        let ed = &self.edges[e.index()];
        let w_uv = Bandwidth::new(ed.w_uv.get() / factor)?;
        let w_vu = Bandwidth::new(ed.w_vu.get() / factor)?;
        let ed = &mut self.edges[e.index()];
        ed.w_uv = w_uv;
        ed.w_vu = w_vu;
        Ok(())
    }

    /// Canonical content fingerprint of the topology: node kinds, edge
    /// endpoints, and the exact bits of every directed bandwidth.
    ///
    /// Two trees hash equal iff they are the same labeled topology with
    /// identical weights, so any in-place mutation (notably
    /// [`scale_bandwidth`](Self::scale_bandwidth)) changes the value.
    /// Plan caches key on this to invalidate priced plans when the
    /// network degrades.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.num_nodes().hash(&mut h);
        for kind in &self.kinds {
            kind.is_compute().hash(&mut h);
        }
        for ed in &self.edges {
            ed.u.index().hash(&mut h);
            ed.v.index().hash(&mut h);
            ed.w_uv.get().to_bits().hash(&mut h);
            ed.w_vu.get().to_bits().hash(&mut h);
        }
        h.finish()
    }

    /// The directed edge from `a` to `b`, which must be adjacent.
    pub fn dir_edge_between(&self, a: NodeId, b: NodeId) -> Option<DirEdgeId> {
        self.adj[a.index()]
            .iter()
            .find(|&&(y, _)| y == b)
            .map(|&(_, e)| {
                let ed = &self.edges[e.index()];
                DirEdgeId::new(e, ed.u != a)
            })
    }

    /// `true` if every edge has equal bandwidth in both directions.
    pub fn is_symmetric(&self) -> bool {
        self.edges.iter().all(|e| e.w_uv.get() == e.w_vu.get())
    }

    /// Error unless the tree is symmetric.
    pub fn require_symmetric(&self) -> Result<(), TopologyError> {
        for e in &self.edges {
            if e.w_uv.get() != e.w_vu.get() {
                return Err(TopologyError::NotSymmetric {
                    u: e.u.index(),
                    v: e.v.index(),
                });
            }
        }
        Ok(())
    }

    /// `true` if every compute node is a leaf (the first w.l.o.g.
    /// normalization of Section 2.1).
    pub fn compute_nodes_are_leaves(&self) -> bool {
        self.compute.iter().all(|&v| self.is_leaf(v))
    }

    /// Parent of `v` in the internal rooting at node 0 (`None` for node 0).
    #[inline]
    pub fn parent0(&self, v: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent[v.index()]
    }

    /// Nodes in DFS (pre)order of the internal rooting at node 0.
    #[inline]
    pub fn dfs_order(&self) -> &[NodeId] {
        &self.dfs_order
    }

    /// In the internal rooting at node 0: the endpoint of `e` farther from
    /// the root (the "child side" of the cut defined by `e`).
    pub fn deeper_endpoint(&self, e: EdgeId) -> NodeId {
        let (u, v) = self.endpoints(e);
        if self.depth[u.index()] > self.depth[v.index()] {
            u
        } else {
            v
        }
    }

    /// `true` if `x` lies in the subtree rooted at `c` (internal rooting).
    #[inline]
    pub fn in_subtree0(&self, x: NodeId, c: NodeId) -> bool {
        self.tin[c.index()] <= self.tin[x.index()] && self.tin[x.index()] < self.tout[c.index()]
    }

    /// The side of edge `e`'s cut that contains node `x`: `true` for the
    /// deeper-endpoint (subtree) side.
    #[inline]
    pub fn cut_side_of(&self, e: EdgeId, x: NodeId) -> bool {
        self.in_subtree0(x, self.deeper_endpoint(e))
    }

    /// The unique path from `a` to `b` as a sequence of directed edges.
    ///
    /// Routing on trees is trivial (the paper relies on this): the path
    /// climbs from both endpoints to their lowest common ancestor in the
    /// internal rooting.
    pub fn path(&self, a: NodeId, b: NodeId) -> Vec<DirEdgeId> {
        if a == b {
            return Vec::new();
        }
        let mut up = Vec::new(); // edges a → lca (directed away from a)
        let mut down = Vec::new(); // edges lca → b (collected b-upward, reversed)
        let (mut x, mut y) = (a, b);
        while self.depth[x.index()] > self.depth[y.index()] {
            let (p, e) = self.parent[x.index()].expect("non-root has parent");
            up.push(self.dir_of(e, x));
            x = p;
        }
        while self.depth[y.index()] > self.depth[x.index()] {
            let (p, e) = self.parent[y.index()].expect("non-root has parent");
            down.push(self.dir_of_toward(e, y));
            y = p;
        }
        while x != y {
            let (px, ex) = self.parent[x.index()].expect("non-root has parent");
            up.push(self.dir_of(ex, x));
            x = px;
            let (py, ey) = self.parent[y.index()].expect("non-root has parent");
            down.push(self.dir_of_toward(ey, y));
            y = py;
        }
        down.reverse();
        up.extend(down);
        up
    }

    /// Number of hops between `a` and `b`.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        // Depth arithmetic via the path (trees are small; clarity first).
        self.path(a, b).len()
    }

    /// Directed edge id of `e` oriented *away from* endpoint `from`.
    #[inline]
    fn dir_of(&self, e: EdgeId, from: NodeId) -> DirEdgeId {
        let ed = &self.edges[e.index()];
        DirEdgeId::new(e, ed.u != from)
    }

    /// Directed edge id of `e` oriented *toward* endpoint `to`.
    #[inline]
    fn dir_of_toward(&self, e: EdgeId, to: NodeId) -> DirEdgeId {
        let ed = &self.edges[e.index()];
        DirEdgeId::new(e, ed.v != to)
    }

    /// A *valid ordering* of the compute nodes (Section 5): the left-to-right
    /// traversal of the tree rooted at `root`, where "left-to-right" follows
    /// adjacency (insertion) order.
    pub fn left_to_right_compute_order(&self, root: NodeId) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.num_compute());
        let mut visited = vec![false; self.num_nodes()];
        let mut stack = vec![root];
        visited[root.index()] = true;
        // DFS visiting children in adjacency order (stack is LIFO, so push
        // reversed).
        while let Some(x) = stack.pop() {
            if self.is_compute(x) {
                order.push(x);
            }
            for &(y, _) in self.adj[x.index()].iter().rev() {
                if !visited[y.index()] {
                    visited[y.index()] = true;
                    stack.push(y);
                }
            }
        }
        order
    }

    /// Sum of a per-node value over each edge-cut side, for all edges at
    /// once, in `O(|V|)`.
    ///
    /// Returns `(child_side, total)` where `child_side[e]` is the sum over
    /// the subtree below `e` (internal rooting) and the far side is
    /// `total - child_side[e]`.
    pub fn subtree_sums(&self, value: &[u64]) -> (Vec<u64>, u64) {
        assert_eq!(value.len(), self.num_nodes());
        let mut sub = value.to_vec();
        // Children precede parents in reverse DFS order.
        for &x in self.dfs_order.iter().rev() {
            if let Some((p, _)) = self.parent[x.index()] {
                sub[p.index()] += sub[x.index()];
            }
        }
        let total = sub[0];
        let child_side: Vec<u64> = (0..self.num_edges())
            .map(|e| sub[self.deeper_endpoint(EdgeId(e as u32)).index()])
            .collect();
        (child_side, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn tiny_tree() -> Tree {
        // v0, v1 compute leaves on router r2; r2 - r3; v4 compute leaf on r3.
        let mut b = TreeBuilder::new();
        let v0 = b.compute();
        let v1 = b.compute();
        let r2 = b.router();
        let r3 = b.router();
        let v4 = b.compute();
        b.link(r2, v0, 1.0).unwrap();
        b.link(r2, v1, 2.0).unwrap();
        b.link(r2, r3, 4.0).unwrap();
        b.link(r3, v4, 8.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_and_validates() {
        let t = tiny_tree();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.num_compute(), 3);
        assert!(t.is_symmetric());
        assert!(t.compute_nodes_are_leaves());
    }

    #[test]
    fn scale_bandwidth_reweights_and_moves_the_fingerprint() {
        let mut t = tiny_tree();
        let fp0 = t.fingerprint();
        assert_eq!(fp0, tiny_tree().fingerprint(), "fingerprint is canonical");

        let e = EdgeId(2); // the r2 - r3 trunk, weight 4.0
        t.scale_bandwidth(e, 4.0).unwrap();
        assert_eq!(t.sym_bandwidth(e).get(), 1.0);
        assert_ne!(t.fingerprint(), fp0, "degradation must invalidate caches");
        // Structural caches are untouched by re-weighting.
        assert!(t.compute_nodes_are_leaves());
        assert_eq!(t.num_edges(), 4);

        // Restoring the link restores the exact fingerprint.
        t.scale_bandwidth(e, 0.25).unwrap();
        assert_eq!(t.fingerprint(), fp0);

        assert_eq!(
            t.scale_bandwidth(EdgeId(99), 2.0),
            Err(TopologyError::UnknownEdge(99))
        );
        assert_eq!(
            t.scale_bandwidth(e, 0.0),
            Err(TopologyError::InvalidBandwidth(0.0))
        );
        assert_eq!(
            t.scale_bandwidth(e, f64::INFINITY),
            Err(TopologyError::InvalidBandwidth(f64::INFINITY))
        );
        assert_eq!(t.fingerprint(), fp0, "failed mutations change nothing");
    }

    #[test]
    fn rejects_cycle() {
        let mut b = TreeBuilder::new();
        let a = b.compute();
        let c = b.compute();
        let d = b.router();
        b.link(a, c, 1.0).unwrap();
        b.link(c, d, 1.0).unwrap();
        b.link(d, a, 1.0).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_disconnected() {
        let kinds = vec![NodeKind::Compute, NodeKind::Compute, NodeKind::Compute];
        // 3 nodes need exactly 2 edges; a doubled edge is not a tree.
        let edges = vec![(0, 1, 1.0, 1.0), (0, 1, 1.0, 1.0)];
        assert!(Tree::from_parts(kinds, edges).is_err());
    }

    #[test]
    fn rejects_no_compute() {
        let mut b = TreeBuilder::new();
        let a = b.router();
        let c = b.router();
        b.link(a, c, 1.0).unwrap();
        assert_eq!(b.build().unwrap_err(), TopologyError::NoComputeNodes);
    }

    #[test]
    fn path_is_unique_route() {
        let t = tiny_tree();
        // v0 (0) → v4 (4): v0-r2, r2-r3, r3-v4.
        let p = t.path(NodeId(0), NodeId(4));
        assert_eq!(p.len(), 3);
        let (a, b) = t.dir_endpoints(p[0]);
        assert_eq!((a, b), (NodeId(0), NodeId(2)));
        let (a, b) = t.dir_endpoints(p[2]);
        assert_eq!((a, b), (NodeId(3), NodeId(4)));
        // Reverse path mirrors.
        let q = t.path(NodeId(4), NodeId(0));
        assert_eq!(q.len(), 3);
        assert_eq!(q[0].edge(), p[2].edge());
        assert!(t.path(NodeId(1), NodeId(1)).is_empty());
    }

    #[test]
    fn subtree_sums_match_bruteforce() {
        let t = tiny_tree();
        let w = vec![3u64, 5, 0, 0, 7];
        let (child, total) = t.subtree_sums(&w);
        assert_eq!(total, 15);
        for e in t.edges() {
            let c = t.deeper_endpoint(e);
            let brute: u64 = t
                .nodes()
                .filter(|&x| t.in_subtree0(x, c))
                .map(|x| w[x.index()])
                .sum();
            assert_eq!(child[e.index()], brute, "edge {e:?}");
        }
    }

    #[test]
    fn left_to_right_order_visits_all_computes() {
        let t = tiny_tree();
        for root in t.nodes() {
            let ord = t.left_to_right_compute_order(root);
            assert_eq!(ord.len(), t.num_compute());
            let mut sorted = ord.clone();
            sorted.sort();
            assert_eq!(sorted, t.compute_nodes());
        }
    }

    #[test]
    fn mpc_star_is_asymmetric() {
        let t = builders::mpc_star(4);
        assert!(!t.is_symmetric());
        assert!(t.require_symmetric().is_err());
    }

    #[test]
    fn dir_edge_between_adjacent() {
        let t = tiny_tree();
        let d = t.dir_edge_between(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(t.dir_endpoints(d), (NodeId(0), NodeId(2)));
        let d = t.dir_edge_between(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(t.dir_endpoints(d), (NodeId(2), NodeId(0)));
        assert!(t.dir_edge_between(NodeId(0), NodeId(4)).is_none());
    }
}
