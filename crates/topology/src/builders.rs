//! Constructors for the topology families discussed in the paper.
//!
//! By convention every builder numbers the **compute nodes first**
//! (`0 .. p-1`), followed by routers, so that per-compute-node tables index
//! naturally.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::node::NodeId;
use crate::tree::{Tree, TreeBuilder};

/// A uniform star (Figure 1a): `p` compute leaves around one router, every
/// link with symmetric bandwidth `w`.
pub fn star(p: usize, w: f64) -> Tree {
    heterogeneous_star(&vec![w; p])
}

/// A star with per-leaf bandwidths: leaf `i` connects to the center with
/// symmetric bandwidth `leaf_bw[i]`.
pub fn heterogeneous_star(leaf_bw: &[f64]) -> Tree {
    assert!(!leaf_bw.is_empty(), "star needs at least one leaf");
    let mut b = TreeBuilder::new();
    let leaves = b.computes(leaf_bw.len());
    let hub = b.router();
    for (leaf, &w) in leaves.iter().zip(leaf_bw) {
        b.link(hub, *leaf, w).expect("valid bandwidth");
    }
    b.build().expect("star is a tree")
}

/// The asymmetric star that embeds the classic MPC model (Section 2.2):
/// compute → center has bandwidth `+∞` (sending is free), center → compute
/// has bandwidth `1` (the cost of a round is the maximum data *received*).
pub fn mpc_star(p: usize) -> Tree {
    assert!(p >= 1);
    let mut b = TreeBuilder::new();
    let leaves = b.computes(p);
    let hub = b.router();
    for leaf in leaves {
        b.link_asym(leaf, hub, f64::INFINITY, 1.0)
            .expect("valid bandwidth");
    }
    b.build().expect("star is a tree")
}

/// A two-level rack tree (Figure 1b): a core router, one router per rack,
/// and compute leaves under each rack.
///
/// `racks[i] = (num_leaves, leaf_bw, uplink_bw)`: rack `i` hosts
/// `num_leaves` compute nodes attached at `leaf_bw`, and its router uplinks
/// to the core at `uplink_bw`. All links are symmetric. `core_bw` is unused
/// when there are ≥ 2 racks hooked directly to the core; it is the uplink
/// bandwidth used if a single rack is requested (degenerating to a chain).
pub fn rack_tree(racks: &[(usize, f64, f64)], core_bw: f64) -> Tree {
    assert!(!racks.is_empty());
    let total_leaves: usize = racks.iter().map(|r| r.0).sum();
    assert!(total_leaves >= 1);
    let mut b = TreeBuilder::new();
    let leaves = b.computes(total_leaves);
    let core = b.router();
    let mut next_leaf = 0usize;
    for &(n_leaves, leaf_bw, uplink_bw) in racks {
        let rack = b.router();
        b.link(core, rack, uplink_bw).expect("valid bandwidth");
        for _ in 0..n_leaves {
            b.link(rack, leaves[next_leaf], leaf_bw)
                .expect("valid bandwidth");
            next_leaf += 1;
        }
    }
    let _ = core_bw;
    b.build().expect("rack tree is a tree")
}

/// A fat-tree of router levels with compute leaves at the bottom
/// (Leiserson-style: aggregate bandwidth doubles toward the root).
///
/// `levels` router levels, fanout `k` at each level, leaves attached at
/// `leaf_bw`; an edge `ℓ` levels above the leaves has bandwidth
/// `leaf_bw · k^ℓ`.
pub fn fat_tree(levels: u32, k: usize, leaf_bw: f64) -> Tree {
    assert!(levels >= 1 && k >= 1);
    let n_leaves = k.pow(levels);
    let mut b = TreeBuilder::new();
    let leaves = b.computes(n_leaves);
    // Build router levels bottom-up.
    let mut frontier: Vec<NodeId> = Vec::new();
    // Level 1 routers: each adopts k leaves.
    for chunk in leaves.chunks(k) {
        let r = b.router();
        for &leaf in chunk {
            b.link(r, leaf, leaf_bw).expect("valid bandwidth");
        }
        frontier.push(r);
    }
    let mut level_bw = leaf_bw * k as f64;
    while frontier.len() > 1 {
        let mut next = Vec::new();
        for chunk in frontier.chunks(k) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
                continue;
            }
            let r = b.router();
            for &c in chunk {
                b.link(r, c, level_bw).expect("valid bandwidth");
            }
            next.push(r);
        }
        frontier = next;
        level_bw *= k as f64;
    }
    b.build().expect("fat tree is a tree")
}

/// A balanced `k`-ary tree of routers with a compute leaf hanging off every
/// lowest-level router, all links at symmetric bandwidth `w`.
pub fn balanced_kary(levels: u32, k: usize, w: f64) -> Tree {
    assert!(levels >= 1 && k >= 1);
    let n_leaves = k.pow(levels);
    let mut b = TreeBuilder::new();
    let leaves = b.computes(n_leaves);
    let root = b.router();
    // BFS construction of the router tree.
    let mut level_nodes = vec![root];
    for _ in 1..levels {
        let mut next = Vec::new();
        for &parent in &level_nodes {
            for _ in 0..k {
                let r = b.router();
                b.link(parent, r, w).expect("valid bandwidth");
                next.push(r);
            }
        }
        level_nodes = next;
    }
    let mut li = 0usize;
    for &parent in &level_nodes {
        for _ in 0..k {
            b.link(parent, leaves[li], w).expect("valid bandwidth");
            li += 1;
        }
    }
    b.build().expect("k-ary tree is a tree")
}

/// A caterpillar: a path of `spine` routers, each carrying `leaves_per`
/// compute leaves, all links at symmetric bandwidth `w`. Caterpillars
/// maximize tree diameter for a given router count, stressing cut-based
/// bounds.
pub fn caterpillar(spine: usize, leaves_per: usize, w: f64) -> Tree {
    assert!(spine >= 1 && leaves_per >= 1);
    let mut b = TreeBuilder::new();
    let leaves = b.computes(spine * leaves_per);
    let spine_nodes: Vec<NodeId> = (0..spine).map(|_| b.router()).collect();
    for win in spine_nodes.windows(2) {
        b.link(win[0], win[1], w).expect("valid bandwidth");
    }
    for (i, &s) in spine_nodes.iter().enumerate() {
        for j in 0..leaves_per {
            b.link(s, leaves[i * leaves_per + j], w)
                .expect("valid bandwidth");
        }
    }
    b.build().expect("caterpillar is a tree")
}

/// A seeded random tree: `n_routers` routers wired by random attachment,
/// then `n_compute` compute leaves attached to uniformly random routers,
/// with symmetric bandwidths drawn log-uniformly from `[bw_lo, bw_hi]`.
pub fn random_tree(n_compute: usize, n_routers: usize, bw_lo: f64, bw_hi: f64, seed: u64) -> Tree {
    assert!(n_compute >= 1 && n_routers >= 1);
    assert!(bw_lo > 0.0 && bw_hi >= bw_lo);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7A3B_19C5_55AA_11EE);
    let mut b = TreeBuilder::new();
    let leaves = b.computes(n_compute);
    let routers: Vec<NodeId> = (0..n_routers).map(|_| b.router()).collect();
    let draw_bw = |rng: &mut StdRng| -> f64 {
        let (lo, hi) = (bw_lo.ln(), bw_hi.ln());
        (lo + (hi - lo) * rng.random::<f64>()).exp()
    };
    for i in 1..n_routers {
        let parent = routers[rng.random_range(0..i)];
        let w = draw_bw(&mut rng);
        b.link(parent, routers[i], w).expect("valid bandwidth");
    }
    for &leaf in &leaves {
        let r = routers[rng.random_range(0..n_routers)];
        let w = draw_bw(&mut rng);
        b.link(r, leaf, w).expect("valid bandwidth");
    }
    b.build().expect("random tree is a tree")
}

/// The exact star of Figure 1a: six compute nodes around one router, unit
/// bandwidth.
pub fn figure_1a() -> Tree {
    star(6, 1.0)
}

/// The exact tree of Figure 1b: three edge routers `w1, w2, w3` around a
/// core `w4`, carrying 3 + 3 + 3 compute leaves, unit bandwidth.
pub fn figure_1b() -> Tree {
    rack_tree(&[(3, 1.0, 1.0), (3, 1.0, 1.0), (3, 1.0, 1.0)], 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_shape() {
        let t = star(6, 2.0);
        assert_eq!(t.num_nodes(), 7);
        assert_eq!(t.num_compute(), 6);
        assert!(t.compute_nodes_are_leaves());
        assert!(t.is_symmetric());
        assert_eq!(t.degree(NodeId(6)), 6);
    }

    #[test]
    fn heterogeneous_star_bandwidths() {
        let t = heterogeneous_star(&[1.0, 2.0, 4.0]);
        for (i, &v) in t.compute_nodes().iter().enumerate() {
            let d = t.dir_edge_between(v, NodeId(3)).unwrap();
            assert_eq!(t.bandwidth(d).get(), [1.0, 2.0, 4.0][i]);
        }
    }

    #[test]
    fn mpc_star_directions() {
        let t = mpc_star(3);
        let hub = NodeId(3);
        for &v in t.compute_nodes() {
            let up = t.dir_edge_between(v, hub).unwrap();
            let down = t.dir_edge_between(hub, v).unwrap();
            assert!(t.bandwidth(up).is_infinite());
            assert_eq!(t.bandwidth(down).get(), 1.0);
        }
    }

    #[test]
    fn rack_tree_shape() {
        let t = rack_tree(&[(3, 1.0, 4.0), (2, 2.0, 8.0)], 1.0);
        assert_eq!(t.num_compute(), 5);
        // core + 2 rack routers.
        assert_eq!(t.num_nodes(), 5 + 3);
        assert!(t.compute_nodes_are_leaves());
    }

    #[test]
    fn fat_tree_bandwidth_doubles() {
        let t = fat_tree(2, 2, 1.0);
        assert_eq!(t.num_compute(), 4);
        assert!(t.is_symmetric());
        // Leaf edges have bw 1, upper edges bw 2.
        let mut bws: Vec<f64> = t.edges().map(|e| t.sym_bandwidth(e).get()).collect();
        bws.sort_by(f64::total_cmp);
        assert_eq!(bws, vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn balanced_kary_shape() {
        let t = balanced_kary(2, 3, 1.0);
        assert_eq!(t.num_compute(), 9);
        assert!(t.compute_nodes_are_leaves());
    }

    #[test]
    fn caterpillar_shape() {
        let t = caterpillar(4, 2, 1.0);
        assert_eq!(t.num_compute(), 8);
        assert_eq!(t.num_nodes(), 12);
        assert!(t.compute_nodes_are_leaves());
    }

    #[test]
    fn random_tree_is_reproducible() {
        let a = random_tree(10, 6, 0.5, 8.0, 42);
        let b = random_tree(10, 6, 0.5, 8.0, 42);
        assert_eq!(a.num_nodes(), b.num_nodes());
        for e in a.edges() {
            assert_eq!(a.endpoints(e), b.endpoints(e));
            assert_eq!(a.sym_bandwidth(e).get(), b.sym_bandwidth(e).get());
        }
        let c = random_tree(10, 6, 0.5, 8.0, 43);
        let same = a.edges().all(|e| {
            a.endpoints(e) == c.endpoints(e) && a.sym_bandwidth(e).get() == c.sym_bandwidth(e).get()
        });
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn figure_topologies() {
        assert_eq!(figure_1a().num_compute(), 6);
        let f1b = figure_1b();
        assert_eq!(f1b.num_compute(), 9);
        assert_eq!(f1b.num_nodes(), 13);
    }
}
