//! Graphviz (DOT) export for debugging and documentation.

use std::fmt::Write as _;

use crate::tree::Tree;

/// Render a tree as a Graphviz `graph` document. Compute nodes are boxes,
/// routers are circles; symmetric edges are labeled with their bandwidth,
/// asymmetric edges with both directions.
pub fn to_dot(tree: &Tree) -> String {
    let mut out = String::from("graph tamp {\n  node [fontsize=10];\n");
    for v in tree.nodes() {
        let shape = if tree.is_compute(v) { "box" } else { "circle" };
        let _ = writeln!(out, "  {} [shape={shape}];", v.index());
    }
    for e in tree.edges() {
        let (u, v) = tree.endpoints(e);
        let fwd = tree.bandwidth(crate::tree::DirEdgeId::new(e, false));
        let rev = tree.bandwidth(crate::tree::DirEdgeId::new(e, true));
        if fwd.get() == rev.get() {
            let _ = writeln!(out, "  {} -- {} [label=\"{fwd}\"];", u.index(), v.index());
        } else {
            let _ = writeln!(
                out,
                "  {} -- {} [label=\"{fwd}/{rev}\"];",
                u.index(),
                v.index()
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn renders_star() {
        let dot = to_dot(&builders::star(3, 2.0));
        assert!(dot.starts_with("graph tamp {"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("label=\"2\""));
    }

    #[test]
    fn renders_asymmetric() {
        let dot = to_dot(&builders::mpc_star(2));
        assert!(dot.contains("∞/1") || dot.contains("1/∞"));
    }
}
