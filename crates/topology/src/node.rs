//! Node identifiers and kinds.

use std::fmt;

/// Identifier of a node in a topology. Indexes into the topology's node table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Whether a node can store data and compute, or can only route.
///
/// In the model of Section 2, compute nodes `V_C ⊆ V` are the only nodes
/// that hold input fragments and perform local computation; all other nodes
/// forward traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Stores data and performs local computation.
    Compute,
    /// Forwards traffic only.
    Router,
}

impl NodeKind {
    /// `true` for [`NodeKind::Compute`].
    #[inline]
    pub fn is_compute(self) -> bool {
        matches!(self, NodeKind::Compute)
    }
}
