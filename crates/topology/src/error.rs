//! Error type for topology construction and validation.

use std::fmt;

/// Errors raised while building or validating a topology.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// The edge set does not form a connected graph.
    Disconnected,
    /// The edge set contains a cycle (or a duplicate edge), so it is not a tree.
    NotATree,
    /// An edge references a node id that does not exist.
    UnknownNode(usize),
    /// An operation references an edge id that does not exist.
    UnknownEdge(usize),
    /// A self-loop `(v, v)` was supplied.
    SelfLoop(usize),
    /// A bandwidth was zero, negative or NaN.
    InvalidBandwidth(f64),
    /// The topology has no compute nodes.
    NoComputeNodes,
    /// The operation requires a symmetric topology but the edge is asymmetric.
    NotSymmetric {
        /// Tail of the offending edge.
        u: usize,
        /// Head of the offending edge.
        v: usize,
    },
    /// The operation requires every compute node to be a leaf.
    ComputeNotLeaf(usize),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Disconnected => write!(f, "edge set does not form a connected graph"),
            Self::NotATree => write!(f, "edge set is not a tree (cycle or duplicate edge)"),
            Self::UnknownNode(v) => write!(f, "edge references unknown node {v}"),
            Self::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            Self::SelfLoop(v) => write!(f, "self loop on node {v}"),
            Self::InvalidBandwidth(w) => write!(f, "invalid bandwidth {w} (must be > 0, not NaN)"),
            Self::NoComputeNodes => write!(f, "topology has no compute nodes"),
            Self::NotSymmetric { u, v } => {
                write!(f, "edge ({u}, {v}) has direction-dependent bandwidth")
            }
            Self::ComputeNotLeaf(v) => write!(f, "compute node {v} is not a leaf"),
        }
    }
}

impl std::error::Error for TopologyError {}
