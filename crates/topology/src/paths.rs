//! Memoized unique-path routing.
//!
//! Every execution layer that routes messages — the centralized cost
//! simulator and the pooled BSP runtime — needs the directed-edge path
//! between arbitrary node pairs, and needs it repeatedly: a protocol that
//! shuffles data keeps routing between the same `(src, dst)` pairs round
//! after round. [`PathCache`] memoizes [`Tree::path`] so each pair is
//! walked once per run instead of once per send.

use std::collections::HashMap;

use crate::node::NodeId;
use crate::tree::{DirEdgeId, Tree};

/// A memo table over [`Tree::path`].
///
/// The cache is keyed by `(a, b)` node-id pairs and stores the directed
/// edges of the unique tree path from `a` to `b`. One cache serves an
/// entire run — every round, every send — so a pair routed in round 0 is
/// never re-walked in round 40. It is not tied to a `Tree` borrow;
/// callers are responsible for not mixing trees (debug builds assert the
/// node ids are in range).
#[derive(Clone, Debug, Default)]
pub struct PathCache {
    paths: HashMap<(u32, u32), Box<[DirEdgeId]>>,
}

impl PathCache {
    /// An empty cache.
    pub fn new() -> Self {
        PathCache::default()
    }

    /// The directed-edge path `a → b`, computing and memoizing it on first
    /// use. The empty path is returned for `a == b`.
    pub fn path(&mut self, tree: &Tree, a: NodeId, b: NodeId) -> &[DirEdgeId] {
        debug_assert!(a.index() < tree.num_nodes() && b.index() < tree.num_nodes());
        self.paths
            .entry((a.0, b.0))
            .or_insert_with(|| tree.path(a, b).into_boxed_slice())
    }

    /// Number of memoized pairs.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` if nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn memoizes_and_matches_tree_path() {
        let t = builders::rack_tree(&[(2, 1.0, 2.0), (3, 2.0, 1.0)], 1.0);
        let mut cache = PathCache::new();
        let vc = t.compute_nodes().to_vec();
        assert!(cache.is_empty());
        for &a in &vc {
            for &b in &vc {
                let direct = t.path(a, b);
                assert_eq!(cache.path(&t, a, b), &direct[..]);
                // Second lookup hits the memo and still agrees.
                assert_eq!(cache.path(&t, a, b), &direct[..]);
            }
        }
        assert_eq!(cache.len(), vc.len() * vc.len());
    }

    #[test]
    fn self_path_is_empty() {
        let t = builders::star(3, 1.0);
        let mut cache = PathCache::new();
        let v = t.compute_nodes()[0];
        assert!(cache.path(&t, v, v).is_empty());
    }
}
