//! The two w.l.o.g. normalizations of Section 2.1.
//!
//! 1. **Every compute node is a leaf**: a non-leaf compute node `v` is
//!    demoted to a router and a fresh compute leaf `v'` is attached with an
//!    infinite-bandwidth link, so data movement between `v'` and the rest of
//!    the network costs exactly what it cost for `v`.
//! 2. **No degree-2 routers**: a router `v` with exactly two incident edges
//!    `e₁, e₂` is spliced out and replaced by a single edge whose
//!    per-direction bandwidth is the minimum of the two (the path through
//!    `v` is exactly as constrained as its weakest link).

use crate::node::{NodeId, NodeKind};
use crate::tree::{Tree, TreeBuilder};

/// Result of a normalization: the new tree plus a map from old node ids to
/// new node ids (`None` if the old node was removed).
#[derive(Clone, Debug)]
pub struct Normalized {
    /// The transformed tree.
    pub tree: Tree,
    /// `node_map[old.index()]` is the new id of the old node.
    ///
    /// For [`hoist_compute_leaves`], an old *compute* node maps to the new
    /// compute leaf that replaces it (so placements transfer directly).
    pub node_map: Vec<Option<NodeId>>,
}

/// Apply normalization 1: make every compute node a leaf.
///
/// Old compute nodes keep their ids but become routers; a fresh compute
/// leaf is attached to each with an infinite-bandwidth symmetric link. The
/// returned `node_map` sends each old compute node to its replacement leaf
/// (leaf compute nodes map to themselves).
pub fn hoist_compute_leaves(tree: &Tree) -> Normalized {
    let mut b = TreeBuilder::new();
    let n = tree.num_nodes();
    // Recreate all original nodes with the same ids.
    let mut node_map: Vec<Option<NodeId>> = Vec::with_capacity(n);
    let mut to_hoist = Vec::new();
    for v in tree.nodes() {
        let non_leaf_compute = tree.is_compute(v) && !tree.is_leaf(v);
        let id = if non_leaf_compute {
            to_hoist.push(v);
            b.router()
        } else {
            match tree.kind(v) {
                NodeKind::Compute => b.compute(),
                NodeKind::Router => b.router(),
            }
        };
        debug_assert_eq!(id, v);
        node_map.push(Some(v));
    }
    for e in tree.edges() {
        let (u, v) = tree.endpoints(e);
        let fwd = tree.bandwidth(crate::tree::DirEdgeId::new(e, false)).get();
        let rev = tree.bandwidth(crate::tree::DirEdgeId::new(e, true)).get();
        b.link_asym(u, v, fwd, rev).expect("valid edge");
    }
    for v in to_hoist {
        let leaf = b.compute();
        b.link(v, leaf, f64::INFINITY).expect("valid edge");
        node_map[v.index()] = Some(leaf);
    }
    Normalized {
        tree: b.build().expect("hoisting preserves treeness"),
        node_map,
    }
}

/// Apply normalization 2: splice out every degree-2 router.
///
/// Compute nodes are never removed, even if they have degree 2 (run
/// [`hoist_compute_leaves`] first for fully normalized trees).
pub fn contract_degree2(tree: &Tree) -> Normalized {
    let n = tree.num_nodes();
    // Work on a mutable adjacency replica: neighbor lists with per-direction
    // bandwidths, splicing repeatedly.
    #[derive(Clone)]
    struct Link {
        to: usize,
        w_out: f64, // bandwidth self → to
        w_in: f64,  // bandwidth to → self
    }
    let mut adj: Vec<Vec<Link>> = vec![Vec::new(); n];
    for e in tree.edges() {
        let (u, v) = tree.endpoints(e);
        let fwd = tree.bandwidth(crate::tree::DirEdgeId::new(e, false)).get();
        let rev = tree.bandwidth(crate::tree::DirEdgeId::new(e, true)).get();
        adj[u.index()].push(Link {
            to: v.index(),
            w_out: fwd,
            w_in: rev,
        });
        adj[v.index()].push(Link {
            to: u.index(),
            w_out: rev,
            w_in: fwd,
        });
    }
    let mut removed = vec![false; n];
    loop {
        let candidate = (0..n)
            .find(|&i| !removed[i] && !tree.is_compute(NodeId::from_index(i)) && adj[i].len() == 2);
        let Some(mid) = candidate else { break };
        let (a, bx) = (adj[mid][0].clone(), adj[mid][1].clone());
        removed[mid] = true;
        adj[mid].clear();
        // New edge a.to <-> b.to with min bandwidths per direction.
        // Direction a.to → b.to passes a.to→mid (a.w_in) then mid→b.to (b.w_out).
        let w_ab = a.w_in.min(bx.w_out);
        let w_ba = bx.w_in.min(a.w_out);
        let (ai, bi) = (a.to, bx.to);
        adj[ai].retain(|l| l.to != mid);
        adj[bi].retain(|l| l.to != mid);
        adj[ai].push(Link {
            to: bi,
            w_out: w_ab,
            w_in: w_ba,
        });
        adj[bi].push(Link {
            to: ai,
            w_out: w_ba,
            w_in: w_ab,
        });
    }
    // Compact ids and rebuild.
    let mut node_map: Vec<Option<NodeId>> = vec![None; n];
    let mut b = TreeBuilder::new();
    for i in 0..n {
        if !removed[i] {
            let id = match tree.kind(NodeId::from_index(i)) {
                NodeKind::Compute => b.compute(),
                NodeKind::Router => b.router(),
            };
            node_map[i] = Some(id);
        }
    }
    for i in 0..n {
        if removed[i] {
            continue;
        }
        for l in &adj[i] {
            if i < l.to {
                b.link_asym(
                    node_map[i].unwrap(),
                    node_map[l.to].unwrap(),
                    l.w_out,
                    l.w_in,
                )
                .expect("valid edge");
            }
        }
    }
    Normalized {
        tree: b.build().expect("contraction preserves treeness"),
        node_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    #[test]
    fn hoists_internal_compute() {
        // compute - compute - compute path: middle is non-leaf compute.
        let mut b = TreeBuilder::new();
        let a = b.compute();
        let m = b.compute();
        let c = b.compute();
        b.link(a, m, 3.0).unwrap();
        b.link(m, c, 5.0).unwrap();
        let t = b.build().unwrap();
        assert!(!t.compute_nodes_are_leaves());

        let norm = hoist_compute_leaves(&t);
        assert!(norm.tree.compute_nodes_are_leaves());
        assert_eq!(norm.tree.num_compute(), 3);
        // The old middle node maps to a fresh leaf linked with ∞ bandwidth.
        let new_m = norm.node_map[m.index()].unwrap();
        assert_ne!(new_m, m);
        assert!(norm.tree.is_leaf(new_m));
        let d = norm
            .tree
            .dir_edge_between(m, new_m)
            .expect("hoist link exists");
        assert!(norm.tree.bandwidth(d).is_infinite());
        // Leaf compute nodes keep their ids.
        assert_eq!(norm.node_map[a.index()], Some(a));
    }

    #[test]
    fn hoist_is_identity_when_already_normal() {
        let t = crate::builders::star(4, 2.0);
        let norm = hoist_compute_leaves(&t);
        assert_eq!(norm.tree.num_nodes(), t.num_nodes());
        assert_eq!(norm.tree.num_edges(), t.num_edges());
    }

    #[test]
    fn hoist_preserves_degraded_asymmetric_bandwidths() {
        // Degrade the a-m uplink of an internal-compute chain, then hoist:
        // the surviving real edge must carry the degraded weights, and the
        // fingerprint must have moved from the healthy tree's.
        let build = || {
            let mut b = TreeBuilder::new();
            let a = b.compute();
            let m = b.compute();
            let c = b.compute();
            b.link_asym(a, m, 6.0, 3.0).unwrap();
            b.link(m, c, 5.0).unwrap();
            (b.build().unwrap(), a, m)
        };
        let (healthy, a, m) = build();
        let (mut t, _, _) = build();
        let e = t.dir_edge_between(a, m).unwrap().edge();
        t.scale_bandwidth(e, 3.0).unwrap();
        assert_ne!(t.fingerprint(), healthy.fingerprint());

        let norm = hoist_compute_leaves(&t);
        assert!(norm.tree.compute_nodes_are_leaves());
        let d = norm.tree.dir_edge_between(a, m).unwrap();
        let back = norm.tree.dir_edge_between(m, a).unwrap();
        assert_eq!(norm.tree.bandwidth(d).get(), 2.0);
        assert_eq!(norm.tree.bandwidth(back).get(), 1.0);
    }

    #[test]
    fn contracts_router_chains() {
        // a - r1 - r2 - r3 - c with decreasing bandwidths: contraction must
        // keep the min.
        let mut b = TreeBuilder::new();
        let a = b.compute();
        let r1 = b.router();
        let r2 = b.router();
        let r3 = b.router();
        let c = b.compute();
        b.link(a, r1, 8.0).unwrap();
        b.link(r1, r2, 2.0).unwrap();
        b.link(r2, r3, 4.0).unwrap();
        b.link(r3, c, 6.0).unwrap();
        let t = b.build().unwrap();

        let norm = contract_degree2(&t);
        assert_eq!(norm.tree.num_nodes(), 2);
        assert_eq!(norm.tree.num_edges(), 1);
        let na = norm.node_map[a.index()].unwrap();
        let nc = norm.node_map[c.index()].unwrap();
        let d = norm.tree.dir_edge_between(na, nc).unwrap();
        assert_eq!(norm.tree.bandwidth(d).get(), 2.0);
        assert!(norm.node_map[r2.index()].is_none());
    }

    #[test]
    fn contract_keeps_degree2_compute() {
        let mut b = TreeBuilder::new();
        let a = b.compute();
        let m = b.compute(); // degree-2 *compute* node must survive
        let c = b.compute();
        b.link(a, m, 3.0).unwrap();
        b.link(m, c, 5.0).unwrap();
        let t = b.build().unwrap();
        let norm = contract_degree2(&t);
        assert_eq!(norm.tree.num_nodes(), 3);
        assert!(norm.node_map[m.index()].is_some());
    }

    #[test]
    fn contract_star_is_identity() {
        let t = crate::builders::star(5, 1.0);
        let norm = contract_degree2(&t);
        assert_eq!(norm.tree.num_nodes(), t.num_nodes());
    }
}
