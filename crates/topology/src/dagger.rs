//! The derived directed graph `G†` of Section 4.1 and its minimal covers.
//!
//! Every edge `e = (u, v)` of a symmetric tree `G` is oriented toward the
//! side with the larger total data weight: if `Σ_{x∈V⁻_e} N_x ≤
//! Σ_{x∈V⁺_e} N_x` then `G†` keeps only `u → v`. Lemma 4 shows that the
//! result is an in-tree: every node has out-degree at most one, and exactly
//! one node (the *root*) has out-degree zero.
//!
//! Weight ties would break Lemma 4's uniqueness argument, so we
//! perturb: the side containing node 0 is treated as infinitesimally
//! heavier. This is equivalent to adding `ε` to node 0's weight, keeps every
//! comparison strict, and therefore preserves the lemma's proof verbatim.
//!
//! A *cover* of `G†` is a set of nodes such that every leaf (in-degree 0
//! node) has an ancestor in the set (Section 4.1); covers feed the
//! cartesian-product lower bound of Theorem 4.

use crate::bandwidth::Bandwidth;
use crate::cut::CutWeights;
use crate::node::NodeId;
use crate::tree::{EdgeId, Tree};

/// The in-tree `G†`: parent pointers toward the root plus the bandwidth of
/// each node's unique outgoing edge.
#[derive(Clone, Debug)]
pub struct Dagger {
    root: NodeId,
    /// Out-neighbor (`p_u` in the paper) of each node; `None` for the root.
    parent: Vec<Option<NodeId>>,
    parent_edge: Vec<Option<EdgeId>>,
    /// Children `ζ(u)` of each node in `G†`.
    children: Vec<Vec<NodeId>>,
}

impl Dagger {
    /// Orient every edge of `tree` toward the heavier side of its cut under
    /// `weight` (per-node data sizes `N_v`), with the node-0 tie-break.
    pub fn build(tree: &Tree, weight: &[u64]) -> Self {
        let cw = CutWeights::compute(tree, weight);
        Self::build_with_cuts(tree, &cw)
    }

    /// As [`Dagger::build`], reusing precomputed cut weights.
    pub fn build_with_cuts(tree: &Tree, cw: &CutWeights) -> Self {
        let n = tree.num_nodes();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
        for e in tree.edges() {
            let (u, v) = tree.endpoints(e);
            let (su, sv) = (cw.side_u(e), cw.side_v(e));
            // Perturbation: the side containing node 0 gets +ε.
            let zero_with_u = tree.cut_side_of(e, NodeId(0)) == tree.cut_side_of(e, u);
            let u_to_v = su < sv || (su == sv && !zero_with_u);
            let (tail, _head) = if u_to_v { (u, v) } else { (v, u) };
            let head = if u_to_v { v } else { u };
            debug_assert!(parent[tail.index()].is_none(), "Lemma 4: out-degree ≤ 1");
            parent[tail.index()] = Some(head);
            parent_edge[tail.index()] = Some(e);
        }
        let mut roots = (0..n).filter(|&i| parent[i].is_none());
        let root = NodeId::from_index(roots.next().expect("Lemma 4: a root exists"));
        debug_assert!(roots.next().is_none(), "Lemma 4: the root is unique");
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(NodeId::from_index(i));
            }
        }
        Dagger {
            root,
            parent,
            parent_edge,
            children,
        }
    }

    /// The unique node with out-degree zero.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Out-neighbor `p_u` of `u` (toward the root), `None` for the root.
    #[inline]
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        self.parent[u.index()]
    }

    /// The tree edge realizing `u → p_u`.
    #[inline]
    pub fn parent_edge(&self, u: NodeId) -> Option<EdgeId> {
        self.parent_edge[u.index()]
    }

    /// Children `ζ(u)` in `G†`.
    #[inline]
    pub fn children(&self, u: NodeId) -> &[NodeId] {
        &self.children[u.index()]
    }

    /// Bandwidth `w_u` of `u`'s unique outgoing edge (symmetric trees).
    pub fn out_bandwidth(&self, tree: &Tree, u: NodeId) -> Option<Bandwidth> {
        self.parent_edge[u.index()].map(|e| tree.sym_bandwidth(e))
    }

    /// Leaves of `G†` (in-degree 0). When every compute node is a tree leaf
    /// and the root is a router, these are exactly the compute nodes.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.parent.len())
            .map(NodeId::from_index)
            .filter(|&v| self.children[v.index()].is_empty() && v != self.root)
            .collect()
    }

    /// Nodes in a bottom-up order (every node appears after all of its `G†`
    /// children): post-order of the in-tree.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.parent.len());
        let mut stack = vec![(self.root, false)];
        while let Some((x, expanded)) = stack.pop() {
            if expanded {
                out.push(x);
                continue;
            }
            stack.push((x, true));
            for &c in &self.children[x.index()] {
                stack.push((c, false));
            }
        }
        out
    }

    /// Nodes in a top-down order (root first): pre-order of the in-tree.
    pub fn pre_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.parent.len());
        let mut stack = vec![self.root];
        while let Some(x) = stack.pop() {
            out.push(x);
            for &c in self.children[x.index()].iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// `true` if every leaf of `G†` has an ancestor (possibly itself) in
    /// `set`.
    pub fn is_cover(&self, set: &[NodeId]) -> bool {
        let mut marked = vec![false; self.parent.len()];
        for &s in set {
            marked[s.index()] = true;
        }
        self.leaves().iter().all(|&leaf| {
            let mut x = leaf;
            loop {
                if marked[x.index()] {
                    return true;
                }
                match self.parent[x.index()] {
                    Some(p) => x = p,
                    None => return false,
                }
            }
        })
    }

    /// `true` if `set` is a cover and no proper subset is.
    pub fn is_minimal_cover(&self, set: &[NodeId]) -> bool {
        if !self.is_cover(set) {
            return false;
        }
        (0..set.len()).all(|i| {
            let mut reduced = set.to_vec();
            reduced.swap_remove(i);
            !self.is_cover(&reduced)
        })
    }

    /// Enumerate minimal covers of `G†`, up to `limit` of them.
    ///
    /// Minimal covers are exactly the antichains that cover every leaf;
    /// they are generated recursively: the cover of a subtree is either the
    /// subtree root itself or a combination of covers of its children.
    pub fn minimal_covers(&self, limit: usize) -> Vec<Vec<NodeId>> {
        fn rec(d: &Dagger, v: NodeId, limit: usize) -> Vec<Vec<NodeId>> {
            let mut out = vec![vec![v]];
            let kids = d.children(v);
            if !kids.is_empty() {
                // Cartesian product of children's cover lists.
                let mut combos: Vec<Vec<NodeId>> = vec![Vec::new()];
                for &c in kids {
                    let child_covers = rec(d, c, limit);
                    let mut next = Vec::new();
                    for base in &combos {
                        for cc in &child_covers {
                            let mut merged = base.clone();
                            merged.extend_from_slice(cc);
                            next.push(merged);
                            if next.len() >= limit {
                                break;
                            }
                        }
                        if next.len() >= limit {
                            break;
                        }
                    }
                    combos = next;
                }
                out.extend(combos);
            }
            out.truncate(limit);
            out
        }
        rec(self, self.root, limit)
    }

    /// The cover one level below the root: all children of the root. This is
    /// the canonical `U ≠ {r}` cover required by Theorem 4 (when the root
    /// has children).
    pub fn root_children_cover(&self) -> Vec<NodeId> {
        self.children[self.root.index()].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn uniform_weights(tree: &Tree, w: u64) -> Vec<u64> {
        let mut out = vec![0u64; tree.num_nodes()];
        for &v in tree.compute_nodes() {
            out[v.index()] = w;
        }
        out
    }

    #[test]
    fn star_uniform_root_is_center() {
        let t = builders::star(5, 1.0);
        let d = Dagger::build(&t, &uniform_weights(&t, 10));
        // With uniform data no leaf holds ≥ N/2, so all edges point to the
        // center router.
        assert_eq!(d.root(), NodeId::from_index(5));
        assert!(!t.is_compute(d.root()));
        assert_eq!(d.leaves().len(), 5);
    }

    #[test]
    fn heavy_node_becomes_root() {
        let t = builders::star(4, 1.0);
        let mut w = uniform_weights(&t, 1);
        w[0] = 100; // node 0 holds almost everything
        let d = Dagger::build(&t, &w);
        assert_eq!(d.root(), NodeId(0));
        assert!(t.is_compute(d.root()));
    }

    #[test]
    fn lemma4_invariants_on_random_trees() {
        for seed in 0..20 {
            let t = builders::random_tree(8, 5, 1.0, 16.0, seed);
            let mut w = vec![0u64; t.num_nodes()];
            for (i, &v) in t.compute_nodes().iter().enumerate() {
                w[v.index()] = (seed * 13 + i as u64 * 7) % 50;
            }
            // Dagger::build debug_asserts out-degree ≤ 1 and root uniqueness.
            let d = Dagger::build(&t, &w);
            // Every non-root node reaches the root.
            for v in t.nodes() {
                let mut x = v;
                let mut hops = 0;
                while let Some(p) = d.parent(x) {
                    x = p;
                    hops += 1;
                    assert!(hops <= t.num_nodes());
                }
                assert_eq!(x, d.root());
            }
        }
    }

    #[test]
    fn ties_are_broken_consistently() {
        // Two compute nodes with identical weight: the cut ties.
        let t = builders::star(2, 1.0);
        let d = Dagger::build(&t, &uniform_weights(&t, 5));
        // A unique root must still emerge.
        let n_roots = t.nodes().filter(|&v| d.parent(v).is_none()).count();
        assert_eq!(n_roots, 1);
    }

    #[test]
    fn covers() {
        let t = builders::star(3, 1.0);
        let d = Dagger::build(&t, &uniform_weights(&t, 4));
        let r = d.root();
        assert!(d.is_minimal_cover(&[r]));
        let leaves = d.leaves();
        assert!(d.is_minimal_cover(&leaves));
        // Root + a leaf is a cover but not minimal.
        let mut both = vec![r];
        both.push(leaves[0]);
        assert!(d.is_cover(&both));
        assert!(!d.is_minimal_cover(&both));
        // Missing a leaf is not a cover.
        assert!(!d.is_cover(&leaves[1..]));
    }

    #[test]
    fn minimal_cover_enumeration() {
        let t = builders::rack_tree(&[(2, 1.0, 4.0), (2, 1.0, 4.0)], 8.0);
        let d = Dagger::build(&t, &uniform_weights(&t, 10));
        let covers = d.minimal_covers(64);
        assert!(!covers.is_empty());
        for c in &covers {
            assert!(d.is_minimal_cover(c), "cover {c:?} not minimal");
        }
        // The trivial cover {root} is among them.
        assert!(covers.iter().any(|c| c == &vec![d.root()]));
    }

    #[test]
    fn post_order_is_children_first() {
        let t = builders::rack_tree(&[(3, 1.0, 2.0), (2, 1.0, 2.0)], 4.0);
        let d = Dagger::build(&t, &uniform_weights(&t, 1));
        let post = d.post_order();
        let pos: std::collections::HashMap<_, _> =
            post.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for v in t.nodes() {
            for &c in d.children(v) {
                assert!(pos[&c] < pos[&v]);
            }
        }
        assert_eq!(*post.last().unwrap(), d.root());
    }
}
