//! Edge-cut side weights — the quantity the paper's lower bounds live on.
//!
//! Every edge `e` of a tree splits the nodes into two sides `V⁻_e` and
//! `V⁺_e` (Section 3.1). All three lower bounds (Theorems 1, 3, 6) take the
//! form `max_e (1/w_e) · min{…, Σ_{v∈V⁻_e} N_v, Σ_{v∈V⁺_e} N_v}`, so we
//! precompute the side sums of an arbitrary per-node weight for *all* edges
//! in one `O(|V|)` pass.

use crate::node::NodeId;
use crate::tree::{EdgeId, Tree};

/// Per-edge side sums of a per-node weight function.
///
/// For edge `e` with stored endpoints `(u, v)`, `side_u(e)` is the weight on
/// `u`'s side of the cut and `side_v(e)` on `v`'s side;
/// `side_u(e) + side_v(e) == total()` always holds.
#[derive(Clone, Debug)]
pub struct CutWeights {
    side_u: Vec<u64>,
    side_v: Vec<u64>,
    total: u64,
}

impl CutWeights {
    /// Compute side sums for all edges. `weight` is indexed by node id and
    /// must cover every node (router entries are normally `0`).
    pub fn compute(tree: &Tree, weight: &[u64]) -> Self {
        let (child_side, total) = tree.subtree_sums(weight);
        let ne = tree.num_edges();
        let mut side_u = vec![0u64; ne];
        let mut side_v = vec![0u64; ne];
        for i in 0..ne {
            let e = EdgeId(i as u32);
            let (u, _v) = tree.endpoints(e);
            let deeper = tree.deeper_endpoint(e);
            let (deep, far) = (child_side[i], total - child_side[i]);
            if deeper == u {
                side_u[i] = deep;
                side_v[i] = far;
            } else {
                side_u[i] = far;
                side_v[i] = deep;
            }
        }
        CutWeights {
            side_u,
            side_v,
            total,
        }
    }

    /// Total weight across all nodes.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Weight on the side of `e` containing its stored endpoint `u`.
    #[inline]
    pub fn side_u(&self, e: EdgeId) -> u64 {
        self.side_u[e.index()]
    }

    /// Weight on the side of `e` containing its stored endpoint `v`.
    #[inline]
    pub fn side_v(&self, e: EdgeId) -> u64 {
        self.side_v[e.index()]
    }

    /// `min{Σ_{V⁻_e}, Σ_{V⁺_e}}` — the smaller side of the cut.
    #[inline]
    pub fn min_side(&self, e: EdgeId) -> u64 {
        self.side_u[e.index()].min(self.side_v[e.index()])
    }

    /// Weight on the side of `e` containing node `x` (which may be either
    /// endpoint or any other node).
    pub fn side_containing(&self, tree: &Tree, e: EdgeId, x: NodeId) -> u64 {
        let (u, _) = tree.endpoints(e);
        let x_with_u = tree.cut_side_of(e, x) == tree.cut_side_of(e, u);
        if x_with_u {
            self.side_u[e.index()]
        } else {
            self.side_v[e.index()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::tree::TreeBuilder;

    #[test]
    fn star_cuts_are_leaf_vs_rest() {
        // Star with 4 compute leaves, weights 1, 2, 3, 4.
        let t = builders::star(4, 1.0);
        let mut w = vec![0u64; t.num_nodes()];
        for (i, &v) in t.compute_nodes().iter().enumerate() {
            w[v.index()] = (i + 1) as u64;
        }
        let cw = CutWeights::compute(&t, &w);
        assert_eq!(cw.total(), 10);
        for e in t.edges() {
            let (u, v) = t.endpoints(e);
            let leaf = if t.is_compute(u) { u } else { v };
            let leaf_w = w[leaf.index()];
            assert_eq!(cw.min_side(e), leaf_w.min(10 - leaf_w));
            assert_eq!(cw.side_containing(&t, e, leaf), leaf_w);
        }
    }

    #[test]
    fn sides_sum_to_total() {
        let mut b = TreeBuilder::new();
        let v0 = b.compute();
        let r = b.router();
        let v1 = b.compute();
        let r2 = b.router();
        let v2 = b.compute();
        b.link(v0, r, 1.0).unwrap();
        b.link(r, v1, 1.0).unwrap();
        b.link(r, r2, 1.0).unwrap();
        b.link(r2, v2, 1.0).unwrap();
        let t = b.build().unwrap();
        let w = vec![5, 0, 7, 0, 9];
        let cw = CutWeights::compute(&t, &w);
        for e in t.edges() {
            assert_eq!(cw.side_u(e) + cw.side_v(e), cw.total());
        }
        // Cut on edge r-r2 separates {v0, v1} from {v2}.
        let e = t
            .dir_edge_between(crate::NodeId(1), crate::NodeId(3))
            .unwrap()
            .edge();
        assert_eq!(cw.min_side(e), 9);
    }
}
