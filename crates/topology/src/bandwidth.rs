//! Link bandwidth newtype.

use std::fmt;
use std::ops::{Div, Mul};

use crate::error::TopologyError;

/// Bandwidth of a directed link, in data units (tuples or bits) per unit cost.
///
/// Bandwidths are strictly positive and may be `+∞` — the model of
/// Section 2.2 uses infinite bandwidth to make a direction free, which is
/// how the classic MPC model embeds into the topology-aware model. Dividing
/// a finite amount of traffic by an infinite bandwidth costs exactly `0`.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Infinite bandwidth: traffic over this link is free.
    pub const INF: Bandwidth = Bandwidth(f64::INFINITY);

    /// Unit bandwidth.
    pub const ONE: Bandwidth = Bandwidth(1.0);

    /// Create a bandwidth, validating that it is positive and not NaN.
    pub fn new(w: f64) -> Result<Self, TopologyError> {
        if w.is_nan() || w <= 0.0 {
            Err(TopologyError::InvalidBandwidth(w))
        } else {
            Ok(Bandwidth(w))
        }
    }

    /// The raw value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// `true` if this link is free (infinite bandwidth).
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// The cost of shipping `amount` data units across this link:
    /// `amount / w`, which is `0` for infinite bandwidth.
    #[inline]
    pub fn cost_of(self, amount: f64) -> f64 {
        if self.0.is_infinite() {
            0.0
        } else {
            amount / self.0
        }
    }

    /// Total order (bandwidths are never NaN).
    #[inline]
    pub fn total_cmp(self, other: Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Minimum of two bandwidths (used when contracting degree-2 routers).
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl Mul<f64> for Bandwidth {
    type Output = f64;
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl Div<Bandwidth> for f64 {
    type Output = f64;
    fn div(self, rhs: Bandwidth) -> f64 {
        rhs.cost_of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid() {
        assert!(Bandwidth::new(0.0).is_err());
        assert!(Bandwidth::new(-1.0).is_err());
        assert!(Bandwidth::new(f64::NAN).is_err());
        assert!(Bandwidth::new(1e-9).is_ok());
        assert!(Bandwidth::new(f64::INFINITY).is_ok());
    }

    #[test]
    fn infinite_is_free() {
        assert_eq!(Bandwidth::INF.cost_of(1e18), 0.0);
        assert!(Bandwidth::INF.is_infinite());
    }

    #[test]
    fn cost_divides() {
        let w = Bandwidth::new(4.0).unwrap();
        assert_eq!(w.cost_of(8.0), 2.0);
        assert_eq!(8.0 / w, 2.0);
    }

    #[test]
    fn min_picks_smaller() {
        let a = Bandwidth::new(2.0).unwrap();
        let b = Bandwidth::new(3.0).unwrap();
        assert_eq!(a.min(b).get(), 2.0);
        assert_eq!(b.min(a).get(), 2.0);
        assert_eq!(a.min(Bandwidth::INF).get(), 2.0);
    }
}
