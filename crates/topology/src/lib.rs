//! # tamp-topology
//!
//! Network-topology substrate for the topology-aware massively parallel
//! computation (MPC) model of Hu, Koutris and Blanas (PODS 2021).
//!
//! The model represents the communication network as a directed graph
//! `G = (V, E)` where each edge carries a bandwidth `w_e ≥ 0`, a subset of
//! the nodes are *compute* nodes (they store data and compute), and the
//! remaining nodes only route. The paper's algorithms are developed for
//! **symmetric tree** topologies, which this crate models first-class:
//!
//! - [`Tree`] — a validated tree topology with per-direction bandwidths,
//!   unique-path routing, rootings, traversal orders and edge cuts;
//! - [`lca`] — Euler-tour + sparse-table O(1) lowest-common-ancestor
//!   queries with flat path-decomposition arrays, the routing substrate
//!   of the aggregate traffic meter;
//! - [`cut`] — O(|V|) computation of the `(V⁻_e, V⁺_e)` side-weights for
//!   *every* edge at once, the quantity all of the paper's lower bounds are
//!   expressed in;
//! - [`dagger`] — the derived directed graph `G†` of Section 4.1, its root,
//!   and minimal covers (Lemma 4 and Theorem 4);
//! - [`normalize`] — the two w.l.o.g. transformations of Section 2.1
//!   (every compute node is a leaf; no degree-2 routers);
//! - [`builders`] — constructors for the topology families discussed in the
//!   paper: stars, rack trees (Fig. 1b), fat-trees, caterpillars, random
//!   trees, and the asymmetric star that embeds the classic MPC model
//!   (Section 2.2);
//! - [`graph`] — general (non-tree) topologies from §7's future work:
//!   grids, tori, hypercubes, widest-path routing, spanning-tree
//!   extraction and per-cut lower-bound capacities.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bandwidth;
pub mod builders;
pub mod cut;
pub mod dagger;
pub mod dot;
pub mod error;
pub mod graph;
pub mod lca;
pub mod node;
pub mod normalize;
pub mod tree;

pub use bandwidth::Bandwidth;
pub use cut::CutWeights;
pub use dagger::Dagger;
pub use error::TopologyError;
pub use graph::{Graph, GraphBuilder};
pub use lca::LcaIndex;
pub use node::{NodeId, NodeKind};
pub use tree::{DirEdgeId, EdgeId, Tree, TreeBuilder};
