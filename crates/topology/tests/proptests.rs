//! Property-based tests of the topology substrate: random trees must
//! satisfy the structural invariants every algorithm in the stack builds
//! on.

use proptest::prelude::*;
use tamp_topology::normalize::{contract_degree2, hoist_compute_leaves};
use tamp_topology::{builders, CutWeights, NodeId, Tree};

fn arb_tree() -> impl Strategy<Value = Tree> {
    (1usize..12, 1usize..8, 0u64..10_000)
        .prop_map(|(c, r, seed)| builders::random_tree(c, r, 0.1, 32.0, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_is_connected_acyclic(tree in arb_tree()) {
        prop_assert_eq!(tree.num_edges() + 1, tree.num_nodes());
        // Every pair of nodes is connected by a path of the right length
        // parity (spot-check against node 0).
        for v in tree.nodes() {
            let path = tree.path(NodeId(0), v);
            prop_assert_eq!(path.is_empty(), v == NodeId(0));
            prop_assert!(path.len() < tree.num_nodes());
        }
    }

    #[test]
    fn subtree_sums_match_bruteforce(tree in arb_tree(), seed in 0u64..9999) {
        let w: Vec<u64> = (0..tree.num_nodes() as u64)
            .map(|i| (i.wrapping_mul(seed + 7)) % 97)
            .collect();
        let (child, total) = tree.subtree_sums(&w);
        prop_assert_eq!(total, w.iter().sum::<u64>());
        for e in tree.edges() {
            let c = tree.deeper_endpoint(e);
            let brute: u64 = tree
                .nodes()
                .filter(|&x| tree.in_subtree0(x, c))
                .map(|x| w[x.index()])
                .sum();
            prop_assert_eq!(child[e.index()], brute);
        }
    }

    #[test]
    fn cut_weights_min_side_at_most_half(tree in arb_tree()) {
        let w: Vec<u64> = vec![2; tree.num_nodes()];
        let cw = CutWeights::compute(&tree, &w);
        for e in tree.edges() {
            prop_assert!(cw.min_side(e) <= cw.total() / 2 + 1);
        }
    }

    #[test]
    fn left_to_right_orders_are_permutations(tree in arb_tree()) {
        for root in tree.nodes() {
            let order = tree.left_to_right_compute_order(root);
            let mut sorted = order.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), tree.num_compute());
        }
    }

    #[test]
    fn hoisting_makes_all_computes_leaves(tree in arb_tree()) {
        let norm = hoist_compute_leaves(&tree);
        prop_assert!(norm.tree.compute_nodes_are_leaves());
        prop_assert_eq!(norm.tree.num_compute(), tree.num_compute());
        // Every original compute node maps to a compute node.
        for &c in tree.compute_nodes() {
            let mapped = norm.node_map[c.index()].expect("compute survives");
            prop_assert!(norm.tree.is_compute(mapped));
        }
    }

    #[test]
    fn contraction_removes_all_degree2_routers(tree in arb_tree()) {
        let norm = contract_degree2(&tree);
        for v in norm.tree.nodes() {
            prop_assert!(
                norm.tree.is_compute(v) || norm.tree.degree(v) != 2,
                "router {} kept degree 2", v
            );
        }
        prop_assert_eq!(norm.tree.num_compute(), tree.num_compute());
        // Contraction never increases the node count.
        prop_assert!(norm.tree.num_nodes() <= tree.num_nodes());
    }

    #[test]
    fn contraction_preserves_path_bottlenecks(tree in arb_tree()) {
        // The min bandwidth along any compute-to-compute path is invariant
        // under degree-2 contraction (that is the point of the transform).
        let norm = contract_degree2(&tree);
        let vc = tree.compute_nodes();
        for (i, &a) in vc.iter().enumerate() {
            for &b in vc.iter().skip(i + 1).take(3) {
                let bottleneck = |t: &Tree, x, y| {
                    t.path(x, y)
                        .iter()
                        .map(|&d| t.bandwidth(d).get())
                        .fold(f64::INFINITY, f64::min)
                };
                let before = bottleneck(&tree, a, b);
                let na = norm.node_map[a.index()].unwrap();
                let nb = norm.node_map[b.index()].unwrap();
                let after = bottleneck(&norm.tree, na, nb);
                prop_assert!((before - after).abs() < 1e-9,
                    "bottleneck {} → {}", before, after);
            }
        }
    }

    #[test]
    fn dot_export_mentions_every_node(tree in arb_tree()) {
        let dot = tamp_topology::dot::to_dot(&tree);
        let starts = dot.starts_with("graph tamp {");
        let ends = dot.ends_with("}\n");
        prop_assert!(starts && ends);
        for v in tree.nodes() {
            let mentioned = dot.contains(&format!("  {} [", v.index()));
            prop_assert!(mentioned);
        }
    }
}
