//! A persistent worker pool reusable across cluster runs.
//!
//! [`run_programs`](crate::cluster) spawns a scoped thread crew per
//! execution by default — fine for one-shot protocol runs, wasteful for a
//! serving layer that executes thousands of small queries against the
//! same backend. A [`WorkerPool`] keeps the crew alive: threads are
//! spawned once and parked between jobs, and each job (one cluster
//! execution's worker loop) is dispatched to all of them without any
//! spawn/join cost. [`PooledClusterBackend`](crate::PooledClusterBackend)
//! picks it up via
//! [`with_shared_pool`](crate::PooledClusterBackend::with_shared_pool),
//! which is what the query serving layer shares across sessions.
//!
//! Jobs are serialized: one cluster run occupies the whole pool at a
//! time, and concurrent [`run_with`](WorkerPool::run_with) callers queue
//! on an internal lock (FIFO fairness at this level is provided by the
//! callers' own admission control; the pool only guarantees mutual
//! exclusion). Results are unaffected by the pool — cluster execution is
//! bit-identical for any worker count and any crew lifetime.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Recover a usable guard from a possibly-poisoned mutex: the pool must
/// survive a panicking job (the panic is re-raised on the dispatching
/// thread; the shared state itself is just counters and pointers).
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The current job, type-erased. The raw pointer launders the caller's
/// borrow lifetime; soundness is argued at the single place it is set
/// ([`WorkerPool::run_with`]).
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine), and `run_with` guarantees it outlives every dereference.
unsafe impl Send for JobPtr {}

struct PoolGate {
    /// The job workers should run; bumps of `generation` publish it.
    job: Option<JobPtr>,
    /// Incremented once per dispatched job.
    generation: u64,
    /// Workers still executing the current job.
    running: usize,
    /// Panic payload message from a worker, if any.
    panicked: Option<String>,
    /// Set by `Drop`: workers exit.
    stop: bool,
}

struct Shared {
    gate: Mutex<PoolGate>,
    /// Workers sleep here between jobs.
    work_cv: Condvar,
    /// The dispatcher sleeps here until `running == 0`.
    done_cv: Condvar,
}

/// A fixed crew of persistent worker threads, reusable across cluster
/// executions (see the module docs).
pub struct WorkerPool {
    shared: Arc<Shared>,
    size: usize,
    /// Serializes jobs: one `run_with` at a time owns the crew.
    job_lock: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool of `size` persistent workers (floored at 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let shared = Arc::new(Shared {
            gate: Mutex::new(PoolGate {
                job: None,
                generation: 0,
                running: 0,
                panicked: None,
                stop: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tamp-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            size,
            job_lock: Mutex::new(()),
            handles,
        }
    }

    /// Number of worker threads in the crew.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Dispatch `worker` to every pool thread (as `worker(thread_index)`),
    /// run `main` on the calling thread concurrently, and return `main`'s
    /// result once **both** `main` and every worker have finished.
    ///
    /// This is the scoped-thread shape on a persistent crew: `worker` may
    /// borrow from the caller's stack because `run_with` does not return
    /// until every worker is done with it. A panic in a worker is
    /// captured and re-raised here (after the join); a panic in `main`
    /// propagates after the workers finish — either way no borrow
    /// escapes.
    pub fn run_with<R>(&self, worker: &(dyn Fn(usize) + Sync), main: impl FnOnce() -> R) -> R {
        let _job = lock_ok(&self.job_lock);
        // SAFETY (lifetime laundering): the raw pointer is dereferenced
        // only by workers between the dispatch below and the join a few
        // lines down, both inside this call — the borrow is live for all
        // of it. `job` is cleared before returning.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(worker)
        });
        {
            let mut g = lock_ok(&self.shared.gate);
            g.job = Some(ptr);
            g.generation += 1;
            g.running = self.size;
            g.panicked = None;
        }
        self.shared.work_cv.notify_all();
        let main_result = catch_unwind(AssertUnwindSafe(main));
        // Join: wait for the whole crew even if `main` panicked — workers
        // may still hold borrows into the caller's frame.
        let worker_panic = {
            let mut g = lock_ok(&self.shared.gate);
            while g.running > 0 {
                g = match self.shared.done_cv.wait(g) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            g.job = None;
            g.panicked.take()
        };
        match main_result {
            Err(payload) => resume_unwind(payload),
            Ok(r) => {
                if let Some(msg) = worker_panic {
                    panic!("worker pool job panicked: {msg}");
                }
                r
            }
        }
    }
}

/// An elastically resizable crew: a [`WorkerPool`] behind a swap point.
///
/// [`WorkerPool`] is deliberately fixed-width — its soundness argument
/// leans on a crew whose size never changes under a job. Elastic scaling
/// therefore happens one level up: an `ElasticPool` holds the *current*
/// crew behind a mutex, and [`resize`](Self::resize) swaps in a freshly
/// spawned crew of the target width. Executions snapshot the crew
/// ([`snapshot`](Self::snapshot)) once at run start, so
///
/// - in-flight runs keep the crew they started on (the old crew's
///   threads exit once the last such run drops its `Arc`), and
/// - results are unaffected by scaling — cluster execution is
///   bit-identical for any worker count, so growing or shrinking the
///   crew between queries can never change an answer.
///
/// This is the scaling actuator the query orchestration layer drives
/// from its control loop (via
/// [`PooledClusterBackend::with_elastic_pool`](crate::PooledClusterBackend::with_elastic_pool)).
pub struct ElasticPool {
    current: Mutex<Arc<WorkerPool>>,
}

impl std::fmt::Debug for ElasticPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticPool")
            .field("width", &self.width())
            .finish()
    }
}

impl ElasticPool {
    /// Spawn an elastic pool whose initial crew has `width` workers
    /// (floored at 1).
    pub fn new(width: usize) -> Self {
        ElasticPool {
            current: Mutex::new(Arc::new(WorkerPool::new(width))),
        }
    }

    /// The current crew width.
    pub fn width(&self) -> usize {
        lock_ok(&self.current).size()
    }

    /// The current crew, pinned: runs execute on the snapshot they take,
    /// unaffected by later resizes.
    pub fn snapshot(&self) -> Arc<WorkerPool> {
        Arc::clone(&lock_ok(&self.current))
    }

    /// Swap in a freshly spawned crew of `width` workers (floored at 1);
    /// returns the previous width. A no-op when the width is unchanged.
    /// In-flight runs finish on the crew they snapshotted.
    pub fn resize(&self, width: usize) -> usize {
        let width = width.max(1);
        let mut current = lock_ok(&self.current);
        let previous = current.size();
        if width != previous {
            *current = Arc::new(WorkerPool::new(width));
        }
        previous
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut g = lock_ok(&self.shared.gate);
            g.stop = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut g = lock_ok(&shared.gate);
            while g.generation == seen && !g.stop {
                g = match shared.work_cv.wait(g) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            if g.stop {
                return;
            }
            seen = g.generation;
            g.job.expect("job published with the generation bump")
        };
        // SAFETY: see `run_with` — the pointee outlives this call.
        let result = catch_unwind(AssertUnwindSafe(|| (unsafe { &*job.0 })(index)));
        let mut g = lock_ok(&shared.gate);
        if let Err(payload) = result {
            g.panicked
                .get_or_insert_with(|| crate::error::panic_message(&*payload));
        }
        g.running -= 1;
        if g.running == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_worker_and_reuses_threads() {
        let pool = WorkerPool::new(4);
        let hits = AtomicUsize::new(0);
        for _ in 0..10 {
            let r = pool.run_with(
                &|_i| {
                    hits.fetch_add(1, Ordering::Relaxed);
                },
                || 42,
            );
            assert_eq!(r, 42);
        }
        assert_eq!(hits.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn main_runs_concurrently_with_workers() {
        // `main` releases the workers: if it did not run until workers
        // finished, this would deadlock.
        let pool = WorkerPool::new(2);
        let gate = Mutex::new(false);
        let cv = Condvar::new();
        pool.run_with(
            &|_i| {
                let mut open = gate.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            },
            || {
                *gate.lock().unwrap() = true;
                cv.notify_all();
            },
        );
    }

    #[test]
    fn worker_panics_surface_after_the_join() {
        let pool = WorkerPool::new(3);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_with(
                &|i| {
                    if i == 1 {
                        panic!("boom");
                    }
                },
                || (),
            )
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom"), "{msg}");
        // The pool survives for the next job.
        let ok = pool.run_with(&|_| {}, || 7);
        assert_eq!(ok, 7);
    }

    #[test]
    fn zero_size_floors_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
        assert_eq!(pool.run_with(&|_| {}, || 1), 1);
    }

    #[test]
    fn elastic_pool_resizes_between_snapshots() {
        let pool = ElasticPool::new(2);
        assert_eq!(pool.width(), 2);
        let old_crew = pool.snapshot();
        assert_eq!(pool.resize(4), 2);
        assert_eq!(pool.width(), 4);
        // The pinned snapshot still works at its original width while the
        // swapped-in crew serves new runs at the new width.
        let hits = AtomicUsize::new(0);
        old_crew.run_with(
            &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            },
            || (),
        );
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        let hits = AtomicUsize::new(0);
        pool.snapshot().run_with(
            &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            },
            || (),
        );
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        // Same-width resizes keep the crew; zero floors to one.
        let same = pool.snapshot();
        assert_eq!(pool.resize(4), 4);
        assert!(Arc::ptr_eq(&same, &pool.snapshot()));
        assert_eq!(pool.resize(0), 4);
        assert_eq!(pool.width(), 1);
    }
}
