//! Distributed, per-node implementations of the paper's protocols.
//!
//! Each program re-derives the protocol's global plan *locally* from the
//! knowledge the model grants every node — the topology, the link
//! bandwidths, and the initial cardinalities `|X_0(v)|` (§2) — plus a
//! shared seed. Because the plans (balanced partitions, weighted hashes,
//! square packings, splitter schedules) are deterministic functions of
//! that shared knowledge, every node computes the *same* plan without any
//! coordination messages, and the sends a node issues for its own data
//! match what the centralized simulator protocol would have issued on its
//! behalf. The cross-validation tests assert exactly that: identical
//! per-edge traffic, hence identical costs.

pub mod aggregate;
pub mod cartesian;
pub mod groupby;
pub mod intersect;
pub mod sort;

pub use aggregate::DistributedCombiningAggregate;
pub use cartesian::DistributedCartesian;
pub use groupby::DistributedGroupBy;
pub use intersect::DistributedTreeIntersect;
pub use sort::DistributedWts;
