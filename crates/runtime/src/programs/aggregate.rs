//! Distributed in-network combining aggregation.
//!
//! The convergecast merge schedule is a deterministic function of
//! `(tree, initial cardinalities, target)` —
//! [`combining_schedule`] — so
//! every node derives the identical level plan locally and plays only its
//! own part: at level `k`, if the node is a scheduled source, it ships its
//! accumulated partials to the scheduled destination; arriving partials
//! (delivered into the `S` fragment) are folded into the accumulator
//! before each superstep. Traffic is identical to the centralized
//! [`CombiningTreeAggregate`](tamp_core::aggregate::CombiningTreeAggregate),
//! asserted in the tests.

use std::collections::BTreeMap;

use tamp_core::aggregate::{
    combining_schedule, encode_partials, merge_partials, partials_of, Aggregator,
};
use tamp_simulator::NodeState;
use tamp_simulator::Rel;
use tamp_topology::NodeId;

use crate::cluster::{NodeCtx, NodeProgram};
use crate::message::{Outbox, Step};

/// One node's view of the distributed combining convergecast.
#[derive(Clone, Debug)]
pub struct DistributedCombiningAggregate {
    target: NodeId,
    agg: Aggregator,
    acc: BTreeMap<u64, u64>,
    schedule: Vec<Vec<(NodeId, NodeId)>>,
}

impl DistributedCombiningAggregate {
    /// Aggregate everything at `target` with `agg`.
    pub fn new(target: NodeId, agg: Aggregator) -> Self {
        DistributedCombiningAggregate {
            target,
            agg,
            acc: BTreeMap::new(),
            schedule: Vec::new(),
        }
    }

    fn fold_arrivals(&mut self, state: &mut NodeState) {
        let arrived = std::mem::take(&mut state.s);
        for (g, m) in merge_partials(&arrived, self.agg) {
            self.acc
                .entry(g)
                .and_modify(|p| *p = self.agg.combine(*p, m))
                .or_insert(m);
        }
    }
}

impl NodeProgram for DistributedCombiningAggregate {
    fn round(&mut self, ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox) -> Step {
        if ctx.round == 0 {
            assert!(
                ctx.tree.is_compute(self.target),
                "aggregation target must be a compute node"
            );
            self.schedule = combining_schedule(ctx.tree, &ctx.stats.n, self.target);
            self.acc = partials_of(&state.r, self.agg);
        } else {
            self.fold_arrivals(state);
        }
        match self.schedule.get(ctx.round) {
            Some(moves) => {
                for &(src, dst) in moves {
                    if src == ctx.node {
                        let vals = encode_partials(&std::mem::take(&mut self.acc));
                        out.send_to(dst, Rel::S, vals);
                    }
                }
                Step::Continue
            }
            None => {
                // Expose the final aggregate at the target through its S
                // fragment (encoded), like the group-by program does.
                if ctx.node == self.target {
                    state.s = encode_partials(&self.acc);
                }
                Step::Halt
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster, ClusterOptions};
    use tamp_core::aggregate::{decode, encode, reference_aggregate, CombiningTreeAggregate};
    use tamp_core::hashing::mix64;
    use tamp_simulator::{run_protocol, Placement};
    use tamp_topology::builders;

    fn grouped(tree: &tamp_topology::Tree, groups: u64, per_node: u64, seed: u64) -> Placement {
        let mut p = Placement::empty(tree);
        for (i, &v) in tree.compute_nodes().iter().enumerate() {
            for j in 0..per_node {
                let g = mix64(seed ^ ((i as u64) << 9) ^ j) % groups;
                p.push(v, Rel::R, encode(g, (j % 50) + 1));
            }
        }
        p
    }

    #[test]
    fn matches_simulator_cost_and_output() {
        for (tree, seed) in [
            (
                builders::rack_tree(&[(4, 4.0, 0.25), (4, 4.0, 0.25)], 1.0),
                1u64,
            ),
            (builders::caterpillar(4, 2, 1.0), 2),
            (builders::star(5, 1.0), 3),
        ] {
            let p = grouped(&tree, 12, 30, seed);
            let target = tree.compute_nodes()[0];
            let agg = Aggregator::Sum;
            let sim = run_protocol(&tree, &p, &CombiningTreeAggregate::new(target, agg)).unwrap();
            let rt = run_cluster(
                &tree,
                &p,
                |_| Box::new(DistributedCombiningAggregate::new(target, agg)),
                ClusterOptions::default(),
            )
            .unwrap();
            assert_eq!(rt.cost.edge_totals, sim.cost.edge_totals, "seed {seed}");
            assert_eq!(rt.cost.tuple_cost(), sim.cost.tuple_cost());
            let got: Vec<(u64, u64)> = rt.final_state[target.index()]
                .s
                .iter()
                .map(|&v| decode(v))
                .collect();
            assert_eq!(got, sim.output);
        }
    }

    #[test]
    fn correct_on_random_trees() {
        for seed in 0..6u64 {
            let tree = builders::random_tree(6, 4, 0.5, 3.0, seed);
            let p = grouped(&tree, 7, 20, seed);
            let target = tree.compute_nodes()[seed as usize % tree.num_compute()];
            let agg = Aggregator::Max;
            let rt = run_cluster(
                &tree,
                &p,
                |_| Box::new(DistributedCombiningAggregate::new(target, agg)),
                ClusterOptions::default(),
            )
            .unwrap();
            let got: Vec<(u64, u64)> = rt.final_state[target.index()]
                .s
                .iter()
                .map(|&v| decode(v))
                .collect();
            let want: Vec<(u64, u64)> = reference_aggregate(&p.all_r(), agg).into_iter().collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn empty_input_halts_quickly() {
        let tree = builders::star(3, 1.0);
        let p = Placement::empty(&tree);
        let rt = run_cluster(
            &tree,
            &p,
            |_| {
                Box::new(DistributedCombiningAggregate::new(
                    NodeId(0),
                    Aggregator::Sum,
                ))
            },
            ClusterOptions::default(),
        )
        .unwrap();
        assert_eq!(rt.cost.tuple_cost(), 0.0);
        assert!(rt.final_state[0].s.is_empty());
    }
}
