//! Distributed hash group-by aggregation.
//!
//! Mirrors [`tamp_core::aggregate::HashGroupBy`]: each node pre-aggregates
//! its local tuples, then routes the partial for group `g` to the owner
//! `h(g)` under the distribution-aware weighted hash
//! (`Pr[h(g) = v] = N_v / N`). At the end each node's `S` fragment holds
//! the final encoded `(group, aggregate)` pairs it owns.

use std::collections::BTreeMap;

use tamp_core::aggregate::{encode, encode_partials, merge_partials, partials_of, Aggregator};
use tamp_core::hashing::WeightedHash;
use tamp_simulator::{NodeState, Rel};
use tamp_topology::NodeId;

use crate::cluster::{NodeCtx, NodeProgram};
use crate::message::{Outbox, Step};

/// One node's view of the distributed group-by.
#[derive(Clone, Debug)]
pub struct DistributedGroupBy {
    seed: u64,
    agg: Aggregator,
    mine: BTreeMap<u64, u64>,
}

impl DistributedGroupBy {
    /// Create with the shared hash seed and aggregate function.
    pub fn new(seed: u64, agg: Aggregator) -> Self {
        DistributedGroupBy {
            seed,
            agg,
            mine: BTreeMap::new(),
        }
    }
}

impl NodeProgram for DistributedGroupBy {
    fn round(&mut self, ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox) -> Step {
        match ctx.round {
            0 => {
                let weighted: Vec<(NodeId, u64)> = ctx
                    .tree
                    .compute_nodes()
                    .iter()
                    .map(|&v| (v, ctx.stats.n_v(v)))
                    .collect();
                let Some(hash) = WeightedHash::new(self.seed, &weighted) else {
                    return Step::Halt;
                };
                let v = ctx.node;
                let partials = partials_of(&state.r, self.agg);
                // Deterministic outbox order (see the intersect program).
                let mut by_owner: BTreeMap<NodeId, Vec<u64>> = BTreeMap::new();
                for (g, m) in partials {
                    let owner = hash.pick(g);
                    if owner == v {
                        self.mine
                            .entry(g)
                            .and_modify(|p| *p = self.agg.combine(*p, m))
                            .or_insert(m);
                    } else {
                        by_owner.entry(owner).or_default().push(encode(g, m));
                    }
                }
                for (owner, vals) in by_owner {
                    out.send_to(owner, Rel::S, vals);
                }
                Step::Continue
            }
            _ => {
                // Fold received partials into the owned map and leave the
                // result in the S fragment.
                let arrived = std::mem::take(&mut state.s);
                for (g, m) in merge_partials(&arrived, self.agg) {
                    self.mine
                        .entry(g)
                        .and_modify(|p| *p = self.agg.combine(*p, m))
                        .or_insert(m);
                }
                state.s = encode_partials(&self.mine);
                Step::Halt
            }
        }
    }
}

/// Decode the distributed group-by output from the final node states:
/// sorted `(group, aggregate, owner)` triples.
pub fn collect_groupby_output(states: &[NodeState]) -> Vec<(u64, u64, NodeId)> {
    let mut out = Vec::new();
    for (i, st) in states.iter().enumerate() {
        for &val in &st.s {
            let (g, m) = tamp_core::aggregate::decode(val);
            out.push((g, m, NodeId(i as u32)));
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster, ClusterOptions};
    use tamp_core::aggregate::{reference_aggregate, HashGroupBy};
    use tamp_simulator::{run_protocol, Placement};
    use tamp_topology::builders;

    fn grouped(tree: &tamp_topology::Tree, groups: u64, per_node: u64) -> Placement {
        let mut p = Placement::empty(tree);
        for (i, &v) in tree.compute_nodes().iter().enumerate() {
            for j in 0..per_node {
                p.push(v, Rel::R, encode((i as u64 * 7 + j) % groups, j + 1));
            }
        }
        p
    }

    #[test]
    fn matches_simulator_cost_and_output() {
        let tree = builders::rack_tree(&[(2, 1.0, 2.0), (3, 2.0, 1.0)], 1.0);
        let p = grouped(&tree, 9, 40);
        let agg = Aggregator::Sum;
        let sim = run_protocol(&tree, &p, &HashGroupBy::new(5, agg)).unwrap();
        let rt = run_cluster(
            &tree,
            &p,
            |_| Box::new(DistributedGroupBy::new(5, agg)),
            ClusterOptions::default(),
        )
        .unwrap();
        assert_eq!(rt.cost.tuple_cost(), sim.cost.tuple_cost());
        assert_eq!(rt.cost.edge_totals, sim.cost.edge_totals);
        assert_eq!(collect_groupby_output(&rt.final_state), sim.output);
    }

    #[test]
    fn aggregates_are_correct_for_all_functions() {
        let tree = builders::star(4, 1.0);
        let p = grouped(&tree, 6, 30);
        for agg in [
            Aggregator::Count,
            Aggregator::Sum,
            Aggregator::Min,
            Aggregator::Max,
        ] {
            let rt = run_cluster(
                &tree,
                &p,
                |_| Box::new(DistributedGroupBy::new(3, agg)),
                ClusterOptions::default(),
            )
            .unwrap();
            let got: Vec<(u64, u64)> = collect_groupby_output(&rt.final_state)
                .into_iter()
                .map(|(g, m, _)| (g, m))
                .collect();
            let want: Vec<(u64, u64)> = reference_aggregate(&p.all_r(), agg).into_iter().collect();
            assert_eq!(got, want, "agg {agg:?}");
        }
    }

    #[test]
    fn empty_input_halts() {
        let tree = builders::star(2, 1.0);
        let p = Placement::empty(&tree);
        let rt = run_cluster(
            &tree,
            &p,
            |_| Box::new(DistributedGroupBy::new(0, Aggregator::Sum)),
            ClusterOptions::default(),
        )
        .unwrap();
        assert!(collect_groupby_output(&rt.final_state).is_empty());
    }
}
