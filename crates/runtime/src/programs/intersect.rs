//! Distributed Algorithm 2 (`TreeIntersect`).
//!
//! Superstep 0: every node derives the balanced partition and the per-block
//! weighted hashes from `(tree, stats, seed)` — all nodes agree because the
//! derivation is deterministic — then routes its local small-relation
//! tuples to `{h_1(a), …, h_k(a)}` (one multicast per distinct destination
//! set) and its big-relation tuples to `h_i(a)` within its own block.
//! Superstep 1: the deliveries have landed; each node's local state now
//! contains its share of `R ∩ S`, and everyone halts.

use std::collections::BTreeMap;

use tamp_core::hashing::WeightedHash;
use tamp_core::intersection::balanced_partition;
use tamp_simulator::{NodeState, Rel, Value};
use tamp_topology::NodeId;

use crate::cluster::{NodeCtx, NodeProgram};
use crate::message::{Outbox, Step};

/// One node's view of the distributed tree-intersection protocol.
#[derive(Clone, Debug)]
pub struct DistributedTreeIntersect {
    seed: u64,
}

impl DistributedTreeIntersect {
    /// Create with the shared hash seed.
    pub fn new(seed: u64) -> Self {
        DistributedTreeIntersect { seed }
    }
}

impl NodeProgram for DistributedTreeIntersect {
    fn round(&mut self, ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox) -> Step {
        if ctx.round >= 1 {
            return Step::Halt;
        }
        let tree = ctx.tree;
        let stats = ctx.stats;
        let (small, big) = if stats.total_r <= stats.total_s {
            (Rel::R, Rel::S)
        } else {
            (Rel::S, Rel::R)
        };
        let small_total = stats.total_rel(small);
        if small_total == 0 {
            return Step::Halt;
        }

        // Same derivation as the centralized protocol: partition, then one
        // weighted hash per block.
        let partition = balanced_partition(tree, &stats.n, small_total);
        let block_of = partition.block_of(tree.num_nodes());
        let hashes: Vec<Option<WeightedHash>> = partition
            .blocks
            .iter()
            .enumerate()
            .map(|(i, block)| {
                let weighted: Vec<(NodeId, u64)> =
                    block.iter().map(|&v| (v, stats.n_v(v))).collect();
                WeightedHash::new(
                    self.seed.wrapping_add(i as u64).wrapping_mul(0x9E37),
                    &weighted,
                )
            })
            .collect();

        let v = ctx.node;
        // Small-relation tuples: multicast to the per-block hash targets.
        // BTreeMaps keep the outbox issue order a deterministic function
        // of the data, so whole runs — not just their cost ledgers — are
        // reproducible across processes and pool widths.
        let mut by_dsts: BTreeMap<Vec<NodeId>, Vec<Value>> = BTreeMap::new();
        for &a in state.rel(small) {
            let mut dsts: Vec<NodeId> = hashes.iter().flatten().map(|h| h.pick(a)).collect();
            dsts.sort_unstable();
            dsts.dedup();
            by_dsts.entry(dsts).or_default().push(a);
        }
        for (dsts, vals) in by_dsts {
            out.send(&dsts, small, vals);
        }
        // Big-relation tuples: hash within the owner's block only.
        let bi = block_of[v.index()];
        if bi != usize::MAX {
            if let Some(h) = &hashes[bi] {
                let mut by_dst: BTreeMap<NodeId, Vec<Value>> = BTreeMap::new();
                for &a in state.rel(big) {
                    by_dst.entry(h.pick(a)).or_default().push(a);
                }
                for (dst, vals) in by_dst {
                    out.send_to(dst, big, vals);
                }
            }
        }
        Step::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster, ClusterOptions};
    use tamp_core::intersection::TreeIntersect;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    fn planted(tree: &tamp_topology::Tree, r: u64, s: u64, seed: u64) -> Placement {
        let mut p = Placement::empty(tree);
        let vc = tree.compute_nodes();
        for a in 0..r {
            let v = vc[(tamp_core::hashing::mix64(a ^ seed) % vc.len() as u64) as usize];
            p.push(v, Rel::R, a);
        }
        for a in 0..s {
            let val = r / 2 + a;
            let v = vc[(tamp_core::hashing::mix64(val ^ seed ^ 0xABCD) % vc.len() as u64) as usize];
            p.push(v, Rel::S, val);
        }
        p
    }

    #[test]
    fn matches_simulator_cost_exactly() {
        // Same seed ⇒ same hashes ⇒ identical per-edge traffic, so the
        // threaded cluster and the centralized simulator agree to the bit.
        for (tree, seed) in [
            (builders::star(5, 1.0), 9u64),
            (builders::rack_tree(&[(3, 1.0, 2.0), (3, 2.0, 4.0)], 1.0), 5),
            (builders::caterpillar(4, 2, 1.5), 3),
        ] {
            let p = planted(&tree, 120, 360, seed);
            let sim = run_protocol(&tree, &p, &TreeIntersect::new(seed)).unwrap();
            let rt = run_cluster(
                &tree,
                &p,
                |_| Box::new(DistributedTreeIntersect::new(seed)),
                ClusterOptions::default(),
            )
            .unwrap();
            assert_eq!(rt.cost.tuple_cost(), sim.cost.tuple_cost());
            assert_eq!(rt.cost.edge_totals, sim.cost.edge_totals);
            verify::check_intersection(&rt.final_state, &p.all_r(), &p.all_s()).unwrap();
        }
    }

    #[test]
    fn outputs_match_simulator() {
        let tree = builders::random_tree(7, 4, 0.5, 3.0, 11);
        let p = planted(&tree, 90, 200, 4);
        let sim = run_protocol(&tree, &p, &TreeIntersect::new(4)).unwrap();
        let rt = run_cluster(
            &tree,
            &p,
            |_| Box::new(DistributedTreeIntersect::new(4)),
            ClusterOptions::default(),
        )
        .unwrap();
        let sim_out = verify::emitted_intersection(&sim.final_state);
        let rt_out = verify::emitted_intersection(&rt.final_state);
        assert_eq!(sim_out, rt_out);
    }

    #[test]
    fn empty_input_halts_immediately() {
        let tree = builders::star(3, 1.0);
        let p = Placement::empty(&tree);
        let rt = run_cluster(
            &tree,
            &p,
            |_| Box::new(DistributedTreeIntersect::new(0)),
            ClusterOptions::default(),
        )
        .unwrap();
        assert_eq!(rt.cost.tuple_cost(), 0.0);
        assert_eq!(rt.supersteps, 1);
    }
}
