//! Distributed weighted TeraSort (§5.2).
//!
//! The four communication rounds of the centralized protocol map onto
//! supersteps 0–3; superstep 4 is the final local sort and halt vote:
//!
//! | Superstep | Who acts | Action |
//! |-----------|----------|--------|
//! | 0 | light nodes | push local data to heavy nodes (Algorithm 6 split) |
//! | 1 | heavy nodes | Bernoulli-sample local data, ship samples to `v₁` |
//! | 2 | `v₁` | sort samples, compute proportional splitters, broadcast |
//! | 3 | heavy nodes | bucketize by splitters, re-range |
//! | 4 | everyone | local sort, halt |
//!
//! The only state a node needs beyond its own fragment is the shared
//! `(tree, stats, seed)`: heaviness, the proportional split, the sampling
//! coins (value-deterministic `coin(seed, x, ρ)`) and even `v₁`'s splitter
//! schedule (post-round-1 sizes `M_j` are a deterministic function of the
//! initial cardinalities) are all locally re-derivable. Consequently the
//! threaded execution is traffic-identical to the simulator run with the
//! same seed — asserted in the tests.

use tamp_core::sorting::{bucketize, coin, proportional_split, sample_rate, valid_order};
use tamp_simulator::{NodeState, Rel, Value};
use tamp_topology::NodeId;

use crate::cluster::{NodeCtx, NodeProgram};
use crate::message::{Outbox, Step};

/// The shared plan every node derives locally at superstep 0.
#[derive(Clone, Debug)]
struct Plan {
    heavy: Vec<NodeId>,
    heavy_sizes: Vec<u64>,
    rho: f64,
    n: u64,
    k_all: u64,
}

impl Plan {
    fn derive(ctx: &NodeCtx<'_>) -> Plan {
        let order = valid_order(ctx.tree);
        let stats = ctx.stats;
        let n = stats.total_r;
        let k_all = order.len() as u64;
        let heavy: Vec<NodeId> = order
            .iter()
            .copied()
            .filter(|&v| 2 * stats.n_v(v) * k_all >= n)
            .collect();
        let heavy_sizes: Vec<u64> = heavy.iter().map(|&v| stats.n_v(v)).collect();
        let rho = sample_rate(order.len(), n);
        Plan {
            heavy,
            heavy_sizes,
            rho,
            n,
            k_all,
        }
    }

    fn is_heavy(&self, v: NodeId) -> bool {
        self.heavy.contains(&v)
    }

    fn v1(&self) -> NodeId {
        self.heavy[0]
    }

    /// Post-round-1 size `M_j` of each heavy node — a deterministic
    /// function of the initial cardinalities, so `v₁` (and anyone else)
    /// can compute it without extra communication.
    fn m_sizes(&self, ctx: &NodeCtx<'_>) -> Vec<u64> {
        let order = valid_order(ctx.tree);
        let mut m: Vec<u64> = self.heavy.iter().map(|&v| ctx.stats.r_v(v)).collect();
        for &u in &order {
            if self.is_heavy(u) {
                continue;
            }
            let local = ctx.stats.r_v(u);
            if local == 0 {
                continue;
            }
            let counts = proportional_split(&self.heavy_sizes, local);
            let mut remaining = local;
            for (i, &c) in counts.iter().enumerate() {
                let take = c.min(remaining);
                m[i] += take;
                remaining -= take;
            }
        }
        m
    }
}

/// One node's view of distributed weighted TeraSort.
#[derive(Clone, Debug)]
pub struct DistributedWts {
    seed: u64,
    plan: Option<Plan>,
}

impl DistributedWts {
    /// Create with the shared sampling seed.
    pub fn new(seed: u64) -> Self {
        DistributedWts { seed, plan: None }
    }
}

impl NodeProgram for DistributedWts {
    fn round(&mut self, ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox) -> Step {
        let v = ctx.node;
        match ctx.round {
            0 => {
                let plan = Plan::derive(ctx);
                if plan.n == 0 {
                    return Step::Halt;
                }
                if !plan.is_heavy(v) && !state.r.is_empty() {
                    // Light: ship consecutive chunks to heavy nodes.
                    let local = std::mem::take(&mut state.r);
                    let counts = proportional_split(&plan.heavy_sizes, local.len() as u64);
                    let mut start = 0usize;
                    for (i, &c) in counts.iter().enumerate() {
                        let end = (start + c as usize).min(local.len());
                        if end > start {
                            out.send_to(plan.heavy[i], Rel::R, local[start..end].to_vec());
                        }
                        start = end;
                    }
                }
                self.plan = Some(plan);
                Step::Continue
            }
            1 => {
                let plan = self.plan.as_ref().expect("plan derived in round 0");
                if plan.is_heavy(v) {
                    let samples: Vec<Value> = state
                        .r
                        .iter()
                        .copied()
                        .filter(|&x| coin(self.seed, x, plan.rho))
                        .collect();
                    out.send_to(plan.v1(), Rel::S, samples);
                }
                Step::Continue
            }
            2 => {
                let plan = self.plan.as_ref().expect("plan derived in round 0");
                if v == plan.v1() {
                    let mut samples = std::mem::take(&mut state.s);
                    samples.sort_unstable();
                    let s_len = samples.len();
                    let step = s_len.div_ceil(plan.k_all as usize).max(1);
                    let m = plan.m_sizes(ctx);
                    let mut splitters = Vec::with_capacity(plan.heavy.len().saturating_sub(1));
                    let mut c_acc = 0u64;
                    for &mj in m.iter().take(plan.heavy.len() - 1) {
                        let cj = (mj * plan.k_all).div_ceil(plan.n);
                        c_acc += cj;
                        let idx = (c_acc as usize).saturating_mul(step);
                        splitters.push(if idx == 0 {
                            Value::MIN
                        } else {
                            samples.get(idx - 1).copied().unwrap_or(Value::MAX)
                        });
                    }
                    out.send(&plan.heavy, Rel::S, splitters);
                }
                Step::Continue
            }
            3 => {
                let plan = self.plan.as_ref().expect("plan derived in round 0");
                if plan.is_heavy(v) {
                    let splitters = std::mem::take(&mut state.s);
                    let k = plan.heavy.len();
                    let i = plan.heavy.iter().position(|&h| h == v).expect("heavy");
                    let mut buckets = bucketize(&state.r, &splitters, k);
                    state.r = std::mem::take(&mut buckets[i]);
                    for (j, bucket) in buckets.into_iter().enumerate() {
                        if j != i && !bucket.is_empty() {
                            out.send_to(plan.heavy[j], Rel::R, bucket);
                        }
                    }
                }
                Step::Continue
            }
            _ => {
                state.r.sort_unstable();
                Step::Halt
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster, ClusterOptions};
    use tamp_core::hashing::mix64;
    use tamp_core::sorting::WeightedTeraSort;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    fn scattered(tree: &tamp_topology::Tree, n: u64, seed: u64) -> Placement {
        let mut p = Placement::empty(tree);
        let vc = tree.compute_nodes();
        for x in 0..n {
            let v = vc[(mix64(x ^ seed) % vc.len() as u64) as usize];
            p.push(v, Rel::R, mix64(x.wrapping_mul(31) ^ seed));
        }
        p
    }

    #[test]
    fn matches_simulator_cost_exactly() {
        for (tree, seed) in [
            (builders::star(4, 1.0), 7u64),
            (builders::rack_tree(&[(3, 1.0, 2.0), (3, 1.0, 2.0)], 1.0), 3),
        ] {
            let p = scattered(&tree, 500, seed);
            let sim = run_protocol(&tree, &p, &WeightedTeraSort::new(seed)).unwrap();
            let rt = run_cluster(
                &tree,
                &p,
                |_| Box::new(DistributedWts::new(seed)),
                ClusterOptions::default(),
            )
            .unwrap();
            assert_eq!(rt.cost.tuple_cost(), sim.cost.tuple_cost());
            assert_eq!(rt.cost.edge_totals, sim.cost.edge_totals);
        }
    }

    #[test]
    fn produces_valid_sorted_partition() {
        for seed in 0..6u64 {
            let tree = builders::random_tree(6, 4, 0.5, 4.0, seed);
            let p = scattered(&tree, 400, seed);
            let rt = run_cluster(
                &tree,
                &p,
                |_| Box::new(DistributedWts::new(seed)),
                ClusterOptions::default(),
            )
            .unwrap();
            let order = valid_order(&tree);
            verify::check_sorted_partition(&order, &rt.final_state, &p.all_r())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn light_nodes_end_empty() {
        let tree = builders::star(5, 1.0);
        let mut p = Placement::empty(&tree);
        let vc = tree.compute_nodes();
        p.set_r(vc[0], (0..300).map(mix64).collect());
        p.set_r(vc[1], vec![9, 4]);
        let rt = run_cluster(
            &tree,
            &p,
            |_| Box::new(DistributedWts::new(5)),
            ClusterOptions::default(),
        )
        .unwrap();
        assert!(rt.final_state[vc[1].index()].r.is_empty());
        let order = valid_order(&tree);
        verify::check_sorted_partition(&order, &rt.final_state, &p.all_r()).unwrap();
    }

    #[test]
    fn empty_input_is_free() {
        let tree = builders::star(3, 1.0);
        let p = Placement::empty(&tree);
        let rt = run_cluster(
            &tree,
            &p,
            |_| Box::new(DistributedWts::new(0)),
            ClusterOptions::default(),
        )
        .unwrap();
        assert_eq!(rt.cost.tuple_cost(), 0.0);
        assert_eq!(rt.supersteps, 1);
    }

    #[test]
    fn duplicates_are_handled() {
        let tree = builders::star(3, 1.0);
        let mut p = Placement::empty(&tree);
        p.set_r(NodeId(0), vec![42; 150]);
        p.set_r(NodeId(1), vec![41, 43]);
        let rt = run_cluster(
            &tree,
            &p,
            |_| Box::new(DistributedWts::new(1)),
            ClusterOptions::default(),
        )
        .unwrap();
        let order = valid_order(&tree);
        verify::check_sorted_partition(&order, &rt.final_state, &p.all_r()).unwrap();
    }
}
