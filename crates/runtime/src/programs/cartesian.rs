//! Distributed cartesian product (§4.4's square plan, direct routing).
//!
//! Every node derives the same Algorithm-5 packing from `(tree, stats)`,
//! labels its local tuples with their global indices, and multicasts each
//! maximal index segment to the square owners covering it. Unlike the
//! centralized §4.4 protocol — which routes both legs through the root of
//! `G†` to make the per-link analysis compositional — the distributed
//! program sends *directly*: in a tree, `path(src, dst) ⊆ path(src, root)
//! ∪ path(root, dst)`, so every per-edge charge is at most the simulator
//! protocol's, and the tests assert `cost_runtime ≤ cost_simulator`.

use tamp_core::cartesian::grid::{interval_segments, Labels};
use tamp_core::cartesian::{plan_tree_packing, TreePlan};
use tamp_simulator::{NodeState, Rel};
use tamp_topology::NodeId;

use crate::cluster::{NodeCtx, NodeProgram};
use crate::message::{Outbox, Step};

/// One node's view of the distributed cartesian-product protocol.
/// Requires `|R| = |S|` (the paper's §4 setting) and compute-leaf trees.
#[derive(Clone, Debug, Default)]
pub struct DistributedCartesian;

impl DistributedCartesian {
    /// Create the program.
    pub fn new() -> Self {
        DistributedCartesian
    }
}

impl NodeProgram for DistributedCartesian {
    fn round(&mut self, ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox) -> Step {
        if ctx.round >= 1 {
            return Step::Halt;
        }
        let stats = ctx.stats;
        assert_eq!(
            stats.total_r, stats.total_s,
            "distributed cartesian product requires |R| = |S|"
        );
        if stats.total_r == 0 {
            return Step::Halt;
        }
        let v = ctx.node;
        let plan = plan_tree_packing(ctx.tree, &stats.n, stats.total_n());
        match plan {
            TreePlan::AllToRoot(target) => {
                if v != target {
                    out.send_to(target, Rel::R, state.r.clone());
                    out.send_to(target, Rel::S, state.s.clone());
                }
            }
            TreePlan::Packed { squares, .. } => {
                let labels = Labels::new(ctx.tree, stats);
                let r_recipients: Vec<(NodeId, std::ops::Range<u64>)> = squares
                    .iter()
                    .map(|sq| (sq.owner, sq.x..sq.x + sq.side))
                    .collect();
                let s_recipients: Vec<(NodeId, std::ops::Range<u64>)> = squares
                    .iter()
                    .map(|sq| (sq.owner, sq.y..sq.y + sq.side))
                    .collect();
                let r_start = labels.range(v, Rel::R, stats).start;
                for (dsts, idx) in interval_segments(state.r.len(), r_start, &r_recipients) {
                    out.send(&dsts, Rel::R, state.r[idx].to_vec());
                }
                let s_start = labels.range(v, Rel::S, stats).start;
                for (dsts, idx) in interval_segments(state.s.len(), s_start, &s_recipients) {
                    out.send(&dsts, Rel::S, state.s[idx].to_vec());
                }
            }
        }
        Step::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster, ClusterOptions};
    use tamp_core::cartesian::TreeCartesianProduct;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    fn equal_placement(tree: &tamp_topology::Tree, half: u64, seed: u64) -> Placement {
        let mut p = Placement::empty(tree);
        let vc = tree.compute_nodes();
        for a in 0..half {
            let v = vc[(tamp_core::hashing::mix64(a ^ seed) % vc.len() as u64) as usize];
            p.push(v, Rel::R, a);
            let u = vc[(tamp_core::hashing::mix64(a ^ seed ^ 0xF00D) % vc.len() as u64) as usize];
            p.push(u, Rel::S, 1_000_000 + a);
        }
        p
    }

    #[test]
    fn covers_all_pairs() {
        for seed in 0..6u64 {
            let tree = builders::random_tree(6, 4, 0.5, 8.0, seed);
            let p = equal_placement(&tree, 48, seed);
            let rt = run_cluster(
                &tree,
                &p,
                |_| Box::new(DistributedCartesian::new()),
                ClusterOptions::default(),
            )
            .unwrap();
            verify::check_pair_coverage(&rt.final_state, &p.all_r(), &p.all_s())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn direct_routing_never_beats_simulator_per_edge_but_costs_at_most_as_much() {
        // Direct paths are contained in the via-root paths, so the
        // distributed variant's cost is bounded by the simulator's.
        for seed in [1u64, 2, 3] {
            let tree = builders::rack_tree(&[(3, 2.0, 4.0), (3, 1.0, 2.0)], 1.0);
            let p = equal_placement(&tree, 60, seed);
            let sim = run_protocol(&tree, &p, &TreeCartesianProduct::new()).unwrap();
            let rt = run_cluster(
                &tree,
                &p,
                |_| Box::new(DistributedCartesian::new()),
                ClusterOptions::default(),
            )
            .unwrap();
            assert!(
                rt.cost.tuple_cost() <= sim.cost.tuple_cost() + 1e-9,
                "runtime {} > simulator {}",
                rt.cost.tuple_cost(),
                sim.cost.tuple_cost()
            );
            verify::check_pair_coverage(&rt.final_state, &p.all_r(), &p.all_s()).unwrap();
        }
    }

    #[test]
    fn heavy_node_all_to_root() {
        let tree = builders::rack_tree(&[(2, 1.0, 2.0), (2, 1.0, 2.0)], 1.0);
        let mut p = Placement::empty(&tree);
        let vc = tree.compute_nodes();
        p.set_r(vc[0], (0..40).collect());
        p.set_s(vc[0], (100..130).collect());
        p.set_s(vc[3], (130..140).collect());
        let rt = run_cluster(
            &tree,
            &p,
            |_| Box::new(DistributedCartesian::new()),
            ClusterOptions::default(),
        )
        .unwrap();
        verify::check_pair_coverage(&rt.final_state, &p.all_r(), &p.all_s()).unwrap();
    }

    #[test]
    fn unequal_sizes_panic_surfaces_as_error() {
        let tree = builders::star(3, 1.0);
        let mut p = Placement::empty(&tree);
        p.set_r(NodeId(0), vec![1, 2, 3]);
        p.set_s(NodeId(1), vec![4]);
        let err = run_cluster(
            &tree,
            &p,
            |_| Box::new(DistributedCartesian::new()),
            ClusterOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::error::RuntimeError::WorkerPanic { .. }
        ));
    }
}
