//! # tamp-runtime
//!
//! A pooled, message-passing BSP executor for the topology-aware MPC
//! model — the "could this actually run on a cluster?" counterpart to the
//! centralized cost simulator in [`tamp_simulator`].
//!
//! Every compute node of a [`Tree`](tamp_topology::Tree) logically runs a
//! [`NodeProgram`]: a state machine that sees only its local fragment,
//! the shared model knowledge (topology, bandwidths, initial
//! cardinalities — exactly what §2 of the paper grants every algorithm),
//! and the messages delivered to it. Physically, a **bounded worker
//! pool** (default: available parallelism) claims per-node programs from
//! a shared queue each superstep, so topologies with thousands of compute
//! nodes execute with a handful of OS threads. The coordinator
//! synchronizes supersteps, routes messages along the unique tree paths,
//! and meters per-directed-edge traffic on the *same* union-of-paths
//! ledger as the simulator.
//!
//! The [`backend`] module is the engine-agnostic entry point: the
//! [`ExecBackend`] trait fronts both this cluster
//! and the centralized simulator, and [`jobs`] bundles the shipped
//! protocol pairs so drivers select an engine instead of hand-rolling two
//! call paths. See the `backend` module docs for the recipe for adding a
//! new protocol against `ExecBackend`.
//!
//! The [`programs`] module ships distributed implementations of the
//! paper's protocols. Because their plans are deterministic functions of
//! the shared knowledge plus a seed, the threaded runs are
//! traffic-identical to the centralized simulator runs — the
//! cross-validation tests assert equal costs to the bit. This is the
//! strongest evidence the repository offers that the paper's "simple,
//! constant-round" protocols really are implementable with no hidden
//! coordination.
//!
//! Programs can be ad-hoc closures, too:
//!
//! ```
//! use tamp_runtime::{run_cluster, ClusterOptions, NodeCtx, Outbox, Step};
//! use tamp_simulator::{NodeState, Placement, Rel};
//! use tamp_topology::{builders, NodeId};
//!
//! let tree = builders::star(3, 1.0);
//! let mut placement = Placement::empty(&tree);
//! placement.set_r(NodeId(0), vec![1, 2, 3]);
//!
//! // Node 0 broadcasts its fragment; everyone else just listens.
//! let run = run_cluster(
//!     &tree,
//!     &placement,
//!     |v| {
//!         Box::new(move |ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox| {
//!             if ctx.round == 0 && v == NodeId(0) {
//!                 out.send(&ctx.tree.compute_nodes().to_vec(), Rel::R, state.r.clone());
//!                 return Step::Continue;
//!             }
//!             Step::Halt
//!         })
//!     },
//!     ClusterOptions::default(),
//! )
//! .unwrap();
//! assert_eq!(run.final_state[2].r, vec![1, 2, 3]);
//! // Union-of-paths multicast charging, same as the simulator.
//! assert_eq!(run.cost.tuple_cost(), 3.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod backend;
pub mod checkpoint;
pub mod cluster;
pub mod error;
pub mod fault;
pub mod jobs;
pub mod message;
pub mod pool;
pub mod programs;

pub use backend::{
    backend_from_spec, standard_backends, ExecBackend, ExecError, ExecJob, ExecOutcome, PairedJob,
    PooledClusterBackend, ProgramJob, ProtocolJob, SimulatorBackend,
};
pub use checkpoint::{CheckpointSpec, CheckpointStats, CheckpointStore};
pub use cluster::{run_cluster, ClusterOptions, NodeCtx, NodeProgram, RuntimeRun};
pub use error::{RuntimeError, VALID_BACKEND_SPECS};
pub use fault::{Fault, FaultEvent, FaultInjector, FaultKind, FaultPlan};
pub use jobs::{Schedule, ScheduleJob, ScheduleSend};
pub use message::{Envelope, Outbox, Step};
pub use pool::{ElasticPool, WorkerPool};
