//! Superstep checkpointing for partial restart.
//!
//! Recovery in the serving arc used to be all-or-nothing: any fault
//! aborted the run and the orchestrator replayed the *entire* schedule
//! on a healthy crew. This module makes recovery incremental. At
//! configurable superstep boundaries (every `k`-th barrier) the
//! coordinator snapshots the whole cluster — per-node program state,
//! delivered-but-unabsorbed inboxes, and the traffic meter — into a
//! checkpoint. If the run later aborts with a *recoverable* fault,
//! the snapshot is parked in the shared [`CheckpointStore`] under the
//! job's checkpoint token; the retry resumes from that superstep instead
//! of round 0, replaying strictly fewer supersteps while producing
//! bit-identical rows and `edge_totals`:
//!
//! - the snapshot is taken at a barrier, when every worker is parked at
//!   the gate — it is a consistent cut by construction;
//! - the meter snapshot is the exact metered prefix, so resumed cost
//!   accounting continues as if the fault never happened;
//! - only *resumable* jobs opt in, via
//!   [`ExecJob::checkpoint_token`](crate::backend::ExecJob::checkpoint_token):
//!   a job must be stateless-per-round (program behavior a function of
//!   `ctx.round` and node state alone, like the schedule-replay job) for
//!   fresh program instances to continue a restored run. Jobs with
//!   hidden program-local state keep the default `None` and simply never
//!   checkpoint.
//!
//! The token is a content hash of the job's deterministic schedule, so a
//! parked snapshot can only ever be consumed by a retry executing the
//! *same* schedule — for which it is exact by determinism. Taking a
//! snapshot out of the store pops it (no double resume); a run that ends
//! any other way than a recoverable fault drops its snapshot on the
//! floor, so the store never leaks state across unrelated queries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use tamp_simulator::metering::TrafficMeter;
use tamp_simulator::NodeState;

use crate::message::Envelope;

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// When to snapshot: every `every`-th superstep boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Snapshot after supersteps `every - 1`, `2·every - 1`, … (i.e.
    /// every `every`-th completed superstep). Always ≥ 1.
    pub every: usize,
}

impl CheckpointSpec {
    /// Snapshot every `every`-th superstep boundary (floored at 1).
    pub fn every(every: usize) -> Self {
        CheckpointSpec {
            every: every.max(1),
        }
    }

    /// Snapshot cadence for fixpoint jobs whose schedule repeats a
    /// constant block of `rounds_per_iteration` rounds per iteration
    /// (the iterative driver's shape): with `every =
    /// rounds_per_iteration`, every snapshot lands exactly on an
    /// iteration barrier, so a killed run resumes from the last
    /// *completed iteration* — never mid-iteration — and the resume
    /// superstep is always a multiple of the iteration length.
    pub fn at_iteration_barriers(rounds_per_iteration: usize) -> Self {
        CheckpointSpec::every(rounds_per_iteration)
    }
}

/// A consistent cut of one cluster run at a superstep barrier.
#[derive(Clone, Debug)]
pub(crate) struct Checkpoint {
    /// The superstep the restored run resumes at (one past the last
    /// completed superstep).
    pub resume_round: usize,
    /// Per-slot program state, aligned with `tree.compute_nodes()`.
    pub states: Vec<NodeState>,
    /// Per-slot delivered-but-unabsorbed inboxes (messages sent in
    /// superstep `resume_round - 1`, absorbed in `resume_round`).
    pub inboxes: Vec<Vec<Envelope>>,
    /// The metered cost prefix up to and including superstep
    /// `resume_round - 1`.
    pub meter: TrafficMeter,
}

/// Counters describing a store's checkpoint traffic, for
/// `Orchestrator::stats()` and the chaos harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Snapshots parked after a recoverable fault.
    pub saved: u64,
    /// Runs that resumed from a parked snapshot.
    pub resumed: u64,
    /// Snapshots currently parked (awaiting a retry).
    pub retained: usize,
}

/// Shared parking lot for crash-consistent snapshots, keyed by the job's
/// checkpoint token (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct CheckpointStore {
    parked: Mutex<HashMap<u64, Checkpoint>>,
    saved: AtomicU64,
    resumed: AtomicU64,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Pop the snapshot parked under `token`, if any. Popping prevents a
    /// stale snapshot from resuming two different runs.
    pub(crate) fn take(&self, token: u64) -> Option<Checkpoint> {
        let cp = lock_ok(&self.parked).remove(&token);
        if cp.is_some() {
            self.resumed.fetch_add(1, Ordering::Relaxed);
        }
        cp
    }

    /// Park `cp` under `token` for the next retry of the same schedule.
    pub(crate) fn put(&self, token: u64, cp: Checkpoint) {
        self.saved.fetch_add(1, Ordering::Relaxed);
        lock_ok(&self.parked).insert(token, cp);
    }

    /// Drop every parked snapshot.
    pub fn clear(&self) {
        lock_ok(&self.parked).clear();
    }

    /// Current counters.
    pub fn stats(&self) -> CheckpointStats {
        CheckpointStats {
            saved: self.saved.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            retained: lock_ok(&self.parked).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_floors_at_one() {
        assert_eq!(CheckpointSpec::every(0).every, 1);
        assert_eq!(CheckpointSpec::every(4).every, 4);
    }

    #[test]
    fn store_parks_pops_and_counts() {
        let store = CheckpointStore::new();
        assert_eq!(store.stats(), CheckpointStats::default());
        assert!(store.take(7).is_none(), "empty store resumes nothing");
        assert_eq!(store.stats().resumed, 0, "a miss is not a resume");

        let cp = Checkpoint {
            resume_round: 4,
            states: Vec::new(),
            inboxes: Vec::new(),
            meter: TrafficMeter::new(&tamp_topology::builders::star(2, 1.0)),
        };
        store.put(7, cp.clone());
        store.put(9, cp);
        assert_eq!(store.stats().saved, 2);
        assert_eq!(store.stats().retained, 2);

        let taken = store.take(7).expect("parked snapshot pops");
        assert_eq!(taken.resume_round, 4);
        assert!(store.take(7).is_none(), "pop semantics: no double resume");
        assert_eq!(store.stats().resumed, 1);
        assert_eq!(store.stats().retained, 1);

        store.clear();
        assert_eq!(store.stats().retained, 0);
    }
}
