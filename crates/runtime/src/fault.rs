//! Fault injection for the pooled cluster: kill a worker mid-query,
//! detach a whole subtree, degrade a link's bandwidth, stall a worker
//! past a deadline — and observe what fired.
//!
//! The serving arc's recovery story rests on a property the trace/replay
//! split provides *by construction*: every query is a deterministic
//! exchange [`Schedule`](crate::jobs::Schedule), so re-executing it on a
//! healthy crew reproduces the fault-free run bit for bit — rows **and**
//! metered `edge_totals`. What the runtime needs, then, is only the
//! ability to *make* a crew unhealthy on demand:
//!
//! - a [`FaultPlan`] declares faults against logical workers (compute
//!   nodes) and links: kill worker `k` at superstep `r`
//!   ([`kill_worker`](FaultPlan::kill_worker)), detach every compute
//!   node under a router at superstep `r`
//!   ([`detach_subtree`](FaultPlan::detach_subtree)), degrade an edge's
//!   bandwidth by a factor at superstep `r`
//!   ([`degrade_edge`](FaultPlan::degrade_edge)), or stall a worker for
//!   a wall-clock delay at superstep `r`
//!   ([`stall_worker`](FaultPlan::stall_worker), which trips the
//!   superstep watchdog when one is configured);
//! - a [`FaultInjector`] is shared between the orchestration layer and a
//!   [`PooledClusterBackend`](crate::PooledClusterBackend): the
//!   orchestrator [`arm`](FaultInjector::arm)s plans (a FIFO queue, so a
//!   chaos schedule can re-arm faults across recovery retries), and each
//!   cluster execution consumes the front plan at run start;
//! - when a fault fires, the run aborts with a typed recoverable error
//!   ([`InjectedFault`](crate::RuntimeError::InjectedFault),
//!   [`LinkDegraded`](crate::RuntimeError::LinkDegraded), or
//!   [`SuperstepTimeout`](crate::RuntimeError::SuperstepTimeout)) and
//!   the injector records a [`FaultEvent`] per failed node in its
//!   [`fired`](FaultInjector::fired) log.
//!
//! Faults target *logical* compute nodes, not OS threads: the pool's
//! work-claiming makes crew threads interchangeable, so killing an OS
//! thread is unobservable by design — the observable unit of failure is
//! the node program.
//!
//! Plans are **validated** against the topology before they can affect a
//! run: a kill or stall on a router or out-of-range node, a detach of an
//! out-of-range root, or a degradation of an out-of-range edge or with a
//! non-finite/non-positive factor is a typed
//! [`InvalidFaultTarget`](crate::RuntimeError::InvalidFaultTarget), never
//! a silent no-op.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use tamp_topology::{EdgeId, NodeId, Tree};

use crate::error::RuntimeError;

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One declared fault.
///
/// `Eq` is deliberately absent: the degradation factor is an `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Kill the worker (node program) on `node` at superstep `round`:
    /// from that superstep on, the node executes nothing and the run
    /// aborts.
    KillWorker {
        /// The compute node whose program dies.
        node: NodeId,
        /// First superstep at which the node is dead.
        round: usize,
    },
    /// Detach the subtree rooted at `root` (a router or a compute node)
    /// at superstep `round`: every compute node inside it fails at once,
    /// as if the uplink was cut.
    DetachSubtree {
        /// Root of the detached subtree (internal rooting at node 0).
        root: NodeId,
        /// First superstep at which the subtree is gone.
        round: usize,
    },
    /// Degrade edge `edge` — divide its bandwidth (both directions) by
    /// `factor` — at superstep `round`. The run aborts with the typed
    /// [`LinkDegraded`](crate::RuntimeError::LinkDegraded) error so the
    /// serving layer can re-weight the topology and re-price plans; the
    /// aborted query itself recovers by replaying its pinned
    /// (pre-degradation) schedule bit-identically.
    DegradeEdge {
        /// The degraded edge.
        edge: EdgeId,
        /// The superstep at which the degradation fires.
        round: usize,
        /// Bandwidth divisor (must be finite and > 0; 2.0 halves the link).
        factor: f64,
    },
    /// Stall the worker on `node` for `delay` of wall-clock time at
    /// superstep `round` (a straggler). Without a configured
    /// [`superstep_deadline`](crate::ClusterOptions::superstep_deadline)
    /// the run merely slows down and stays bit-identical; with one, the
    /// watchdog fires
    /// [`SuperstepTimeout`](crate::RuntimeError::SuperstepTimeout).
    StallWorker {
        /// The compute node whose program straggles.
        node: NodeId,
        /// The superstep at which it stalls.
        round: usize,
        /// How long it stalls.
        delay: Duration,
    },
}

impl Fault {
    /// The superstep at which this fault triggers.
    pub fn round(&self) -> usize {
        match *self {
            Fault::KillWorker { round, .. }
            | Fault::DetachSubtree { round, .. }
            | Fault::DegradeEdge { round, .. }
            | Fault::StallWorker { round, .. } => round,
        }
    }
}

/// A declarative set of faults to inject into one cluster execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The declared faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a kill-worker fault (builder-style).
    pub fn kill_worker(mut self, node: NodeId, round: usize) -> Self {
        self.faults.push(Fault::KillWorker { node, round });
        self
    }

    /// Add a detach-subtree fault (builder-style).
    pub fn detach_subtree(mut self, root: NodeId, round: usize) -> Self {
        self.faults.push(Fault::DetachSubtree { root, round });
        self
    }

    /// Add a link-degradation fault (builder-style).
    pub fn degrade_edge(mut self, edge: EdgeId, round: usize, factor: f64) -> Self {
        self.faults.push(Fault::DegradeEdge {
            edge,
            round,
            factor,
        });
        self
    }

    /// Add a straggler fault (builder-style).
    pub fn stall_worker(mut self, node: NodeId, round: usize, delay: Duration) -> Self {
        self.faults.push(Fault::StallWorker { node, round, delay });
        self
    }

    /// `true` if the plan declares no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Check every declared fault against a topology. Kills and stalls
    /// must target in-range *compute* nodes, detach roots must be in
    /// range, degradations must name an in-range edge and carry a
    /// finite, positive factor.
    pub fn validate(&self, tree: &Tree) -> Result<(), RuntimeError> {
        let bad = |fault: String| Err(RuntimeError::InvalidFaultTarget { fault });
        for fault in &self.faults {
            match *fault {
                Fault::KillWorker { node, round } => {
                    if node.index() >= tree.num_nodes() {
                        return bad(format!("kill_worker({node}, {round}): node out of range"));
                    }
                    if !tree.is_compute(node) {
                        return bad(format!(
                            "kill_worker({node}, {round}): node is a router (no program to kill)"
                        ));
                    }
                }
                Fault::StallWorker { node, round, .. } => {
                    if node.index() >= tree.num_nodes() {
                        return bad(format!("stall_worker({node}, {round}): node out of range"));
                    }
                    if !tree.is_compute(node) {
                        return bad(format!(
                            "stall_worker({node}, {round}): node is a router (no program to stall)"
                        ));
                    }
                }
                Fault::DetachSubtree { root, round } => {
                    if root.index() >= tree.num_nodes() {
                        return bad(format!(
                            "detach_subtree({root}, {round}): root out of range"
                        ));
                    }
                }
                Fault::DegradeEdge {
                    edge,
                    round,
                    factor,
                } => {
                    if edge.index() >= tree.num_edges() {
                        return bad(format!(
                            "degrade_edge({}, {round}, {factor}): edge out of range",
                            edge.index()
                        ));
                    }
                    if !factor.is_finite() || factor <= 0.0 {
                        return bad(format!(
                            "degrade_edge({}, {round}, {factor}): factor must be finite and > 0",
                            edge.index()
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Resolve a *validated* plan against a topology into per-node and
    /// per-edge trigger tables the coordinator can consult cheaply.
    pub(crate) fn resolve(&self, tree: &Tree) -> ResolvedFaults {
        let n = tree.num_nodes();
        let mut fail = vec![usize::MAX; n];
        let mut stall: Vec<Option<(usize, Duration)>> = vec![None; n];
        let mut degrades = Vec::new();
        for fault in &self.faults {
            match *fault {
                Fault::KillWorker { node, round } => {
                    let f = &mut fail[node.index()];
                    *f = (*f).min(round);
                }
                Fault::DetachSubtree { root, round } => {
                    for &v in tree.compute_nodes() {
                        if tree.in_subtree0(v, root) {
                            let f = &mut fail[v.index()];
                            *f = (*f).min(round);
                        }
                    }
                }
                Fault::DegradeEdge {
                    edge,
                    round,
                    factor,
                } => degrades.push((edge, round, factor)),
                Fault::StallWorker { node, round, delay } => {
                    let s = &mut stall[node.index()];
                    if s.is_none_or(|(r, _)| round < r) {
                        *s = Some((round, delay));
                    }
                }
            }
        }
        // Earliest degradation first; ties broken by edge id so the
        // firing choice is deterministic.
        degrades.sort_by_key(|d| (d.1, d.0.index()));
        ResolvedFaults {
            fail,
            stall,
            degrades,
        }
    }
}

/// A validated [`FaultPlan`] resolved into trigger tables.
pub(crate) struct ResolvedFaults {
    /// Per node index: first superstep at which it is dead (`usize::MAX`:
    /// never).
    pub fail: Vec<usize>,
    /// Per node index: the earliest `(round, delay)` stall, if any.
    pub stall: Vec<Option<(usize, Duration)>>,
    /// Degradations as `(edge, round, factor)`, sorted by `(round, edge)`.
    pub degrades: Vec<(EdgeId, usize, f64)>,
}

/// What kind of fault fired.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// A worker program was killed ([`Fault::KillWorker`] or
    /// [`Fault::DetachSubtree`]).
    WorkerKilled,
    /// A link lost bandwidth ([`Fault::DegradeEdge`]).
    LinkDegraded {
        /// The degraded edge.
        edge: EdgeId,
        /// The bandwidth divisor.
        factor: f64,
    },
    /// A worker straggled past the superstep watchdog deadline.
    Straggler,
}

/// One fault that actually fired during a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// The node attributed to the fault: the failed worker for kills and
    /// stragglers, the deeper (subtree-side) endpoint for degraded links.
    pub node: NodeId,
    /// The superstep at which the fault fired.
    pub round: usize,
    /// What kind of fault fired.
    pub kind: FaultKind,
}

/// The shared arming point between a fault-planning layer and a
/// [`PooledClusterBackend`](crate::PooledClusterBackend) (see the
/// [module docs](self)).
///
/// Armed plans form a **FIFO queue**: each cluster execution through a
/// backend holding this injector pops the front plan at run start, so a
/// chaos schedule can queue several plans and have faults re-fire across
/// the orchestrator's recovery retries. With a single armed plan this
/// degenerates to the classic one-shot behavior: exactly one run is
/// affected and the recovery re-execution is clean by construction.
#[derive(Debug, Default)]
pub struct FaultInjector {
    armed: Mutex<VecDeque<FaultPlan>>,
    fired: Mutex<Vec<FaultEvent>>,
}

impl FaultInjector {
    /// A disarmed injector.
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Queue `plan` behind any plans armed earlier and not yet consumed.
    pub fn arm(&self, plan: FaultPlan) {
        lock_ok(&self.armed).push_back(plan);
    }

    /// `true` while at least one plan is armed and not yet consumed.
    pub fn is_armed(&self) -> bool {
        !lock_ok(&self.armed).is_empty()
    }

    /// Number of armed plans not yet consumed.
    pub fn armed_len(&self) -> usize {
        lock_ok(&self.armed).len()
    }

    /// Remove and return the front armed plan, if any — called by the
    /// cluster at run start (this is what makes each plan one-shot).
    pub fn disarm(&self) -> Option<FaultPlan> {
        lock_ok(&self.armed).pop_front()
    }

    /// Drop every armed plan and return how many were dropped. The
    /// orchestrator calls this when an execution errors out *before* any
    /// armed fault could fire (or recovery gives up), so a stale plan
    /// never leaks into the next, unrelated query.
    pub fn clear_armed(&self) -> usize {
        let mut q = lock_ok(&self.armed);
        let n = q.len();
        q.clear();
        n
    }

    /// Every fault that has fired through this injector, in firing order.
    pub fn fired(&self) -> Vec<FaultEvent> {
        lock_ok(&self.fired).clone()
    }

    /// Record faults that fired during a run.
    pub(crate) fn record(&self, events: impl IntoIterator<Item = FaultEvent>) {
        lock_ok(&self.fired).extend(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_topology::builders;

    #[test]
    fn resolve_handles_kills_subtrees_stalls_and_degrades() {
        // rack_tree: racks of computes under routers under a core.
        let tree = builders::rack_tree(&[(2, 1.0, 1.0), (2, 1.0, 1.0)], 1.0);
        let computes = tree.compute_nodes().to_vec();
        let plan = FaultPlan::new().kill_worker(computes[0], 3);
        plan.validate(&tree).unwrap();
        let fail = plan.resolve(&tree).fail;
        assert_eq!(fail[computes[0].index()], 3);
        assert!(fail
            .iter()
            .enumerate()
            .all(|(i, &r)| i == computes[0].index() || r == usize::MAX));

        // Detaching the subtree rooted at a compute's parent router takes
        // out its whole rack; earlier rounds win when faults overlap.
        // (computes[0] is the internal root in rack_tree, so anchor the
        // rack on the last compute, which always has a parent router.)
        let inner = *computes.last().unwrap();
        let (router, uplink) = tree.parent0(inner).expect("non-root leaf has a parent");
        let plan = FaultPlan::new()
            .detach_subtree(router, 2)
            .kill_worker(inner, 1)
            .degrade_edge(uplink, 4, 8.0)
            .degrade_edge(uplink, 1, 2.0)
            .stall_worker(inner, 2, Duration::from_millis(5))
            .stall_worker(inner, 1, Duration::from_millis(9));
        plan.validate(&tree).unwrap();
        let resolved = plan.resolve(&tree);
        assert_eq!(
            resolved.fail[inner.index()],
            1,
            "explicit kill wins (earlier)"
        );
        for &v in &computes {
            if v != inner && tree.in_subtree0(v, router) {
                assert_eq!(resolved.fail[v.index()], 2, "rack-mate {v} detaches at 2");
            }
        }
        // Earliest stall wins; degradations sort by round.
        assert_eq!(
            resolved.stall[inner.index()],
            Some((1, Duration::from_millis(9)))
        );
        assert_eq!(resolved.degrades, vec![(uplink, 1, 2.0), (uplink, 4, 8.0)]);
    }

    #[test]
    fn validation_rejects_bad_targets() {
        let tree = builders::rack_tree(&[(2, 1.0, 1.0)], 1.0);
        let router = tree
            .nodes()
            .find(|&v| !tree.is_compute(v))
            .expect("rack tree has a router");
        let out_of_range = NodeId::from_index(tree.num_nodes());
        let bad_edge = EdgeId(tree.num_edges() as u32);
        for plan in [
            FaultPlan::new().kill_worker(router, 0),
            FaultPlan::new().kill_worker(out_of_range, 0),
            FaultPlan::new().stall_worker(router, 0, Duration::from_millis(1)),
            FaultPlan::new().detach_subtree(out_of_range, 0),
            FaultPlan::new().degrade_edge(bad_edge, 0, 2.0),
            FaultPlan::new().degrade_edge(EdgeId(0), 0, 0.0),
            FaultPlan::new().degrade_edge(EdgeId(0), 0, f64::NAN),
        ] {
            assert!(
                matches!(
                    plan.validate(&tree),
                    Err(RuntimeError::InvalidFaultTarget { .. })
                ),
                "{plan:?} should be rejected"
            );
        }
        // Valid plans pass.
        let compute = tree.compute_nodes()[0];
        FaultPlan::new()
            .kill_worker(compute, 0)
            .detach_subtree(router, 1)
            .degrade_edge(EdgeId(0), 0, 16.0)
            .validate(&tree)
            .unwrap();
    }

    #[test]
    fn arming_is_a_fifo_queue() {
        let inj = FaultInjector::new();
        assert!(!inj.is_armed());
        inj.arm(FaultPlan::new().kill_worker(NodeId(0), 0));
        inj.arm(FaultPlan::new().kill_worker(NodeId(1), 2));
        assert!(inj.is_armed());
        assert_eq!(inj.armed_len(), 2);
        let first = inj.disarm().unwrap();
        assert_eq!(
            first.faults,
            vec![Fault::KillWorker {
                node: NodeId(0),
                round: 0
            }],
            "plans pop in arming order"
        );
        assert_eq!(inj.armed_len(), 1);
        assert_eq!(inj.clear_armed(), 1, "clear drops the leftover plan");
        assert!(!inj.is_armed());
        assert!(inj.disarm().is_none());

        inj.record([FaultEvent {
            node: NodeId(0),
            round: 0,
            kind: FaultKind::WorkerKilled,
        }]);
        assert_eq!(inj.fired().len(), 1);
    }
}
