//! Fault injection for the pooled cluster: kill a worker mid-query,
//! detach a whole subtree, and observe what fired.
//!
//! The serving arc's recovery story rests on a property the trace/replay
//! split provides *by construction*: every query is a deterministic
//! exchange [`Schedule`](crate::jobs::Schedule), so re-executing it on a
//! healthy crew reproduces the fault-free run bit for bit — rows **and**
//! metered `edge_totals`. What the runtime needs, then, is only the
//! ability to *make* a crew unhealthy on demand:
//!
//! - a [`FaultPlan`] declares faults against logical workers (compute
//!   nodes): kill worker `k` at superstep `r`
//!   ([`kill_worker`](FaultPlan::kill_worker)), or detach every compute
//!   node under a router at superstep `r`
//!   ([`detach_subtree`](FaultPlan::detach_subtree));
//! - a [`FaultInjector`] is shared between the orchestration layer and a
//!   [`PooledClusterBackend`](crate::PooledClusterBackend): the
//!   orchestrator [`arm`](FaultInjector::arm)s a plan, and the **next**
//!   cluster execution consumes it (one-shot — the recovery re-execution
//!   runs on an already-disarmed injector, i.e. a healthy crew);
//! - when a fault fires, the run aborts with the typed
//!   [`RuntimeError::InjectedFault`](crate::RuntimeError::InjectedFault)
//!   and the injector records a [`FaultEvent`] per failed node in its
//!   [`fired`](FaultInjector::fired) log.
//!
//! Faults target *logical* compute nodes, not OS threads: the pool's
//! work-claiming makes crew threads interchangeable, so killing an OS
//! thread is unobservable by design — the observable unit of failure is
//! the node program.

use std::sync::{Mutex, MutexGuard};

use tamp_topology::{NodeId, Tree};

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One declared fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Kill the worker (node program) on `node` at superstep `round`:
    /// from that superstep on, the node executes nothing and the run
    /// aborts.
    KillWorker {
        /// The compute node whose program dies.
        node: NodeId,
        /// First superstep at which the node is dead.
        round: usize,
    },
    /// Detach the subtree rooted at `root` (a router or a compute node)
    /// at superstep `round`: every compute node inside it fails at once,
    /// as if the uplink was cut.
    DetachSubtree {
        /// Root of the detached subtree (internal rooting at node 0).
        root: NodeId,
        /// First superstep at which the subtree is gone.
        round: usize,
    },
}

/// A declarative set of faults to inject into one cluster execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The declared faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a kill-worker fault (builder-style).
    pub fn kill_worker(mut self, node: NodeId, round: usize) -> Self {
        self.faults.push(Fault::KillWorker { node, round });
        self
    }

    /// Add a detach-subtree fault (builder-style).
    pub fn detach_subtree(mut self, root: NodeId, round: usize) -> Self {
        self.faults.push(Fault::DetachSubtree { root, round });
        self
    }

    /// `true` if the plan declares no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Resolve the plan against a topology: for every node index, the
    /// first superstep at which it is dead (`usize::MAX`: never).
    pub(crate) fn fail_rounds(&self, tree: &Tree) -> Vec<usize> {
        let mut fail = vec![usize::MAX; tree.num_nodes()];
        for fault in &self.faults {
            match *fault {
                Fault::KillWorker { node, round } => {
                    let f = &mut fail[node.index()];
                    *f = (*f).min(round);
                }
                Fault::DetachSubtree { root, round } => {
                    for &v in tree.compute_nodes() {
                        if tree.in_subtree0(v, root) {
                            let f = &mut fail[v.index()];
                            *f = (*f).min(round);
                        }
                    }
                }
            }
        }
        fail
    }
}

/// One fault that actually fired during a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The node whose program failed.
    pub node: NodeId,
    /// The superstep at which it failed.
    pub round: usize,
}

/// The shared arming point between a fault-planning layer and a
/// [`PooledClusterBackend`](crate::PooledClusterBackend) (see the
/// [module docs](self)).
///
/// Arming is **one-shot**: the next cluster execution through a backend
/// holding this injector takes the armed plan at run start, so exactly
/// one run is affected and the recovery re-execution is clean by
/// construction.
#[derive(Debug, Default)]
pub struct FaultInjector {
    armed: Mutex<Option<FaultPlan>>,
    fired: Mutex<Vec<FaultEvent>>,
}

impl FaultInjector {
    /// A disarmed injector.
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Arm `plan` for the next cluster execution (replacing any plan
    /// armed earlier and not yet consumed).
    pub fn arm(&self, plan: FaultPlan) {
        *lock_ok(&self.armed) = Some(plan);
    }

    /// `true` while a plan is armed and not yet consumed by a run.
    pub fn is_armed(&self) -> bool {
        lock_ok(&self.armed).is_some()
    }

    /// Remove and return the armed plan, if any — called by the cluster
    /// at run start (this is what makes arming one-shot) and usable by
    /// callers to cancel an armed plan.
    pub fn disarm(&self) -> Option<FaultPlan> {
        lock_ok(&self.armed).take()
    }

    /// Every fault that has fired through this injector, in firing order.
    pub fn fired(&self) -> Vec<FaultEvent> {
        lock_ok(&self.fired).clone()
    }

    /// Record faults that fired during a run.
    pub(crate) fn record(&self, events: impl IntoIterator<Item = FaultEvent>) {
        lock_ok(&self.fired).extend(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_topology::builders;

    #[test]
    fn fail_rounds_resolve_kills_and_subtrees() {
        // rack_tree: racks of computes under routers under a core.
        let tree = builders::rack_tree(&[(2, 1.0, 1.0), (2, 1.0, 1.0)], 1.0);
        let computes = tree.compute_nodes().to_vec();
        let plan = FaultPlan::new().kill_worker(computes[0], 3);
        let fail = plan.fail_rounds(&tree);
        assert_eq!(fail[computes[0].index()], 3);
        assert!(fail
            .iter()
            .enumerate()
            .all(|(i, &r)| i == computes[0].index() || r == usize::MAX));

        // Detaching the subtree rooted at a compute's parent router takes
        // out its whole rack; earlier rounds win when faults overlap.
        // (computes[0] is the internal root in rack_tree, so anchor the
        // rack on the last compute, which always has a parent router.)
        let inner = *computes.last().unwrap();
        let (router, _) = tree.parent0(inner).expect("non-root leaf has a parent");
        let plan = FaultPlan::new()
            .detach_subtree(router, 2)
            .kill_worker(inner, 1);
        let fail = plan.fail_rounds(&tree);
        assert_eq!(fail[inner.index()], 1, "explicit kill wins (earlier)");
        for &v in &computes {
            if v != inner && tree.in_subtree0(v, router) {
                assert_eq!(fail[v.index()], 2, "rack-mate {v} detaches at 2");
            }
        }
    }

    #[test]
    fn arming_is_one_shot() {
        let inj = FaultInjector::new();
        assert!(!inj.is_armed());
        inj.arm(FaultPlan::new().kill_worker(NodeId(0), 0));
        assert!(inj.is_armed());
        let plan = inj.disarm().unwrap();
        assert_eq!(plan.faults.len(), 1);
        assert!(!inj.is_armed());
        assert!(inj.disarm().is_none());

        inj.record([FaultEvent {
            node: NodeId(0),
            round: 0,
        }]);
        assert_eq!(inj.fired().len(), 1);
    }
}
