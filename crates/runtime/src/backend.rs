//! The engine-agnostic execution layer.
//!
//! The repository ships two executors for the same cost model: the
//! centralized [`Session`] simulator (a protocol closure with a global
//! view) and the pooled BSP cluster (per-node programs on a bounded
//! worker pool). [`ExecBackend`] puts one API in front of both, so
//! protocol drivers, the query layer, the experiment harness and the
//! cross-validation tests *select* an engine instead of hand-rolling two
//! call paths.
//!
//! An [`ExecJob`] is the unit of work. A job exposes up to two views of
//! the same algorithm:
//!
//! - a **centralized** view ([`ExecJob::centralized`]): a
//!   [`Protocol`]-style closure driving a [`Session`] — what
//!   [`SimulatorBackend`] runs;
//! - a **distributed** view ([`ExecJob::distributed`]): one
//!   [`NodeProgram`] per compute node — what [`PooledClusterBackend`]
//!   runs.
//!
//! Jobs with both views (see [`PairedJob`] and the constructors in
//! [`jobs`](crate::jobs)) can run on either backend, and because both
//! engines meter on the shared
//! [`TrafficMeter`](tamp_simulator::TrafficMeter), the resulting
//! [`Cost`] ledgers are bit-identical — the cross-validation tests
//! assert exactly that through this API.
//!
//! # Adding a new protocol against `ExecBackend`
//!
//! 1. Implement the centralized algorithm as a
//!    [`Protocol`] (drive a `Session`).
//! 2. Implement the distributed counterpart as a
//!    [`NodeProgram`] that derives the *same plan*
//!    from shared knowledge (topology, cardinalities, seed) so its sends
//!    match the centralized ones.
//! 3. Bundle them: `PairedJob::new(name, protocol, make_program)` — or
//!    `ProtocolJob` / `ProgramJob` if only one view exists.
//! 4. Cross-validate: run the job on [`SimulatorBackend`] and
//!    [`PooledClusterBackend`] and assert equal `cost.edge_totals` (and
//!    round counts), like `tests/runtime_parity.rs` does.

use std::sync::Arc;

use tamp_simulator::cost::Cost;
use tamp_simulator::{NodeState, Placement, Protocol, Session, SimError};
use tamp_topology::{NodeId, Tree};

use crate::checkpoint::{CheckpointSpec, CheckpointStore};
use crate::cluster::{run_programs, CheckpointHook, ClusterOptions, NodeProgram, RunHooks};
use crate::error::RuntimeError;
use crate::fault::FaultInjector;
use crate::pool::{ElasticPool, WorkerPool};

/// Errors from engine-agnostic execution: either engine's failure mode.
///
/// `Eq` is deliberately absent: [`RuntimeError`]'s link-degradation
/// variant carries an `f64` factor.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The centralized engine failed.
    Sim(SimError),
    /// The cluster engine failed.
    Runtime(RuntimeError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Sim(e) => write!(f, "simulator backend: {e}"),
            ExecError::Runtime(e) => write!(f, "cluster backend: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<SimError> for ExecError {
    fn from(e: SimError) -> Self {
        ExecError::Sim(e)
    }
}

impl From<RuntimeError> for ExecError {
    fn from(e: RuntimeError) -> Self {
        ExecError::Runtime(e)
    }
}

/// The result of executing a job on some backend.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// Job name (for reports).
    pub job: String,
    /// Backend name (for reports).
    pub backend: String,
    /// Metered cost, on the shared union-of-paths ledger.
    pub cost: Cost,
    /// Metered communication rounds (`cost.per_round.len()`).
    pub rounds: usize,
    /// BSP supersteps executed. For the simulator this equals `rounds`;
    /// the cluster adds the terminal silent superstep in which
    /// termination was detected. A checkpoint-resumed run counts from
    /// superstep 0, so the total stays comparable with a fault-free run.
    pub supersteps: usize,
    /// `Some(r)` when the cluster resumed this run from a parked
    /// checkpoint at superstep `r` (supersteps `0..r` were skipped, not
    /// replayed); `None` for a from-scratch run and for the simulator.
    pub resumed_from: Option<usize>,
    /// Final per-node states, indexed by node id.
    pub final_state: Vec<NodeState>,
}

/// Output-erased centralized view: a protocol whose output is dropped (or
/// captured internally by the job).
pub trait CentralizedView {
    /// Drive the session to completion.
    fn run(&self, session: &mut Session<'_>) -> Result<(), SimError>;
}

/// A unit of work executable by any [`ExecBackend`] that supports at
/// least one of its views.
pub trait ExecJob {
    /// Human-readable job name.
    fn name(&self) -> String;

    /// The centralized view, if the job has one.
    fn centralized(&self) -> Option<Box<dyn CentralizedView + '_>> {
        None
    }

    /// The distributed view: the program for compute node `v`, if the job
    /// has one. Implementations must be all-or-nothing across nodes.
    fn distributed(&self, _v: NodeId) -> Option<Box<dyn NodeProgram>> {
        None
    }

    /// Superstep-checkpointing opt-in. `Some(token)` declares the job
    /// **resumable**: its per-node programs are stateless per round
    /// (behavior a function of `ctx.round`, node state, and arrived
    /// messages alone), so fresh program instances can continue a run
    /// restored from a mid-run snapshot. The token must be a content
    /// hash of the job's deterministic behavior — two jobs share a token
    /// only if their runs are interchangeable superstep for superstep.
    /// The default `None` opts out: jobs with hidden program-local state
    /// are never checkpointed.
    fn checkpoint_token(&self) -> Option<u64> {
        None
    }

    /// The job's statically known superstep count, if it has one.
    /// Schedule-replay jobs run exactly their schedule's length, so the
    /// cluster backend raises its runaway cap
    /// ([`ClusterOptions::max_supersteps`]) to cover the declared replay
    /// — a long prepared fixpoint is not a non-halting program. The
    /// default `None` leaves the cap as configured.
    fn superstep_hint(&self) -> Option<usize> {
        None
    }
}

/// An execution engine for [`ExecJob`]s.
///
/// Backends take `&self` and the shipped engines are stateless (or
/// internally synchronized), so one backend value can serve many threads:
/// wrap it in an [`Arc`] — `Arc<B>` is itself an `ExecBackend` — and
/// share it across sessions, the way the query serving layer does.
pub trait ExecBackend {
    /// Backend name (for reports).
    fn name(&self) -> String;

    /// Execute `job` from `placement` on `tree`.
    fn execute(
        &self,
        tree: &Tree,
        placement: &Placement,
        job: &dyn ExecJob,
    ) -> Result<ExecOutcome, ExecError>;
}

impl<B: ExecBackend + ?Sized> ExecBackend for Arc<B> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn execute(
        &self,
        tree: &Tree,
        placement: &Placement,
        job: &dyn ExecJob,
    ) -> Result<ExecOutcome, ExecError> {
        (**self).execute(tree, placement, job)
    }
}

fn unsupported(backend: &dyn ExecBackend, job: &dyn ExecJob) -> ExecError {
    ExecError::Runtime(RuntimeError::UnsupportedJob {
        backend: backend.name(),
        job: job.name(),
    })
}

/// The centralized engine: runs a job's [`CentralizedView`] on a
/// [`Session`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SimulatorBackend;

impl ExecBackend for SimulatorBackend {
    fn name(&self) -> String {
        "simulator".into()
    }

    fn execute(
        &self,
        tree: &Tree,
        placement: &Placement,
        job: &dyn ExecJob,
    ) -> Result<ExecOutcome, ExecError> {
        let view = job.centralized().ok_or_else(|| unsupported(self, job))?;
        // Session::new validates the placement.
        let mut session = Session::new(tree, placement)?;
        view.run(&mut session)?;
        let (cost, final_state, rounds) = session.into_parts();
        Ok(ExecOutcome {
            job: job.name(),
            backend: self.name(),
            rounds,
            supersteps: rounds,
            resumed_from: None,
            cost,
            final_state,
        })
    }
}

/// How a [`PooledClusterBackend`] sources its thread crew.
#[derive(Clone, Debug, Default)]
enum Crew {
    /// Spawn a scoped crew per `execute` call (the default).
    #[default]
    Scoped,
    /// A fixed persistent crew, spawned once and reused by every run.
    Shared(Arc<WorkerPool>),
    /// An elastic crew whose width a control loop may change between
    /// runs; each `execute` pins the crew current at its start.
    Elastic(Arc<ElasticPool>),
}

/// The pooled cluster engine: runs a job's distributed view on a bounded
/// worker pool (see [`crate::cluster`]).
///
/// By default each execution spawns its own scoped thread crew. For
/// serving workloads that run many jobs back to back, construct the
/// backend with [`with_shared_pool`](Self::with_shared_pool): the crew is
/// spawned once and reused across every `execute` call (jobs serialize on
/// the pool; results stay bit-identical). An orchestration layer that
/// wants to *resize* that crew between queries uses
/// [`with_elastic_pool`](Self::with_elastic_pool) instead, and one that
/// wants to kill workers mid-query attaches a [`FaultInjector`] with
/// [`with_fault_injector`](Self::with_fault_injector). Results are
/// bit-identical across every crew mode and width — only wall-clock
/// changes — so none of these knobs invalidates cached plans.
#[derive(Clone, Debug, Default)]
pub struct PooledClusterBackend {
    /// Pool and superstep options.
    pub options: ClusterOptions,
    /// Where executions get their thread crew.
    crew: Crew,
    /// Fault-injection arming point shared with an orchestration layer.
    injector: Option<Arc<FaultInjector>>,
    /// Superstep checkpointing: the shared snapshot store and cadence.
    /// Only attached to runs whose job opts in via
    /// [`ExecJob::checkpoint_token`].
    checkpoints: Option<(Arc<CheckpointStore>, CheckpointSpec)>,
}

impl PooledClusterBackend {
    /// A pooled backend with explicit options.
    pub fn new(options: ClusterOptions) -> Self {
        PooledClusterBackend {
            options,
            ..PooledClusterBackend::default()
        }
    }

    /// A pooled backend with a fixed worker count.
    pub fn with_workers(workers: usize) -> Self {
        PooledClusterBackend::new(ClusterOptions::with_workers(workers))
    }

    /// A pooled backend whose `workers`-thread crew is spawned once and
    /// reused by every subsequent `execute` call — the pool-reuse mode
    /// for serving many queries against one shared backend. Clones share
    /// the same crew.
    pub fn with_shared_pool(workers: usize) -> Self {
        PooledClusterBackend {
            options: ClusterOptions::with_workers(workers.max(1)),
            crew: Crew::Shared(Arc::new(WorkerPool::new(workers))),
            ..PooledClusterBackend::default()
        }
    }

    /// A pooled backend executing on an [`ElasticPool`]: each run pins
    /// the crew current at its start, so a control loop can
    /// [`resize`](ElasticPool::resize) the pool between queries without
    /// disturbing in-flight ones. Clones share the same elastic pool.
    pub fn with_elastic_pool(pool: Arc<ElasticPool>) -> Self {
        PooledClusterBackend {
            crew: Crew::Elastic(pool),
            ..PooledClusterBackend::default()
        }
    }

    /// Attach a [`FaultInjector`]: every subsequent `execute` call checks
    /// it for an armed [`FaultPlan`](crate::fault::FaultPlan) at run
    /// start (builder-style; clones share the injector).
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Attach superstep checkpointing (builder-style; clones share the
    /// store): runs of jobs that opt in via
    /// [`ExecJob::checkpoint_token`] snapshot at every `spec.every`
    /// superstep boundary, park the latest snapshot on a recoverable
    /// fault, and resume from a parked snapshot on retry.
    pub fn with_checkpoints(mut self, store: Arc<CheckpointStore>, spec: CheckpointSpec) -> Self {
        self.checkpoints = Some((store, spec));
        self
    }

    /// The persistent crew, when this backend was built with
    /// [`with_shared_pool`](Self::with_shared_pool).
    pub fn shared_pool(&self) -> Option<&Arc<WorkerPool>> {
        match &self.crew {
            Crew::Shared(p) => Some(p),
            _ => None,
        }
    }

    /// The elastic pool, when this backend was built with
    /// [`with_elastic_pool`](Self::with_elastic_pool).
    pub fn elastic_pool(&self) -> Option<&Arc<ElasticPool>> {
        match &self.crew {
            Crew::Elastic(p) => Some(p),
            _ => None,
        }
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// The attached checkpoint store, if any.
    pub fn checkpoint_store(&self) -> Option<&Arc<CheckpointStore>> {
        self.checkpoints.as_ref().map(|(store, _)| store)
    }
}

impl ExecBackend for PooledClusterBackend {
    fn name(&self) -> String {
        match (&self.crew, self.options.workers) {
            (Crew::Shared(p), _) => format!("pooled-cluster(shared {})", p.size()),
            (Crew::Elastic(p), _) => format!("pooled-cluster(elastic {})", p.width()),
            (Crew::Scoped, Some(w)) => format!("pooled-cluster({w})"),
            (Crew::Scoped, None) => "pooled-cluster".into(),
        }
    }

    fn execute(
        &self,
        tree: &Tree,
        placement: &Placement,
        job: &dyn ExecJob,
    ) -> Result<ExecOutcome, ExecError> {
        let programs: Option<Vec<Box<dyn NodeProgram>>> = tree
            .compute_nodes()
            .iter()
            .map(|&v| job.distributed(v))
            .collect();
        let programs = programs.ok_or_else(|| unsupported(self, job))?;
        // Pin the crew for this run: an elastic resize after this point
        // affects the *next* run, never this one.
        let crew: Option<Arc<WorkerPool>> = match &self.crew {
            Crew::Scoped => None,
            Crew::Shared(p) => Some(Arc::clone(p)),
            Crew::Elastic(p) => Some(p.snapshot()),
        };
        // Checkpointing needs both the backend's store and the job's
        // opt-in token — resumability is a property of the job.
        let checkpoint = match (&self.checkpoints, job.checkpoint_token()) {
            (Some((store, spec)), Some(token)) => Some(CheckpointHook {
                store,
                spec: *spec,
                token,
            }),
            _ => None,
        };
        // A job that declares its superstep count gets room for it: the
        // runaway cap protects against non-halting programs, not against
        // legitimately long declared-finite replays. +1 covers the
        // terminal silent superstep that detects quiescence.
        let mut options = self.options;
        if let Some(hint) = job.superstep_hint() {
            options.max_supersteps = options.max_supersteps.max(hint + 1);
        }
        let run = run_programs(
            tree,
            placement,
            programs,
            options,
            RunHooks {
                pool: crew.as_deref(),
                fault: self.injector.as_deref(),
                checkpoint,
            },
        )?;
        Ok(ExecOutcome {
            job: job.name(),
            backend: self.name(),
            rounds: run.cost.per_round.len(),
            supersteps: run.supersteps,
            resumed_from: run.resumed_from,
            cost: run.cost,
            final_state: run.final_state,
        })
    }
}

/// The standard engine pair for cross-validation: the simulator and the
/// default pooled cluster.
pub fn standard_backends() -> Vec<Box<dyn ExecBackend>> {
    vec![
        Box::new(SimulatorBackend),
        Box::new(PooledClusterBackend::default()),
    ]
}

/// Backend selection hook: resolve a backend from a spec string, so
/// drivers (examples, benches, env-var switches) can let callers pick an
/// engine without hard-wiring one.
///
/// Recognized specs:
///
/// - `"simulator"` (or `"sim"`) — the centralized [`SimulatorBackend`];
/// - `"pooled-cluster"` (or `"cluster"`) — the default
///   [`PooledClusterBackend`];
/// - `"pooled-cluster:<N>"` / `"cluster:<N>"` — a pooled cluster with an
///   explicit worker count.
///
/// Anything else is a typed [`RuntimeError::UnknownBackend`] whose
/// message names the offending spec and lists every valid one — drivers
/// propagate it instead of silently falling back to a default engine. A
/// syntactically valid pool spec with a zero width (`"cluster:0"`) is its
/// own typed error, [`RuntimeError::InvalidPoolWidth`]: a zero-thread
/// crew can never execute a superstep, so the spec is rejected up front
/// instead of handing back a degenerate pool.
///
/// The returned backend is `Send + Sync`, so callers may move it behind
/// an `Arc` and serve many threads from it.
pub fn backend_from_spec(spec: &str) -> Result<Box<dyn ExecBackend + Send + Sync>, RuntimeError> {
    let unknown = || RuntimeError::UnknownBackend {
        spec: spec.to_string(),
    };
    match spec.trim() {
        "simulator" | "sim" => Ok(Box::new(SimulatorBackend)),
        "pooled-cluster" | "cluster" => Ok(Box::new(PooledClusterBackend::default())),
        other => {
            let workers = other
                .strip_prefix("pooled-cluster:")
                .or_else(|| other.strip_prefix("cluster:"))
                .ok_or_else(unknown)?;
            let workers: usize = workers.parse().map_err(|_| unknown())?;
            if workers == 0 {
                return Err(RuntimeError::InvalidPoolWidth {
                    spec: spec.to_string(),
                });
            }
            Ok(Box::new(PooledClusterBackend::with_workers(workers)))
        }
    }
}

struct ErasedProtocol<'p, P>(&'p P);

impl<'p, P: Protocol> CentralizedView for ErasedProtocol<'p, P> {
    fn run(&self, session: &mut Session<'_>) -> Result<(), SimError> {
        self.0.run(session).map(|_output| ())
    }
}

/// A centralized-only job wrapping a [`Protocol`].
pub struct ProtocolJob<P>(pub P);

impl<P: Protocol> ExecJob for ProtocolJob<P> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn centralized(&self) -> Option<Box<dyn CentralizedView + '_>> {
        Some(Box::new(ErasedProtocol(&self.0)))
    }
}

/// A distributed-only job wrapping a program factory.
pub struct ProgramJob<F> {
    name: String,
    make: F,
}

impl<F: Fn(NodeId) -> Box<dyn NodeProgram>> ProgramJob<F> {
    /// A job named `name` whose node `v` runs `make(v)`.
    pub fn new(name: impl Into<String>, make: F) -> Self {
        ProgramJob {
            name: name.into(),
            make,
        }
    }
}

impl<F: Fn(NodeId) -> Box<dyn NodeProgram>> ExecJob for ProgramJob<F> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn distributed(&self, v: NodeId) -> Option<Box<dyn NodeProgram>> {
        Some((self.make)(v))
    }
}

/// A job with both views: the centralized protocol and its distributed
/// per-node counterpart. Runs on every backend; the cross-validation
/// tests assert the two views move bit-identical traffic.
pub struct PairedJob<P, F> {
    name: String,
    protocol: P,
    make: F,
}

impl<P, F> PairedJob<P, F>
where
    P: Protocol,
    F: Fn(NodeId) -> Box<dyn NodeProgram>,
{
    /// Pair `protocol` with the program factory `make` under `name`.
    pub fn new(name: impl Into<String>, protocol: P, make: F) -> Self {
        PairedJob {
            name: name.into(),
            protocol,
            make,
        }
    }
}

impl<P, F> ExecJob for PairedJob<P, F>
where
    P: Protocol,
    F: Fn(NodeId) -> Box<dyn NodeProgram>,
{
    fn name(&self) -> String {
        self.name.clone()
    }

    fn centralized(&self) -> Option<Box<dyn CentralizedView + '_>> {
        Some(Box::new(ErasedProtocol(&self.protocol)))
    }

    fn distributed(&self, v: NodeId) -> Option<Box<dyn NodeProgram>> {
        Some((self.make)(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Outbox, Step};
    use crate::NodeCtx;
    use tamp_simulator::Rel;
    use tamp_topology::builders;

    fn broadcast_job() -> PairedJob<Broadcast, impl Fn(NodeId) -> Box<dyn NodeProgram>> {
        PairedJob::new("broadcast", Broadcast, |v| {
            Box::new(
                move |ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox| {
                    if ctx.round == 0 && v == NodeId(0) {
                        out.send(ctx.tree.compute_nodes(), Rel::R, state.r.clone());
                        return Step::Continue;
                    }
                    Step::Halt
                },
            )
        })
    }

    struct Broadcast;

    impl Protocol for Broadcast {
        type Output = ();
        fn name(&self) -> String {
            "broadcast".into()
        }
        fn run(&self, s: &mut Session<'_>) -> Result<(), SimError> {
            let all: Vec<NodeId> = s.tree().compute_nodes().to_vec();
            s.round(|r| {
                let vals = r.state(NodeId(0)).r.clone();
                r.send(NodeId(0), &all, Rel::R, &vals)
            })
        }
    }

    #[test]
    fn paired_job_is_bit_identical_across_backends() {
        let tree = builders::star(5, 1.0);
        let mut p = Placement::empty(&tree);
        p.set_r(NodeId(0), (0..12).collect());
        let job = broadcast_job();
        let mut outcomes = Vec::new();
        for backend in standard_backends() {
            outcomes.push(backend.execute(&tree, &p, &job).unwrap());
        }
        let (sim, rt) = (&outcomes[0], &outcomes[1]);
        assert_eq!(sim.cost.edge_totals, rt.cost.edge_totals);
        assert_eq!(sim.rounds, rt.rounds);
        assert_eq!(rt.supersteps, rt.rounds + 1);
        for v in tree.nodes() {
            assert_eq!(
                sim.final_state[v.index()].r,
                rt.final_state[v.index()].r,
                "node {v}"
            );
        }
    }

    #[test]
    fn backend_specs_resolve() {
        assert_eq!(backend_from_spec("simulator").unwrap().name(), "simulator");
        assert_eq!(backend_from_spec("sim").unwrap().name(), "simulator");
        assert_eq!(
            backend_from_spec("pooled-cluster").unwrap().name(),
            "pooled-cluster"
        );
        assert_eq!(
            backend_from_spec("cluster:3").unwrap().name(),
            "pooled-cluster(3)"
        );
        assert_eq!(
            backend_from_spec("pooled-cluster:8").unwrap().name(),
            "pooled-cluster(8)"
        );
        for bad in ["", "gpu", "cluster:x", "pooled-cluster:"] {
            let err = backend_from_spec(bad).map(|b| b.name()).unwrap_err();
            assert_eq!(
                err,
                RuntimeError::UnknownBackend { spec: bad.into() },
                "{bad:?}"
            );
            // The message names the spec and lists the valid ones.
            let msg = err.to_string();
            assert!(msg.contains(&format!("`{bad}`")), "{msg}");
            assert!(
                msg.contains("simulator") && msg.contains("pooled-cluster"),
                "{msg}"
            );
        }
    }

    #[test]
    fn zero_width_pool_specs_are_typed_errors() {
        // A parseable width of 0 is not an unknown engine — it is an
        // invalid pool width, and must never construct a degenerate pool.
        for bad in ["cluster:0", "pooled-cluster:0", " pooled-cluster:0 "] {
            let err = backend_from_spec(bad).map(|b| b.name()).unwrap_err();
            assert_eq!(
                err,
                RuntimeError::InvalidPoolWidth { spec: bad.into() },
                "{bad:?}"
            );
            let msg = err.to_string();
            assert!(msg.contains("zero-width"), "{msg}");
        }
    }

    #[test]
    fn shared_pool_backend_is_reusable_and_bit_identical() {
        let tree = builders::star(5, 1.0);
        let mut p = Placement::empty(&tree);
        p.set_r(NodeId(0), (0..12).collect());
        let job = broadcast_job();
        let fresh = PooledClusterBackend::default()
            .execute(&tree, &p, &job)
            .unwrap();
        let shared = PooledClusterBackend::with_shared_pool(3);
        assert!(shared.shared_pool().is_some());
        assert_eq!(shared.name(), "pooled-cluster(shared 3)");
        // The same crew executes many jobs — including through an
        // Arc-shared clone — with ledgers identical to a per-run crew.
        let shared2 = Arc::new(shared.clone());
        for backend in [&shared as &dyn ExecBackend, &shared2 as &dyn ExecBackend] {
            for _ in 0..3 {
                let run = backend.execute(&tree, &p, &job).unwrap();
                assert_eq!(run.cost.edge_totals, fresh.cost.edge_totals);
                assert_eq!(run.rounds, fresh.rounds);
            }
        }
    }

    #[test]
    fn missing_views_are_typed_errors() {
        let tree = builders::star(2, 1.0);
        let p = Placement::empty(&tree);
        let central_only = ProtocolJob(Broadcast);
        let err = PooledClusterBackend::default()
            .execute(&tree, &p, &central_only)
            .unwrap_err();
        assert!(matches!(
            err,
            ExecError::Runtime(RuntimeError::UnsupportedJob { .. })
        ));
        let distributed_only = ProgramJob::new("halt", |_| {
            Box::new(|_: &NodeCtx<'_>, _: &mut NodeState, _: &mut Outbox| Step::Halt)
                as Box<dyn NodeProgram>
        });
        let err = SimulatorBackend
            .execute(&tree, &p, &distributed_only)
            .unwrap_err();
        assert!(matches!(
            err,
            ExecError::Runtime(RuntimeError::UnsupportedJob { .. })
        ));
    }
}
