//! The threaded BSP cluster.
//!
//! Where [`tamp_simulator`] executes a *centralized* protocol closure with
//! a global view, this module runs one OS thread per compute node, each
//! executing a [`NodeProgram`] that sees only its own state, the shared
//! model knowledge (topology + initial cardinalities, which §2 grants
//! every algorithm), and the messages delivered to it. Supersteps are
//! synchronized scatter/gather style: the coordinator hands each worker
//! its inbox, workers compute in parallel, and the coordinator meters the
//! returned outboxes on the *same* per-directed-edge, union-of-paths
//! ledger the simulator uses — so a distributed program whose sends match
//! a centralized protocol produces bit-identical [`Cost`]s, which the
//! cross-validation tests assert.
//!
//! Termination: the run ends at the first superstep in which every
//! program votes [`Step::Halt`] and sends nothing. A superstep limit
//! guards against livelock.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;

use crossbeam::channel::{unbounded, Receiver, Sender};
use tamp_simulator::cost::{Cost, RoundCost};
use tamp_simulator::{NodeState, Placement, PlacementStats, Rel};
use tamp_topology::{DirEdgeId, NodeId, Tree};

use crate::error::RuntimeError;
use crate::message::{Envelope, OutMsg, Outbox, Step};

/// Read-only per-round context handed to a program.
pub struct NodeCtx<'a> {
    /// The node this program runs on.
    pub node: NodeId,
    /// Superstep number, starting at 0.
    pub round: usize,
    /// The shared topology (model knowledge).
    pub tree: &'a Tree,
    /// Initial cardinalities `|X_0(v)|` of every node (model knowledge).
    pub stats: &'a PlacementStats,
    /// Messages delivered at the start of this superstep. Their values
    /// have already been appended to the node's state.
    pub arrived: &'a [Envelope],
}

/// A distributed algorithm, from one node's point of view.
///
/// `round` is called once per superstep with the node's mutable state and
/// an [`Outbox`]; messages queued there are delivered — and charged —
/// before the next superstep.
pub trait NodeProgram: Send {
    /// Execute one superstep.
    fn round(&mut self, ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox) -> Step;
}

impl<F> NodeProgram for F
where
    F: FnMut(&NodeCtx<'_>, &mut NodeState, &mut Outbox) -> Step + Send,
{
    fn round(&mut self, ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox) -> Step {
        self(ctx, state, out)
    }
}

/// The result of a cluster execution.
#[derive(Clone, Debug)]
pub struct RuntimeRun {
    /// Final per-node states, indexed by node id.
    pub final_state: Vec<NodeState>,
    /// Metered cost, on the same ledger as the simulator.
    pub cost: Cost,
    /// Number of supersteps executed (including the final silent one).
    pub supersteps: usize,
}

/// Execution options.
#[derive(Clone, Copy, Debug)]
pub struct ClusterOptions {
    /// Abort if the programs have not all halted after this many
    /// supersteps.
    pub max_supersteps: usize,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            max_supersteps: 64,
        }
    }
}

enum Cmd {
    Round { round: usize, inbox: Vec<Envelope> },
    Stop,
}

enum WorkerOut {
    Round {
        node: NodeId,
        outbox: Outbox,
        step: Step,
    },
    Final {
        node: NodeId,
        state: NodeState,
    },
    Panicked {
        node: NodeId,
        message: String,
    },
}

/// Run `make_program(v)` on every compute node `v` of `tree`, starting
/// from `placement`, until all programs halt.
pub fn run_cluster<F>(
    tree: &Tree,
    placement: &Placement,
    make_program: F,
    options: ClusterOptions,
) -> Result<RuntimeRun, RuntimeError>
where
    F: Fn(NodeId) -> Box<dyn NodeProgram>,
{
    let stats = placement.stats();
    let computes: Vec<NodeId> = tree.compute_nodes().to_vec();
    let n_nodes = tree.num_nodes();

    // Per-worker command channels; one shared response channel.
    let mut to_workers: HashMap<NodeId, Sender<Cmd>> = HashMap::new();
    let (resp_tx, resp_rx): (Sender<WorkerOut>, Receiver<WorkerOut>) = unbounded();

    let mut meter = Meter::new(tree);
    let mut result: Result<(Vec<NodeState>, usize), RuntimeError> = Err(RuntimeError::RoundLimit(
        options.max_supersteps,
    ));

    std::thread::scope(|scope| {
        for &v in &computes {
            let (cmd_tx, cmd_rx): (Sender<Cmd>, Receiver<Cmd>) = unbounded();
            to_workers.insert(v, cmd_tx);
            let resp_tx = resp_tx.clone();
            let mut program = make_program(v);
            let mut state = placement.node(v).clone();
            let tree_ref = tree;
            let stats_ref = &stats;
            scope.spawn(move || {
                while let Ok(cmd) = cmd_rx.recv() {
                    match cmd {
                        Cmd::Round { round, inbox } => {
                            // Commit deliveries into local state first
                            // (BSP: data sent in round i is state in i+1).
                            for env in &inbox {
                                match env.rel {
                                    Rel::R => state.r.extend_from_slice(&env.values),
                                    Rel::S => state.s.extend_from_slice(&env.values),
                                }
                            }
                            let ctx = NodeCtx {
                                node: v,
                                round,
                                tree: tree_ref,
                                stats: stats_ref,
                                arrived: &inbox,
                            };
                            let mut out = Outbox::default();
                            let step = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                program.round(&ctx, &mut state, &mut out)
                            }));
                            match step {
                                Ok(step) => {
                                    let _ = resp_tx.send(WorkerOut::Round {
                                        node: v,
                                        outbox: out,
                                        step,
                                    });
                                }
                                Err(payload) => {
                                    let message = payload
                                        .downcast_ref::<&str>()
                                        .map(|s| s.to_string())
                                        .or_else(|| payload.downcast_ref::<String>().cloned())
                                        .unwrap_or_else(|| "<non-string panic>".into());
                                    let _ = resp_tx.send(WorkerOut::Panicked { node: v, message });
                                    return;
                                }
                            }
                        }
                        Cmd::Stop => {
                            let _ = resp_tx.send(WorkerOut::Final {
                                node: v,
                                state: std::mem::take(&mut state),
                            });
                            return;
                        }
                    }
                }
            });
        }
        drop(resp_tx);

        // Coordinator loop.
        let mut inboxes: HashMap<NodeId, Vec<Envelope>> = HashMap::new();
        'steps: for round in 0..options.max_supersteps {
            for &v in &computes {
                let inbox = inboxes.remove(&v).unwrap_or_default();
                let _ = to_workers[&v].send(Cmd::Round { round, inbox });
            }
            let mut all_halt = true;
            let mut any_send = false;
            let mut round_sends: Vec<(NodeId, OutMsg)> = Vec::new();
            for _ in 0..computes.len() {
                match resp_rx.recv() {
                    Ok(WorkerOut::Round { node, outbox, step }) => {
                        if step == Step::Continue {
                            all_halt = false;
                        }
                        if !outbox.is_empty() {
                            any_send = true;
                        }
                        for msg in outbox.sends {
                            round_sends.push((node, msg));
                        }
                    }
                    Ok(WorkerOut::Panicked { node, message }) => {
                        result = Err(RuntimeError::WorkerPanic { node, message });
                        break 'steps;
                    }
                    Ok(WorkerOut::Final { .. }) | Err(_) => {
                        unreachable!("workers only report Final after Stop")
                    }
                }
            }
            // Deterministic delivery: order sends by source node (each
            // node's own sends stay in issue order), so runs are
            // reproducible regardless of thread scheduling.
            round_sends.sort_by_key(|(src, _)| src.index());
            // Validate destinations, meter, and build next inboxes.
            let mut charges = vec![0u64; meter.num_dir_edges()];
            for (src, msg) in round_sends {
                if let Some(&bad) = msg.dsts.iter().find(|&&d| !tree.is_compute(d)) {
                    result = Err(RuntimeError::SendToRouter(bad));
                    break 'steps;
                }
                meter.charge_multicast(src, &msg.dsts, msg.values.len() as u64, &mut charges);
                for &dst in &msg.dsts {
                    inboxes.entry(dst).or_default().push(Envelope {
                        src,
                        rel: msg.rel,
                        values: msg.values.clone(),
                    });
                }
            }
            meter.push_round(charges);
            if all_halt && !any_send {
                result = Ok((Vec::new(), round + 1));
                break 'steps;
            }
        }

        // Tear down: collect final states (or drain after an error).
        for &v in &computes {
            let _ = to_workers[&v].send(Cmd::Stop);
        }
        let mut finals: Vec<NodeState> = vec![NodeState::default(); n_nodes];
        let mut collected = 0usize;
        while collected < computes.len() {
            match resp_rx.recv() {
                Ok(WorkerOut::Final { node, state }) => {
                    finals[node.index()] = state;
                    collected += 1;
                }
                Ok(_) => {} // stale round responses from an aborted run
                Err(_) => break,
            }
        }
        if let Ok((states, _)) = &mut result {
            *states = finals;
        }
    });

    let (final_state, supersteps) = result?;
    Ok(RuntimeRun {
        final_state,
        cost: meter.finish(),
        supersteps,
    })
}

/// Per-directed-edge traffic metering with union-of-paths multicast
/// charging — the same accounting as the simulator's `Session`.
struct Meter<'t> {
    tree: &'t Tree,
    bandwidth: Vec<f64>,
    rounds: Vec<Vec<u64>>,
    paths: HashMap<(u32, u32), Box<[DirEdgeId]>>,
    stamp: Vec<u32>,
    stamp_ctr: u32,
}

impl<'t> Meter<'t> {
    fn new(tree: &'t Tree) -> Self {
        let bandwidth: Vec<f64> = tree.dir_edges().map(|d| tree.bandwidth(d).get()).collect();
        let n = bandwidth.len();
        Meter {
            tree,
            bandwidth,
            rounds: Vec::new(),
            paths: HashMap::new(),
            stamp: vec![0; n],
            stamp_ctr: 0,
        }
    }

    fn num_dir_edges(&self) -> usize {
        self.bandwidth.len()
    }

    fn charge_multicast(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        amount: u64,
        charges: &mut [u64],
    ) {
        self.stamp_ctr = self.stamp_ctr.wrapping_add(1);
        if self.stamp_ctr == 0 {
            self.stamp.fill(0);
            self.stamp_ctr = 1;
        }
        for &dst in dsts {
            if src == dst {
                continue;
            }
            let key = (src.0, dst.0);
            if !self.paths.contains_key(&key) {
                let p = self.tree.path(src, dst).into_boxed_slice();
                self.paths.insert(key, p);
            }
            let path = &self.paths[&key];
            for &d in path.iter() {
                let i = d.index();
                if self.stamp[i] != self.stamp_ctr {
                    self.stamp[i] = self.stamp_ctr;
                    charges[i] += amount;
                }
            }
        }
    }

    fn push_round(&mut self, charges: Vec<u64>) {
        self.rounds.push(charges);
    }

    fn finish(self) -> Cost {
        let mut per_round = Vec::with_capacity(self.rounds.len());
        let mut edge_totals = vec![0u64; self.bandwidth.len()];
        for traffic in &self.rounds {
            let mut round = RoundCost {
                tuple_cost: 0.0,
                bottleneck: None,
                max_tuples: 0,
                total_tuples: 0,
            };
            for (d, &tuples) in traffic.iter().enumerate() {
                edge_totals[d] += tuples;
                round.total_tuples += tuples;
                round.max_tuples = round.max_tuples.max(tuples);
                let w = self.bandwidth[d];
                let c = if w.is_infinite() {
                    0.0
                } else {
                    tuples as f64 / w
                };
                if c > round.tuple_cost {
                    round.tuple_cost = c;
                    round.bottleneck = Some(DirEdgeId(d as u32));
                }
            }
            per_round.push(round);
        }
        Cost {
            per_round,
            edge_totals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_topology::builders;

    fn opts(max: usize) -> ClusterOptions {
        ClusterOptions {
            max_supersteps: max,
        }
    }

    #[test]
    fn closure_programs_run_and_halt() {
        // Node 0 sends its data to node 1 in round 0; everyone halts in 1.
        let tree = builders::star(2, 2.0);
        let mut p = Placement::empty(&tree);
        p.set_r(NodeId(0), vec![1, 2, 3, 4]);
        let run = run_cluster(
            &tree,
            &p,
            |v| {
                Box::new(
                    move |ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox| {
                        if ctx.round == 0 && v == NodeId(0) {
                            out.send_to(NodeId(1), Rel::R, state.r.clone());
                            return Step::Continue;
                        }
                        Step::Halt
                    },
                )
            },
            ClusterOptions::default(),
        )
        .unwrap();
        assert_eq!(run.final_state[1].r, vec![1, 2, 3, 4]);
        // Same accounting as the simulator: 4 tuples over two bw-2 hops.
        assert_eq!(run.cost.tuple_cost(), 2.0);
        assert_eq!(run.cost.total_tuples(), 8);
        assert_eq!(run.supersteps, 2);
    }

    #[test]
    fn multicast_union_charging_matches_simulator_semantics() {
        let tree = builders::star(4, 1.0);
        let mut p = Placement::empty(&tree);
        p.set_s(NodeId(0), (0..10).collect());
        let run = run_cluster(
            &tree,
            &p,
            |v| {
                Box::new(
                    move |ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox| {
                        if ctx.round == 0 && v == NodeId(0) {
                            let all: Vec<NodeId> = ctx.tree.compute_nodes().to_vec();
                            out.send(&all, Rel::S, state.s.clone());
                            return Step::Continue;
                        }
                        Step::Halt
                    },
                )
            },
            ClusterOptions::default(),
        )
        .unwrap();
        // Uplink charged once (10), three downlinks (30): total 40.
        assert_eq!(run.cost.total_tuples(), 40);
        assert_eq!(run.cost.tuple_cost(), 10.0);
        // Self-delivery lands too.
        assert_eq!(run.final_state[0].s.len(), 20);
    }

    #[test]
    fn round_limit_is_enforced() {
        let tree = builders::star(2, 1.0);
        let p = Placement::empty(&tree);
        let err = run_cluster(
            &tree,
            &p,
            |_| Box::new(|_: &NodeCtx<'_>, _: &mut NodeState, _: &mut Outbox| Step::Continue),
            opts(5),
        )
        .unwrap_err();
        assert_eq!(err, RuntimeError::RoundLimit(5));
    }

    #[test]
    fn halt_votes_with_pending_sends_keep_running() {
        // A node that halts while still sending must be kept alive until
        // the message settles.
        let tree = builders::star(2, 1.0);
        let mut p = Placement::empty(&tree);
        p.set_r(NodeId(0), vec![7]);
        let run = run_cluster(
            &tree,
            &p,
            |v| {
                Box::new(
                    move |ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox| {
                        if ctx.round == 0 && v == NodeId(0) {
                            out.send_to(NodeId(1), Rel::R, state.r.clone());
                        }
                        Step::Halt // everyone votes halt from the start
                    },
                )
            },
            ClusterOptions::default(),
        )
        .unwrap();
        // Two supersteps: one with the send, one silent to settle.
        assert_eq!(run.supersteps, 2);
        assert_eq!(run.final_state[1].r, vec![7]);
    }

    #[test]
    fn sends_to_routers_are_rejected() {
        let tree = builders::star(2, 1.0); // node 2 is the hub
        let p = Placement::empty(&tree);
        let err = run_cluster(
            &tree,
            &p,
            |_| {
                Box::new(|_: &NodeCtx<'_>, _: &mut NodeState, out: &mut Outbox| {
                    out.send_to(NodeId(2), Rel::R, vec![1]);
                    Step::Halt
                })
            },
            ClusterOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, RuntimeError::SendToRouter(NodeId(2)));
    }

    #[test]
    fn panics_surface_as_errors_with_node_id() {
        let tree = builders::star(3, 1.0);
        let p = Placement::empty(&tree);
        let err = run_cluster(
            &tree,
            &p,
            |v| {
                Box::new(
                    move |_: &NodeCtx<'_>, _: &mut NodeState, _: &mut Outbox| {
                        if v == NodeId(1) {
                            panic!("injected fault");
                        }
                        Step::Halt
                    },
                )
            },
            ClusterOptions::default(),
        )
        .unwrap_err();
        match err {
            RuntimeError::WorkerPanic { node, message } => {
                assert_eq!(node, NodeId(1));
                assert!(message.contains("injected fault"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn arrived_envelopes_report_sources() {
        let tree = builders::star(3, 1.0);
        let mut p = Placement::empty(&tree);
        p.set_r(NodeId(0), vec![1]);
        p.set_r(NodeId(1), vec![2]);
        let seen = std::sync::Arc::new(parking_lot_free_mutex());
        let seen2 = seen.clone();
        let run = run_cluster(
            &tree,
            &p,
            move |v| {
                let seen = seen2.clone();
                Box::new(
                    move |ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox| {
                        if ctx.round == 0 && v != NodeId(2) {
                            out.send_to(NodeId(2), Rel::R, state.r.clone());
                            return Step::Continue;
                        }
                        if ctx.round == 1 && v == NodeId(2) {
                            let mut srcs: Vec<NodeId> =
                                ctx.arrived.iter().map(|e| e.src).collect();
                            srcs.sort_unstable();
                            *seen.lock().unwrap() = srcs;
                        }
                        Step::Halt
                    },
                )
            },
            ClusterOptions::default(),
        )
        .unwrap();
        assert_eq!(run.final_state[2].r, vec![1, 2]);
        assert_eq!(*seen.lock().unwrap(), vec![NodeId(0), NodeId(1)]);
    }

    fn parking_lot_free_mutex() -> std::sync::Mutex<Vec<NodeId>> {
        std::sync::Mutex::new(Vec::new())
    }

    #[test]
    fn local_compute_runs_in_parallel_threads() {
        // Each node records its thread id; with one thread per node they
        // must all differ.
        let tree = builders::star(4, 1.0);
        let p = Placement::empty(&tree);
        let ids = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let ids2 = ids.clone();
        run_cluster(
            &tree,
            &p,
            move |_| {
                let ids = ids2.clone();
                Box::new(
                    move |_: &NodeCtx<'_>, _: &mut NodeState, _: &mut Outbox| {
                        ids.lock().unwrap().push(std::thread::current().id());
                        Step::Halt
                    },
                )
            },
            ClusterOptions::default(),
        )
        .unwrap();
        let ids: std::collections::HashSet<_> =
            ids.lock().unwrap().iter().copied().collect();
        assert_eq!(ids.len(), 4);
    }
}
