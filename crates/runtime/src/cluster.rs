//! The pooled BSP cluster.
//!
//! Where [`tamp_simulator`] executes a *centralized* protocol closure with
//! a global view, this module runs a [`NodeProgram`] per compute node,
//! each seeing only its own state, the shared model knowledge (topology +
//! initial cardinalities, which §2 grants every algorithm), and the
//! messages delivered to it.
//!
//! Execution is a **bounded worker pool**, not a thread per node: a fixed
//! crew of OS threads (default: available parallelism) claims per-node
//! programs from a shared queue each superstep, so a 2048-node — or
//! 100k-node — topology runs on a laptop without 2048 stacks. Logical
//! nodes are decoupled from OS-level resources; only the superstep
//! barrier is global.
//!
//! Supersteps are synchronized scatter/gather style: the coordinator
//! publishes each node's inbox, workers execute claimed programs in
//! parallel, and the coordinator meters the returned outboxes on the
//! *same* per-directed-edge, union-of-paths [`TrafficMeter`] the
//! simulator uses — so a distributed program whose sends match a
//! centralized protocol produces bit-identical [`Cost`]s, which the
//! cross-validation tests assert. Because metering and delivery order are
//! functions of the (deterministically sorted) send set alone, results
//! are bit-identical for *any* worker count.
//!
//! Termination: the run ends at the first superstep in which every
//! program votes [`Step::Halt`] and sends nothing. That final silent
//! superstep is counted in [`RuntimeRun::supersteps`] but adds no round
//! to the cost ledger (it moves no data), keeping the metered round count
//! aligned with the equivalent centralized protocol. A superstep limit
//! guards against livelock.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use tamp_simulator::cost::Cost;
use tamp_simulator::metering::TrafficMeter;
use tamp_simulator::{NodeState, Placement, PlacementStats, Rel};
use tamp_topology::{NodeId, Tree};

use crate::checkpoint::{Checkpoint, CheckpointSpec, CheckpointStore};
use crate::error::RuntimeError;
use crate::fault::{FaultEvent, FaultInjector, FaultKind, ResolvedFaults};
use crate::message::{Envelope, OutMsg, Outbox, Step};
use crate::pool::WorkerPool;

/// Read-only per-round context handed to a program.
pub struct NodeCtx<'a> {
    /// The node this program runs on.
    pub node: NodeId,
    /// Superstep number, starting at 0.
    pub round: usize,
    /// The shared topology (model knowledge).
    pub tree: &'a Tree,
    /// Initial cardinalities `|X_0(v)|` of every node (model knowledge).
    pub stats: &'a PlacementStats,
    /// Messages delivered at the start of this superstep. Their values
    /// have already been appended to the node's state.
    pub arrived: &'a [Envelope],
}

/// A distributed algorithm, from one node's point of view.
///
/// `round` is called once per superstep with the node's mutable state and
/// an [`Outbox`]; messages queued there are delivered — and charged —
/// before the next superstep.
pub trait NodeProgram: Send {
    /// Execute one superstep.
    fn round(&mut self, ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox) -> Step;
}

impl<F> NodeProgram for F
where
    F: FnMut(&NodeCtx<'_>, &mut NodeState, &mut Outbox) -> Step + Send,
{
    fn round(&mut self, ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox) -> Step {
        self(ctx, state, out)
    }
}

/// The result of a cluster execution.
#[derive(Clone, Debug)]
pub struct RuntimeRun {
    /// Final per-node states, indexed by node id.
    pub final_state: Vec<NodeState>,
    /// Metered cost, on the same ledger as the simulator. One round per
    /// superstep that was given the chance to move data; the terminal
    /// all-silent superstep is not metered.
    pub cost: Cost,
    /// Number of supersteps executed (including the final silent one).
    /// A run resumed from a checkpoint still counts from superstep 0, so
    /// the total is comparable with a fault-free run's.
    pub supersteps: usize,
    /// `Some(r)`: the run resumed from a checkpoint at superstep `r`
    /// (supersteps `0..r` were *skipped*, not replayed). `None`: the run
    /// started from superstep 0.
    pub resumed_from: Option<usize>,
}

/// Execution options.
#[derive(Clone, Copy, Debug)]
pub struct ClusterOptions {
    /// Abort if the programs have not all halted after this many
    /// supersteps.
    pub max_supersteps: usize,
    /// Worker threads in the pool. `None` (the default) uses the
    /// machine's available parallelism. The pool never exceeds the number
    /// of compute nodes.
    pub workers: Option<usize>,
    /// Straggler watchdog: abort a superstep that has not gathered every
    /// node report within this wall-clock deadline, with the typed
    /// [`RuntimeError::SuperstepTimeout`]. `None` (the default) waits
    /// forever — results are then bit-identical no matter how slow a
    /// worker is.
    pub superstep_deadline: Option<Duration>,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            max_supersteps: 64,
            workers: None,
            superstep_deadline: None,
        }
    }
}

impl ClusterOptions {
    /// Like `default()`, but with an explicit worker-pool size.
    pub fn with_workers(workers: usize) -> Self {
        ClusterOptions {
            workers: Some(workers),
            ..ClusterOptions::default()
        }
    }

    /// Builder-style: set the straggler watchdog deadline.
    pub fn with_superstep_deadline(mut self, deadline: Duration) -> Self {
        self.superstep_deadline = Some(deadline);
        self
    }

    /// The pool size this configuration resolves to for `n_nodes` compute
    /// nodes: `workers` (or available parallelism), capped at `n_nodes`,
    /// floored at 1.
    pub fn resolved_workers(&self, n_nodes: usize) -> usize {
        let hw = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        self.workers.unwrap_or_else(hw).clamp(1, n_nodes.max(1))
    }
}

/// One compute node's slot in the pool: its program, state and pending
/// inbox. Workers claim slots by index; each slot is touched by exactly
/// one worker per superstep.
struct Slot {
    node: NodeId,
    program: Box<dyn NodeProgram>,
    state: NodeState,
    inbox: Vec<Envelope>,
}

/// What a worker reports back during a superstep.
enum WorkerOut {
    /// One executed node-superstep.
    Round {
        node: NodeId,
        outbox: Outbox,
        step: Step,
    },
    /// A node program panicked.
    Panicked { node: NodeId, message: String },
    /// An injected fault killed this node's program this superstep.
    Failed { node: NodeId, round: usize },
    /// This worker observed the claim queue exhausted and went back to
    /// the gate. The coordinator must collect one per worker before
    /// reopening the queue for the next superstep — otherwise a straggler
    /// could re-claim nodes from the fresh queue under a stale round.
    Drained,
}

/// The superstep gate: workers sleep on it between rounds.
struct Gate {
    /// Bumped once per superstep; workers run when they see a fresh value.
    generation: u64,
    /// Current superstep number.
    round: usize,
    /// Set when the run is over and workers should exit.
    stop: bool,
}

/// Checkpointing configuration for one run: where snapshots park, how
/// often they are taken, and the job token they are keyed by.
pub(crate) struct CheckpointHook<'a> {
    /// The shared parking lot.
    pub store: &'a CheckpointStore,
    /// Snapshot cadence.
    pub spec: CheckpointSpec,
    /// The job's checkpoint token (a schedule-content hash).
    pub token: u64,
}

/// The optional attachments of one cluster execution: a persistent
/// worker crew, a fault-injection arming point, and a checkpoint store.
#[derive(Default)]
pub(crate) struct RunHooks<'a> {
    /// `None` spawns a scoped crew for this run; `Some` dispatches onto
    /// a persistent [`WorkerPool`]. Results are bit-identical either way.
    pub pool: Option<&'a WorkerPool>,
    /// The fault-injection arming point: the front armed plan is
    /// consumed at run start.
    pub fault: Option<&'a FaultInjector>,
    /// Superstep checkpointing (only attached for resumable jobs — see
    /// [`ExecJob::checkpoint_token`](crate::backend::ExecJob::checkpoint_token)).
    pub checkpoint: Option<CheckpointHook<'a>>,
}

/// Run `make_program(v)` on every compute node `v` of `tree`, starting
/// from `placement`, until all programs halt.
///
/// This is the pooled engine: see the module docs. The closure-based
/// signature is kept for convenience; [`ExecBackend`](crate::backend::ExecBackend)
/// is the engine-agnostic entry point.
pub fn run_cluster<F>(
    tree: &Tree,
    placement: &Placement,
    make_program: F,
    options: ClusterOptions,
) -> Result<RuntimeRun, RuntimeError>
where
    F: Fn(NodeId) -> Box<dyn NodeProgram>,
{
    let computes: Vec<NodeId> = tree.compute_nodes().to_vec();
    let programs: Vec<Box<dyn NodeProgram>> = computes.iter().map(|&v| make_program(v)).collect();
    run_programs(tree, placement, programs, options, RunHooks::default())
}

/// Run pre-instantiated per-node programs (aligned with
/// `tree.compute_nodes()`) on the pool.
///
/// `hooks` attaches the optional machinery of the serving layer:
///
/// - [`RunHooks::pool`]: `None` spawns a scoped crew for this run (the
///   default), `Some` dispatches the worker loop onto a persistent
///   [`WorkerPool`] shared across runs. Results are bit-identical either
///   way.
/// - [`RunHooks::fault`]: the [`FaultInjector`] arming point. The front
///   armed [`FaultPlan`](crate::fault::FaultPlan) is consumed at run
///   start (validated against `tree` first); planned kills stop the
///   affected node programs and abort the run with
///   [`RuntimeError::InjectedFault`], planned degradations abort with
///   [`RuntimeError::LinkDegraded`], planned stalls delay a worker (and
///   trip the watchdog when a deadline is configured). Fired faults are
///   recorded back into the injector's event log.
/// - [`RunHooks::checkpoint`]: snapshot the cluster at every `spec.every`
///   superstep boundary; on a *recoverable* abort the latest snapshot is
///   parked in the store, and the next run with the same token resumes
///   from it instead of superstep 0.
pub(crate) fn run_programs(
    tree: &Tree,
    placement: &Placement,
    programs: Vec<Box<dyn NodeProgram>>,
    options: ClusterOptions,
    hooks: RunHooks<'_>,
) -> Result<RuntimeRun, RuntimeError> {
    let stats = placement.stats();
    let computes: Vec<NodeId> = tree.compute_nodes().to_vec();
    let n = computes.len();
    assert_eq!(programs.len(), n, "one program per compute node");

    // node id → slot index, for inbox delivery.
    let mut slot_of = vec![usize::MAX; tree.num_nodes()];
    for (i, &v) in computes.iter().enumerate() {
        slot_of[v.index()] = i;
    }

    let mut slots: Vec<Mutex<Slot>> = computes
        .iter()
        .zip(programs)
        .map(|(&v, program)| {
            Mutex::new(Slot {
                node: v,
                program,
                state: placement.node(v).clone(),
                inbox: Vec::new(),
            })
        })
        .collect();

    // Take the front armed fault plan (one-shot per plan: the queue pops,
    // so a retry runs clean unless the chaos layer armed more plans),
    // validate it against the topology — a bad target is a typed error,
    // never a silent no-op — and resolve it into trigger tables.
    let resolved: Option<ResolvedFaults> = match hooks
        .fault
        .and_then(|inj| inj.disarm())
        .filter(|plan| !plan.is_empty())
    {
        Some(plan) => {
            plan.validate(tree)?;
            Some(plan.resolve(tree))
        }
        None => None,
    };

    // Partial restart: pop the snapshot a previous faulted run of this
    // same schedule parked, restore states/inboxes/meter from it, and
    // start the superstep loop where it left off.
    let mut latest_cp: Option<Checkpoint> = hooks
        .checkpoint
        .as_ref()
        .and_then(|h| h.store.take(h.token));
    let resume_round = latest_cp.as_ref().map_or(0, |cp| cp.resume_round);
    let resumed_from = latest_cp.as_ref().map(|cp| cp.resume_round);
    let mut meter = match &latest_cp {
        Some(cp) => {
            for (i, slot) in slots.iter_mut().enumerate() {
                let s = slot.get_mut().unwrap();
                s.state = cp.states[i].clone();
                s.inbox = cp.inboxes[i].clone();
            }
            cp.meter.clone()
        }
        None => TrafficMeter::new(tree),
    };

    let workers = match hooks.pool {
        Some(p) => p.size(),
        None => options.resolved_workers(n),
    };
    // Claim granularity: coarse enough to keep cursor contention low on
    // big topologies, fine enough to balance skewed per-node work.
    let chunk = (n / (workers * 8)).clamp(1, 64);

    let cursor = AtomicUsize::new(n); // exhausted until the first round opens
    let gate = Mutex::new(Gate {
        generation: 0,
        round: 0,
        stop: false,
    });
    let gate_cv = Condvar::new();
    let (out_tx, out_rx): (Sender<WorkerOut>, Receiver<WorkerOut>) = channel();

    let mut fired_events: Vec<FaultEvent> = Vec::new();
    let mut supersteps_done = 0usize;
    let mut outcome: Result<usize, RuntimeError> = Err(RuntimeError::SuperstepLimit {
        limit: options.max_supersteps,
        round: options.max_supersteps.saturating_sub(1),
    });

    // One worker's whole run: claim node programs superstep by superstep
    // until the coordinator raises the stop flag. Shared between the
    // scoped per-run crew and the persistent pool — each pool thread runs
    // this same closure.
    let worker_body = |_idx: usize| {
        let out_tx = out_tx.clone();
        let mut seen_generation = 0u64;
        loop {
            // Sleep until the coordinator opens a new superstep.
            let round = {
                let mut g = gate.lock().unwrap();
                while g.generation == seen_generation && !g.stop {
                    g = gate_cv.wait(g).unwrap();
                }
                if g.stop {
                    return;
                }
                seen_generation = g.generation;
                g.round
            };
            // Claim and run node programs until the queue drains.
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for claimed in &slots[start..(start + chunk).min(n)] {
                    let mut slot = claimed.lock().unwrap();
                    let Slot {
                        node,
                        program,
                        state,
                        inbox,
                    } = &mut *slot;
                    // An injected fault: from its fail round on, this
                    // node's program is dead and executes nothing. A
                    // stalled (straggling) program sleeps through its
                    // stall round before executing — harmless without a
                    // watchdog deadline, fatal with one.
                    if let Some(res) = &resolved {
                        if round >= res.fail[node.index()] {
                            let _ = out_tx.send(WorkerOut::Failed { node: *node, round });
                            continue;
                        }
                        if let Some((stall_round, delay)) = res.stall[node.index()] {
                            if round == stall_round {
                                std::thread::sleep(delay);
                            }
                        }
                    }
                    // Commit deliveries into local state first
                    // (BSP: data sent in round i is state in i+1).
                    let arrived = std::mem::take(inbox);
                    for env in &arrived {
                        match env.rel {
                            Rel::R => state.r.extend_from_slice(&env.values),
                            Rel::S => state.s.extend_from_slice(&env.values),
                        }
                    }
                    let ctx = NodeCtx {
                        node: *node,
                        round,
                        tree,
                        stats: &stats,
                        arrived: &arrived,
                    };
                    let mut out = Outbox::default();
                    let step = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        program.round(&ctx, state, &mut out)
                    }));
                    let report = match step {
                        Ok(step) => WorkerOut::Round {
                            node: *node,
                            outbox: out,
                            step,
                        },
                        Err(payload) => {
                            let message = crate::error::panic_message(&*payload);
                            WorkerOut::Panicked {
                                node: *node,
                                message,
                            }
                        }
                    };
                    let _ = out_tx.send(report);
                }
            }
            let _ = out_tx.send(WorkerOut::Drained);
        }
    };

    // The coordinator: opens supersteps, gathers reports, meters and
    // delivers, and finally raises the stop flag that releases the crew.
    let mut coordinator = || {
        // Coordinator loop.
        'steps: for round in resume_round..options.max_supersteps {
            // A planned link degradation fires *before* its superstep
            // executes: the run aborts with the typed error so the
            // serving layer can re-weight the topology and re-price,
            // while the latest checkpoint covers every superstep up to
            // the degradation point.
            if let Some(res) = &resolved {
                if let Some(&(edge, fault_round, factor)) =
                    res.degrades.iter().find(|&&(_, r, _)| r <= round)
                {
                    fired_events.push(FaultEvent {
                        node: tree.deeper_endpoint(edge),
                        round: fault_round,
                        kind: FaultKind::LinkDegraded { edge, factor },
                    });
                    outcome = Err(RuntimeError::LinkDegraded {
                        edge,
                        round: fault_round,
                        factor,
                    });
                    break 'steps;
                }
            }

            // Open the superstep: reset the claim queue, then wake the
            // pool. The store is ordered before the wake by the gate lock.
            cursor.store(0, Ordering::Relaxed);
            {
                let mut g = gate.lock().unwrap();
                g.generation += 1;
                g.round = round;
            }
            gate_cv.notify_all();

            // Gather: one report per compute node, plus one Drained per
            // worker (the barrier that makes reopening the queue safe).
            // With a watchdog deadline, the whole gather must land within
            // it — a straggler turns into the typed timeout error.
            // lint: allow(D2) — the straggler watchdog is the one clock in
            // the runtime: it only ever produces the *recoverable*
            // SuperstepTimeout fault, and recovery replays the pinned
            // schedule, so answers stay bit-identical across replays.
            let round_started = Instant::now();
            let mut all_halt = true;
            let mut round_sends: Vec<(NodeId, OutMsg)> = Vec::new();
            let mut panic_err: Option<RuntimeError> = None;
            let mut failed: Vec<FaultEvent> = Vec::new();
            let mut reported_slots = vec![false; n];
            let mut reported = 0usize;
            let mut drained = 0usize;
            let mut timed_out = false;
            while reported < n || drained < workers {
                let received = match options.superstep_deadline {
                    None => out_rx.recv().ok(),
                    Some(deadline) => deadline
                        .checked_sub(round_started.elapsed())
                        .and_then(|remaining| out_rx.recv_timeout(remaining).ok()),
                };
                let Some(out) = received else {
                    // The watchdog fired. The straggler is attributed
                    // deterministically: the lowest-indexed node that had
                    // not reported when the deadline expired.
                    let deadline = options
                        .superstep_deadline
                        .expect("timeouts require a deadline");
                    let straggler = computes
                        .iter()
                        .enumerate()
                        .find(|&(i, _)| !reported_slots[i])
                        .map(|(_, &v)| v)
                        .unwrap_or(computes[0]);
                    fired_events.push(FaultEvent {
                        node: straggler,
                        round,
                        kind: FaultKind::Straggler,
                    });
                    outcome = Err(RuntimeError::SuperstepTimeout {
                        node: straggler,
                        round,
                        deadline,
                    });
                    timed_out = true;
                    break;
                };
                match out {
                    WorkerOut::Round { node, outbox, step } => {
                        reported += 1;
                        reported_slots[slot_of[node.index()]] = true;
                        if step == Step::Continue {
                            all_halt = false;
                        }
                        for msg in outbox.sends {
                            round_sends.push((node, msg));
                        }
                    }
                    WorkerOut::Panicked { node, message } => {
                        reported += 1;
                        reported_slots[slot_of[node.index()]] = true;
                        panic_err = Some(RuntimeError::WorkerPanic { node, message });
                    }
                    WorkerOut::Failed { node, round } => {
                        reported += 1;
                        reported_slots[slot_of[node.index()]] = true;
                        failed.push(FaultEvent {
                            node,
                            round,
                            kind: FaultKind::WorkerKilled,
                        });
                    }
                    WorkerOut::Drained => drained += 1,
                }
            }
            if timed_out {
                break 'steps;
            }
            supersteps_done = round + 1;
            if !failed.is_empty() {
                // Deterministic error: the lowest-indexed failed node
                // names the run's outcome regardless of claim order, and
                // the event log is sorted the same way.
                failed.sort_by_key(|e| e.node.index());
                let first = failed[0];
                fired_events.extend(failed);
                outcome = Err(RuntimeError::InjectedFault {
                    node: first.node,
                    round: first.round,
                });
                break 'steps;
            }
            if let Some(e) = panic_err {
                outcome = Err(e);
                break 'steps;
            }

            let any_send = !round_sends.is_empty();
            if all_halt && !any_send {
                // Quiesced: the terminal silent superstep is counted but
                // not metered (it moves no data).
                outcome = Ok(supersteps_done);
                break 'steps;
            }

            // Deterministic delivery: order sends by source node (each
            // node's own sends stay in issue order), so metering and
            // state are reproducible for any worker count or schedule.
            round_sends.sort_by_key(|(src, _)| src.index());
            for (src, msg) in round_sends {
                if let Some(&bad) = msg.dsts.iter().find(|&&d| !tree.is_compute(d)) {
                    outcome = Err(RuntimeError::SendToRouter(bad));
                    break 'steps;
                }
                meter.charge_multicast(src, &msg.dsts, msg.values.len() as u64);
                // The payload is already shared: destinations get `Arc`
                // clones of the sender's single allocation.
                for &dst in &msg.dsts {
                    slots[slot_of[dst.index()]]
                        .lock()
                        .unwrap()
                        .inbox
                        .push(Envelope {
                            src,
                            rel: msg.rel,
                            values: msg.values.clone(),
                        });
                }
            }
            meter.commit_round();

            // Superstep boundary: every worker is parked at the gate
            // (one Drained per worker was gathered), so the slots form a
            // consistent cut — snapshot them if the cadence says so.
            if let Some(h) = &hooks.checkpoint {
                if (round + 1) % h.spec.every == 0 {
                    let mut states = Vec::with_capacity(n);
                    let mut inboxes = Vec::with_capacity(n);
                    for slot in &slots {
                        let s = slot.lock().unwrap();
                        states.push(s.state.clone());
                        inboxes.push(s.inbox.clone());
                    }
                    latest_cp = Some(Checkpoint {
                        resume_round: round + 1,
                        states,
                        inboxes,
                        meter: meter.clone(),
                    });
                }
            }
        }

        // Tear down the crew (persistent pool workers go back to sleep;
        // scoped workers exit).
        {
            let mut g = gate.lock().unwrap();
            g.stop = true;
        }
        gate_cv.notify_all();
    };

    match hooks.pool {
        Some(pool) => pool.run_with(&worker_body, coordinator),
        None => std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker_body(0));
            }
            coordinator();
        }),
    }

    if !fired_events.is_empty() {
        if let Some(inj) = hooks.fault {
            inj.record(fired_events);
        }
    }

    // Park the latest snapshot for the retry — but only on a
    // *recoverable* abort. A successful run (or a hard error) drops it,
    // so nothing leaks into unrelated executions.
    if let (Some(h), Err(e)) = (&hooks.checkpoint, &outcome) {
        if e.is_recoverable() {
            if let Some(cp) = latest_cp.take() {
                h.store.put(h.token, cp);
            }
        }
    }

    let supersteps = outcome?;
    let final_state = {
        let mut finals: Vec<NodeState> = vec![NodeState::default(); tree.num_nodes()];
        for slot in slots {
            let slot = slot.into_inner().unwrap();
            finals[slot.node.index()] = slot.state;
        }
        finals
    };
    Ok(RuntimeRun {
        final_state,
        cost: meter.finish(),
        supersteps,
        resumed_from,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use tamp_topology::builders;

    fn opts(max: usize) -> ClusterOptions {
        ClusterOptions {
            max_supersteps: max,
            ..ClusterOptions::default()
        }
    }

    /// Stateless-per-round ring programs (the shape checkpoint resume
    /// requires): node `v` sends `[v*100 + round]` to its ring successor
    /// for `rounds` supersteps, then halts.
    fn ring_programs(n: u32, rounds: usize) -> Vec<Box<dyn NodeProgram>> {
        (0..n)
            .map(|v| {
                Box::new(
                    move |ctx: &NodeCtx<'_>, _state: &mut NodeState, out: &mut Outbox| {
                        if ctx.round < rounds {
                            out.send_to(
                                NodeId((v + 1) % n),
                                Rel::R,
                                vec![u64::from(v) * 100 + ctx.round as u64],
                            );
                            Step::Continue
                        } else {
                            Step::Halt
                        }
                    },
                ) as Box<dyn NodeProgram>
            })
            .collect()
    }

    #[test]
    fn checkpointed_recovery_resumes_and_is_bit_identical() {
        let tree = builders::star(4, 1.0);
        let p = Placement::empty(&tree);
        let healthy = run_programs(
            &tree,
            &p,
            ring_programs(4, 6),
            ClusterOptions::default(),
            RunHooks::default(),
        )
        .unwrap();
        assert_eq!(healthy.supersteps, 7);
        assert_eq!(healthy.resumed_from, None);

        // Faulted run: kill node 2 at superstep 4 with checkpoints every
        // 2 supersteps — the barrier after superstep 3 parks a snapshot.
        let store = CheckpointStore::new();
        let inj = FaultInjector::new();
        inj.arm(FaultPlan::new().kill_worker(NodeId(2), 4));
        let mk_hooks = || RunHooks {
            pool: None,
            fault: Some(&inj),
            checkpoint: Some(CheckpointHook {
                store: &store,
                spec: CheckpointSpec::every(2),
                token: 42,
            }),
        };
        let err = run_programs(
            &tree,
            &p,
            ring_programs(4, 6),
            ClusterOptions::default(),
            mk_hooks(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            RuntimeError::InjectedFault {
                node: NodeId(2),
                round: 4
            }
        );
        assert_eq!(store.stats().saved, 1);
        assert_eq!(store.stats().retained, 1);

        // Retry (injector now empty): resumes from superstep 4, skipping
        // 0..4, and reproduces the healthy run bit for bit.
        let resumed = run_programs(
            &tree,
            &p,
            ring_programs(4, 6),
            ClusterOptions::default(),
            mk_hooks(),
        )
        .unwrap();
        assert_eq!(resumed.resumed_from, Some(4));
        assert_eq!(resumed.supersteps, healthy.supersteps);
        assert_eq!(resumed.cost.edge_totals, healthy.cost.edge_totals);
        assert_eq!(resumed.cost.per_round.len(), healthy.cost.per_round.len());
        for v in tree.nodes() {
            assert_eq!(
                resumed.final_state[v.index()],
                healthy.final_state[v.index()],
                "node {v}"
            );
        }
        assert_eq!(store.stats().resumed, 1);
        assert_eq!(store.stats().retained, 0, "success drops the snapshot");
    }

    #[test]
    fn degrade_fault_aborts_typed_and_recovers_from_checkpoint() {
        let tree = builders::star(4, 1.0);
        let p = Placement::empty(&tree);
        let healthy = run_programs(
            &tree,
            &p,
            ring_programs(4, 4),
            ClusterOptions::default(),
            RunHooks::default(),
        )
        .unwrap();

        let store = CheckpointStore::new();
        let inj = FaultInjector::new();
        let (_, uplink) = tree.parent0(NodeId(2)).expect("leaf has uplink");
        inj.arm(FaultPlan::new().degrade_edge(uplink, 2, 8.0));
        let mk_hooks = || RunHooks {
            pool: None,
            fault: Some(&inj),
            checkpoint: Some(CheckpointHook {
                store: &store,
                spec: CheckpointSpec::every(1),
                token: 7,
            }),
        };
        let err = run_programs(
            &tree,
            &p,
            ring_programs(4, 4),
            ClusterOptions::default(),
            mk_hooks(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            RuntimeError::LinkDegraded {
                edge: uplink,
                round: 2,
                factor: 8.0
            }
        );
        assert!(err.is_recoverable());
        let fired = inj.fired();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].node, tree.deeper_endpoint(uplink));
        assert_eq!(fired[0].round, 2);
        assert_eq!(
            fired[0].kind,
            FaultKind::LinkDegraded {
                edge: uplink,
                factor: 8.0
            }
        );

        // The degradation fired before superstep 2 executed, so the
        // parked snapshot resumes exactly there.
        let resumed = run_programs(
            &tree,
            &p,
            ring_programs(4, 4),
            ClusterOptions::default(),
            mk_hooks(),
        )
        .unwrap();
        assert_eq!(resumed.resumed_from, Some(2));
        assert_eq!(resumed.cost.edge_totals, healthy.cost.edge_totals);
        for v in tree.nodes() {
            assert_eq!(
                resumed.final_state[v.index()],
                healthy.final_state[v.index()]
            );
        }
    }

    #[test]
    fn stalls_are_harmless_without_a_deadline_and_typed_with_one() {
        let tree = builders::star(2, 1.0);
        let p = Placement::empty(&tree);
        let healthy = run_programs(
            &tree,
            &p,
            ring_programs(2, 2),
            ClusterOptions::default(),
            RunHooks::default(),
        )
        .unwrap();

        // Stall without a watchdog: slower, but bit-identical.
        let inj = FaultInjector::new();
        inj.arm(FaultPlan::new().stall_worker(NodeId(1), 0, Duration::from_millis(20)));
        let slow = run_programs(
            &tree,
            &p,
            ring_programs(2, 2),
            ClusterOptions::default(),
            RunHooks {
                fault: Some(&inj),
                ..RunHooks::default()
            },
        )
        .unwrap();
        assert_eq!(slow.cost.edge_totals, healthy.cost.edge_totals);
        assert!(inj.fired().is_empty(), "a mere slowdown is not a fault");

        // The same stall against a much tighter deadline trips the
        // watchdog, which attributes the straggler deterministically.
        inj.arm(FaultPlan::new().stall_worker(NodeId(1), 1, Duration::from_millis(500)));
        let deadline = Duration::from_millis(40);
        let err = run_programs(
            &tree,
            &p,
            ring_programs(2, 2),
            ClusterOptions::default().with_superstep_deadline(deadline),
            RunHooks {
                fault: Some(&inj),
                ..RunHooks::default()
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            RuntimeError::SuperstepTimeout {
                node: NodeId(1),
                round: 1,
                deadline
            }
        );
        assert!(err.is_recoverable());
        let fired = inj.fired();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, FaultKind::Straggler);
        assert_eq!(fired[0].node, NodeId(1));
    }

    #[test]
    fn invalid_fault_plans_error_instead_of_silently_running() {
        let tree = builders::star(2, 1.0); // node 2 is the hub (a router)
        let p = Placement::empty(&tree);
        let inj = FaultInjector::new();
        inj.arm(FaultPlan::new().kill_worker(NodeId(2), 0));
        let err = run_programs(
            &tree,
            &p,
            ring_programs(2, 2),
            ClusterOptions::default(),
            RunHooks {
                fault: Some(&inj),
                ..RunHooks::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidFaultTarget { .. }));
        assert!(!err.is_recoverable());
    }

    #[test]
    fn closure_programs_run_and_halt() {
        // Node 0 sends its data to node 1 in round 0; everyone halts in 1.
        let tree = builders::star(2, 2.0);
        let mut p = Placement::empty(&tree);
        p.set_r(NodeId(0), vec![1, 2, 3, 4]);
        let run = run_cluster(
            &tree,
            &p,
            |v| {
                Box::new(
                    move |ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox| {
                        if ctx.round == 0 && v == NodeId(0) {
                            out.send_to(NodeId(1), Rel::R, state.r.clone());
                            return Step::Continue;
                        }
                        Step::Halt
                    },
                )
            },
            ClusterOptions::default(),
        )
        .unwrap();
        assert_eq!(run.final_state[1].r, vec![1, 2, 3, 4]);
        // Same accounting as the simulator: 4 tuples over two bw-2 hops.
        assert_eq!(run.cost.tuple_cost(), 2.0);
        assert_eq!(run.cost.total_tuples(), 8);
        assert_eq!(run.supersteps, 2);
        // The terminal silent superstep is not metered: one cost round,
        // exactly like the equivalent centralized protocol.
        assert_eq!(run.cost.per_round.len(), 1);
    }

    #[test]
    fn multicast_union_charging_matches_simulator_semantics() {
        let tree = builders::star(4, 1.0);
        let mut p = Placement::empty(&tree);
        p.set_s(NodeId(0), (0..10).collect());
        let run = run_cluster(
            &tree,
            &p,
            |v| {
                Box::new(
                    move |ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox| {
                        if ctx.round == 0 && v == NodeId(0) {
                            let all: Vec<NodeId> = ctx.tree.compute_nodes().to_vec();
                            out.send(&all, Rel::S, state.s.clone());
                            return Step::Continue;
                        }
                        Step::Halt
                    },
                )
            },
            ClusterOptions::default(),
        )
        .unwrap();
        // Uplink charged once (10), three downlinks (30): total 40.
        assert_eq!(run.cost.total_tuples(), 40);
        assert_eq!(run.cost.tuple_cost(), 10.0);
        // Self-delivery lands too.
        assert_eq!(run.final_state[0].s.len(), 20);
    }

    #[test]
    fn round_limit_is_enforced_with_offending_round() {
        let tree = builders::star(2, 1.0);
        let p = Placement::empty(&tree);
        let err = run_cluster(
            &tree,
            &p,
            |_| Box::new(|_: &NodeCtx<'_>, _: &mut NodeState, _: &mut Outbox| Step::Continue),
            opts(5),
        )
        .unwrap_err();
        assert_eq!(err, RuntimeError::SuperstepLimit { limit: 5, round: 4 });
    }

    #[test]
    fn halt_votes_with_pending_sends_keep_running() {
        // A node that halts while still sending must be kept alive until
        // the message settles.
        let tree = builders::star(2, 1.0);
        let mut p = Placement::empty(&tree);
        p.set_r(NodeId(0), vec![7]);
        let run = run_cluster(
            &tree,
            &p,
            |v| {
                Box::new(
                    move |ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox| {
                        if ctx.round == 0 && v == NodeId(0) {
                            out.send_to(NodeId(1), Rel::R, state.r.clone());
                        }
                        Step::Halt // everyone votes halt from the start
                    },
                )
            },
            ClusterOptions::default(),
        )
        .unwrap();
        // Two supersteps: one with the send, one silent to settle.
        assert_eq!(run.supersteps, 2);
        assert_eq!(run.final_state[1].r, vec![7]);
    }

    #[test]
    fn sends_to_routers_are_rejected() {
        let tree = builders::star(2, 1.0); // node 2 is the hub
        let p = Placement::empty(&tree);
        let err = run_cluster(
            &tree,
            &p,
            |_| {
                Box::new(|_: &NodeCtx<'_>, _: &mut NodeState, out: &mut Outbox| {
                    out.send_to(NodeId(2), Rel::R, vec![1]);
                    Step::Halt
                })
            },
            ClusterOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, RuntimeError::SendToRouter(NodeId(2)));
    }

    #[test]
    fn panics_surface_as_errors_with_node_id() {
        let tree = builders::star(3, 1.0);
        let p = Placement::empty(&tree);
        let err = run_cluster(
            &tree,
            &p,
            |v| {
                Box::new(move |_: &NodeCtx<'_>, _: &mut NodeState, _: &mut Outbox| {
                    if v == NodeId(1) {
                        panic!("injected fault");
                    }
                    Step::Halt
                })
            },
            ClusterOptions::default(),
        )
        .unwrap_err();
        match err {
            RuntimeError::WorkerPanic { node, message } => {
                assert_eq!(node, NodeId(1));
                assert!(message.contains("injected fault"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn arrived_envelopes_report_sources() {
        let tree = builders::star(3, 1.0);
        let mut p = Placement::empty(&tree);
        p.set_r(NodeId(0), vec![1]);
        p.set_r(NodeId(1), vec![2]);
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let run = run_cluster(
            &tree,
            &p,
            move |v| {
                let seen = seen2.clone();
                Box::new(
                    move |ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox| {
                        if ctx.round == 0 && v != NodeId(2) {
                            out.send_to(NodeId(2), Rel::R, state.r.clone());
                            return Step::Continue;
                        }
                        if ctx.round == 1 && v == NodeId(2) {
                            let mut srcs: Vec<NodeId> = ctx.arrived.iter().map(|e| e.src).collect();
                            srcs.sort_unstable();
                            *seen.lock().unwrap() = srcs;
                        }
                        Step::Halt
                    },
                )
            },
            ClusterOptions::default(),
        )
        .unwrap();
        assert_eq!(run.final_state[2].r, vec![1, 2]);
        assert_eq!(*seen.lock().unwrap(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn pool_is_bounded_and_results_are_worker_count_invariant() {
        // 64 nodes, 2-worker pool: at most 2 distinct program threads,
        // and the run is bit-identical to a wide pool's.
        let tree = builders::star(64, 1.0);
        let mut p = Placement::empty(&tree);
        for v in tree.compute_nodes() {
            p.set_r(*v, vec![v.0 as u64]);
        }
        let ids = std::sync::Arc::new(std::sync::Mutex::new(std::collections::HashSet::new()));
        let ids2 = ids.clone();
        let make = move |v: NodeId| -> Box<dyn NodeProgram> {
            let ids = ids2.clone();
            Box::new(
                move |ctx: &NodeCtx<'_>, state: &mut NodeState, out: &mut Outbox| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    if ctx.round == 0 {
                        out.send_to(NodeId((v.0 + 1) % 64), Rel::R, state.r.clone());
                        return Step::Continue;
                    }
                    Step::Halt
                },
            )
        };
        let narrow = run_cluster(&tree, &p, &make, ClusterOptions::with_workers(2)).unwrap();
        assert!(ids.lock().unwrap().len() <= 2, "pool exceeded 2 threads");
        let wide = run_cluster(&tree, &p, &make, ClusterOptions::with_workers(8)).unwrap();
        assert_eq!(narrow.cost.edge_totals, wide.cost.edge_totals);
        assert_eq!(narrow.supersteps, wide.supersteps);
        for v in tree.nodes() {
            assert_eq!(narrow.final_state[v.index()], wide.final_state[v.index()]);
        }
    }
}
