//! Paired [`ExecJob`]s for the protocols this repository ships in both
//! centralized and distributed form.
//!
//! Each constructor bundles a `tamp-core` protocol with its
//! [`programs`](crate::programs) counterpart under one name, so drivers
//! (tests, benches, the experiment harness) run them on any
//! [`ExecBackend`](crate::backend::ExecBackend) through a single API.
//! The pairs are plan-deterministic: both views derive the same plan from
//! shared knowledge plus the seed, so their traffic — and therefore their
//! metered [`Cost`](tamp_simulator::cost::Cost) — is bit-identical.

use std::sync::Arc;

use tamp_core::aggregate::{Aggregator, CombiningTreeAggregate, HashGroupBy};
use tamp_core::cartesian::TreeCartesianProduct;
use tamp_core::intersection::TreeIntersect;
use tamp_core::sorting::WeightedTeraSort;
use tamp_simulator::{NodeState, Rel, Session, SimError, Value};
use tamp_topology::NodeId;

use crate::backend::{CentralizedView, ExecJob, PairedJob};
use crate::cluster::NodeProgram;
use crate::message::{Outbox, Step};
use crate::programs::{
    DistributedCartesian, DistributedCombiningAggregate, DistributedGroupBy,
    DistributedTreeIntersect, DistributedWts,
};
use crate::NodeCtx;

/// One multicast of a precomputed communication [`Schedule`].
#[derive(Clone, Debug)]
pub struct ScheduleSend {
    /// Sending compute node.
    pub src: NodeId,
    /// Destination compute nodes (charged along the union of tree paths).
    pub dsts: Vec<NodeId>,
    /// Relation tag.
    pub rel: Rel,
    /// Shared payload; every replay and delivery clones the `Arc`, never
    /// the data.
    pub values: Arc<[Value]>,
}

/// A complete, engine-independent communication schedule: every send of
/// every round, in order. This is the unit a *planner* produces — the
/// query layer's physical strategies, for instance, each emit their
/// exchanges as schedule rounds — and [`ScheduleJob`] replays it on any
/// [`ExecBackend`](crate::backend::ExecBackend) with bit-identical
/// metered ledgers.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    /// Rounds in execution order; a round may be empty (silent rounds are
    /// still metered, matching both engines).
    pub rounds: Vec<Vec<ScheduleSend>>,
}

/// Flat CSR index over a schedule: for `(node, round)`, the indices of
/// the sends originating at `node` in that round — two flat arrays and a
/// single counting-sort pass, so each distributed replay program touches
/// only its own sends instead of scanning whole rounds every superstep.
#[derive(Debug)]
struct SrcIndex {
    n_rounds: usize,
    /// `offsets[node * n_rounds + round] .. offsets[.. + 1]` bounds the
    /// cell's slice in `items`.
    offsets: Vec<u32>,
    /// Send indices into `schedule.rounds[round]`, grouped by cell.
    items: Vec<u32>,
}

impl SrcIndex {
    fn build(num_nodes: usize, schedule: &Schedule) -> Self {
        let n_rounds = schedule.rounds.len();
        let cells = num_nodes * n_rounds;
        let mut offsets = vec![0u32; cells + 1];
        for (r, round) in schedule.rounds.iter().enumerate() {
            for send in round {
                offsets[send.src.index() * n_rounds + r + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut items = vec![0u32; *offsets.last().unwrap() as usize];
        let mut cursor = offsets.clone();
        for (r, round) in schedule.rounds.iter().enumerate() {
            for (i, send) in round.iter().enumerate() {
                let cell = send.src.index() * n_rounds + r;
                items[cursor[cell] as usize] = i as u32;
                cursor[cell] += 1;
            }
        }
        SrcIndex {
            n_rounds,
            offsets,
            items,
        }
    }

    /// The sends of `node` in `round` (indices into the round's send
    /// list, in issue order).
    fn sends_of(&self, node: NodeId, round: usize) -> &[u32] {
        let cell = node.index() * self.n_rounds + round;
        let (lo, hi) = (self.offsets[cell] as usize, self.offsets[cell + 1] as usize);
        &self.items[lo..hi]
    }
}

/// An [`ExecJob`] replaying a [`Schedule`] on either engine: the
/// centralized view drives one metered [`Session`] round per schedule
/// round, the distributed view hands each node a program emitting exactly
/// its own sends superstep by superstep. Both views move — and meter —
/// bit-identical traffic, because they read the same schedule.
pub struct ScheduleJob {
    name: String,
    schedule: Arc<Schedule>,
    by_src: Arc<SrcIndex>,
    /// Content hash of the schedule — the checkpoint token (see
    /// [`ExecJob::checkpoint_token`]).
    token: u64,
}

/// Hash a schedule's full content (round structure, sources,
/// destinations, relation tags, payloads). Two schedules share a token
/// only if their replays are interchangeable superstep for superstep —
/// exactly the property checkpoint resume needs.
fn schedule_token(num_nodes: usize, schedule: &Schedule) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    num_nodes.hash(&mut h);
    schedule.rounds.len().hash(&mut h);
    for round in &schedule.rounds {
        round.len().hash(&mut h);
        for send in round {
            send.src.index().hash(&mut h);
            send.dsts.len().hash(&mut h);
            for d in &send.dsts {
                d.index().hash(&mut h);
            }
            send.rel.hash(&mut h);
            send.values.hash(&mut h);
        }
    }
    h.finish()
}

impl ScheduleJob {
    /// Wrap `schedule` (over a tree of `num_nodes` nodes) as a job named
    /// `name`.
    pub fn new(name: impl Into<String>, num_nodes: usize, schedule: Schedule) -> Self {
        let by_src = SrcIndex::build(num_nodes, &schedule);
        let token = schedule_token(num_nodes, &schedule);
        ScheduleJob {
            name: name.into(),
            schedule: Arc::new(schedule),
            by_src: Arc::new(by_src),
            token,
        }
    }

    /// Rounds in the underlying schedule.
    pub fn rounds(&self) -> usize {
        self.schedule.rounds.len()
    }
}

impl ExecJob for ScheduleJob {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn centralized(&self) -> Option<Box<dyn CentralizedView + '_>> {
        Some(Box::new(CentralReplay(&self.schedule)))
    }

    fn distributed(&self, v: NodeId) -> Option<Box<dyn NodeProgram>> {
        Some(Box::new(NodeReplay {
            schedule: Arc::clone(&self.schedule),
            by_src: Arc::clone(&self.by_src),
            node: v,
        }))
    }

    /// Schedule replay is stateless per round (the replaying node
    /// program reads only `ctx.round`), so it is resumable: the token is
    /// the schedule's content hash.
    fn checkpoint_token(&self) -> Option<u64> {
        Some(self.token)
    }

    /// A replay halts after exactly one superstep per schedule round
    /// (plus the engine's terminal barrier).
    fn superstep_hint(&self) -> Option<usize> {
        Some(self.schedule.rounds.len())
    }
}

/// Centralized replay: one [`Session`] round per schedule round.
struct CentralReplay<'t>(&'t Schedule);

impl CentralizedView for CentralReplay<'_> {
    fn run(&self, session: &mut Session<'_>) -> Result<(), SimError> {
        for round in &self.0.rounds {
            session.round(|r| {
                for s in round {
                    r.send_shared(s.src, &s.dsts, s.rel, Arc::clone(&s.values))?;
                }
                Ok(())
            })?;
        }
        Ok(())
    }
}

/// Distributed replay: node `node` emits its own sends each superstep and
/// halts once the schedule is exhausted.
struct NodeReplay {
    schedule: Arc<Schedule>,
    by_src: Arc<SrcIndex>,
    node: NodeId,
}

impl NodeProgram for NodeReplay {
    fn round(&mut self, ctx: &NodeCtx<'_>, _state: &mut NodeState, out: &mut Outbox) -> Step {
        if ctx.round < self.schedule.rounds.len() {
            for &i in self.by_src.sends_of(self.node, ctx.round) {
                let s = &self.schedule.rounds[ctx.round][i as usize];
                out.send(&s.dsts, s.rel, Arc::clone(&s.values));
            }
            Step::Continue
        } else {
            Step::Halt
        }
    }
}

/// The seeded one-round set-intersection pair (Theorem 2).
pub fn tree_intersect(
    seed: u64,
) -> PairedJob<TreeIntersect, impl Fn(NodeId) -> Box<dyn NodeProgram>> {
    PairedJob::new("tree-intersect", TreeIntersect::new(seed), move |_| {
        Box::new(DistributedTreeIntersect::new(seed)) as Box<dyn NodeProgram>
    })
}

/// The weighted TeraSort pair (§5.2).
pub fn weighted_terasort(
    seed: u64,
) -> PairedJob<WeightedTeraSort, impl Fn(NodeId) -> Box<dyn NodeProgram>> {
    PairedJob::new(
        "weighted-terasort",
        WeightedTeraSort::new(seed),
        move |_| Box::new(DistributedWts::new(seed)) as Box<dyn NodeProgram>,
    )
}

/// The deterministic tree cartesian-product pair (§4.4).
pub fn tree_cartesian() -> PairedJob<TreeCartesianProduct, impl Fn(NodeId) -> Box<dyn NodeProgram>>
{
    PairedJob::new("tree-cartesian", TreeCartesianProduct::new(), move |_| {
        Box::new(DistributedCartesian::new()) as Box<dyn NodeProgram>
    })
}

/// The combining tree-aggregation pair.
pub fn combining_aggregate(
    target: NodeId,
    agg: Aggregator,
) -> PairedJob<CombiningTreeAggregate, impl Fn(NodeId) -> Box<dyn NodeProgram>> {
    PairedJob::new(
        "combining-aggregate",
        CombiningTreeAggregate::new(target, agg),
        move |_| Box::new(DistributedCombiningAggregate::new(target, agg)) as Box<dyn NodeProgram>,
    )
}

/// The weighted hash group-by pair.
pub fn hash_groupby(
    seed: u64,
    agg: Aggregator,
) -> PairedJob<HashGroupBy, impl Fn(NodeId) -> Box<dyn NodeProgram>> {
    PairedJob::new("hash-groupby", HashGroupBy::new(seed, agg), move |_| {
        Box::new(DistributedGroupBy::new(seed, agg)) as Box<dyn NodeProgram>
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{standard_backends, ExecOutcome};
    use tamp_simulator::{Placement, Rel};
    use tamp_topology::builders;

    fn check_parity(tree: &tamp_topology::Tree, p: &Placement, job: &dyn crate::backend::ExecJob) {
        let outcomes: Vec<ExecOutcome> = standard_backends()
            .iter()
            .map(|b| b.execute(tree, p, job).unwrap())
            .collect();
        assert_eq!(
            outcomes[0].cost.edge_totals,
            outcomes[1].cost.edge_totals,
            "job {}",
            job.name()
        );
        assert_eq!(outcomes[0].rounds, outcomes[1].rounds, "job {}", job.name());
    }

    #[test]
    fn src_index_groups_by_node_and_round() {
        let mk = |src: u32, n: u64| ScheduleSend {
            src: NodeId(src),
            dsts: vec![NodeId(0)],
            rel: Rel::R,
            values: vec![n].into(),
        };
        let schedule = Schedule {
            rounds: vec![vec![mk(2, 0), mk(0, 1), mk(2, 2)], vec![], vec![mk(1, 3)]],
        };
        let idx = super::SrcIndex::build(3, &schedule);
        assert_eq!(idx.sends_of(NodeId(2), 0), &[0, 2]);
        assert_eq!(idx.sends_of(NodeId(0), 0), &[1]);
        assert_eq!(idx.sends_of(NodeId(1), 0), &[] as &[u32]);
        assert_eq!(idx.sends_of(NodeId(0), 1), &[] as &[u32]);
        assert_eq!(idx.sends_of(NodeId(1), 2), &[0]);
    }

    #[test]
    fn shipped_pairs_agree_on_every_backend() {
        let tree = builders::rack_tree(&[(2, 1.0, 2.0), (3, 2.0, 1.0)], 1.0);
        let vc = tree.compute_nodes().to_vec();

        // Intersection: two relations, values distinct within each.
        let mut p = Placement::empty(&tree);
        for x in 0..120u64 {
            p.push(vc[(x % vc.len() as u64) as usize], Rel::R, x);
            p.push(vc[(x % 3) as usize], Rel::S, 60 + x);
        }
        check_parity(&tree, &p, &tree_intersect(7));

        // Sorting: one relation of distinct keys.
        let mut p = Placement::empty(&tree);
        for x in 0..200u64 {
            p.push(
                vc[(x % vc.len() as u64) as usize],
                Rel::R,
                tamp_core::hashing::mix64(x),
            );
        }
        check_parity(&tree, &p, &weighted_terasort(7));
    }

    #[test]
    fn long_schedule_replay_outlives_the_default_runaway_cap() {
        // A declared-finite replay longer than the cluster's default
        // `max_supersteps` (64) must run to completion, not be aborted
        // as non-halting: `superstep_hint` raises the cap for it.
        let tree = builders::star(3, 1.0);
        let vc = tree.compute_nodes().to_vec();
        let rounds: Vec<Vec<ScheduleSend>> = (0..80u64)
            .map(|r| {
                vec![ScheduleSend {
                    src: vc[(r % 3) as usize],
                    dsts: vec![vc[((r + 1) % 3) as usize]],
                    rel: Rel::R,
                    values: vec![r].into(),
                }]
            })
            .collect();
        let job = ScheduleJob::new("long-replay", tree.num_nodes(), Schedule { rounds });
        assert_eq!(job.superstep_hint(), Some(80));
        check_parity(&tree, &Placement::empty(&tree), &job);
    }
}
