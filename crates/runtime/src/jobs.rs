//! Paired [`ExecJob`](crate::backend::ExecJob)s for the protocols this repository ships in both
//! centralized and distributed form.
//!
//! Each constructor bundles a `tamp-core` protocol with its
//! [`programs`](crate::programs) counterpart under one name, so drivers
//! (tests, benches, the experiment harness) run them on any
//! [`ExecBackend`](crate::backend::ExecBackend) through a single API.
//! The pairs are plan-deterministic: both views derive the same plan from
//! shared knowledge plus the seed, so their traffic — and therefore their
//! metered [`Cost`](tamp_simulator::cost::Cost) — is bit-identical.

use tamp_core::aggregate::{Aggregator, CombiningTreeAggregate, HashGroupBy};
use tamp_core::cartesian::TreeCartesianProduct;
use tamp_core::intersection::TreeIntersect;
use tamp_core::sorting::WeightedTeraSort;
use tamp_topology::NodeId;

use crate::backend::PairedJob;
use crate::cluster::NodeProgram;
use crate::programs::{
    DistributedCartesian, DistributedCombiningAggregate, DistributedGroupBy,
    DistributedTreeIntersect, DistributedWts,
};

/// The seeded one-round set-intersection pair (Theorem 2).
pub fn tree_intersect(
    seed: u64,
) -> PairedJob<TreeIntersect, impl Fn(NodeId) -> Box<dyn NodeProgram>> {
    PairedJob::new("tree-intersect", TreeIntersect::new(seed), move |_| {
        Box::new(DistributedTreeIntersect::new(seed)) as Box<dyn NodeProgram>
    })
}

/// The weighted TeraSort pair (§5.2).
pub fn weighted_terasort(
    seed: u64,
) -> PairedJob<WeightedTeraSort, impl Fn(NodeId) -> Box<dyn NodeProgram>> {
    PairedJob::new(
        "weighted-terasort",
        WeightedTeraSort::new(seed),
        move |_| Box::new(DistributedWts::new(seed)) as Box<dyn NodeProgram>,
    )
}

/// The deterministic tree cartesian-product pair (§4.4).
pub fn tree_cartesian() -> PairedJob<TreeCartesianProduct, impl Fn(NodeId) -> Box<dyn NodeProgram>>
{
    PairedJob::new("tree-cartesian", TreeCartesianProduct::new(), move |_| {
        Box::new(DistributedCartesian::new()) as Box<dyn NodeProgram>
    })
}

/// The combining tree-aggregation pair.
pub fn combining_aggregate(
    target: NodeId,
    agg: Aggregator,
) -> PairedJob<CombiningTreeAggregate, impl Fn(NodeId) -> Box<dyn NodeProgram>> {
    PairedJob::new(
        "combining-aggregate",
        CombiningTreeAggregate::new(target, agg),
        move |_| Box::new(DistributedCombiningAggregate::new(target, agg)) as Box<dyn NodeProgram>,
    )
}

/// The weighted hash group-by pair.
pub fn hash_groupby(
    seed: u64,
    agg: Aggregator,
) -> PairedJob<HashGroupBy, impl Fn(NodeId) -> Box<dyn NodeProgram>> {
    PairedJob::new("hash-groupby", HashGroupBy::new(seed, agg), move |_| {
        Box::new(DistributedGroupBy::new(seed, agg)) as Box<dyn NodeProgram>
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{standard_backends, ExecOutcome};
    use tamp_simulator::{Placement, Rel};
    use tamp_topology::builders;

    fn check_parity(tree: &tamp_topology::Tree, p: &Placement, job: &dyn crate::backend::ExecJob) {
        let outcomes: Vec<ExecOutcome> = standard_backends()
            .iter()
            .map(|b| b.execute(tree, p, job).unwrap())
            .collect();
        assert_eq!(
            outcomes[0].cost.edge_totals,
            outcomes[1].cost.edge_totals,
            "job {}",
            job.name()
        );
        assert_eq!(outcomes[0].rounds, outcomes[1].rounds, "job {}", job.name());
    }

    #[test]
    fn shipped_pairs_agree_on_every_backend() {
        let tree = builders::rack_tree(&[(2, 1.0, 2.0), (3, 2.0, 1.0)], 1.0);
        let vc = tree.compute_nodes().to_vec();

        // Intersection: two relations, values distinct within each.
        let mut p = Placement::empty(&tree);
        for x in 0..120u64 {
            p.push(vc[(x % vc.len() as u64) as usize], Rel::R, x);
            p.push(vc[(x % 3) as usize], Rel::S, 60 + x);
        }
        check_parity(&tree, &p, &tree_intersect(7));

        // Sorting: one relation of distinct keys.
        let mut p = Placement::empty(&tree);
        for x in 0..200u64 {
            p.push(
                vc[(x % vc.len() as u64) as usize],
                Rel::R,
                tamp_core::hashing::mix64(x),
            );
        }
        check_parity(&tree, &p, &weighted_terasort(7));
    }
}
