//! Messages exchanged between node programs.

use std::sync::Arc;

use tamp_simulator::{Rel, Value};
use tamp_topology::NodeId;

/// A delivered message: who sent it, which relation it belongs to, and the
/// payload. Values are also appended to the receiving node's
/// [`NodeState`](tamp_simulator::NodeState) before the program's round
/// callback runs, so the envelope is informational (e.g. for protocols
/// that care about provenance).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// The sending compute node.
    pub src: NodeId,
    /// Which relation fragment the payload extends.
    pub rel: Rel,
    /// The payload values, in send order. Shared (`Arc`) so a multicast
    /// to thousands of destinations costs one allocation, not one per
    /// destination.
    pub values: Arc<[Value]>,
}

/// A program's vote at the end of a superstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Keep running.
    Continue,
    /// Vote to halt. The run terminates at the first superstep in which
    /// every node votes halt *and* no messages were sent.
    Halt,
}

/// One outgoing multicast: `values` are delivered to every node in `dsts`,
/// charged along the union of the tree paths (exactly like
/// [`RoundCtx::send`](tamp_simulator::RoundCtx::send)).
#[derive(Clone, Debug)]
pub(crate) struct OutMsg {
    pub dsts: Vec<NodeId>,
    pub rel: Rel,
    /// Shared payload: queued once, delivered to every destination's
    /// envelope as an `Arc` clone — the zero-copy fabric end to end.
    pub values: Arc<[Value]>,
}

/// Collects a node's outgoing messages during one superstep.
#[derive(Clone, Debug, Default)]
pub struct Outbox {
    pub(crate) sends: Vec<OutMsg>,
}

impl Outbox {
    /// Multicast `values` of relation `rel` to `dsts`. Empty payloads and
    /// empty destination sets are no-ops, mirroring the simulator.
    ///
    /// Accepts anything convertible into a shared `Arc<[Value]>` payload:
    /// a `Vec<Value>` moves its allocation in; an `Arc<[Value]>` (e.g. a
    /// replayed trace payload) is queued without copying at all.
    pub fn send(&mut self, dsts: &[NodeId], rel: Rel, values: impl Into<Arc<[Value]>>) {
        let values = values.into();
        if values.is_empty() || dsts.is_empty() {
            return;
        }
        self.sends.push(OutMsg {
            dsts: dsts.to_vec(),
            rel,
            values,
        });
    }

    /// Unicast convenience wrapper.
    pub fn send_to(&mut self, dst: NodeId, rel: Rel, values: impl Into<Arc<[Value]>>) {
        self.send(&[dst], rel, values);
    }

    /// Number of queued sends.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// `true` if no sends are queued.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sends_are_dropped() {
        let mut out = Outbox::default();
        out.send(&[NodeId(1)], Rel::R, vec![]);
        out.send(&[], Rel::R, vec![1, 2]);
        assert!(out.is_empty());
        out.send_to(NodeId(1), Rel::S, vec![3]);
        assert_eq!(out.len(), 1);
    }
}
