//! Error type for cluster execution.

use std::fmt;

use tamp_topology::NodeId;

/// Render a caught panic payload for error reporting: the `&str` or
/// `String` message when the panic carried one, a placeholder otherwise.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic>".into())
}

/// Errors raised while executing node programs on the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The programs did not all quiesce within the superstep limit.
    SuperstepLimit {
        /// The configured `ClusterOptions::max_supersteps`.
        limit: usize,
        /// The last superstep that executed before the run was abandoned.
        round: usize,
    },
    /// A program addressed a message to a routing-only node.
    SendToRouter(NodeId),
    /// A node program panicked; the message is the panic payload.
    WorkerPanic {
        /// The panicking node.
        node: NodeId,
        /// Panic payload rendered to a string.
        message: String,
    },
    /// The selected backend cannot execute the given job (e.g. a
    /// centralized-only job handed to the cluster backend).
    UnsupportedJob {
        /// The backend that rejected the job.
        backend: String,
        /// The rejected job.
        job: String,
    },
    /// A backend spec string (`TAMP_BACKEND`, CLI flags, …) named no known
    /// engine. The error message lists every valid spec.
    UnknownBackend {
        /// The unrecognized spec, verbatim.
        spec: String,
    },
    /// A backend spec requested a worker pool of width zero
    /// (`"cluster:0"`). A zero-thread crew can never run a superstep, so
    /// the spec is rejected instead of constructing a degenerate pool.
    InvalidPoolWidth {
        /// The offending spec, verbatim.
        spec: String,
    },
    /// An armed [`FaultPlan`](crate::fault::FaultPlan) fired: the worker
    /// on `node` was killed at superstep `round` and the run aborted.
    /// Recovery is re-execution on a healthy (disarmed) crew — the
    /// deterministic schedule makes the retry bit-identical to a
    /// fault-free run.
    InjectedFault {
        /// The first (lowest-indexed) node whose program was killed.
        node: NodeId,
        /// The superstep at which it was killed.
        round: usize,
    },
}

/// The specs [`backend_from_spec`](crate::backend::backend_from_spec)
/// recognizes, for error messages and `--help` text.
pub const VALID_BACKEND_SPECS: &[&str] = &["simulator", "sim", "pooled-cluster[:N]", "cluster[:N]"];

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SuperstepLimit { limit, round } => write!(
                f,
                "programs did not halt within {limit} supersteps (abandoned after superstep {round})"
            ),
            Self::SendToRouter(v) => write!(f, "message addressed to routing-only node {v}"),
            Self::WorkerPanic { node, message } => {
                write!(f, "program on node {node} panicked: {message}")
            }
            Self::UnsupportedJob { backend, job } => {
                write!(f, "backend `{backend}` cannot execute job `{job}`")
            }
            Self::UnknownBackend { spec } => {
                write!(
                    f,
                    "unknown backend spec `{spec}` (valid: {})",
                    VALID_BACKEND_SPECS
                        .iter()
                        .map(|s| format!("`{s}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            Self::InvalidPoolWidth { spec } => {
                write!(
                    f,
                    "backend spec `{spec}` requests a zero-width worker pool (need N \u{2265} 1)"
                )
            }
            Self::InjectedFault { node, round } => {
                write!(
                    f,
                    "injected fault: worker on node {node} killed at superstep {round}"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}
