//! Error type for cluster execution.

use std::fmt;
use std::time::Duration;

use tamp_topology::{EdgeId, NodeId};

/// Render a caught panic payload for error reporting: the `&str` or
/// `String` message when the panic carried one, a placeholder otherwise.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic>".into())
}

/// Errors raised while executing node programs on the cluster.
///
/// `Eq` is deliberately absent: the link-degradation variant carries the
/// `f64` degradation factor.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The programs did not all quiesce within the superstep limit.
    SuperstepLimit {
        /// The configured `ClusterOptions::max_supersteps`.
        limit: usize,
        /// The last superstep that executed before the run was abandoned.
        round: usize,
    },
    /// A program addressed a message to a routing-only node.
    SendToRouter(NodeId),
    /// A node program panicked; the message is the panic payload.
    WorkerPanic {
        /// The panicking node.
        node: NodeId,
        /// Panic payload rendered to a string.
        message: String,
    },
    /// The selected backend cannot execute the given job (e.g. a
    /// centralized-only job handed to the cluster backend).
    UnsupportedJob {
        /// The backend that rejected the job.
        backend: String,
        /// The rejected job.
        job: String,
    },
    /// A backend spec string (`TAMP_BACKEND`, CLI flags, …) named no known
    /// engine. The error message lists every valid spec.
    UnknownBackend {
        /// The unrecognized spec, verbatim.
        spec: String,
    },
    /// A backend spec requested a worker pool of width zero
    /// (`"cluster:0"`). A zero-thread crew can never run a superstep, so
    /// the spec is rejected instead of constructing a degenerate pool.
    InvalidPoolWidth {
        /// The offending spec, verbatim.
        spec: String,
    },
    /// An armed [`FaultPlan`](crate::fault::FaultPlan) fired: the worker
    /// on `node` was killed at superstep `round` and the run aborted.
    /// Recovery is re-execution on a healthy (disarmed) crew — the
    /// deterministic schedule makes the retry bit-identical to a
    /// fault-free run.
    InjectedFault {
        /// The first (lowest-indexed) node whose program was killed.
        node: NodeId,
        /// The superstep at which it was killed.
        round: usize,
    },
    /// An armed [`FaultPlan`](crate::fault::FaultPlan) degraded a link:
    /// the edge lost bandwidth mid-run and the run aborted so the
    /// serving layer can re-price plans against the degraded topology.
    /// Recovery replays the pinned (pre-degradation) schedule, which is
    /// bit-identical by construction; *new* queries see the re-weighted
    /// tree.
    LinkDegraded {
        /// The degraded edge.
        edge: EdgeId,
        /// The superstep at which the degradation fired.
        round: usize,
        /// Bandwidth divisor (2.0 = the link halved).
        factor: f64,
    },
    /// A superstep did not complete within the configured watchdog
    /// deadline
    /// ([`ClusterOptions::superstep_deadline`](crate::cluster::ClusterOptions)).
    /// The straggling node is the
    /// lowest-indexed compute node that had not reported when the
    /// deadline expired.
    SuperstepTimeout {
        /// The slowest (lowest unreported) node when the watchdog fired.
        node: NodeId,
        /// The superstep that timed out.
        round: usize,
        /// The deadline it missed.
        deadline: Duration,
    },
    /// A [`FaultPlan`](crate::fault::FaultPlan) named an invalid target:
    /// a kill or stall on a routing-only or out-of-range node, a detach
    /// of an out-of-range root, or a degradation of an out-of-range edge
    /// or with a non-finite/non-positive factor. Raised eagerly when the
    /// plan is armed (or at run start), never silently ignored.
    InvalidFaultTarget {
        /// Human-readable description of the offending fault.
        fault: String,
    },
}

impl RuntimeError {
    /// Whether the orchestrator's recovery loop may retry after this
    /// error. Injected kills, link degradations, and straggler timeouts
    /// are recoverable (the deterministic schedule replays bit-identically
    /// on a healthy crew); everything else is a hard error.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            Self::InjectedFault { .. } | Self::LinkDegraded { .. } | Self::SuperstepTimeout { .. }
        )
    }
}

/// The specs [`backend_from_spec`](crate::backend::backend_from_spec)
/// recognizes, for error messages and `--help` text.
pub const VALID_BACKEND_SPECS: &[&str] = &["simulator", "sim", "pooled-cluster[:N]", "cluster[:N]"];

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SuperstepLimit { limit, round } => write!(
                f,
                "programs did not halt within {limit} supersteps (abandoned after superstep {round})"
            ),
            Self::SendToRouter(v) => write!(f, "message addressed to routing-only node {v}"),
            Self::WorkerPanic { node, message } => {
                write!(f, "program on node {node} panicked: {message}")
            }
            Self::UnsupportedJob { backend, job } => {
                write!(f, "backend `{backend}` cannot execute job `{job}`")
            }
            Self::UnknownBackend { spec } => {
                write!(
                    f,
                    "unknown backend spec `{spec}` (valid: {})",
                    VALID_BACKEND_SPECS
                        .iter()
                        .map(|s| format!("`{s}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            Self::InvalidPoolWidth { spec } => {
                write!(
                    f,
                    "backend spec `{spec}` requests a zero-width worker pool (need N \u{2265} 1)"
                )
            }
            Self::InjectedFault { node, round } => {
                write!(
                    f,
                    "injected fault: worker on node {node} killed at superstep {round}"
                )
            }
            Self::LinkDegraded {
                edge,
                round,
                factor,
            } => {
                write!(
                    f,
                    "injected fault: link {} degraded by {factor}x at superstep {round}",
                    edge.index()
                )
            }
            Self::SuperstepTimeout {
                node,
                round,
                deadline,
            } => {
                write!(
                    f,
                    "superstep {round} exceeded the {deadline:?} watchdog deadline (straggler: node {node})"
                )
            }
            Self::InvalidFaultTarget { fault } => {
                write!(f, "invalid fault target: {fault}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}
