//! Error type for cluster execution.

use std::fmt;

use tamp_topology::NodeId;

/// Errors raised while executing node programs on a [`Cluster`](crate::Cluster).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The programs did not all halt within the superstep limit.
    RoundLimit(usize),
    /// A program addressed a message to a routing-only node.
    SendToRouter(NodeId),
    /// A node program panicked; the message is the panic payload.
    WorkerPanic {
        /// The panicking node.
        node: NodeId,
        /// Panic payload rendered to a string.
        message: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RoundLimit(n) => write!(f, "programs did not halt within {n} supersteps"),
            Self::SendToRouter(v) => write!(f, "message addressed to routing-only node {v}"),
            Self::WorkerPanic { node, message } => {
                write!(f, "program on node {node} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}
