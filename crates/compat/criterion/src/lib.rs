//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the benchmarking API surface the workspace uses —
//! [`Criterion::benchmark_group`], `bench_with_input` / `bench_function`,
//! [`Bencher::iter`], [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`] — as a small wall-clock harness: each benchmark
//! runs `sample_size` timed iterations (after one warm-up) and reports
//! min / median / mean to stdout.

#![deny(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: Display>(name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A bare parameter with no function name.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.into() }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `body` once to warm up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        std_black_box(body());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark `body`, handing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        body(&mut bencher, input);
        self.criterion
            .report(&self.name, &id.name, &mut bencher.samples);
        self
    }

    /// Benchmark `body` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        body(&mut bencher);
        self.criterion
            .report(&self.name, &id.name, &mut bencher.samples);
        self
    }

    /// End the group (statistics were already reported per benchmark).
    pub fn finish(self) {}
}

/// The benchmark harness root.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    fn report(&mut self, group: &str, bench: &str, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!("{group}/{bench}: no samples");
            return;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{group}/{bench}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
            samples.len()
        );
    }
}

/// Bundle benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &1u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                black_box(x + 1)
            })
        });
        group.finish();
        // One warm-up plus three timed samples.
        assert_eq!(runs, 4);
    }
}
