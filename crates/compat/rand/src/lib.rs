//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the `rand` 0.9 API the workspace actually uses
//! — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`],
//! [`Rng::random_range`] and [`seq::SliceRandom::shuffle`] — backed by a
//! xoshiro256\*\* generator seeded through SplitMix64.
//!
//! The streams differ from upstream `rand` (which is version-unstable
//! anyway); everything in the workspace that consumes randomness only
//! relies on determinism-per-seed and statistical quality, both of which
//! hold here.

#![deny(missing_docs)]

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's word stream.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform `u64` in `[0, n)` by Lemire's multiply-shift with rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Reject draws landing in the partial block below `2^64 mod n` so
    // every residue is equally likely.
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = rng.next_u64() as u128 * n as u128;
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u64, u32, u16, u8, usize, i64, i32);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Conversion of range arguments accepted by [`Rng::random_range`].
pub trait IntoRangeBounds<T> {
    /// The `(lo, hi)` pair of the half-open range.
    fn bounds(self) -> (T, T);
}

impl<T> IntoRangeBounds<T> for core::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        (self.start, self.end)
    }
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (uniform over the type, `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range. Panics if the range is
    /// empty.
    fn random_range<T: SampleUniform, B: IntoRangeBounds<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        let (lo, hi) = range.bounds();
        assert!(lo < hi, "cannot sample from an empty range");
        T::sample_range(self, lo, hi)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\*, seeded via
    /// SplitMix64. Deterministic per seed, 2^256-1 period, passes BigCrush.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
