//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the property-testing API surface the workspace uses: the
//! [`proptest!`] macro, [`Strategy`](strategy::Strategy) over ranges / tuples /
//! [`collection::vec`] / [`prop_map`](strategy::Strategy::prop_map), `prop_assert!` /
//! `prop_assert_eq!`, [`test_runner::TestCaseError`] and
//! [`test_runner::ProptestConfig`].
//!
//! Semantics: each property runs `cases` times on deterministic seeds
//! derived from the test name, so failures are reproducible run-to-run.
//! There is **no shrinking** — a failure reports the case number and the
//! `Debug` rendering of the inputs instead of a minimized example.

#![deny(missing_docs)]

pub mod strategy {
    //! Input-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of type
    /// [`Value`](Strategy::Value).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Box the strategy, erasing its concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy returned by [`Strategy::boxed`].
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u64, u32, u16, u8, usize, i64, i32, f64);

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    // The workspace only uses small inclusive ranges, so
                    // `end + 1` cannot overflow here.
                    rng.random_range(*self.start()..*self.end() + 1)
                }
            }
        )*};
    }

    impl_range_inclusive_strategy!(u64, u32, usize, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A `Vec` strategy: lengths from `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Execution of property tests.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a test case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// The case asked to be discarded (unused here, kept for API
        /// compatibility).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure from any displayable reason.
        pub fn fail<M: core::fmt::Display>(reason: M) -> Self {
            TestCaseError::Fail(reason.to_string())
        }

        /// Build a rejection from any displayable reason.
        pub fn reject<M: core::fmt::Display>(reason: M) -> Self {
            TestCaseError::Reject(reason.to_string())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    // Matches upstream: `?` on any `Result<_, impl Error>` fails the case.
    impl<E: std::error::Error> From<E> for TestCaseError {
        fn from(e: E) -> Self {
            TestCaseError::Fail(e.to_string())
        }
    }

    /// Configuration for a [`TestRunner`].
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; we default lower to keep the
            // (CPU-bound, simulation-heavy) suites fast. Properties that
            // need more coverage say so via `with_cases`.
            ProptestConfig { cases: 32 }
        }
    }

    /// Deterministic runner: case `i` of test `name` always sees the same
    /// RNG stream.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner with the given configuration.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Run `case` for every configured seed; panic (like a failing
        /// `#[test]`) on the first failure, reporting the case number.
        pub fn run<F>(&mut self, name: &str, mut case: F)
        where
            F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
        {
            // FNV-1a over the name decorrelates sibling tests.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            for i in 0..self.config.cases {
                let mut rng = StdRng::seed_from_u64(h ^ (i as u64).wrapping_mul(0x9E37_79B9));
                match case(&mut rng) {
                    Ok(()) => {}
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{name}` failed at case {i}/{}: {msg}",
                            self.config.cases
                        )
                    }
                }
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(concat!(module_path!(), "::", stringify!($name)), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                let __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Assert inside a property; failure fails the current case with the
/// rendered condition (and optional message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_maps_compose(
            v in collection::vec((0u32..10, 0u32..10).prop_map(|(a, b)| a + b), 1..8)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in v {
                prop_assert!(x < 19, "sum {x} out of range");
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4));
        runner.run("always_fails", |_| Err(TestCaseError::fail("nope")));
    }
}
