//! Iterative graph analytics: a convergence-driven fixpoint driver over
//! the exchange fabric.
//!
//! Everything the engine could run before this module was one-shot — a
//! relational query or a single §2 protocol. Iterative analytics
//! (PageRank, BFS, connected components) run the *same* per-iteration
//! plan many times: scatter values along graph edges (the weighted
//! repartition shape), then combine a convergence aggregate up the tree
//! (the combining-tree convergecast shape). This module packages that
//! loop so it runs on any [`ExecBackend`] with bit-identical results:
//!
//! - [`IterativeJob`] describes the fixpoint: an edge relation, a vertex
//!   → owner map (see `tamp_workloads::graphs` for generators), an
//!   algorithm, and an [`IterativeSpec`] (iteration budget, tolerance,
//!   [`IterMode`]).
//! - [`IterativeJob::prepare`] runs the whole fixpoint *locally and
//!   deterministically*, emitting one width-invariant
//!   [`Schedule`] slice per iteration: a scatter round of per-owner-pair
//!   pre-combined width-2 rows, followed by the combining-tree rounds
//!   that convergecast the iteration's residual to the valid-order
//!   target. Convergence is decided **only from the returned aggregate**
//!   — the residual the convergecast actually delivers at the target —
//!   so every backend replays the identical schedule and the fixpoint
//!   never depends on who executes it.
//! - [`PreparedIterative::run_on`] replays the schedule on a backend via
//!   [`ScheduleJob`] (so the cluster's checkpoint/recovery machinery
//!   applies: with [`PreparedIterative::checkpoint_spec`] the snapshot
//!   cadence lands exactly on iteration barriers), slices the metered
//!   ledger back into per-iteration costs, and returns an
//!   [`IterativeOutcome`] whose
//!   [`explain_analyze`](IterativeOutcome::explain_analyze) prints the
//!   per-iteration table: estimated vs metered vs the per-cut lower
//!   bound, plus the convergence residual.
//!
//! # Estimated vs metered feedback
//!
//! [`IterMode::Jacobi`] runs dense rounds: every vertex contributes every
//! iteration, and the a-priori estimate (each cross-owner arc priced
//! individually, before per-destination combining) is reused for every
//! iteration — the gap between it and the metered cost is the combining
//! benefit. [`IterMode::FrontierDelta`] runs shrinking rounds: only the
//! active frontier sends, and iteration `i + 1` is re-priced from
//! iteration `i`'s *metered* cardinalities — the exchange the fabric
//! actually carried — making this the first consumer of the
//! estimated-vs-metered feedback loop. The per-iteration lower bound is a
//! per-cut counting argument: every destination vertex with cross-owner
//! senders forces at least one combined width-2 row across each edge of
//! the Steiner tree spanning its fan-in, priced on the same
//! [`CostModel`] ledger.
//!
//! A fixpoint that fails to converge within `max_iters` surfaces as the
//! typed [`QueryError::IterationLimit`] from `prepare` — nothing is
//! scheduled, and the orchestrator rolls the failure up per tenant.

use std::collections::{BTreeMap, BTreeSet};

use tamp_core::aggregate::protocols::combining_schedule;
use tamp_core::sorting::valid_order;
use tamp_runtime::SimulatorBackend;
use tamp_runtime::{CheckpointSpec, ExecBackend, Schedule, ScheduleJob, ScheduleSend};
use tamp_simulator::cost::Cost;
use tamp_simulator::{Placement, Rel};
use tamp_topology::{NodeId, Tree};

use crate::error::QueryError;
use crate::physical::cost::CostModel;

/// How each iteration selects its senders.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IterMode {
    /// Dense rounds: every vertex contributes every iteration, and every
    /// iteration's exchange has the same shape. The classic synchronous
    /// PageRank / dense label propagation.
    #[default]
    Jacobi,
    /// Sparse rounds: only the active frontier (vertices whose value
    /// changed, or whose pending delta exceeds the threshold) sends, so
    /// per-iteration exchange volume shrinks as the fixpoint settles.
    /// Each iteration's estimate is re-priced from the previous
    /// iteration's metered cardinalities.
    FrontierDelta,
}

/// The fixpoint budget: iteration cap, convergence tolerance, and
/// [`IterMode`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterativeSpec {
    /// Hard iteration cap; exceeding it is
    /// [`QueryError::IterationLimit`].
    pub max_iters: usize,
    /// Convergence tolerance on the residual aggregate (total absolute
    /// rank change for PageRank; ignored by BFS/components, which
    /// converge exactly when no vertex changes).
    pub tolerance: f64,
    /// Dense or frontier iteration shape.
    pub mode: IterMode,
}

impl IterativeSpec {
    /// Dense Jacobi rounds.
    pub fn jacobi(max_iters: usize, tolerance: f64) -> Self {
        IterativeSpec {
            max_iters,
            tolerance,
            mode: IterMode::Jacobi,
        }
    }

    /// Shrinking frontier/delta rounds.
    pub fn frontier(max_iters: usize, tolerance: f64) -> Self {
        IterativeSpec {
            max_iters,
            tolerance,
            mode: IterMode::FrontierDelta,
        }
    }
}

/// Which fixpoint the job runs.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Algo {
    /// Damped PageRank over the out-edges.
    PageRank { damping: f64 },
    /// Single-source shortest hop counts.
    Bfs { source: u64 },
    /// Min-label propagation connected components.
    Components,
}

/// A fixpoint job: an edge relation over vertices `0..owners.len()`,
/// each vertex pinned to an owning compute node, plus the algorithm and
/// its [`IterativeSpec`].
///
/// The job is plain data — it does not depend on any workload crate, so
/// edges can come from `tamp_workloads::graphs`, a `DistributedTable`,
/// or by hand. [`prepare`](Self::prepare) turns it into a replayable
/// [`PreparedIterative`].
#[derive(Clone, Debug)]
pub struct IterativeJob {
    name: String,
    arcs: Vec<(u64, u64)>,
    owners: Vec<NodeId>,
    spec: IterativeSpec,
    algo: Algo,
}

impl IterativeJob {
    /// Damped PageRank. `arcs` are directed `(src, dst)` pairs; a
    /// vertex's rank mass splits evenly over its out-arcs, dangling mass
    /// redistributes uniformly.
    pub fn pagerank(
        arcs: Vec<(u64, u64)>,
        owners: Vec<NodeId>,
        damping: f64,
        spec: IterativeSpec,
    ) -> Self {
        IterativeJob {
            name: "pagerank".into(),
            arcs,
            owners,
            spec,
            algo: Algo::PageRank { damping },
        }
    }

    /// Breadth-first hop counts from `source` (unreached vertices keep
    /// `u64::MAX`).
    pub fn bfs(
        arcs: Vec<(u64, u64)>,
        owners: Vec<NodeId>,
        source: u64,
        spec: IterativeSpec,
    ) -> Self {
        IterativeJob {
            name: "bfs".into(),
            arcs,
            owners,
            spec,
            algo: Algo::Bfs { source },
        }
    }

    /// Connected components by min-label propagation (labels are vertex
    /// ids; arcs should be symmetric for the undirected reading).
    pub fn connected_components(
        arcs: Vec<(u64, u64)>,
        owners: Vec<NodeId>,
        spec: IterativeSpec,
    ) -> Self {
        IterativeJob {
            name: "components".into(),
            arcs,
            owners,
            spec,
            algo: Algo::Components,
        }
    }

    /// Job name (`pagerank`, `bfs`, `components`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fixpoint budget.
    pub fn spec(&self) -> IterativeSpec {
        self.spec
    }

    /// Number of vertices (`owners.len()`).
    pub fn num_vertices(&self) -> usize {
        self.owners.len()
    }

    fn validate(&self, tree: &Tree) -> Result<(), QueryError> {
        let n = self.owners.len();
        if n == 0 {
            return Err(QueryError::Plan("iterative job has no vertices".into()));
        }
        if self.spec.max_iters == 0 {
            return Err(QueryError::Plan("max_iters must be at least 1".into()));
        }
        if !self.spec.tolerance.is_finite() || self.spec.tolerance < 0.0 {
            return Err(QueryError::Plan(format!(
                "tolerance must be finite and non-negative (got {})",
                self.spec.tolerance
            )));
        }
        for &o in &self.owners {
            if o.index() >= tree.num_nodes() || !tree.is_compute(o) {
                return Err(QueryError::Plan(format!(
                    "vertex owner {o} is not a compute node of the tree"
                )));
            }
        }
        for &(u, v) in &self.arcs {
            if u as usize >= n || v as usize >= n {
                return Err(QueryError::Plan(format!(
                    "arc ({u}, {v}) references a vertex outside 0..{n}"
                )));
            }
        }
        match self.algo {
            Algo::PageRank { damping } => {
                if !(0.0..1.0).contains(&damping) {
                    return Err(QueryError::Plan(format!(
                        "PageRank damping must be in [0, 1) (got {damping})"
                    )));
                }
            }
            Algo::Bfs { source } => {
                if source as usize >= n {
                    return Err(QueryError::Plan(format!(
                        "BFS source {source} outside 0..{n}"
                    )));
                }
            }
            Algo::Components => {}
        }
        Ok(())
    }

    /// Run the whole fixpoint locally and deterministically, emitting the
    /// width-invariant per-iteration schedule. Fails with
    /// [`QueryError::IterationLimit`] if the fixpoint does not converge
    /// within `max_iters`, and with [`QueryError::Plan`] on malformed
    /// input (owners off the tree, out-of-range arcs, bad damping).
    pub fn prepare(&self, tree: &Tree) -> Result<PreparedIterative, QueryError> {
        self.validate(tree)?;
        let n = self.owners.len();
        let model = CostModel::new(tree);

        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(u, v) in &self.arcs {
            adj[u as usize].push(v as usize);
        }

        // The combining convergecast over constant per-node weights (the
        // owned-vertex counts): its shape never depends on iteration
        // values, which is what keeps the per-iteration plan
        // width-invariant.
        let mut owned = vec![0u64; tree.num_nodes()];
        for &o in &self.owners {
            owned[o.index()] += 1;
        }
        let target = valid_order(tree)[0];
        let combine = combining_schedule(tree, &owned, target);
        let rounds_per_iteration = 1 + combine.len();

        // Constant estimate of the convergecast: one width-2 row per move
        // per level.
        let mut combine_est = 0.0;
        for moves in &combine {
            let mut load = model.zero_load();
            for &(src, dst) in moves {
                model.add_path(&mut load, src, dst, 2.0);
            }
            combine_est += model.round_cost(&load);
        }

        // The a-priori scatter estimate: every cross-owner arc priced
        // individually (no per-destination combining) — what a planner
        // knows before any iteration runs.
        let apriori = {
            let mut load = model.zero_load();
            for &(u, v) in &self.arcs {
                let (su, sv) = (self.owners[u as usize], self.owners[v as usize]);
                if su != sv {
                    model.add_path(&mut load, su, sv, 2.0);
                }
            }
            model.round_cost(&load) + combine_est
        };

        let mut fx = Fixpoint {
            owners: &self.owners,
            adj: &adj,
            model: &model,
            combine: &combine,
            target,
            spec: self.spec,
            apriori,
            combine_est,
            schedule: Schedule::default(),
            plans: Vec::new(),
            prev_price: None,
        };

        let values = match self.algo {
            Algo::PageRank { damping } => fx.pagerank(damping)?,
            Algo::Bfs { source } => {
                let mut init = vec![u64::MAX; n];
                init[source as usize] = 0;
                let mut active = vec![false; n];
                active[source as usize] = true;
                IterValues::Levels(fx.min_propagation(init, active, 1)?)
            }
            Algo::Components => {
                let init: Vec<u64> = (0..n as u64).collect();
                IterValues::Components(fx.min_propagation(init, vec![true; n], 0)?)
            }
        };

        Ok(PreparedIterative {
            name: self.name.clone(),
            num_nodes: tree.num_nodes(),
            rounds_per_iteration,
            schedule: fx.schedule,
            plans: fx.plans,
            values,
        })
    }
}

/// Planned per-iteration figures, fixed at prepare time.
#[derive(Clone, Copy, Debug)]
struct IterPlan {
    /// One past this iteration's last schedule round.
    upto: usize,
    /// Combined width-2 rows actually scattered.
    exchanged_rows: u64,
    /// The planner's estimate for this iteration (a-priori for Jacobi
    /// and the first frontier round, previous metered cardinalities
    /// after).
    estimated: f64,
    /// The per-cut counting lower bound on this iteration's scatter.
    lower_bound: f64,
    /// The convergence residual the convergecast delivered.
    residual: f64,
}

/// Shared fixpoint-driver state: schedule under construction plus the
/// constant pricing inputs.
struct Fixpoint<'a> {
    owners: &'a [NodeId],
    adj: &'a [Vec<usize>],
    model: &'a CostModel<'a>,
    combine: &'a [Vec<(NodeId, NodeId)>],
    target: NodeId,
    spec: IterativeSpec,
    apriori: f64,
    combine_est: f64,
    schedule: Schedule,
    plans: Vec<IterPlan>,
    prev_price: Option<f64>,
}

impl Fixpoint<'_> {
    /// This iteration's estimate: a-priori for Jacobi; for frontier
    /// rounds, the previous iteration's metered cardinalities re-priced
    /// on the same ledger ("yesterday's weather").
    fn estimate(&self) -> f64 {
        match self.spec.mode {
            IterMode::Jacobi => self.apriori,
            IterMode::FrontierDelta => self.prev_price.unwrap_or(self.apriori),
        }
    }

    /// Price a combined pair-exchange on the model's ledger (the figure
    /// that, fed forward, becomes the next frontier estimate).
    fn price(&self, pairs: &BTreeMap<(NodeId, NodeId), Vec<u64>>) -> f64 {
        let mut load = self.model.zero_load();
        for (&(src, dst), values) in pairs {
            self.model
                .add_path(&mut load, src, dst, values.len() as f64);
        }
        self.model.round_cost(&load) + self.combine_est
    }

    /// Per-cut counting bound: each destination vertex with cross-owner
    /// fan-in forces one combined width-2 row across every edge of the
    /// Steiner tree spanning `{owner(v)} ∪ senders(v)` — priced as a
    /// multicast, whose union-of-paths charge is exactly that Steiner
    /// tree.
    fn cut_lower_bound(&self, fanin: &BTreeMap<u64, BTreeSet<NodeId>>) -> f64 {
        let mut load = self.model.zero_load();
        for (&v, srcs) in fanin {
            let dsts: Vec<NodeId> = srcs.iter().copied().collect();
            self.model
                .add_multicast(&mut load, self.owners[v as usize], &dsts, 2.0);
        }
        self.model.round_cost(&load)
    }

    /// Emit one scatter round (sorted owner-pair order) followed by the
    /// constant convergecast of `partials`, record the iteration's plan
    /// row, and return the residual the convergecast delivered at the
    /// target — the only value convergence may consult.
    fn finish_iteration(
        &mut self,
        iter: usize,
        pairs: BTreeMap<(NodeId, NodeId), Vec<u64>>,
        fanin: &BTreeMap<u64, BTreeSet<NodeId>>,
        mut partials: Vec<f64>,
    ) -> f64 {
        let estimated = self.estimate();
        let lower_bound = self.cut_lower_bound(fanin);
        self.prev_price = Some(self.price(&pairs));

        let mut rows = 0u64;
        let mut sends = Vec::with_capacity(pairs.len());
        for ((src, dst), values) in pairs {
            rows += values.len() as u64 / 2;
            sends.push(ScheduleSend {
                src,
                dsts: vec![dst],
                rel: Rel::R,
                values: values.into(),
            });
        }
        self.schedule.rounds.push(sends);

        for moves in self.combine {
            let mut sends = Vec::with_capacity(moves.len());
            for &(src, dst) in moves {
                sends.push(ScheduleSend {
                    src,
                    dsts: vec![dst],
                    rel: Rel::S,
                    values: vec![iter as u64, partials[src.index()].to_bits()].into(),
                });
            }
            self.schedule.rounds.push(sends);
            for &(src, dst) in moves {
                let moved = std::mem::take(&mut partials[src.index()]);
                partials[dst.index()] += moved;
            }
        }
        let residual = partials[self.target.index()];
        self.plans.push(IterPlan {
            upto: self.schedule.rounds.len(),
            exchanged_rows: rows,
            estimated,
            lower_bound,
            residual,
        });
        residual
    }

    fn limit_error(&self) -> QueryError {
        QueryError::IterationLimit {
            limit: self.spec.max_iters,
            completed: self.plans.len(),
            residual: self.plans.last().map_or(f64::INFINITY, |p| p.residual),
        }
    }

    /// Damped PageRank. Jacobi mode iterates the dense power method;
    /// frontier mode runs delta-push (pending increments propagate only
    /// while above `tolerance / n`). Dangling mass redistributes
    /// uniformly, handled analytically so it never ships.
    fn pagerank(&mut self, damping: f64) -> Result<IterValues, QueryError> {
        let n = self.owners.len();
        let nf = n as f64;
        let outdeg: Vec<f64> = self.adj.iter().map(|a| a.len() as f64).collect();
        let frontier = self.spec.mode == IterMode::FrontierDelta;

        // Jacobi iterates `rank` directly; delta-push accumulates into
        // `rank` while propagating pending `delta` mass.
        let mut rank = if frontier {
            vec![0.0; n]
        } else {
            vec![1.0 / nf; n]
        };
        let mut delta = vec![(1.0 - damping) / nf; n];
        let thresh = self.spec.tolerance / nf;

        for it in 0..self.spec.max_iters {
            let mut incoming = vec![0.0f64; n];
            let mut dangling = 0.0f64;
            let mut pairs: BTreeMap<(NodeId, NodeId), BTreeMap<u64, f64>> = BTreeMap::new();
            let mut fanin: BTreeMap<u64, BTreeSet<NodeId>> = BTreeMap::new();
            for u in 0..n {
                let mass = if frontier {
                    if delta[u].abs() <= thresh {
                        continue;
                    }
                    damping * delta[u]
                } else {
                    damping * rank[u]
                };
                if self.adj[u].is_empty() {
                    dangling += mass;
                    continue;
                }
                let share = mass / outdeg[u];
                for &v in &self.adj[u] {
                    incoming[v] += share;
                    let (su, sv) = (self.owners[u], self.owners[v]);
                    if su != sv {
                        *pairs
                            .entry((su, sv))
                            .or_default()
                            .entry(v as u64)
                            .or_insert(0.0) += share;
                        fanin.entry(v as u64).or_default().insert(su);
                    }
                }
            }

            // Combined per-destination rows: [dst_vertex, share_bits].
            let flat: BTreeMap<(NodeId, NodeId), Vec<u64>> = pairs
                .into_iter()
                .map(|(k, m)| {
                    (
                        k,
                        m.into_iter().flat_map(|(v, s)| [v, s.to_bits()]).collect(),
                    )
                })
                .collect();

            // Apply, accumulating per-owner residual partials (vertex
            // order, so the sum order is fixed).
            let mut partials = vec![0.0f64; self.model.tree().num_nodes()];
            if frontier {
                let mut next = vec![0.0f64; n];
                for v in 0..n {
                    rank[v] += delta[v];
                    next[v] = incoming[v] + dangling / nf;
                    partials[self.owners[v].index()] += next[v].abs();
                }
                delta = next;
            } else {
                for v in 0..n {
                    let new = (1.0 - damping) / nf + incoming[v] + dangling / nf;
                    partials[self.owners[v].index()] += (new - rank[v]).abs();
                    rank[v] = new;
                }
            }

            let residual = self.finish_iteration(it, flat, &fanin, partials);
            if residual <= self.spec.tolerance {
                if frontier {
                    // Absorb the sub-tolerance remainder.
                    for v in 0..n {
                        rank[v] += delta[v];
                    }
                }
                return Ok(IterValues::Ranks(rank));
            }
        }
        Err(self.limit_error())
    }

    /// Min-label propagation: BFS (`bump = 1`, level counting from the
    /// source) and connected components (`bump = 0`, labels are vertex
    /// ids). The residual is the number of vertices whose value changed,
    /// so convergence (`residual == 0`) is exact. Jacobi mode sends
    /// dense rounds (every settled vertex re-sends to all neighbors);
    /// frontier mode ships only productive proposals from the changed
    /// set — the prepared plan holds the whole fixpoint, so it emits
    /// exactly the information-bearing frontier traffic.
    fn min_propagation(
        &mut self,
        init: Vec<u64>,
        init_active: Vec<bool>,
        bump: u64,
    ) -> Result<Vec<u64>, QueryError> {
        let n = self.owners.len();
        let mut val = init;
        let mut active = init_active;
        let frontier = self.spec.mode == IterMode::FrontierDelta;

        for it in 0..self.spec.max_iters {
            let mut best: BTreeMap<usize, u64> = BTreeMap::new();
            let mut pairs: BTreeMap<(NodeId, NodeId), BTreeMap<u64, u64>> = BTreeMap::new();
            let mut fanin: BTreeMap<u64, BTreeSet<NodeId>> = BTreeMap::new();
            for u in 0..n {
                let sends = if frontier {
                    active[u]
                } else {
                    val[u] != u64::MAX
                };
                if !sends {
                    continue;
                }
                let cand = val[u].saturating_add(bump);
                for &v in &self.adj[u] {
                    let productive = cand < val[v];
                    if frontier && !productive {
                        continue;
                    }
                    if productive {
                        best.entry(v)
                            .and_modify(|b| *b = (*b).min(cand))
                            .or_insert(cand);
                    }
                    let (su, sv) = (self.owners[u], self.owners[v]);
                    if su != sv {
                        pairs
                            .entry((su, sv))
                            .or_default()
                            .entry(v as u64)
                            .and_modify(|b| *b = (*b).min(cand))
                            .or_insert(cand);
                        fanin.entry(v as u64).or_default().insert(su);
                    }
                }
            }

            let flat: BTreeMap<(NodeId, NodeId), Vec<u64>> = pairs
                .into_iter()
                .map(|(k, m)| (k, m.into_iter().flat_map(|(v, c)| [v, c]).collect()))
                .collect();

            let mut partials = vec![0.0f64; self.model.tree().num_nodes()];
            let mut changed = vec![false; n];
            for (&v, &cand) in &best {
                if cand < val[v] {
                    val[v] = cand;
                    changed[v] = true;
                    partials[self.owners[v].index()] += 1.0;
                }
            }

            let residual = self.finish_iteration(it, flat, &fanin, partials);
            active = changed;
            if residual == 0.0 {
                return Ok(val);
            }
        }
        Err(self.limit_error())
    }
}

/// Final per-vertex values of a converged fixpoint.
#[derive(Clone, Debug, PartialEq)]
pub enum IterValues {
    /// PageRank scores (sum ≈ 1).
    Ranks(Vec<f64>),
    /// BFS hop counts (`u64::MAX` = unreachable).
    Levels(Vec<u64>),
    /// Connected-component labels (the minimum vertex id of each
    /// component).
    Components(Vec<u64>),
}

impl IterValues {
    /// PageRank scores, if this is a rank vector.
    pub fn ranks(&self) -> Option<&[f64]> {
        match self {
            IterValues::Ranks(r) => Some(r),
            _ => None,
        }
    }

    /// Integer labels (BFS levels or component ids), if any.
    pub fn labels(&self) -> Option<&[u64]> {
        match self {
            IterValues::Levels(l) | IterValues::Components(l) => Some(l),
            IterValues::Ranks(_) => None,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        match self {
            IterValues::Ranks(r) => r.len(),
            IterValues::Levels(l) | IterValues::Components(l) => l.len(),
        }
    }

    /// `true` when the fixpoint had no vertices (never produced by
    /// `prepare`, which rejects empty jobs).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A converged, fully planned fixpoint: the width-invariant schedule
/// plus the per-iteration plan rows and final values. Replay it on any
/// backend with [`run`](Self::run) / [`run_on`](Self::run_on).
#[derive(Clone, Debug)]
pub struct PreparedIterative {
    name: String,
    num_nodes: usize,
    rounds_per_iteration: usize,
    schedule: Schedule,
    plans: Vec<IterPlan>,
    values: IterValues,
}

impl PreparedIterative {
    /// Iterations until convergence.
    pub fn iterations(&self) -> usize {
        self.plans.len()
    }

    /// Schedule rounds per iteration (one scatter + the combining-tree
    /// levels) — constant across iterations by construction.
    pub fn rounds_per_iteration(&self) -> usize {
        self.rounds_per_iteration
    }

    /// The converged per-vertex values (identical to what any backend
    /// replay yields).
    pub fn values(&self) -> &IterValues {
        &self.values
    }

    /// The residual after the final iteration.
    pub fn final_residual(&self) -> f64 {
        self.plans.last().map_or(0.0, |p| p.residual)
    }

    /// The checkpoint cadence that lands snapshots exactly on iteration
    /// barriers, so a chaos-killed run resumes mid-fixpoint from the
    /// last completed iteration (see
    /// [`CheckpointSpec::at_iteration_barriers`]).
    pub fn checkpoint_spec(&self) -> CheckpointSpec {
        CheckpointSpec::at_iteration_barriers(self.rounds_per_iteration)
    }

    /// Replay on the centralized simulator.
    pub fn run(&self, tree: &Tree) -> Result<IterativeOutcome, QueryError> {
        self.run_on(tree, &SimulatorBackend)
    }

    /// Replay the prepared schedule on `backend` and slice the metered
    /// ledger into per-iteration costs. Results — values, per-iteration
    /// metered costs, `edge_totals` — are bit-identical across backends
    /// because the schedule is fixed at prepare time.
    pub fn run_on(
        &self,
        tree: &Tree,
        backend: &dyn ExecBackend,
    ) -> Result<IterativeOutcome, QueryError> {
        let job = ScheduleJob::new(self.name.clone(), self.num_nodes, self.schedule.clone());
        let outcome = backend.execute(tree, &Placement::empty(tree), &job)?;
        let mut iterations = Vec::with_capacity(self.plans.len());
        let mut prev = 0usize;
        let mut cumulative = 0.0;
        for (i, p) in self.plans.iter().enumerate() {
            let metered: f64 = outcome.cost.per_round[prev..p.upto]
                .iter()
                .map(|r| r.tuple_cost)
                .sum();
            cumulative += metered;
            iterations.push(IterationCost {
                iter: i,
                exchanged_rows: p.exchanged_rows,
                estimated: p.estimated,
                metered,
                cumulative,
                lower_bound: p.lower_bound,
                residual: p.residual,
            });
            prev = p.upto;
        }
        Ok(IterativeOutcome {
            name: self.name.clone(),
            values: self.values.clone(),
            iterations,
            rounds_per_iteration: self.rounds_per_iteration,
            cost: outcome.cost,
            rounds: outcome.rounds,
            supersteps: outcome.supersteps,
            resumed_from: outcome.resumed_from,
        })
    }
}

/// One row of the per-iteration cost table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationCost {
    /// Iteration index.
    pub iter: usize,
    /// Combined width-2 rows scattered cross-owner.
    pub exchanged_rows: u64,
    /// The planner's estimate (a-priori, or re-priced from the previous
    /// iteration's metered cardinalities in frontier mode).
    pub estimated: f64,
    /// The metered cost of this iteration's rounds.
    pub metered: f64,
    /// Running metered total through this iteration.
    pub cumulative: f64,
    /// The per-cut counting lower bound on this iteration's scatter.
    pub lower_bound: f64,
    /// The convergence residual the convergecast delivered.
    pub residual: f64,
}

/// The result of replaying a prepared fixpoint on a backend.
#[derive(Clone, Debug)]
pub struct IterativeOutcome {
    /// Job name.
    pub name: String,
    /// Converged per-vertex values.
    pub values: IterValues,
    /// Per-iteration cost table (estimated vs metered vs lower bound).
    pub iterations: Vec<IterationCost>,
    /// Schedule rounds per iteration.
    pub rounds_per_iteration: usize,
    /// The full metered ledger (per-round costs + `edge_totals`).
    pub cost: Cost,
    /// Metered communication rounds.
    pub rounds: usize,
    /// BSP supersteps executed (cluster adds the terminal silent one).
    pub supersteps: usize,
    /// `Some(r)` when the cluster resumed from a checkpoint at superstep
    /// `r`.
    pub resumed_from: Option<usize>,
}

impl IterativeOutcome {
    /// Total metered cost across all iterations.
    pub fn total_metered(&self) -> f64 {
        self.cost.tuple_cost()
    }

    /// Total combined rows scattered across all iterations (the exchange
    /// volume the frontier gate watches).
    pub fn total_exchanged_rows(&self) -> u64 {
        self.iterations.iter().map(|i| i.exchanged_rows).sum()
    }

    /// The per-iteration EXPLAIN ANALYZE table: estimated vs metered
    /// cost, cumulative metered vs cumulative per-cut lower bound, and
    /// the convergence residual.
    pub fn explain_analyze(&self) -> String {
        let mut out = format!(
            "ITERATIVE ANALYZE {} — {} iterations × {} rounds/iteration, final residual {:.3e}\n",
            self.name,
            self.iterations.len(),
            self.rounds_per_iteration,
            self.iterations.last().map_or(0.0, |i| i.residual),
        );
        out.push_str(&format!(
            "{:>5} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10} {:>12}\n",
            "iter", "rows", "estimated", "metered", "cumulative", "cut lb", "cum lb", "residual"
        ));
        let mut cum_lb = 0.0;
        for i in &self.iterations {
            cum_lb += i.lower_bound;
            out.push_str(&format!(
                "{:>5} {:>10} {:>12.2} {:>12.2} {:>12.2} {:>10.2} {:>10.2} {:>12.3e}\n",
                i.iter,
                i.exchanged_rows,
                i.estimated,
                i.metered,
                i.cumulative,
                i.lower_bound,
                cum_lb,
                i.residual
            ));
        }
        out.push_str(&format!(
            "total metered {:.2}, cumulative lower bound {:.2}{}\n",
            self.total_metered(),
            cum_lb,
            if cum_lb > 0.0 {
                format!(" (ratio {:.2})", self.total_metered() / cum_lb)
            } else {
                String::new()
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_runtime::PooledClusterBackend;
    use tamp_topology::builders;

    /// A 6-cycle split over a 3-leaf star: deterministic, every owner
    /// pair exercised.
    fn cycle_job() -> (Tree, Vec<(u64, u64)>, Vec<NodeId>) {
        let tree = builders::star(3, 1.0);
        let vc = tree.compute_nodes().to_vec();
        let n = 6u64;
        let mut arcs = Vec::new();
        for u in 0..n {
            let v = (u + 1) % n;
            arcs.push((u, v));
            arcs.push((v, u));
        }
        let owners: Vec<NodeId> = (0..n).map(|u| vc[(u / 2) as usize]).collect();
        (tree, arcs, owners)
    }

    #[test]
    fn pagerank_converges_and_sums_to_one() {
        let (tree, arcs, owners) = cycle_job();
        let prepared = IterativeJob::pagerank(arcs, owners, 0.5, IterativeSpec::jacobi(50, 1e-9))
            .prepare(&tree)
            .unwrap();
        let ranks = prepared.values().ranks().unwrap();
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "ranks sum to 1, got {sum}");
        // Symmetric cycle: uniform ranks.
        for &r in ranks {
            assert!((r - 1.0 / 6.0).abs() < 1e-6);
        }
        assert!(prepared.final_residual() <= 1e-9);
    }

    #[test]
    fn frontier_pagerank_matches_jacobi() {
        let (tree, arcs, owners) = cycle_job();
        let j = IterativeJob::pagerank(
            arcs.clone(),
            owners.clone(),
            0.5,
            IterativeSpec::jacobi(60, 1e-10),
        )
        .prepare(&tree)
        .unwrap();
        let f = IterativeJob::pagerank(arcs, owners, 0.5, IterativeSpec::frontier(60, 1e-10))
            .prepare(&tree)
            .unwrap();
        for (a, b) in j
            .values()
            .ranks()
            .unwrap()
            .iter()
            .zip(f.values().ranks().unwrap())
        {
            assert!((a - b).abs() < 1e-8, "jacobi {a} vs frontier {b}");
        }
    }

    #[test]
    fn bfs_levels_are_cycle_distances() {
        let (tree, arcs, owners) = cycle_job();
        let prepared = IterativeJob::bfs(arcs, owners, 0, IterativeSpec::frontier(10, 0.0))
            .prepare(&tree)
            .unwrap();
        assert_eq!(
            prepared.values().labels().unwrap(),
            &[0, 1, 2, 3, 2, 1],
            "hop counts around the 6-cycle"
        );
    }

    #[test]
    fn components_find_two_islands() {
        let tree = builders::star(2, 1.0);
        let vc = tree.compute_nodes().to_vec();
        // Two triangles: {0,1,2} and {3,4,5}, owners split across leaves.
        let mut arcs = Vec::new();
        for base in [0u64, 3] {
            for i in 0..3 {
                let (u, v) = (base + i, base + (i + 1) % 3);
                arcs.push((u, v));
                arcs.push((v, u));
            }
        }
        let owners: Vec<NodeId> = (0..6).map(|u| vc[(u % 2) as usize]).collect();
        let prepared =
            IterativeJob::connected_components(arcs, owners, IterativeSpec::frontier(10, 0.0))
                .prepare(&tree)
                .unwrap();
        assert_eq!(prepared.values().labels().unwrap(), &[0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn backends_agree_bit_for_bit() {
        let (tree, arcs, owners) = cycle_job();
        let prepared = IterativeJob::pagerank(arcs, owners, 0.5, IterativeSpec::jacobi(50, 1e-6))
            .prepare(&tree)
            .unwrap();
        let sim = prepared.run(&tree).unwrap();
        let cluster = prepared
            .run_on(&tree, &PooledClusterBackend::default())
            .unwrap();
        assert_eq!(sim.cost.edge_totals, cluster.cost.edge_totals);
        assert_eq!(sim.values, cluster.values);
        assert_eq!(sim.iterations.len(), cluster.iterations.len());
        for (a, b) in sim.iterations.iter().zip(&cluster.iterations) {
            assert_eq!(a, b, "per-iteration tables match to the bit");
        }
        // The cluster's terminal silent superstep is the only delta.
        assert_eq!(cluster.supersteps, sim.supersteps + 1);
    }

    #[test]
    fn metered_between_bound_and_estimate_for_jacobi_pagerank() {
        let (tree, arcs, owners) = cycle_job();
        let prepared = IterativeJob::pagerank(arcs, owners, 0.5, IterativeSpec::jacobi(50, 1e-6))
            .prepare(&tree)
            .unwrap();
        let out = prepared.run(&tree).unwrap();
        for i in &out.iterations {
            assert!(
                i.lower_bound <= i.metered + 1e-9,
                "iter {}: lb {} > metered {}",
                i.iter,
                i.lower_bound,
                i.metered
            );
            assert!(
                i.metered <= i.estimated + 1e-9,
                "iter {}: metered {} > a-priori estimate {}",
                i.iter,
                i.metered,
                i.estimated
            );
        }
    }

    #[test]
    fn frontier_estimates_track_previous_metered() {
        let (tree, arcs, owners) = cycle_job();
        let prepared = IterativeJob::bfs(arcs, owners, 0, IterativeSpec::frontier(10, 0.0))
            .prepare(&tree)
            .unwrap();
        let out = prepared.run(&tree).unwrap();
        // From iteration 1 on, the estimate is iteration i-1's exchange
        // re-priced on the same ledger — with the constant convergecast
        // added to both sides.
        for w in out.iterations.windows(2) {
            assert!(
                (w[1].estimated - w[0].metered).abs() < 1e-9,
                "frontier estimate {} re-priced from previous metered {}",
                w[1].estimated,
                w[0].metered
            );
        }
    }

    #[test]
    fn nonconvergence_is_the_typed_error() {
        // BFS around the 6-cycle needs 4 iterations (3 levels + the
        // confirming empty one); cap at 2.
        let (tree, arcs, owners) = cycle_job();
        let err = IterativeJob::bfs(arcs, owners, 0, IterativeSpec::frontier(2, 0.0))
            .prepare(&tree)
            .unwrap_err();
        match err {
            QueryError::IterationLimit {
                limit,
                completed,
                residual,
            } => {
                assert_eq!(limit, 2);
                assert_eq!(completed, 2);
                assert!(residual > 0.0, "vertices were still changing");
            }
            other => panic!("expected IterationLimit, got {other:?}"),
        }
    }

    #[test]
    fn malformed_jobs_are_plan_errors() {
        let (tree, arcs, mut owners) = cycle_job();
        let bad = IterativeJob::bfs(
            arcs.clone(),
            owners.clone(),
            99,
            IterativeSpec::jacobi(5, 0.0),
        );
        assert!(matches!(bad.prepare(&tree), Err(QueryError::Plan(_))));
        owners[0] = NodeId(tree.num_nodes() as u32 - 1); // the root: not a compute node
        let bad = IterativeJob::connected_components(arcs, owners, IterativeSpec::jacobi(5, 0.0));
        assert!(matches!(bad.prepare(&tree), Err(QueryError::Plan(_))));
    }

    #[test]
    fn checkpoint_spec_lands_on_iteration_barriers() {
        let (tree, arcs, owners) = cycle_job();
        let prepared = IterativeJob::pagerank(arcs, owners, 0.5, IterativeSpec::jacobi(50, 1e-6))
            .prepare(&tree)
            .unwrap();
        assert_eq!(
            prepared.checkpoint_spec().every,
            prepared.rounds_per_iteration()
        );
        assert!(
            prepared.rounds_per_iteration() >= 2,
            "scatter + convergecast"
        );
    }
}
