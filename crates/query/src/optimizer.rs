//! Logical plan rewrites.
//!
//! Communication is the only cost in the model (§2), so the optimizer's
//! single goal is to shrink what crosses the network:
//!
//! 1. **Constant folding** — evaluate column-free sub-expressions once at
//!    plan time ([`Expr::fold`]).
//! 2. **Conjunction splitting** — `Filter (a AND b)` becomes two stacked
//!    filters so each conjunct can move independently.
//! 3. **Filter pushdown** — filters slide below order-by, below
//!    projections that pass their columns through unchanged, and into the
//!    join side that defines their columns, so rows are dropped *before*
//!    they are shuffled.
//!
//! All rewrites are semantics-preserving; the tests execute optimized and
//! unoptimized plans side by side and compare both results and costs.
//!
//! The optimizer's second stage — lowering the rewritten logical plan
//! into a cost-estimated [`PhysicalPlan`](crate::physical::PhysicalPlan)
//! with explicit exchanges — lives in [`crate::physical`] and is
//! re-exported here as [`lower`].

use std::cell::Cell;

use crate::error::QueryError;
use crate::expr::Expr;
use crate::plan::LogicalPlan;
use crate::table::Catalog;

pub use crate::physical::lower;

/// Apply all rewrites until a fixpoint (bounded, defensively).
///
/// Each pass reports whether it rewrote anything, so the loop stops as
/// soon as a pass comes back unchanged — no clone-and-compare of the
/// whole plan per iteration.
pub fn optimize(plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan, QueryError> {
    // Validate once; rewrites preserve validity.
    plan.schema(catalog)?;
    let mut plan = plan;
    for _ in 0..64 {
        let (next, changed) = pass(plan, catalog)?;
        plan = next;
        if !changed {
            break;
        }
    }
    Ok(plan)
}

/// One rewrite pass. Returns the rewritten plan and whether any rewrite
/// fired (`false` means `plan` is already a fixpoint).
fn pass(plan: LogicalPlan, catalog: &Catalog) -> Result<(LogicalPlan, bool), QueryError> {
    let changed = Cell::new(false);
    let plan = pass_inner(plan, catalog, &changed)?;
    Ok((plan, changed.get()))
}

fn pass_inner(
    plan: LogicalPlan,
    catalog: &Catalog,
    changed: &Cell<bool>,
) -> Result<LogicalPlan, QueryError> {
    use LogicalPlan::*;
    let plan = map_children(plan, &|p| pass_inner(p, catalog, changed))?;
    Ok(match plan {
        Filter { input, predicate } => {
            let folded = predicate.fold();
            if folded != predicate {
                changed.set(true);
            }
            let predicate = folded;
            // Split conjunctions so each conjunct moves independently.
            if let Expr::And(a, b) = predicate {
                changed.set(true);
                return pass_inner(
                    Filter {
                        input: Box::new(Filter {
                            input,
                            predicate: *b,
                        }),
                        predicate: *a,
                    },
                    catalog,
                    changed,
                );
            }
            // Constant-true filters disappear.
            if predicate == Expr::Lit(1) {
                changed.set(true);
                return Ok(*input);
            }
            push_filter(*input, predicate, catalog, changed)?
        }
        Project { input, exprs } => Project {
            input,
            exprs: exprs
                .into_iter()
                .map(|(n, e)| {
                    let folded = e.fold();
                    if folded != e {
                        changed.set(true);
                    }
                    (n, folded)
                })
                .collect(),
        },
        other => other,
    })
}

/// Push `Filter(predicate)` one level below `input` where provably safe,
/// flagging `changed` whenever the filter actually moves.
fn push_filter(
    input: LogicalPlan,
    predicate: Expr,
    catalog: &Catalog,
    changed: &Cell<bool>,
) -> Result<LogicalPlan, QueryError> {
    use LogicalPlan::*;
    let refs: Vec<String> = {
        let mut r: Vec<String> = predicate
            .referenced_columns()
            .into_iter()
            .map(str::to_string)
            .collect();
        r.sort_unstable();
        r.dedup();
        r
    };
    Ok(match input {
        // Below OrderBy: filtering commutes with sorting.
        OrderBy { input, key } => {
            changed.set(true);
            OrderBy {
                input: Box::new(push_filter(*input, predicate, catalog, changed)?),
                key,
            }
        }
        // Into the join side that defines every referenced column.
        // Left columns keep their names in the join output; a right
        // column keeps its name only when it does not clash with a left
        // column (clashes get the `r_` prefix), so a non-prefixed name
        // that exists on the left always binds to the left side.
        HashJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let ls = left.schema(catalog)?;
            let rs = right.schema(catalog)?;
            let on_left = |c: &String| ls.index_of(c).is_ok();
            let on_right_only = |c: &String| rs.index_of(c).is_ok() && ls.index_of(c).is_err();
            if !refs.is_empty() && refs.iter().all(on_left) {
                changed.set(true);
                HashJoin {
                    left: Box::new(Filter {
                        input: left,
                        predicate,
                    }),
                    right,
                    left_key,
                    right_key,
                }
            } else if !refs.is_empty() && refs.iter().all(on_right_only) {
                changed.set(true);
                HashJoin {
                    left,
                    right: Box::new(Filter {
                        input: right,
                        predicate,
                    }),
                    left_key,
                    right_key,
                }
            } else {
                Filter {
                    input: Box::new(HashJoin {
                        left,
                        right,
                        left_key,
                        right_key,
                    }),
                    predicate,
                }
            }
        }
        // Through a projection whose referenced outputs are plain column
        // passthroughs: substitute and push.
        Project { input, exprs } => {
            let passthrough: Option<Vec<(String, String)>> = refs
                .iter()
                .map(|r| {
                    exprs.iter().find_map(|(n, e)| match e {
                        Expr::Col(src) if n == r => Some((r.clone(), src.clone())),
                        _ => None,
                    })
                })
                .collect();
            match passthrough {
                Some(subs) if !refs.is_empty() => {
                    changed.set(true);
                    let rewritten = substitute(&predicate, &subs);
                    Project {
                        input: Box::new(push_filter(*input, rewritten, catalog, changed)?),
                        exprs,
                    }
                }
                _ => Filter {
                    input: Box::new(Project { input, exprs }),
                    predicate,
                },
            }
        }
        other => Filter {
            input: Box::new(other),
            predicate,
        },
    })
}

/// Rename column references per the `(from, to)` substitution list.
fn substitute(expr: &Expr, subs: &[(String, String)]) -> Expr {
    let s = |e: &Expr| Box::new(substitute(e, subs));
    match expr {
        Expr::Col(name) => {
            for (from, to) in subs {
                if name == from {
                    return Expr::Col(to.clone());
                }
            }
            Expr::Col(name.clone())
        }
        Expr::ColIdx(i) => Expr::ColIdx(*i),
        Expr::Lit(v) => Expr::Lit(*v),
        Expr::Add(l, r) => Expr::Add(s(l), s(r)),
        Expr::Sub(l, r) => Expr::Sub(s(l), s(r)),
        Expr::Mul(l, r) => Expr::Mul(s(l), s(r)),
        Expr::Div(l, r) => Expr::Div(s(l), s(r)),
        Expr::Mod(l, r) => Expr::Mod(s(l), s(r)),
        Expr::Eq(l, r) => Expr::Eq(s(l), s(r)),
        Expr::Ne(l, r) => Expr::Ne(s(l), s(r)),
        Expr::Lt(l, r) => Expr::Lt(s(l), s(r)),
        Expr::Le(l, r) => Expr::Le(s(l), s(r)),
        Expr::Gt(l, r) => Expr::Gt(s(l), s(r)),
        Expr::Ge(l, r) => Expr::Ge(s(l), s(r)),
        Expr::And(l, r) => Expr::And(s(l), s(r)),
        Expr::Or(l, r) => Expr::Or(s(l), s(r)),
        Expr::Not(e) => Expr::Not(s(e)),
    }
}

fn map_children(
    plan: LogicalPlan,
    f: &dyn Fn(LogicalPlan) -> Result<LogicalPlan, QueryError>,
) -> Result<LogicalPlan, QueryError> {
    use LogicalPlan::*;
    Ok(match plan {
        Scan { table } => Scan { table },
        Filter { input, predicate } => Filter {
            input: Box::new(f(*input)?),
            predicate,
        },
        Project { input, exprs } => Project {
            input: Box::new(f(*input)?),
            exprs,
        },
        HashJoin {
            left,
            right,
            left_key,
            right_key,
        } => HashJoin {
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
            left_key,
            right_key,
        },
        CrossJoin { left, right } => CrossJoin {
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
        },
        OrderBy { input, key } => OrderBy {
            input: Box::new(f(*input)?),
            key,
        },
        Aggregate {
            input,
            group_by,
            agg,
            measure,
        } => Aggregate {
            input: Box::new(f(*input)?),
            group_by,
            agg,
            measure,
        },
        Limit { input, n } => Limit {
            input: Box::new(f(*input)?),
            n,
        },
        Distinct { input } => Distinct {
            input: Box::new(f(*input)?),
        },
        UnionAll { left, right } => UnionAll {
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecOptions};
    use crate::expr::{col, lit};
    use crate::plan::AggFunc;
    use crate::reference;
    use crate::row::Row;
    use crate::schema::Schema;
    use crate::table::DistributedTable;
    use tamp_topology::builders;

    fn catalog() -> Catalog {
        let tree = builders::rack_tree(&[(3, 1.0, 2.0), (2, 2.0, 1.0)], 1.0);
        let mut c = Catalog::new(tree);
        let rows: Vec<Row> = (0..120).map(|i| vec![i, i % 6, (i * 37) % 500]).collect();
        let t = DistributedTable::round_robin(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            c.tree(),
        );
        c.register(t).unwrap();
        let dims: Vec<Row> = (0..6).map(|g| vec![g, g + 10]).collect();
        let d = DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "tier"]).unwrap(),
            dims,
            c.tree(),
        );
        c.register(d).unwrap();
        c
    }

    fn assert_equivalent_with(q: &LogicalPlan, c: &Catalog, opts: ExecOptions) -> (f64, f64) {
        let opt = optimize(q.clone(), c).unwrap();
        let before = execute(c, q, opts).unwrap();
        let after = execute(c, &opt, opts).unwrap();
        let ord = reference::preserves_order(q);
        assert_eq!(before.rows(ord), after.rows(ord), "optimized:\n{opt}");
        assert_eq!(after.rows(ord), reference::evaluate(q, c).unwrap());
        (before.cost.tuple_cost(), after.cost.tuple_cost())
    }

    fn assert_equivalent(q: &LogicalPlan, c: &Catalog) -> (f64, f64) {
        assert_equivalent_with(q, c, ExecOptions::default())
    }

    #[test]
    fn filter_pushes_below_join_and_saves_cost() {
        let c = catalog();
        // Filter references only the facts side but sits above the join.
        let q = LogicalPlan::scan("facts")
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .filter(col("x").lt(lit(50)));
        let opt = optimize(q.clone(), &c).unwrap();
        // Structure: the filter moved below the join.
        match &opt {
            LogicalPlan::HashJoin { left, .. } => {
                assert!(matches!(**left, LogicalPlan::Filter { .. }));
            }
            other => panic!("expected join on top, got:\n{other}"),
        }
        // Under a fixed repartition strategy, dropping rows before the
        // shuffle is a strict win. (Under `Auto` the comparison can flip:
        // filtering shrinks the big side until broadcast loses to
        // repartition — a strategy change, not a pushdown regression.)
        let opts = ExecOptions {
            join: crate::exec::JoinStrategy::Weighted,
            ..ExecOptions::default()
        };
        let (before, after) = assert_equivalent_with(&q, &c, opts);
        assert!(
            after < before,
            "pushdown saved nothing: {after} vs {before}"
        );
    }

    #[test]
    fn right_only_filter_pushes_right() {
        let c = catalog();
        let q = LogicalPlan::scan("facts")
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .filter(col("tier").ge(lit(12)));
        let opt = optimize(q.clone(), &c).unwrap();
        match &opt {
            LogicalPlan::HashJoin { right, .. } => {
                assert!(matches!(**right, LogicalPlan::Filter { .. }));
            }
            other => panic!("expected join on top, got:\n{other}"),
        }
        assert_equivalent(&q, &c);
    }

    #[test]
    fn ambiguous_filter_stays_put() {
        let c = catalog();
        // References both sides: cannot push.
        let q = LogicalPlan::scan("facts")
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .filter(col("x").lt(col("tier")));
        let opt = optimize(q.clone(), &c).unwrap();
        assert!(matches!(opt, LogicalPlan::Filter { .. }));
        assert_equivalent(&q, &c);
    }

    #[test]
    fn conjunctions_split_and_scatter() {
        let c = catalog();
        let q = LogicalPlan::scan("facts")
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .filter(col("x").lt(lit(100)).and(col("tier").ge(lit(11))));
        let opt = optimize(q.clone(), &c).unwrap();
        // Both conjuncts pushed into their respective sides.
        match &opt {
            LogicalPlan::HashJoin { left, right, .. } => {
                assert!(matches!(**left, LogicalPlan::Filter { .. }));
                assert!(matches!(**right, LogicalPlan::Filter { .. }));
            }
            other => panic!("expected join on top, got:\n{other}"),
        }
        assert_equivalent(&q, &c);
    }

    #[test]
    fn filter_pushes_below_order_by() {
        let c = catalog();
        let q = LogicalPlan::scan("facts")
            .order_by("x")
            .filter(col("g").eq(lit(2)));
        let opt = optimize(q.clone(), &c).unwrap();
        assert!(matches!(opt, LogicalPlan::OrderBy { .. }));
        let (before, after) = assert_equivalent(&q, &c);
        assert!(after <= before);
    }

    #[test]
    fn filter_substitutes_through_projection() {
        let c = catalog();
        let q = LogicalPlan::scan("facts")
            .project(vec![("key", col("id")), ("grp", col("g"))])
            .filter(col("grp").eq(lit(3)));
        let opt = optimize(q.clone(), &c).unwrap();
        assert!(
            matches!(opt, LogicalPlan::Project { .. }),
            "filter did not slide below the projection:\n{opt}"
        );
        assert_equivalent(&q, &c);
    }

    #[test]
    fn computed_projection_blocks_pushdown() {
        let c = catalog();
        let q = LogicalPlan::scan("facts")
            .project(vec![("y", col("x").add(lit(1)))])
            .filter(col("y").gt(lit(10)));
        let opt = optimize(q.clone(), &c).unwrap();
        assert!(matches!(opt, LogicalPlan::Filter { .. }));
        assert_equivalent(&q, &c);
    }

    #[test]
    fn constant_folding_in_filters_and_projections() {
        let c = catalog();
        let q = LogicalPlan::scan("facts")
            .filter(col("x").lt(lit(20).mul(lit(5))))
            .project(vec![("z", col("x").add(lit(1).add(lit(2))))]);
        let opt = optimize(q.clone(), &c).unwrap();
        let text = opt.to_string();
        assert!(text.contains("100"), "not folded:\n{text}");
        assert!(text.contains("(x + 3)"), "not folded:\n{text}");
        assert_equivalent(&q, &c);
    }

    #[test]
    fn pass_reports_fixpoint_without_comparing_plans() {
        let c = catalog();
        let q = LogicalPlan::scan("facts")
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .filter(col("x").lt(lit(100)).and(col("tier").ge(lit(11))));
        let (opt, changed) = pass(q, &c).unwrap();
        assert!(changed, "rewrites should fire on the first pass");
        // Drive to the fixpoint, then one more pass reports no change.
        let opt = optimize(opt, &c).unwrap();
        let (same, changed) = pass(opt.clone(), &c).unwrap();
        assert!(!changed, "fixpoint must report unchanged");
        assert_eq!(same, opt);
    }

    #[test]
    fn true_filter_is_eliminated() {
        let c = catalog();
        let q = LogicalPlan::scan("facts").filter(lit(1).eq(lit(1)));
        let opt = optimize(q, &c).unwrap();
        assert_eq!(opt, LogicalPlan::scan("facts"));
    }

    #[test]
    fn aggregate_and_limit_pass_through_unchanged() {
        let c = catalog();
        let q = LogicalPlan::scan("facts")
            .aggregate("g", AggFunc::Sum, "x")
            .limit(3);
        let opt = optimize(q.clone(), &c).unwrap();
        assert_eq!(opt, q);
        assert_equivalent(&q, &c);
    }
}
