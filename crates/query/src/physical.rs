//! The physical plan: operators with explicit, cost-estimated exchanges.
//!
//! Lowering ([`lower`]) turns a [`LogicalPlan`] into a [`PhysicalPlan`]
//! in which every communicating operator carries an explicit [`Exchange`]
//! — *which* topology-aware primitive will move the data, and *what it is
//! expected to cost* on the §2 functional. The estimate is computed from
//! catalog cardinalities and the tree's bandwidths by routing estimated
//! traffic along the same unique tree paths the executor will use:
//!
//! ```text
//! est(exchange) = Σ_rounds max_e load(e) / w_e
//! ```
//!
//! This is where the paper's strategy question becomes a *planning*
//! decision: under [`JoinStrategy::Auto`] the planner prices the weighted
//! repartition (Algorithm 2), the uniform MPC repartition, and the
//! small-side broadcast against each other and keeps the cheapest — the
//! choice is inspectable in
//! [`PreparedQuery::explain`](crate::context::PreparedQuery::explain)
//! before anything runs.
//!
//! Cardinality estimation is deliberately simple and documented:
//! base-table counts are exact (`|X_0(v)|` is model knowledge granted by
//! §2), filters apply standard selectivity heuristics (equality 0.15,
//! range ⅓, conjunction multiplies), equi-joins assume a key/foreign-key
//! shape (`|L ⋈ R| ≈ max(|L|, |R|)`), and group-bys assume `√n` distinct
//! groups. Estimated and metered cost are juxtaposed per operator in
//! [`QueryResult::operator_costs`](crate::exec::QueryResult) and in the
//! `x-plan` experiment suite.

use std::fmt;

use tamp_core::sorting::{sample_rate, valid_order};
use tamp_topology::{Bandwidth, LcaIndex, NodeId, Tree};

use crate::error::QueryError;
use crate::exec::{ExecOptions, JoinStrategy};
use crate::expr::Expr;
use crate::plan::{AggFunc, LogicalPlan};
use crate::reference;
use crate::schema::Schema;
use crate::table::Catalog;

/// How an exchange moves rows between compute nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeKind {
    /// Repartition by a hash weighted by each node's current data — the
    /// distribution-aware choice (Algorithm 2).
    WeightedRepartition,
    /// Repartition by a uniform hash — the topology-agnostic MPC
    /// baseline.
    UniformRepartition,
    /// Replicate the smaller side to every node holding rows of the
    /// larger side (the `V_β` idea of Algorithm 1).
    BroadcastSmall,
    /// Sample → proportional splitters → range shuffle (weighted
    /// TeraSort, §5.2).
    RangeShuffle,
    /// Bounded collection to a single compute node.
    Gather,
}

impl ExchangeKind {
    /// Short lower-case name used in `EXPLAIN` output.
    pub fn name(self) -> &'static str {
        match self {
            ExchangeKind::WeightedRepartition => "weighted-repartition",
            ExchangeKind::UniformRepartition => "uniform-repartition",
            ExchangeKind::BroadcastSmall => "broadcast-small",
            ExchangeKind::RangeShuffle => "range-shuffle",
            ExchangeKind::Gather => "gather",
        }
    }
}

impl fmt::Display for ExchangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The planner's §2 cost estimate for one exchange.
#[derive(Clone, Debug, PartialEq)]
pub struct CostEstimate {
    /// Estimated `Σ_rounds max_e load(e)/w_e`, in tuples.
    pub tuple_cost: f64,
    /// Communication rounds the exchange will use.
    pub rounds: usize,
    /// Every candidate the planner priced (`(kind, estimated cost)`),
    /// including the chosen one — rendered by `EXPLAIN` so rejected
    /// strategies stay visible.
    pub candidates: Vec<(ExchangeKind, f64)>,
}

/// An explicit data movement step attached to a physical operator.
#[derive(Clone, Debug, PartialEq)]
pub struct Exchange {
    /// The primitive that will move the rows.
    pub kind: ExchangeKind,
    /// What the planner expects it to cost.
    pub estimate: CostEstimate,
}

/// A physical operator tree: the logical algebra with every exchange made
/// explicit and priced.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalPlan {
    /// The operator.
    pub op: PhysicalOp,
    /// Estimated output rows (cardinality estimate, not a guarantee).
    pub rows_est: f64,
}

/// Physical operators. Local operators (`TableScan`, `Filter`,
/// `Project`, `UnionAll`) move no data; every other operator names the
/// [`Exchange`] it executes.
#[derive(Clone, Debug, PartialEq)]
pub enum PhysicalOp {
    /// Read a base table's fragments in place.
    TableScan {
        /// Catalog table name.
        table: String,
    },
    /// Local predicate evaluation (free under §2).
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Predicate (nonzero ⇒ keep).
        predicate: Expr,
    },
    /// Local expression evaluation (free under §2).
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// `(output name, expression)` pairs.
        exprs: Vec<(String, Expr)>,
    },
    /// Equi-join: exchange both sides, then probe locally.
    HashJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join column on the left schema.
        left_key: String,
        /// Join column on the right schema.
        right_key: String,
        /// The repartition or broadcast moving the two sides.
        exchange: Exchange,
    },
    /// Cartesian product: broadcast the smaller side.
    CrossJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// The broadcast of the smaller side.
        exchange: Exchange,
    },
    /// Global sort: range shuffle along the valid compute-node order.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort column.
        key: String,
        /// The sample/splitter/shuffle exchange.
        exchange: Exchange,
    },
    /// Grouped aggregation: local partials, then a weighted hash shuffle.
    HashAggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Grouping column.
        group_by: String,
        /// Aggregate function.
        agg: AggFunc,
        /// Measured column.
        measure: String,
        /// The partial-shuffling exchange.
        exchange: Exchange,
    },
    /// Keep the first `n` rows via a bounded gather.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Row budget.
        n: usize,
        /// Whether the input's fragment order is globally meaningful
        /// (downstream of a `Sort`), decided at plan time.
        order_preserving: bool,
        /// The gather to the first compute node.
        exchange: Exchange,
    },
    /// Duplicate elimination: co-locate equal rows, dedup locally.
    Distinct {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// The whole-row hash shuffle.
        exchange: Exchange,
    },
    /// Bag union (free: fragments concatenate in place).
    UnionAll {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
}

impl PhysicalPlan {
    /// The operator label used for per-operator cost attribution; stable
    /// across the logical and physical layers.
    pub fn label(&self) -> String {
        match &self.op {
            PhysicalOp::TableScan { table } => format!("Scan {table}"),
            PhysicalOp::Filter { predicate, .. } => format!("Filter {predicate}"),
            PhysicalOp::Project { .. } => "Project".into(),
            PhysicalOp::HashJoin {
                left_key,
                right_key,
                ..
            } => format!("HashJoin {left_key}={right_key}"),
            PhysicalOp::CrossJoin { .. } => "CrossJoin".into(),
            PhysicalOp::Sort { key, .. } => format!("OrderBy {key}"),
            PhysicalOp::HashAggregate { agg, .. } => format!("Aggregate {}", agg.name()),
            PhysicalOp::Limit { n, .. } => format!("Limit {n}"),
            PhysicalOp::Distinct { .. } => "Distinct".into(),
            PhysicalOp::UnionAll { .. } => "UnionAll".into(),
        }
    }

    /// The operator's exchange, if it has one.
    pub fn exchange(&self) -> Option<&Exchange> {
        match &self.op {
            PhysicalOp::HashJoin { exchange, .. }
            | PhysicalOp::CrossJoin { exchange, .. }
            | PhysicalOp::Sort { exchange, .. }
            | PhysicalOp::HashAggregate { exchange, .. }
            | PhysicalOp::Limit { exchange, .. }
            | PhysicalOp::Distinct { exchange, .. } => Some(exchange),
            _ => None,
        }
    }

    /// Child plans, left to right.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match &self.op {
            PhysicalOp::TableScan { .. } => vec![],
            PhysicalOp::Filter { input, .. }
            | PhysicalOp::Project { input, .. }
            | PhysicalOp::Sort { input, .. }
            | PhysicalOp::HashAggregate { input, .. }
            | PhysicalOp::Limit { input, .. }
            | PhysicalOp::Distinct { input, .. } => vec![input],
            PhysicalOp::HashJoin { left, right, .. }
            | PhysicalOp::CrossJoin { left, right, .. }
            | PhysicalOp::UnionAll { left, right } => vec![left, right],
        }
    }

    /// Total estimated §2 cost: the sum over every exchange in the plan.
    pub fn estimated_cost(&self) -> f64 {
        let own = self.exchange().map_or(0.0, |x| x.estimate.tuple_cost);
        own + self
            .children()
            .iter()
            .map(|c| c.estimated_cost())
            .sum::<f64>()
    }

    /// Total estimated communication rounds.
    pub fn estimated_rounds(&self) -> usize {
        let own = self.exchange().map_or(0, |x| x.estimate.rounds);
        own + self
            .children()
            .iter()
            .map(|c| c.estimated_rounds())
            .sum::<usize>()
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        write!(f, "{pad}{}", self.label())?;
        if let Some(x) = self.exchange() {
            write!(
                f,
                " via {} [est cost {:.1}, {} round{}]",
                x.kind,
                x.estimate.tuple_cost,
                x.estimate.rounds,
                if x.estimate.rounds == 1 { "" } else { "s" },
            )?;
            if x.estimate.candidates.len() > 1 {
                let alts: Vec<String> = x
                    .estimate
                    .candidates
                    .iter()
                    .map(|(k, c)| format!("{k} {c:.1}"))
                    .collect();
                write!(f, " (candidates: {})", alts.join(", "))?;
            }
        }
        writeln!(f, "  ~{:.0} rows", self.rows_est)?;
        for child in self.children() {
            child.fmt_indented(f, indent + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// Lower a [`LogicalPlan`] into a [`PhysicalPlan`], pricing every
/// exchange on the §2 cost model and resolving
/// [`JoinStrategy::Auto`] into the cheapest estimated join exchange.
///
/// Lowering validates the plan (schema inference runs as part of the
/// walk), so a lowered plan is known to execute without name errors.
pub fn lower(
    plan: &LogicalPlan,
    catalog: &Catalog,
    options: ExecOptions,
) -> Result<PhysicalPlan, QueryError> {
    lower_full(plan, catalog, options).map(|(plan, _)| plan)
}

/// [`lower`], also returning the inferred output [`Schema`] so callers
/// that need both do one walk.
pub(crate) fn lower_full(
    plan: &LogicalPlan,
    catalog: &Catalog,
    options: ExecOptions,
) -> Result<(PhysicalPlan, Schema), QueryError> {
    // Validate up front (expression binding included) so lowering can
    // assume well-formed inputs.
    plan.schema(catalog)?;
    let mut planner = Planner::new(catalog, options);
    let (plan, _, schema) = planner.lower_node(plan)?;
    Ok((plan, schema))
}

/// Filter selectivity heuristics (standard textbook constants; see the
/// module docs).
fn selectivity(e: &Expr) -> f64 {
    match e {
        Expr::Eq(..) => 0.15,
        Expr::Ne(..) => 0.85,
        Expr::Lt(..) | Expr::Le(..) | Expr::Gt(..) | Expr::Ge(..) => 1.0 / 3.0,
        Expr::And(a, b) => selectivity(a) * selectivity(b),
        Expr::Or(a, b) => (selectivity(a) + selectivity(b)).min(1.0),
        Expr::Not(a) => 1.0 - selectivity(a),
        Expr::Lit(0) => 0.0,
        Expr::Lit(_) => 1.0,
        // A bare column / arithmetic predicate keeps a row when nonzero;
        // assume most values are.
        _ => 0.9,
    }
}

/// The lowering planner: walks the logical tree bottom-up carrying
/// per-node cardinality estimates, and prices exchanges by routing the
/// estimated traffic along the real tree paths (decomposed through the
/// O(1)-LCA index, so pricing allocates no per-pair path memos).
struct Planner<'c> {
    catalog: &'c Catalog,
    tree: &'c Tree,
    options: ExecOptions,
    /// O(1)-LCA path decomposition for routing estimated traffic — no
    /// memo table, no hashing (see `topology::lca`).
    lca: LcaIndex,
    /// Per-directed-edge bandwidth, indexed like the cost ledger.
    bandwidth: Vec<Bandwidth>,
}

/// Estimated per-node row counts, indexed by node id (routers stay 0).
type NodeCounts = Vec<f64>;

impl<'c> Planner<'c> {
    fn new(catalog: &'c Catalog, options: ExecOptions) -> Self {
        let tree = catalog.tree();
        Planner {
            catalog,
            tree,
            options,
            lca: LcaIndex::new(tree),
            bandwidth: tree.dir_edges().map(|d| tree.bandwidth(d)).collect(),
        }
    }

    fn zero_counts(&self) -> NodeCounts {
        vec![0.0; self.tree.num_nodes()]
    }

    /// `max_e load(e)/w_e` for one estimated round, on the same
    /// [`Bandwidth::cost_of`] rule the engines charge.
    fn round_cost(&self, load: &[f64]) -> f64 {
        load.iter()
            .enumerate()
            .map(|(d, &l)| self.bandwidth[d].cost_of(l))
            .fold(0.0, f64::max)
    }

    /// One-round cost of repartitioning `counts` (rows of `width` values)
    /// so destination `u` receives a `shares[u]` fraction; rows already at
    /// their destination do not travel.
    fn repartition_cost(&mut self, counts: &[f64], width: usize, shares: &[f64]) -> f64 {
        let mut load = vec![0.0; self.bandwidth.len()];
        for &v in self.tree.compute_nodes() {
            let n = counts[v.index()] * width as f64;
            if n <= 0.0 {
                continue;
            }
            for &u in self.tree.compute_nodes() {
                let s = shares[u.index()];
                if u == v || s <= 0.0 {
                    continue;
                }
                self.lca
                    .for_each_path_edge(v, u, |d| load[d.index()] += n * s);
            }
        }
        self.round_cost(&load)
    }

    /// One-round cost of every node multicasting its `counts` rows to all
    /// of `dsts`, charged along the union of tree paths (like the
    /// engines' multicast metering).
    fn multicast_cost(&mut self, counts: &[f64], width: usize, dsts: &[NodeId]) -> f64 {
        let mut load = vec![0.0; self.bandwidth.len()];
        let mut seen = vec![false; self.bandwidth.len()];
        for &v in self.tree.compute_nodes() {
            let n = counts[v.index()] * width as f64;
            if n <= 0.0 || dsts.is_empty() {
                continue;
            }
            seen.iter_mut().for_each(|s| *s = false);
            for &u in dsts {
                self.lca.for_each_path_edge(v, u, |d| {
                    if !seen[d.index()] {
                        seen[d.index()] = true;
                        load[d.index()] += n;
                    }
                });
            }
        }
        self.round_cost(&load)
    }

    /// One-round cost of each node unicasting `counts[v]` rows to
    /// `target`.
    fn gather_cost(&mut self, counts: &[f64], width: usize, target: NodeId) -> f64 {
        let mut load = vec![0.0; self.bandwidth.len()];
        for &v in self.tree.compute_nodes() {
            let n = counts[v.index()] * width as f64;
            if n <= 0.0 || v == target {
                continue;
            }
            self.lca
                .for_each_path_edge(v, target, |d| load[d.index()] += n);
        }
        self.round_cost(&load)
    }

    /// Destination shares proportional to `weights` over compute nodes
    /// (the weighted hash's expected routing).
    fn proportional_shares(&self, weights: &[f64]) -> NodeCounts {
        let total: f64 = self
            .tree
            .compute_nodes()
            .iter()
            .map(|&v| weights[v.index()])
            .sum();
        let mut shares = self.zero_counts();
        if total <= 0.0 {
            return shares;
        }
        for &v in self.tree.compute_nodes() {
            shares[v.index()] = weights[v.index()] / total;
        }
        shares
    }

    /// Uniform destination shares (the MPC hash's expected routing).
    fn uniform_shares(&self) -> NodeCounts {
        let k = self.tree.num_compute().max(1) as f64;
        let mut shares = self.zero_counts();
        for &v in self.tree.compute_nodes() {
            shares[v.index()] = 1.0 / k;
        }
        shares
    }

    /// Redistribute `total` rows according to `shares`.
    fn distributed(&self, total: f64, shares: &[f64]) -> NodeCounts {
        let mut counts = self.zero_counts();
        for &v in self.tree.compute_nodes() {
            counts[v.index()] = total * shares[v.index()];
        }
        counts
    }

    fn lower_node(
        &mut self,
        plan: &LogicalPlan,
    ) -> Result<(PhysicalPlan, NodeCounts, Schema), QueryError> {
        match plan {
            LogicalPlan::Scan { table } => {
                let t = self.catalog.table(table)?;
                let counts: NodeCounts = t.row_counts().iter().map(|&n| n as f64).collect();
                let rows_est: f64 = counts.iter().sum();
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::TableScan {
                            table: table.clone(),
                        },
                        rows_est,
                    },
                    counts,
                    t.schema.clone(),
                ))
            }
            LogicalPlan::Filter { input, predicate } => {
                let (child, counts, schema) = self.lower_node(input)?;
                let s = selectivity(predicate).clamp(0.0, 1.0);
                let counts: NodeCounts = counts.iter().map(|n| n * s).collect();
                let rows_est: f64 = counts.iter().sum();
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::Filter {
                            input: Box::new(child),
                            predicate: predicate.clone(),
                        },
                        rows_est,
                    },
                    counts,
                    schema,
                ))
            }
            LogicalPlan::Project { input, exprs } => {
                let (child, counts, _) = self.lower_node(input)?;
                let rows_est: f64 = counts.iter().sum();
                let schema = Schema::new(exprs.iter().map(|(n, _)| n.clone()).collect())?;
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::Project {
                            input: Box::new(child),
                            exprs: exprs.clone(),
                        },
                        rows_est,
                    },
                    counts,
                    schema,
                ))
            }
            LogicalPlan::HashJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                let (lp, lc, ls) = self.lower_node(left)?;
                let (rp, rc, rs) = self.lower_node(right)?;
                let (lw, rw) = (ls.width(), rs.width());
                let (exchange, out_counts) = self.plan_join_exchange(&lc, lw, &rc, rw);
                let rows_est: f64 = out_counts.iter().sum();
                let schema = ls.join(&rs, "r_")?;
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::HashJoin {
                            left: Box::new(lp),
                            right: Box::new(rp),
                            left_key: left_key.clone(),
                            right_key: right_key.clone(),
                            exchange,
                        },
                        rows_est,
                    },
                    out_counts,
                    schema,
                ))
            }
            LogicalPlan::CrossJoin { left, right } => {
                let (lp, lc, ls) = self.lower_node(left)?;
                let (rp, rc, rs) = self.lower_node(right)?;
                let (lw, rw) = (ls.width(), rs.width());
                let l_tot: f64 = lc.iter().sum();
                let r_tot: f64 = rc.iter().sum();
                // The executor broadcasts the side with fewer values.
                let left_is_small = l_tot * lw as f64 <= r_tot * rw as f64;
                let (small, small_w, big) = if left_is_small {
                    (&lc, lw, &rc)
                } else {
                    (&rc, rw, &lc)
                };
                let holders: Vec<NodeId> = self
                    .tree
                    .compute_nodes()
                    .iter()
                    .copied()
                    .filter(|&v| big[v.index()] > 0.0)
                    .collect();
                let cost = self.multicast_cost(small, small_w, &holders);
                let out_total = l_tot * r_tot;
                let big_shares = self.proportional_shares(big);
                let out_counts = self.distributed(out_total, &big_shares);
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::CrossJoin {
                            left: Box::new(lp),
                            right: Box::new(rp),
                            exchange: Exchange {
                                kind: ExchangeKind::BroadcastSmall,
                                estimate: CostEstimate {
                                    tuple_cost: cost,
                                    rounds: 1,
                                    candidates: vec![(ExchangeKind::BroadcastSmall, cost)],
                                },
                            },
                        },
                        rows_est: out_total,
                    },
                    out_counts,
                    ls.join(&rs, "r_")?,
                ))
            }
            LogicalPlan::OrderBy { input, key } => {
                let (child, counts, schema) = self.lower_node(input)?;
                let width = schema.width();
                let total: f64 = counts.iter().sum();
                let order = valid_order(self.tree);
                let coordinator = order[0];
                // Sample round: ~ρ·n_v keys (width 1) to the coordinator.
                let rho = sample_rate(order.len(), total.round() as u64);
                let samples: NodeCounts = counts.iter().map(|n| n * rho).collect();
                let sample_cost = self.gather_cost(&samples, 1, coordinator);
                // Splitter broadcast: k−1 values from the coordinator.
                let mut splitters = self.zero_counts();
                splitters[coordinator.index()] = order.len().saturating_sub(1) as f64;
                let split_cost = self.multicast_cost(&splitters, 1, &order);
                // Shuffle: proportional splitters mean each node keeps
                // roughly its current share; rows move like a repartition
                // with shares ∝ current loads.
                let shares = self.proportional_shares(&counts);
                let shuffle_cost = self.repartition_cost(&counts, width, &shares);
                let cost = sample_cost + split_cost + shuffle_cost;
                let out_counts = counts.clone();
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::Sort {
                            input: Box::new(child),
                            key: key.clone(),
                            exchange: Exchange {
                                kind: ExchangeKind::RangeShuffle,
                                estimate: CostEstimate {
                                    tuple_cost: cost,
                                    rounds: 3,
                                    candidates: vec![(ExchangeKind::RangeShuffle, cost)],
                                },
                            },
                        },
                        rows_est: total,
                    },
                    out_counts,
                    schema,
                ))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                agg,
                measure,
            } => {
                let (child, counts, _) = self.lower_node(input)?;
                let total: f64 = counts.iter().sum();
                // Distinct-group heuristic: √n groups (module docs).
                let groups = total.sqrt().ceil().max(if total > 0.0 { 1.0 } else { 0.0 });
                // Each node ships at most min(n_v, G) partials of width 2
                // under the weighted hash.
                let partials: NodeCounts = counts.iter().map(|&n| n.min(groups)).collect();
                let shares = self.proportional_shares(&counts);
                let cost = self.repartition_cost(&partials, 2, &shares);
                let out_counts = self.distributed(groups, &shares);
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::HashAggregate {
                            input: Box::new(child),
                            group_by: group_by.clone(),
                            agg: *agg,
                            measure: measure.clone(),
                            exchange: Exchange {
                                kind: ExchangeKind::WeightedRepartition,
                                estimate: CostEstimate {
                                    tuple_cost: cost,
                                    rounds: 1,
                                    candidates: vec![(ExchangeKind::WeightedRepartition, cost)],
                                },
                            },
                        },
                        rows_est: groups,
                    },
                    out_counts,
                    Schema::new(vec![
                        group_by.clone(),
                        format!("{}_{}", agg.name(), measure),
                    ])?,
                ))
            }
            LogicalPlan::Limit { input, n } => {
                let order_preserving = reference::preserves_order(input);
                let (child, counts, schema) = self.lower_node(input)?;
                let width = schema.width();
                let target = valid_order(self.tree)[0];
                let contributions: NodeCounts = counts.iter().map(|&c| c.min(*n as f64)).collect();
                let cost = self.gather_cost(&contributions, width, target);
                let total: f64 = counts.iter().sum();
                let out_total = total.min(*n as f64);
                let mut out_counts = self.zero_counts();
                out_counts[target.index()] = out_total;
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::Limit {
                            input: Box::new(child),
                            n: *n,
                            order_preserving,
                            exchange: Exchange {
                                kind: ExchangeKind::Gather,
                                estimate: CostEstimate {
                                    tuple_cost: cost,
                                    rounds: 1,
                                    candidates: vec![(ExchangeKind::Gather, cost)],
                                },
                            },
                        },
                        rows_est: out_total,
                    },
                    out_counts,
                    schema,
                ))
            }
            LogicalPlan::Distinct { input } => {
                let (child, counts, schema) = self.lower_node(input)?;
                let width = schema.width();
                let total: f64 = counts.iter().sum();
                // Assume rows are mostly distinct already (upper bound on
                // traffic): everything shuffles under the weighted hash.
                let shares = self.proportional_shares(&counts);
                let cost = self.repartition_cost(&counts, width, &shares);
                let out_counts = self.distributed(total, &shares);
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::Distinct {
                            input: Box::new(child),
                            exchange: Exchange {
                                kind: ExchangeKind::WeightedRepartition,
                                estimate: CostEstimate {
                                    tuple_cost: cost,
                                    rounds: 1,
                                    candidates: vec![(ExchangeKind::WeightedRepartition, cost)],
                                },
                            },
                        },
                        rows_est: total,
                    },
                    out_counts,
                    schema,
                ))
            }
            LogicalPlan::UnionAll { left, right } => {
                let (lp, lc, ls) = self.lower_node(left)?;
                let (rp, rc, _) = self.lower_node(right)?;
                let counts: NodeCounts = lc.iter().zip(&rc).map(|(a, b)| a + b).collect();
                let rows_est: f64 = counts.iter().sum();
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::UnionAll {
                            left: Box::new(lp),
                            right: Box::new(rp),
                        },
                        rows_est,
                    },
                    counts,
                    ls,
                ))
            }
        }
    }

    /// Price the three join exchanges and resolve the strategy: a forced
    /// [`JoinStrategy`] maps directly; `Auto` keeps the cheapest estimate
    /// (ties prefer the distribution-aware weighted repartition, then the
    /// broadcast, mirroring the paper's preference for topology-aware
    /// plans).
    fn plan_join_exchange(
        &mut self,
        lc: &NodeCounts,
        lw: usize,
        rc: &NodeCounts,
        rw: usize,
    ) -> (Exchange, NodeCounts) {
        let l_tot: f64 = lc.iter().sum();
        let r_tot: f64 = rc.iter().sum();
        let combined: NodeCounts = lc.iter().zip(rc).map(|(a, b)| a + b).collect();
        let weighted_shares = self.proportional_shares(&combined);
        let uniform_shares = self.uniform_shares();
        let weighted_cost = self.repartition_cost(lc, lw, &weighted_shares)
            + self.repartition_cost(rc, rw, &weighted_shares);
        let uniform_cost = self.repartition_cost(lc, lw, &uniform_shares)
            + self.repartition_cost(rc, rw, &uniform_shares);
        // The executor broadcasts the side with fewer rows to every node
        // holding rows of the other side.
        let (small, small_w, big) = if l_tot <= r_tot {
            (lc, lw, rc)
        } else {
            (rc, rw, lc)
        };
        let holders: Vec<NodeId> = self
            .tree
            .compute_nodes()
            .iter()
            .copied()
            .filter(|&v| big[v.index()] > 0.0)
            .collect();
        let broadcast_cost = self.multicast_cost(small, small_w, &holders);

        let candidates = vec![
            (ExchangeKind::WeightedRepartition, weighted_cost),
            (ExchangeKind::BroadcastSmall, broadcast_cost),
            (ExchangeKind::UniformRepartition, uniform_cost),
        ];
        let kind = match self.options.join {
            JoinStrategy::Weighted => ExchangeKind::WeightedRepartition,
            JoinStrategy::Uniform => ExchangeKind::UniformRepartition,
            JoinStrategy::BroadcastSmall => ExchangeKind::BroadcastSmall,
            // Cheapest estimate wins; candidate order is the tie-break.
            JoinStrategy::Auto => {
                candidates
                    .iter()
                    .copied()
                    .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("estimates are finite"))
                    .expect("three candidates")
                    .0
            }
        };
        let (tuple_cost, rounds) = match kind {
            ExchangeKind::WeightedRepartition => (weighted_cost, 2),
            ExchangeKind::UniformRepartition => (uniform_cost, 2),
            ExchangeKind::BroadcastSmall => (broadcast_cost, 1),
            _ => unreachable!("join exchanges are repartition or broadcast"),
        };

        // Output estimate: key/foreign-key shape, placed by the exchange.
        let out_total = if l_tot == 0.0 || r_tot == 0.0 {
            0.0
        } else {
            l_tot.max(r_tot)
        };
        let out_counts = match kind {
            ExchangeKind::BroadcastSmall => {
                let big_shares = self.proportional_shares(big);
                self.distributed(out_total, &big_shares)
            }
            ExchangeKind::UniformRepartition => self.distributed(out_total, &uniform_shares),
            _ => self.distributed(out_total, &weighted_shares),
        };
        (
            Exchange {
                kind,
                estimate: CostEstimate {
                    tuple_cost,
                    rounds,
                    candidates,
                },
            },
            out_counts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::row::Row;
    use crate::table::DistributedTable;
    use tamp_topology::builders;

    fn star_catalog(facts: u64, dims: u64) -> Catalog {
        let tree = builders::star(4, 1.0);
        let mut c = Catalog::new(tree);
        let rows: Vec<Row> = (0..facts).map(|i| vec![i, i % 7, i * 3]).collect();
        c.register(DistributedTable::round_robin(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            c.tree(),
        ))
        .unwrap();
        let d: Vec<Row> = (0..dims).map(|g| vec![g, g + 100]).collect();
        c.register(DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "label"]).unwrap(),
            d,
            c.tree(),
        ))
        .unwrap();
        c
    }

    #[test]
    fn auto_broadcasts_tiny_dimension_tables() {
        let c = star_catalog(600, 7);
        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        let p = lower(&q, &c, ExecOptions::default()).unwrap();
        match &p.op {
            PhysicalOp::HashJoin { exchange, .. } => {
                assert_eq!(exchange.kind, ExchangeKind::BroadcastSmall);
                assert_eq!(exchange.estimate.candidates.len(), 3);
                assert!(exchange.estimate.tuple_cost > 0.0);
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn auto_keeps_colocated_skew_in_place() {
        // Both sides parked on one node: the weighted repartition moves
        // (almost) nothing, so Auto must not pick the uniform shuffle.
        let tree = builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0]);
        let heavy = tree.compute_nodes()[0];
        let mut c = Catalog::new(tree);
        let rows: Vec<Row> = (0..300).map(|i| vec![i, i % 5, i]).collect();
        c.register(DistributedTable::single_node(
            "a",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows.clone(),
            c.tree(),
            heavy,
        ))
        .unwrap();
        c.register(DistributedTable::single_node(
            "b",
            Schema::new(vec!["g", "y", "z"]).unwrap(),
            rows,
            c.tree(),
            heavy,
        ))
        .unwrap();
        let q = LogicalPlan::scan("a").join_on(LogicalPlan::scan("b"), "g", "g");
        let p = lower(&q, &c, ExecOptions::default()).unwrap();
        let x = p.exchange().unwrap();
        assert_ne!(x.kind, ExchangeKind::UniformRepartition);
        // Everything is already in place: the estimate is (near) zero
        // while the uniform candidate is expensive.
        let uniform = x
            .estimate
            .candidates
            .iter()
            .find(|(k, _)| *k == ExchangeKind::UniformRepartition)
            .unwrap()
            .1;
        assert!(x.estimate.tuple_cost < 1e-9, "{}", x.estimate.tuple_cost);
        assert!(uniform > 100.0, "{uniform}");
    }

    #[test]
    fn forced_strategies_map_directly() {
        let c = star_catalog(100, 100);
        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        for (strategy, kind) in [
            (JoinStrategy::Weighted, ExchangeKind::WeightedRepartition),
            (JoinStrategy::Uniform, ExchangeKind::UniformRepartition),
            (JoinStrategy::BroadcastSmall, ExchangeKind::BroadcastSmall),
        ] {
            let p = lower(
                &q,
                &c,
                ExecOptions {
                    join: strategy,
                    seed: 0,
                },
            )
            .unwrap();
            assert_eq!(p.exchange().unwrap().kind, kind);
        }
    }

    #[test]
    fn every_operator_lowers_with_estimates() {
        let c = star_catalog(200, 7);
        let q = LogicalPlan::scan("facts")
            .filter(col("x").gt(lit(10)))
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .aggregate("label", AggFunc::Sum, "x")
            .order_by("label")
            .limit(5);
        let p = lower(&q, &c, ExecOptions::default()).unwrap();
        assert!(p.estimated_cost() > 0.0);
        assert!(p.estimated_rounds() >= 6, "{}", p.estimated_rounds());
        let text = p.to_string();
        assert!(text.contains("est cost"), "{text}");
        assert!(text.contains("via"), "{text}");
        assert!(text.contains("candidates"), "{text}");
    }

    #[test]
    fn lowering_validates_names() {
        let c = star_catalog(10, 3);
        assert!(lower(&LogicalPlan::scan("nope"), &c, ExecOptions::default()).is_err());
        assert!(lower(
            &LogicalPlan::scan("facts").order_by("zzz"),
            &c,
            ExecOptions::default()
        )
        .is_err());
    }
}
